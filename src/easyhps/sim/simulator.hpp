#pragma once
/// \file simulator.hpp
/// Discrete-event simulator of the multilevel EasyHPS execution.
///
/// Reproduces the paper's evaluation (§VI) at Tianhe-1A scale on one core:
/// the master-level schedule is simulated event-by-event (dispatch →
/// transfer → slave execution → transfer → result processing) with the
/// *same* policy objects and DAG parse state the real runtime uses, and
/// each block's thread-level execution is simulated exactly by
/// `simulateIntraBlock`.  Virtual time is deterministic: same config, same
/// result, bit for bit.
///
/// Faithfulness notes (mirroring the runtime's structure):
///  * a slave node executes one block at a time (recv → compute → reply);
///  * the master's DAG parsing / result processing is serialized (the
///    scheduler mutex), while transfers proceed in parallel per link;
///  * a slave becomes re-assignable only after the master has processed
///    its result — assignment and result messages do not overlap compute
///    on the same node, which is why over-decomposition hurts (ablation A).

#include <vector>

#include "easyhps/dp/problem.hpp"
#include "easyhps/sched/policy.hpp"
#include "easyhps/sim/platform.hpp"

namespace easyhps::sim {

struct SimConfig {
  Deployment deployment;
  PlatformModel platform;

  std::int64_t processPartitionRows = 200;
  std::int64_t processPartitionCols = 200;
  std::int64_t threadPartitionRows = 10;
  std::int64_t threadPartitionCols = 10;

  PolicyKind masterPolicy = PolicyKind::kDynamic;
  PolicyKind slavePolicy = PolicyKind::kDynamic;

  /// Actual relative speed of each computing node (empty = uniform 1.0).
  /// Node i's block service time is divided by `nodeSpeeds[i]` — the
  /// ground truth of the simulated hardware, *not* told to the scheduler.
  std::vector<double> nodeSpeeds;

  /// What the ECT scheduler *believes* about each node (entry i = node i;
  /// empty = uniform defaults).  Deliberately separate from `nodeSpeeds`:
  /// with uniform profiles over skewed hardware the estimator must learn
  /// the skew online from observed task latencies.
  std::vector<RankProfile> rankProfiles;

  /// Record a per-task TaskTrace (adds memory ∝ task count).
  bool collectTrace = false;

  /// Fault model (paper §V at scale): each listed vertex is *blackholed*
  /// the first time it is dispatched — the receiving node silently drops
  /// it — and recovered through the simulated overtime queue: after
  /// `taskTimeout` virtual seconds the master cancels the registration,
  /// frees the node and re-distributes the task.
  std::vector<VertexId> blackholeVertices;
  double taskTimeout = 5.0;  ///< virtual seconds

  /// Master crash/restart model (mirrors the runtime's kMasterCrash chaos
  /// + checkpoint journal): the master crashes right after processing its
  /// N-th result (1-based; < 0 = never).  On restart it replays the
  /// journal — every block checkpointed before the crash is recovered at
  /// journal-replay cost, and the blocks completed *since the last
  /// checkpoint flush* are lost and recomputed at their observed mean
  /// service time.  Recovery latency therefore scales with the checkpoint
  /// interval, not the job size.
  std::int64_t masterCrashAtTask = -1;
  /// Results per checkpoint flush (the virtual-time analogue of
  /// RuntimeConfig::checkpointInterval); 0 = every result is durable.
  std::int64_t checkpointIntervalTasks = 0;
};

/// One sub-task's lifecycle in virtual time (trace mode).
struct TaskTrace {
  VertexId vertex = -1;
  int node = -1;
  double dispatched = 0.0;     ///< master finished sending
  double arrived = 0.0;        ///< assignment + halo landed on the node
  double computeDone = 0.0;    ///< slave finished the block
  double resultProcessed = 0.0;///< master injected + advanced the DAG
};

struct SimResult {
  double makespan = 0.0;    ///< virtual seconds to complete all sub-tasks
  double serialTime = 0.0;  ///< one core, zero overhead (speedup baseline)
  double speedup() const { return makespan > 0 ? serialTime / makespan : 0; }

  std::int64_t tasks = 0;
  std::uint64_t messages = 0;
  double bytesTransferred = 0.0;

  double masterBusy = 0.0;
  std::vector<double> nodeBusy;         ///< per computing node
  std::vector<std::int64_t> tasksPerNode;
  std::int64_t faultsInjected = 0;      ///< blackholes that fired
  std::int64_t retries = 0;             ///< overtime re-distributions
  std::int64_t masterStalledPicks = 0;  ///< BCW "fatal situation" count
  std::int64_t threadStalledPicks = 0;
  std::int64_t tasksStolen = 0;         ///< ect-steal revocations granted
  std::int64_t placementSpills = 0;     ///< placements over every budget
  std::int64_t masterCrashes = 0;       ///< kMasterCrash firings
  std::int64_t tasksRecovered = 0;      ///< blocks replayed from the journal
  std::int64_t tasksRecomputed = 0;     ///< blocks lost past the last flush
  double recoverySeconds = 0.0;         ///< virtual crash-recovery stall

  /// Mean computing-node busy fraction of the makespan.
  double nodeUtilization() const;
  /// max/mean of tasksPerNode.
  double taskImbalance() const;

  /// Per-task lifecycle records (only when SimConfig::collectTrace).
  std::vector<TaskTrace> trace;
};

/// Simulates one full run.
SimResult simulate(const DpProblem& problem, const SimConfig& cfg);

}  // namespace easyhps::sim

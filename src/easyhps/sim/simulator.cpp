#include "easyhps/sim/simulator.hpp"

#include <queue>
#include <set>

#include "easyhps/dag/parse_state.hpp"
#include "easyhps/sim/intra.hpp"

namespace easyhps::sim {
namespace {

/// Fixed per-message envelope (tags, rects, lengths).
constexpr double kHeaderBytes = 64.0;

enum class EventKind { kAssignArrive, kResultArrive, kTimeout };

struct Event {
  double time = 0.0;
  std::int64_t seq = 0;  // tie-break for determinism
  EventKind kind = EventKind::kAssignArrive;
  int node = -1;         // computing node index [0, computingNodes)
  VertexId vertex = -1;
  std::int64_t epoch = 0;  // assignment epoch (overtime-queue matching)
  bool silent = false;     // blackholed assignment: node got nothing
  double service = 0.0;    // block service time (fed back to the policy)

  bool operator>(const Event& o) const {
    return time > o.time || (time == o.time && seq > o.seq);
  }
};

}  // namespace

double SimResult::nodeUtilization() const {
  if (nodeBusy.empty() || makespan <= 0.0) {
    return 0.0;
  }
  double sum = 0.0;
  for (double b : nodeBusy) {
    sum += b;
  }
  return sum / (makespan * static_cast<double>(nodeBusy.size()));
}

double SimResult::taskImbalance() const {
  if (tasksPerNode.empty()) {
    return 0.0;
  }
  std::int64_t maxT = 0;
  std::int64_t total = 0;
  for (auto t : tasksPerNode) {
    maxT = std::max(maxT, t);
    total += t;
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(maxT) /
         (static_cast<double>(total) /
          static_cast<double>(tasksPerNode.size()));
}

SimResult simulate(const DpProblem& problem, const SimConfig& cfg) {
  const auto threads = cfg.deployment.threadsPerNode();
  const int nodes = cfg.deployment.computingNodes();
  const PlatformModel& pf = cfg.platform;

  const PartitionedDag dag = buildMasterDag(
      problem, cfg.processPartitionRows, cfg.processPartitionCols);
  DagParseState parse(dag.dag);

  // Ground-truth node speed: divides service time.  The scheduler only
  // sees cfg.rankProfiles (its prior) plus whatever it learns online.
  auto speedOf = [&cfg](int node) {
    const auto i = static_cast<std::size_t>(node);
    return i < cfg.nodeSpeeds.size() && cfg.nodeSpeeds[i] > 0.0
               ? cfg.nodeSpeeds[i]
               : 1.0;
  };

  std::unique_ptr<SchedulingPolicy> policy;
  if (cfg.masterPolicy == PolicyKind::kEct ||
      cfg.masterPolicy == PolicyKind::kEctSteal) {
    EctOptions opt;
    opt.steal = cfg.masterPolicy == PolicyKind::kEctSteal;
    opt.estimator = std::make_shared<RankEstimator>(nodes, cfg.rankProfiles);
    opt.taskWork = [&problem, &dag](VertexId v) {
      return static_cast<double>(problem.blockOps(dag.rectOf(v)));
    };
    opt.remoteBytes = [&problem, &dag](VertexId v, int) {
      return static_cast<std::int64_t>(haloBytes(problem, dag.rectOf(v)));
    };
    policy = makeEctPolicy(dag, nodes, std::move(opt));
  } else {
    policy = makePolicy(cfg.masterPolicy, dag, nodes);
  }
  for (VertexId v : parse.initiallyComputable()) {
    policy->onReady(v);
  }

  SimResult result;
  result.nodeBusy.assign(static_cast<std::size_t>(nodes), 0.0);
  result.tasksPerNode.assign(static_cast<std::size_t>(nodes), 0);
  result.serialTime =
      problem.blockOps(CellRect{0, 0, problem.rows(), problem.cols()}) *
      pf.cellOpCost;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::int64_t seq = 0;
  std::vector<bool> nodeIdle(static_cast<std::size_t>(nodes), true);
  double masterFreeAt = 0.0;

  // Trace slots indexed by vertex (each vertex runs exactly once here).
  std::vector<std::int64_t> traceSlot;
  if (cfg.collectTrace) {
    traceSlot.assign(static_cast<std::size_t>(dag.vertexCount()), -1);
  }
  auto traceOf = [&](VertexId v) -> TaskTrace* {
    if (!cfg.collectTrace) {
      return nullptr;
    }
    auto& slot = traceSlot[static_cast<std::size_t>(v)];
    if (slot < 0) {
      slot = static_cast<std::int64_t>(result.trace.size());
      result.trace.push_back(TaskTrace{});
      result.trace.back().vertex = v;
    }
    return &result.trace[static_cast<std::size_t>(slot)];
  };

  // The initial Idle round-trip from every slave.
  result.messages += static_cast<std::uint64_t>(nodes);
  result.bytesTransferred += kHeaderBytes * nodes;

  // Fault model state: consume-once blackhole set and assignment epochs
  // (the simulated register table + overtime queue).
  std::set<VertexId> blackholes(cfg.blackholeVertices.begin(),
                                cfg.blackholeVertices.end());
  std::vector<std::int64_t> assignEpoch(
      static_cast<std::size_t>(dag.vertexCount()), 0);
  const bool faultsEnabled = !blackholes.empty();

  auto dispatchAll = [&](double now) {
    for (int s = 0; s < nodes; ++s) {
      if (!nodeIdle[static_cast<std::size_t>(s)]) {
        continue;
      }
      auto picked = policy->pick(s);
      // A re-queued task may have completed via a late result meanwhile;
      // drop such stale entries (the runtime's register-table check).
      // Tell the policy so ECT releases the phantom in-flight work.
      while (picked && parse.isFinished(*picked)) {
        policy->onTaskCompleted(*picked, s, 0.0);
        picked = policy->pick(s);
      }
      if (!picked) {
        continue;  // nothing this node may run (static stall or drained)
      }
      const VertexId v = *picked;
      const double start = std::max(masterFreeAt, now);
      const double dispatched = start + pf.masterDispatchOverhead;
      masterFreeAt = dispatched;
      result.masterBusy += pf.masterDispatchOverhead;

      const double bytes =
          kHeaderBytes +
          static_cast<double>(haloBytes(problem, dag.rectOf(v)));
      const double arrive = dispatched + pf.transferSeconds(bytes);
      ++result.messages;
      result.bytesTransferred += bytes;
      ++result.tasks;
      ++result.tasksPerNode[static_cast<std::size_t>(s)];
      nodeIdle[static_cast<std::size_t>(s)] = false;
      if (TaskTrace* t = traceOf(v)) {
        t->node = s;
        t->dispatched = dispatched;
        t->arrived = arrive;
      }

      const std::int64_t epoch =
          ++assignEpoch[static_cast<std::size_t>(v)];
      const bool silent = blackholes.erase(v) > 0;
      if (silent) {
        ++result.faultsInjected;
      } else {
        events.push(
            Event{arrive, seq++, EventKind::kAssignArrive, s, v, epoch,
                  false});
      }
      if (faultsEnabled) {
        events.push(Event{dispatched + cfg.taskTimeout, seq++,
                          EventKind::kTimeout, s, v, epoch, silent});
      }
    }
  };

  dispatchAll(0.0);

  double lastProcessed = 0.0;
  std::int64_t processedCount = 0;  // distinct results injected (crash model)
  double serviceSum = 0.0;          // their observed service times
  while (!events.empty()) {
    const Event e = events.top();
    events.pop();

    if (e.kind == EventKind::kAssignArrive) {
      // Slave executes the block: slave DAG init + thread-level schedule.
      const IntraBlockResult intra = simulateIntraBlock(
          problem, dag.rectOf(e.vertex), cfg.threadPartitionRows,
          cfg.threadPartitionCols,
          threads[static_cast<std::size_t>(e.node)], cfg.slavePolicy, pf);
      result.threadStalledPicks += intra.stalledPicks;
      const double service =
          (pf.slaveInitOverhead + intra.makespan) / speedOf(e.node);
      result.nodeBusy[static_cast<std::size_t>(e.node)] += service;

      const double bytes =
          kHeaderBytes +
          static_cast<double>(dag.rectOf(e.vertex).cellCount()) *
              static_cast<double>(sizeof(Score));
      const double arrive = e.time + service + pf.transferSeconds(bytes);
      ++result.messages;
      result.bytesTransferred += bytes;
      if (TaskTrace* t = traceOf(e.vertex)) {
        t->computeDone = e.time + service;
      }
      events.push(Event{arrive, seq++, EventKind::kResultArrive, e.node,
                        e.vertex, e.epoch, false, service});
      continue;
    }

    if (e.kind == EventKind::kTimeout) {
      // Simulated overtime-queue check (paper §V-B step g): only fires if
      // this very assignment is still the current one and unfinished.
      if (parse.isFinished(e.vertex) ||
          assignEpoch[static_cast<std::size_t>(e.vertex)] != e.epoch) {
        continue;
      }
      ++result.retries;
      policy->onReady(e.vertex);
      if (e.silent) {
        // The blackholed node computed nothing; it is free again.
        nodeIdle[static_cast<std::size_t>(e.node)] = true;
      }
      dispatchAll(e.time);
      continue;
    }

    // Result arrives at the master: serialized processing, then the node
    // is idle and newly computable sub-tasks are dispatched.
    const double processed =
        std::max(masterFreeAt, e.time) + pf.masterResultOverhead;
    masterFreeAt = processed;
    result.masterBusy += pf.masterResultOverhead;
    nodeIdle[static_cast<std::size_t>(e.node)] = true;
    // Feed observed latency back (late duplicates report 0 so they only
    // clear bookkeeping without polluting the speed EWMA) — same contract
    // as the runtime's processResult.
    policy->onTaskCompleted(e.vertex, e.node,
                            parse.isFinished(e.vertex) ? 0.0 : e.service);
    if (!parse.isFinished(e.vertex)) {
      lastProcessed = processed;
      ++processedCount;
      serviceSum += e.service;
      if (TaskTrace* t = traceOf(e.vertex)) {
        t->resultProcessed = processed;
      }
      for (VertexId next : parse.finish(e.vertex)) {
        policy->onReady(next);
      }
      if (result.masterCrashes == 0 && cfg.masterCrashAtTask >= 0 &&
          processedCount >= cfg.masterCrashAtTask) {
        // Master crash + journal replay.  Blocks flushed before the crash
        // come back at replay cost; the ones completed since the last
        // flush are lost and recomputed at the observed mean service time.
        // Virtual-time model only — the *data* is deterministic either
        // way, so the parse state is not rolled back.
        ++result.masterCrashes;
        const std::int64_t interval =
            std::max<std::int64_t>(0, cfg.checkpointIntervalTasks);
        const std::int64_t lost =
            interval > 0 ? processedCount % interval : 0;
        const std::int64_t recovered = processedCount - lost;
        const double meanService =
            processedCount > 0
                ? serviceSum / static_cast<double>(processedCount)
                : 0.0;
        const double stall =
            static_cast<double>(recovered) * pf.masterResultOverhead +
            static_cast<double>(lost) * meanService;
        masterFreeAt = processed + stall;
        result.masterBusy += stall;
        result.tasksRecovered = recovered;
        result.tasksRecomputed = lost;
        result.recoverySeconds = stall;
        lastProcessed = masterFreeAt;
      }
    }
    dispatchAll(processed);
  }

  EASYHPS_ENSURES(parse.allDone());
  // End messages to every slave.
  result.messages += static_cast<std::uint64_t>(nodes);
  result.bytesTransferred += kHeaderBytes * nodes;
  result.makespan = lastProcessed;
  result.masterStalledPicks = policy->stalledPicks();
  result.tasksStolen = policy->tasksStolen();
  result.placementSpills = policy->placementSpills();
  return result;
}

}  // namespace easyhps::sim

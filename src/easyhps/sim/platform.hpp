#pragma once
/// \file platform.hpp
/// Platform model of the simulated multilevel cluster.
///
/// The paper's testbed is Tianhe-1A: multi-core SMP nodes (dual 6-core
/// Xeon X5670, up to 11 computing threads usable per node) connected by
/// Infiniband QDR, programmed with MPICH + pthreads.  This environment has
/// one physical core and no interconnect, so every scale experiment runs on
/// a deterministic discrete-event model of that platform (DESIGN.md
/// substitution table).  Constants are calibrated for *shape*, not absolute
/// seconds: relative speedups, node-count crossovers and scheduler ratios
/// are properties of schedule structure + cost ratios, which is what the
/// paper's figures report.
///
/// Deployment arithmetic follows the paper §VI exactly: `Experiment_X_Y`
/// uses Y cores on X nodes; one node is the master, each of the X−1
/// computing nodes spends one core on its thread-level scheduler, and the
/// master worker pool spends X−1 + 1 cores on process-level scheduling, so
/// Y − 2X + 1 cores actually compute.

#include <cstdint>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps::sim {

/// Cost constants of the simulated platform (seconds / bytes).
struct PlatformModel {
  /// Seconds per abstract DP operation (one recurrence term evaluation).
  double cellOpCost = 1.0e-9;
  /// One-way message latency, seconds.
  double linkLatency = 5.0e-6;
  /// Link bandwidth, bytes/second (Infiniband QDR ballpark).
  double linkBandwidth = 3.0e9;
  /// Master-side serialized cost of dispatching one sub-task (DAG parse,
  /// registration, halo gather bookkeeping).
  double masterDispatchOverhead = 20.0e-6;
  /// Master-side serialized cost of processing one result (inject, DAG
  /// update).
  double masterResultOverhead = 20.0e-6;
  /// Slave-side cost of initializing the slave DAG Data Driven Model for
  /// one assignment (paper §V-C steps c-d).
  double slaveInitOverhead = 100.0e-6;
  /// Slave-side cost of one thread-level pick/finish round trip.
  double threadDispatchOverhead = 2.0e-6;

  /// Transfer time of a payload of `bytes`.
  double transferSeconds(double bytes) const {
    return linkLatency + bytes / linkBandwidth;
  }
};

/// An `Experiment_X_Y` deployment.
struct Deployment {
  int nodes = 2;       ///< X: total nodes, incl. the master node
  int totalCores = 4;  ///< Y: total cores across all nodes

  int computingNodes() const { return nodes - 1; }

  /// Computing threads available in total: Y − 2X + 1 (paper §VI).
  int computingThreads() const { return totalCores - 2 * nodes + 1; }

  /// Computing threads of each computing node; when Y − 2X + 1 does not
  /// divide evenly, earlier nodes take one extra.
  std::vector<int> threadsPerNode() const {
    EASYHPS_CHECK(nodes >= 2, "deployment needs a master and ≥1 slave");
    EASYHPS_CHECK(computingThreads() >= 1,
                  "Experiment_" + std::to_string(nodes) + "_" +
                      std::to_string(totalCores) +
                      " leaves no computing cores");
    const int c = computingThreads();
    const int k = computingNodes();
    std::vector<int> out(static_cast<std::size_t>(k), c / k);
    for (int i = 0; i < c % k; ++i) {
      ++out[static_cast<std::size_t>(i)];
    }
    return out;
  }

  /// The paper's experiment naming: Y = 2X − 1 + ct·(X−1) for integer
  /// per-node thread counts ct.
  static Deployment forThreads(int nodes, int threadsPerComputingNode) {
    Deployment d;
    d.nodes = nodes;
    d.totalCores =
        2 * nodes - 1 + threadsPerComputingNode * (nodes - 1);
    return d;
  }
};

}  // namespace easyhps::sim

#include "easyhps/sim/intra.hpp"

#include <queue>

#include "easyhps/dag/parse_state.hpp"

namespace easyhps::sim {

IntraBlockResult simulateIntraBlock(const DpProblem& problem,
                                    const CellRect& blockRect,
                                    std::int64_t threadPartitionRows,
                                    std::int64_t threadPartitionCols,
                                    int threads, PolicyKind policyKind,
                                    const PlatformModel& platform) {
  EASYHPS_EXPECTS(threads >= 1);
  const PartitionedDag dag = buildSlaveDag(
      problem, blockRect, threadPartitionRows, threadPartitionCols);
  DagParseState parse(dag.dag);
  auto policy = makePolicy(policyKind, dag, threads);
  for (VertexId v : parse.initiallyComputable()) {
    policy->onReady(v);
  }

  struct Completion {
    double time;
    int thread;
    VertexId sub;
    bool operator>(const Completion& o) const {
      return time > o.time || (time == o.time && sub > o.sub);
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;
  std::vector<bool> threadBusy(static_cast<std::size_t>(threads), false);

  IntraBlockResult result;
  double now = 0.0;

  auto dispatch = [&] {
    for (int t = 0; t < threads; ++t) {
      if (threadBusy[static_cast<std::size_t>(t)]) {
        continue;
      }
      auto sub = policy->pick(t);
      if (!sub) {
        continue;
      }
      const double cost =
          platform.threadDispatchOverhead +
          problem.blockOps(slaveVertexRect(dag, blockRect, *sub)) *
              platform.cellOpCost;
      threadBusy[static_cast<std::size_t>(t)] = true;
      running.push(Completion{now + cost, t, *sub});
      result.busy += cost;
      ++result.subTasks;
    }
  };

  dispatch();
  while (!running.empty()) {
    const Completion done = running.top();
    running.pop();
    now = done.time;
    threadBusy[static_cast<std::size_t>(done.thread)] = false;
    for (VertexId next : parse.finish(done.sub)) {
      policy->onReady(next);
    }
    dispatch();
  }

  EASYHPS_ENSURES(parse.allDone());
  result.makespan = now;
  result.stalledPicks = policy->stalledPicks();
  return result;
}

}  // namespace easyhps::sim

#pragma once
/// \file intra.hpp
/// Thread-level (intra-node) schedule simulation.
///
/// When a simulated slave receives a block, its ct computing threads
/// execute the slave DAG under the thread-level policy.  This is list
/// scheduling of a small DAG onto identical workers with per-sub-task
/// dispatch overhead — simulated exactly and deterministically, reusing the
/// same `SchedulingPolicy` objects as the real runtime.

#include "easyhps/dp/problem.hpp"
#include "easyhps/sched/policy.hpp"
#include "easyhps/sim/platform.hpp"

namespace easyhps::sim {

struct IntraBlockResult {
  double makespan = 0.0;      ///< seconds from pool start to last finish
  double busy = 0.0;          ///< total thread-busy seconds
  std::int64_t subTasks = 0;
  std::int64_t stalledPicks = 0;  ///< thread-level static-schedule stalls

  /// busy / (makespan × threads): thread utilization inside the block.
  double utilization(int threads) const {
    return makespan <= 0.0 ? 1.0
                           : busy / (makespan * static_cast<double>(threads));
  }
};

/// Simulates the execution of one master block on `threads` computing
/// threads under `policy`.
IntraBlockResult simulateIntraBlock(const DpProblem& problem,
                                    const CellRect& blockRect,
                                    std::int64_t threadPartitionRows,
                                    std::int64_t threadPartitionCols,
                                    int threads, PolicyKind policy,
                                    const PlatformModel& platform);

}  // namespace easyhps::sim

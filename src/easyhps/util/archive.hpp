#pragma once
/// \file archive.hpp
/// Byte-level serialization for the message-passing substrate.
///
/// The paper's runtime ships sub-task assignments (vertex id + halo data)
/// and results (computed blocks) between master and slaves over MPI.  Our
/// in-process substrate keeps the same discipline: every payload crosses the
/// "wire" as a flat byte buffer, written and read through these archives, so
/// the runtime code would port to real MPI by swapping the transport only.
///
/// Only trivially-copyable scalars, strings and vectors thereof are
/// supported — deliberately: wire formats should be boring.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {

/// Append-only byte buffer writer.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires a trivially copyable type");
    const auto offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void putString(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto offset = bytes_.size();
    bytes_.resize(offset + s.size());
    std::memcpy(bytes_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void putVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::putVector requires trivially copyable T");
    put<std::uint64_t>(v.size());
    const auto offset = bytes_.size();
    bytes_.resize(offset + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(bytes_.data() + offset, v.data(), v.size() * sizeof(T));
    }
  }

  std::vector<std::byte> take() && { return std::move(bytes_); }
  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Sequential reader over one byte buffer or two logically concatenated
/// segments (a `msg::Payload`'s head + body); throws CommError on
/// underflow.  The segmented form exists for the zero-copy transport: the
/// trailing cell vector of a block/halo payload lives in its own
/// refcounted segment, and `peekContiguous` lets a decoder hand out a
/// borrowed view of it instead of copying.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::byte>& bytes)
      : head_(bytes.data()), head_size_(bytes.size()) {}
  ByteReader(const std::byte* data, std::size_t size)
      : head_(data), head_size_(size) {}
  ByteReader(std::span<const std::byte> head, std::span<const std::byte> body)
      : head_(head.data()),
        head_size_(head.size()),
        body_(body.data()),
        body_size_(body.size()) {}

  /// Anything exposing head()/body() spans (i.e. msg::Payload) reads as
  /// the concatenated stream — spelled as a constrained template so this
  /// header stays independent of the msg layer.
  template <typename P>
    requires requires(const P& p) {
      std::span<const std::byte>(p.head());
      std::span<const std::byte>(p.body());
    }
  explicit ByteReader(const P& payload)
      : ByteReader(std::span<const std::byte>(payload.head()),
                   std::span<const std::byte>(payload.body())) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::get requires a trivially copyable type");
    T value;
    readBytes(&value, sizeof(T));
    return value;
  }

  std::string getString() {
    const auto n = get<std::uint64_t>();
    // Validate against the remaining bytes *before* allocating: a
    // corrupted length prefix must be a DecodeError, not a bad_alloc.
    require(n);
    std::string s(n, '\0');
    readBytes(s.data(), n);
    return s;
  }

  template <typename T>
  std::vector<T> getVector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::getVector requires trivially copyable T");
    const auto n = get<std::uint64_t>();
    // Divide instead of multiplying: n * sizeof(T) can wrap for a
    // corrupted length prefix and sneak past the bounds check.
    if (n > remaining() / sizeof(T)) {
      throw DecodeError("ByteReader: truncated payload (vector of " +
                        std::to_string(n) + " elements exceeds " +
                        std::to_string(remaining()) + " bytes)");
    }
    std::vector<T> v(n);
    readBytes(v.data(), n * sizeof(T));
    return v;
  }

  /// Copies the next `n` bytes (possibly straddling the segment seam)
  /// into `dst` and advances.
  void readBytes(void* dst, std::size_t n) {
    require(n);
    auto* out = static_cast<std::byte*>(dst);
    if (pos_ < head_size_) {
      const std::size_t fromHead = std::min(n, head_size_ - pos_);
      std::memcpy(out, head_ + pos_, fromHead);
      out += fromHead;
      pos_ += fromHead;
      n -= fromHead;
    }
    if (n > 0) {
      std::memcpy(out, body_ + (pos_ - head_size_), n);
      pos_ += n;
    }
  }

  /// Pointer to the next `n` bytes if they lie wholly inside one segment
  /// (no seam straddle), nullptr otherwise.  Does not advance; pair with
  /// skip().  Callers borrowing the bytes must hold a keepalive for the
  /// underlying buffer (see msg::Payload::bodyOwner).
  const std::byte* peekContiguous(std::size_t n) const {
    if (pos_ + n > size()) {
      return nullptr;
    }
    if (pos_ + n <= head_size_) {
      return head_ + pos_;
    }
    if (pos_ >= head_size_) {
      return body_ + (pos_ - head_size_);
    }
    return nullptr;
  }

  /// True when the cursor is inside the second (body) segment — the only
  /// region a zero-copy borrow is valid for, since the head may live
  /// inline in a transient Message.
  bool inBody() const { return body_size_ > 0 && pos_ >= head_size_; }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  std::size_t remaining() const { return size() - pos_; }
  bool exhausted() const { return pos_ == size(); }

 private:
  std::size_t size() const { return head_size_ + body_size_; }

  void require(std::size_t n) const {
    if (n > size() - pos_) {
      throw DecodeError("ByteReader: truncated payload (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(size() - pos_) + ")");
    }
  }

  const std::byte* head_;
  std::size_t head_size_;
  const std::byte* body_ = nullptr;
  std::size_t body_size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace easyhps

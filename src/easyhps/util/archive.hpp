#pragma once
/// \file archive.hpp
/// Byte-level serialization for the message-passing substrate.
///
/// The paper's runtime ships sub-task assignments (vertex id + halo data)
/// and results (computed blocks) between master and slaves over MPI.  Our
/// in-process substrate keeps the same discipline: every payload crosses the
/// "wire" as a flat byte buffer, written and read through these archives, so
/// the runtime code would port to real MPI by swapping the transport only.
///
/// Only trivially-copyable scalars, strings and vectors thereof are
/// supported — deliberately: wire formats should be boring.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {

/// Append-only byte buffer writer.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires a trivially copyable type");
    const auto offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void putString(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto offset = bytes_.size();
    bytes_.resize(offset + s.size());
    std::memcpy(bytes_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void putVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::putVector requires trivially copyable T");
    put<std::uint64_t>(v.size());
    const auto offset = bytes_.size();
    bytes_.resize(offset + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(bytes_.data() + offset, v.data(), v.size() * sizeof(T));
    }
  }

  std::vector<std::byte> take() && { return std::move(bytes_); }
  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Sequential reader over a byte buffer; throws CommError on underflow.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::byte>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::get requires a trivially copyable type");
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string getString() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> getVector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::getVector requires trivially copyable T");
    const auto n = get<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return v;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > size_) {
      throw CommError("ByteReader: truncated payload (need " +
                      std::to_string(n) + " bytes, have " +
                      std::to_string(size_ - pos_) + ")");
    }
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace easyhps

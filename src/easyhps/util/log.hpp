#pragma once
/// \file log.hpp
/// Minimal leveled, thread-safe logger.
///
/// The runtime spawns many threads (one comm thread per slave in the master
/// worker pool, computing threads in each slave, fault-tolerance threads);
/// interleaved `std::cerr` writes would be unreadable.  This logger
/// serializes whole lines and stamps them with a monotonic timestamp and the
/// logical thread name registered via `setThreadName`.

#include <sstream>
#include <string>

namespace easyhps::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global minimum level; messages below it are dropped. Default: kWarn so
/// tests and benches stay quiet unless they opt in.
void setLevel(Level level);
Level level();

/// Registers a human-readable name for the calling thread ("master",
/// "slave-3", "worker-1/2", ...). Used in every log line.
void setThreadName(const std::string& name);
const std::string& threadName();

/// Emits one line; thread-safe. Prefer the EASYHPS_LOG macro.
void write(Level level, const std::string& message);

}  // namespace easyhps::log

#define EASYHPS_LOG(lvl, streamexpr)                           \
  do {                                                         \
    if (static_cast<int>(lvl) >=                               \
        static_cast<int>(::easyhps::log::level())) {           \
      std::ostringstream easyhps_log_os;                       \
      easyhps_log_os << streamexpr;                            \
      ::easyhps::log::write((lvl), easyhps_log_os.str());      \
    }                                                          \
  } while (false)

#define EASYHPS_LOG_DEBUG(s) EASYHPS_LOG(::easyhps::log::Level::kDebug, s)
#define EASYHPS_LOG_INFO(s) EASYHPS_LOG(::easyhps::log::Level::kInfo, s)
#define EASYHPS_LOG_WARN(s) EASYHPS_LOG(::easyhps::log::Level::kWarn, s)
#define EASYHPS_LOG_ERROR(s) EASYHPS_LOG(::easyhps::log::Level::kError, s)

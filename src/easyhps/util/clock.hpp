#pragma once
/// \file clock.hpp
/// Wall-clock stopwatch (real runtime) and virtual time (simulator).
///
/// The discrete-event simulator (`src/easyhps/sim`) measures everything in
/// `SimTime`: integer nanoseconds of virtual time.  Integer time plus stable
/// event ordering makes every simulated experiment bit-reproducible — a
/// design requirement recorded in DESIGN.md (decision 4).

#include <chrono>
#include <cstdint>

namespace easyhps {

/// Virtual time in nanoseconds.  Signed so durations subtract safely.
using SimTime = std::int64_t;

inline constexpr SimTime kSimNanosecond = 1;
inline constexpr SimTime kSimMicrosecond = 1000;
inline constexpr SimTime kSimMillisecond = 1000 * 1000;
inline constexpr SimTime kSimSecond = 1000LL * 1000 * 1000;

/// Converts virtual time to seconds for reporting.
constexpr double simToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSimSecond);
}

/// Simple steady-clock stopwatch used by the real runtime and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace easyhps

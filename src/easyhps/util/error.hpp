#pragma once
/// \file error.hpp
/// Error handling primitives for EasyHPS.
///
/// EasyHPS follows the C++ Core Guidelines: invariants and preconditions are
/// enforced with checked macros that throw a typed exception carrying the
/// failing expression and source location.  Runtime worker threads catch
/// `easyhps::Error` at thread boundaries and convert it into a fault event
/// so the fault-tolerance machinery can react (see `src/easyhps/fault`).

#include <stdexcept>
#include <string>

namespace easyhps {

/// Base exception for all EasyHPS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition / invariant (programming error).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Failure in the message-passing substrate (closed comm, bad rank...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// A received payload could not be decoded: truncated byte stream, bad
/// kind byte, malformed field.  Derives from CommError so legacy
/// catch(CommError) sites keep working, but receivers catch this type
/// specifically to count-and-drop the message instead of dying with the
/// rank (the wire-hardening contract: a corrupt payload is a transport
/// fault, not a crash).
class DecodeError : public CommError {
 public:
  explicit DecodeError(const std::string& what) : CommError(what) {}
};

/// A task exceeded its deadline or a worker was declared dead.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace easyhps

/// Precondition check (Core Guidelines I.6 `Expects`).  Always on.
#define EASYHPS_EXPECTS(expr)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::easyhps::detail::throwCheckFailure("precondition", #expr, __FILE__, \
                                           __LINE__, "");                   \
    }                                                                       \
  } while (false)

/// Postcondition / invariant check (Core Guidelines I.8 `Ensures`).
#define EASYHPS_ENSURES(expr)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::easyhps::detail::throwCheckFailure("postcondition", #expr, __FILE__, \
                                           __LINE__, "");                    \
    }                                                                        \
  } while (false)

/// General runtime check with a user message.
#define EASYHPS_CHECK(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::easyhps::detail::throwCheckFailure("check", #expr, __FILE__,  \
                                           __LINE__, (msg));          \
    }                                                                 \
  } while (false)

/// Debug-only precondition for per-cell hot paths (Window::set and
/// friends): enabled in Debug builds and sanitizer builds (the build
/// defines EASYHPS_ENABLE_DCHECK under EASYHPS_SANITIZE), compiled out in
/// Release so the DP inner loops pay no branch per cell.  Block- and
/// segment-granularity checks stay on EASYHPS_EXPECTS/EASYHPS_CHECK.
#if defined(EASYHPS_ENABLE_DCHECK) || !defined(NDEBUG)
#define EASYHPS_DCHECK_ENABLED 1
#define EASYHPS_DCHECK(expr) EASYHPS_EXPECTS(expr)
#else
#define EASYHPS_DCHECK_ENABLED 0
#define EASYHPS_DCHECK(expr) \
  do {                       \
  } while (false)
#endif

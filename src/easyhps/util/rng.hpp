#pragma once
/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Experiments must be reproducible across runs and across thread counts, so
/// EasyHPS never uses `std::random_device` or global RNG state.  Each
/// component derives its own stream from a master seed with `split()`, which
/// mixes a label into the state (SplitMix64 finalizer); two components with
/// different labels get statistically independent streams.

#include <cstdint>

namespace easyhps {

/// SplitMix64 — tiny, fast, passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** with SplitMix64 seeding; the library's workhorse RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 mixer(seed);
    for (auto& word : state_) {
      word = mixer.next();
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t nextU64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t nextBelow(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = nextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (low < threshold) {
        x = nextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent stream labelled by `label`.
  Rng split(std::uint64_t label) const {
    SplitMix64 mixer(state_[0] ^ (label * 0x9E3779B97F4A7C15ULL) ^ state_[3]);
    return Rng(mixer.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace easyhps

#include "easyhps/util/stats.hpp"

#include <sstream>

namespace easyhps {

double Histogram::quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) {
    peak = std::max(peak, c);
  }
  const double bucket_width =
      (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + static_cast<double>(i) * bucket_width;
    const auto bars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << left << ", " << left + bucket_width << ") "
       << std::string(bars, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace easyhps

#include "easyhps/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <mutex>

namespace easyhps::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::mutex g_write_mutex;

thread_local std::string t_thread_name = "?";

const char* levelName(Level level) {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void setLevel(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

void setThreadName(const std::string& name) { t_thread_name = name; }

const std::string& threadName() { return t_thread_name; }

void write(Level lvl, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%10.6f] %s [%s] %s\n", secs, levelName(lvl),
               t_thread_name.c_str(), message.c_str());
}

}  // namespace easyhps::log

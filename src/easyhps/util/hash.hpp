#pragma once
/// \file hash.hpp
/// Streaming canonical hashing for content-addressed keys.
///
/// `Hasher` folds a typed byte stream into a 128-bit digest: two
/// independent 64-bit FNV-1a lanes over the same stream, seeded with
/// different offset bases.  128 bits makes accidental collisions between
/// distinct cache keys a non-concern at any realistic cache size, while
/// the per-byte cost stays two multiplies — the keys hashed here (DP
/// problem payloads) are kilobytes, not gigabytes.
///
/// Canonicality rules (what makes two streams equal):
///  * every variable-length field is length-prefixed (`str`, `vec`), so
///    concatenation ambiguity ("ab"+"c" vs "a"+"bc") cannot alias;
///  * integers are folded by value through a fixed 8-byte little-endian
///    form, never by in-memory representation, so the digest is identical
///    across platforms and integer widths;
///  * callers open each record with `tag` (a domain-separation literal),
///    so streams of different kinds never collide by construction.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace easyhps::util {

/// 128-bit hash value; usable as a map key.
struct HashDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const HashDigest&, const HashDigest&) = default;

  /// Short hex form for logs ("1f3a…"); not reversible, just displayable.
  std::string hex() const {
    static const char* d = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (const std::uint64_t word : {hi, lo}) {
      for (int shift = 60; shift >= 0; shift -= 4) {
        out.push_back(d[(word >> shift) & 0xF]);
      }
    }
    return out;
  }
};

/// std::hash adapter so HashDigest keys drop into unordered_map.
struct HashDigestHasher {
  std::size_t operator()(const HashDigest& d) const {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9E3779B97F4A7C15ULL));
  }
};

class Hasher {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hi_ = (hi_ ^ p[i]) * kPrimeHi;
      lo_ = (lo_ ^ p[i]) * kPrimeLo;
    }
  }

  /// Folds an integral or enum value canonically (8-byte little-endian).
  template <typename T>
  void value(T v) {
    static_assert((std::is_integral_v<T> && !std::is_same_v<T, bool>) ||
                      std::is_same_v<T, bool> || std::is_enum_v<T>,
                  "Hasher::value takes integers/enums; use str/vec/bytes");
    std::uint64_t wide = 0;
    if constexpr (std::is_enum_v<T>) {
      wide = static_cast<std::uint64_t>(
          static_cast<std::make_unsigned_t<std::underlying_type_t<T>>>(v));
    } else if constexpr (std::is_same_v<T, bool>) {
      wide = v ? 1 : 0;
    } else {
      wide = static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
    }
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>((wide >> (8 * i)) & 0xFF);
    }
    bytes(buf, sizeof(buf));
  }

  void str(const std::string& s) {
    value<std::uint64_t>(s.size());
    bytes(s.data(), s.size());
  }

  /// Domain-separation literal opening a record ("easyhps.cache.v1", a
  /// problem kind, ...).  Same canonical form as str.
  void tag(const char* s) {
    const std::size_t n = std::strlen(s);
    value<std::uint64_t>(n);
    bytes(s, n);
  }

  /// Length-prefixed fold of a vector of integral values.
  template <typename T>
  void vec(const std::vector<T>& v) {
    value<std::uint64_t>(v.size());
    for (const T& x : v) {
      value(x);
    }
  }

  HashDigest digest() const { return HashDigest{hi_, lo_}; }

 private:
  // Lane 1: standard FNV-1a (offset basis + prime).  Lane 2: a distinct
  // offset and a distinct odd multiplier, so the lanes share no algebraic
  // structure beyond reading the same bytes.
  static constexpr std::uint64_t kPrimeHi = 1099511628211ULL;
  static constexpr std::uint64_t kPrimeLo = 0x9E3779B97F4A7C15ULL;
  std::uint64_t hi_ = 14695981039346656037ULL;
  std::uint64_t lo_ = 14695981039346656037ULL ^ 0xA24BAED4963EE407ULL;
};

}  // namespace easyhps::util

#pragma once
/// \file stats.hpp
/// Streaming statistics used by traces, benches and the load-balance report.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace easyhps {

/// Welford online mean/variance with min/max.  O(1) memory, numerically
/// stable, mergeable (needed to combine per-worker series).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (Chan et al. parallel variance).
  void merge(const OnlineStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// max/mean — the classic load-imbalance factor (1.0 = perfectly even).
  double imbalance() const {
    return (count_ == 0 || mean_ == 0.0) ? 0.0 : max_ / mean_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket linear histogram for latency-style distributions.
class Histogram {
 public:
  /// Buckets of width (hi-lo)/n over [lo, hi); outliers clamp to the ends.
  Histogram(double lo, double hi, std::size_t n)
      : lo_(lo), hi_(hi), counts_(n, 0) {}

  void add(double x) {
    const auto n = counts_.size();
    double t = (x - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(n));
    if (idx >= n) {
      idx = n - 1;
    }
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Approximate quantile from bucket boundaries, q in [0,1].
  double quantile(double q) const;

  /// Renders a compact ASCII bar chart (for bench output).
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace easyhps

#pragma once
/// \file concurrent.hpp
/// Thread-safe containers used by the worker pools.
///
/// The paper's worker pools (§V-A) are built from three shared structures:
/// a *computable sub-task stack*, a *finished sub-task stack* and an
/// *overtime queue*.  The stacks here are closable blocking containers: a
/// consumer blocked in `pop()` wakes with `std::nullopt` once the producer
/// calls `close()` and the container drains — that is how the runtime tears
/// its pools down (paper §V-B step i / §V-C step j).

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {

/// Closable blocking LIFO.  The paper stores computable sub-task ids in a
/// linked-list "stack"; LIFO order also gives better cache behaviour for
/// wavefront DAGs (recently enabled blocks touch recently written halos).
template <typename T>
class BlockingStack {
 public:
  /// Pushes one element and wakes one waiter.  Throws if closed.
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EASYHPS_CHECK(!closed_, "push on closed BlockingStack");
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an element is available or the stack is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.back());
    items_.pop_back();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.back());
    items_.pop_back();
    return value;
  }

  /// Drains every element currently queued (non-blocking).
  std::vector<T> drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  /// After close(), pushes throw and pops return nullopt once drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Closable blocking FIFO — used for mailboxes and result channels where
/// arrival order must be preserved.
template <typename T>
class BlockingQueue {
 public:
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EASYHPS_CHECK(!closed_, "push on closed BlockingQueue");
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Waits up to `timeout`; nullopt on timeout or on closed-and-empty.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace easyhps

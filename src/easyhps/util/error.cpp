#include "easyhps/util/error.hpp"

#include <sstream>

namespace easyhps::detail {

void throwCheckFailure(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "easyhps " << kind << " failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw LogicError(os.str());
}

}  // namespace easyhps::detail

#pragma once
/// \file ownership.hpp
/// Master-side ownership directory of the distributed block store.
///
/// The control plane's source of truth for *where each completed block's
/// cells live*: the rank whose ack registered the block, or rank 0 when
/// the block was spilled to (or only ever existed at) the master.  Assigns
/// consult it to tell a slave which peer to fetch each dependency halo
/// from; the locality policy consults it to steer tasks toward the rank
/// already owning the most dependency bytes.
///
/// Fault-tolerance interaction: when a sub-task times out and is
/// re-distributed, every entry owned by the slow rank is marked *suspect*
/// — peers are then pointed at the master (whose copy of the boundary
/// cells arrived with the acks) instead of at a rank that may never
/// answer.  The suspect owner is kept for job-end assembly, which in this
/// in-process substrate can still reach a slow-but-alive rank; a real
/// deployment would need replication to survive a truly dead one.
///
/// Not internally synchronized: the master guards it with the scheduler
/// mutex alongside the parse state it must stay consistent with.

#include <cstdint>
#include <unordered_map>

#include "easyhps/dag/pattern.hpp"

namespace easyhps::store {

class OwnershipDirectory {
 public:
  struct Entry {
    int owner = 0;          ///< rank whose store holds the block; 0 = master
    bool suspect = false;   ///< owner timed out; don't route peers to it
    bool resident = false;  ///< master's matrix holds the *full* block
  };

  /// Records a completed block.  A spill may have landed first (the slave
  /// evicted the block before its ack was processed); the master copy
  /// stays authoritative then, so the owner is not rewritten.
  void registerBlock(VertexId vertex, int owner) {
    Entry& e = entries_[vertex];
    if (!e.resident) {
      e.owner = owner;
    }
  }

  /// The block's cells (at least the boundary rows/cols) now live in the
  /// master matrix in full; peers and assembly can be served locally.
  void markResident(VertexId vertex) {
    Entry& e = entries_[vertex];
    e.owner = 0;
    e.resident = true;
  }

  /// Marks every block owned by `rank` suspect (timeout re-distribution).
  /// Returns how many entries were newly invalidated.
  std::int64_t invalidateRank(int rank) {
    std::int64_t n = 0;
    for (auto& [vertex, e] : entries_) {
      if (e.owner == rank && !e.suspect) {
        e.suspect = true;
        ++n;
      }
    }
    invalidations_ += n;
    return n;
  }

  /// Rank a *peer* should fetch this block's halo cells from; 0 routes the
  /// request to the master (unknown, spilled, resident, or suspect owner).
  int haloSource(VertexId vertex) const {
    auto it = entries_.find(vertex);
    if (it == entries_.end() || it->second.suspect) {
      return 0;
    }
    return it->second.owner;
  }

  /// Rank job-end assembly must pull the full block from; 0 = already at
  /// the master.  Suspect owners are still returned — they are the only
  /// place the interior cells exist.
  int assemblySource(VertexId vertex) const {
    auto it = entries_.find(vertex);
    return it == entries_.end() ? 0 : it->second.owner;
  }

  bool resident(VertexId vertex) const {
    auto it = entries_.find(vertex);
    return it != entries_.end() && it->second.resident;
  }

  std::int64_t invalidations() const { return invalidations_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<VertexId, Entry> entries_;
  std::int64_t invalidations_ = 0;
};

}  // namespace easyhps::store

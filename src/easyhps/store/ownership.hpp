#pragma once
/// \file ownership.hpp
/// Master-side ownership directory of the distributed block store.
///
/// The control plane's source of truth for *where each completed block's
/// cells live*: the rank whose ack registered the block, or rank 0 when
/// the block was spilled to (or only ever existed at) the master.  Assigns
/// consult it to tell a slave which peer to fetch each dependency halo
/// from; the locality policy consults it to steer tasks toward the rank
/// already owning the most dependency bytes.
///
/// Fault-tolerance interaction: when a sub-task times out and is
/// re-distributed, every entry owned by the slow rank is marked *suspect*
/// — peers are then pointed at the master (whose copy of the boundary
/// cells arrived with the acks) instead of at a rank that may never
/// answer.  The suspect owner is kept for job-end assembly, which in this
/// in-process substrate can still reach a slow-but-alive rank; a real
/// deployment would need replication to survive a truly dead one.
///
/// Not internally synchronized: the master guards it with the scheduler
/// mutex alongside the parse state it must stay consistent with.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "easyhps/dag/pattern.hpp"

namespace easyhps::store {

class OwnershipDirectory {
 public:
  struct Entry {
    int owner = 0;          ///< rank whose store holds the block; 0 = master
    bool suspect = false;   ///< owner timed out; don't route peers to it
    bool resident = false;  ///< master's matrix holds the *full* block
    std::uint64_t bytes = 0;  ///< block payload bytes pinned at the owner
  };

  /// Records a completed block (`bytes` = its payload size, for the
  /// per-rank occupancy accounting the memory-aware placement reads).  A
  /// spill may have landed first (the slave evicted the block before its
  /// ack was processed); the master copy stays authoritative then, so the
  /// owner is not rewritten.
  void registerBlock(VertexId vertex, int owner, std::uint64_t bytes = 0) {
    Entry& e = entries_[vertex];
    if (!e.resident) {
      creditOwner(e.owner, -static_cast<std::int64_t>(e.bytes));
      e.owner = owner;
      e.bytes = bytes;
      creditOwner(owner, static_cast<std::int64_t>(bytes));
    }
  }

  /// The block's cells (at least the boundary rows/cols) now live in the
  /// master matrix in full; peers and assembly can be served locally.
  /// Releases the owner's occupancy credit (a spill means the bytes left
  /// that rank's store).
  void markResident(VertexId vertex) {
    Entry& e = entries_[vertex];
    creditOwner(e.owner, -static_cast<std::int64_t>(e.bytes));
    e.bytes = 0;
    e.owner = 0;
    e.resident = true;
  }

  /// Marks every block owned by `rank` suspect (timeout re-distribution).
  /// Returns how many entries were newly invalidated.
  std::int64_t invalidateRank(int rank) {
    std::int64_t n = 0;
    for (auto& [vertex, e] : entries_) {
      if (e.owner == rank && !e.suspect) {
        e.suspect = true;
        ++n;
      }
    }
    invalidations_ += n;
    return n;
  }

  /// Rank a *peer* should fetch this block's halo cells from; 0 routes the
  /// request to the master (unknown, spilled, resident, or suspect owner).
  int haloSource(VertexId vertex) const {
    auto it = entries_.find(vertex);
    if (it == entries_.end() || it->second.suspect) {
      return 0;
    }
    return it->second.owner;
  }

  /// Rank job-end assembly must pull the full block from; 0 = already at
  /// the master.  Suspect owners are still returned — they are the only
  /// place the interior cells exist.
  int assemblySource(VertexId vertex) const {
    auto it = entries_.find(vertex);
    return it == entries_.end() ? 0 : it->second.owner;
  }

  bool resident(VertexId vertex) const {
    auto it = entries_.find(vertex);
    return it != entries_.end() && it->second.resident;
  }

  /// Block payload bytes currently pinned in `rank`'s store per this
  /// directory (excludes spilled/resident blocks).  The ECT policy's
  /// placement-time capacity check reads it as the "already used" part of
  /// the rank's budget.
  std::uint64_t bytesOwnedBy(int rank) const {
    return rank >= 1 && rank <= static_cast<int>(owned_bytes_.size())
               ? owned_bytes_[static_cast<std::size_t>(rank - 1)]
               : 0;
  }

  std::int64_t invalidations() const { return invalidations_; }
  std::size_t size() const { return entries_.size(); }

 private:
  void creditOwner(int rank, std::int64_t delta) {
    if (rank < 1 || delta == 0) {
      return;  // master-held bytes are not store occupancy
    }
    if (rank > static_cast<int>(owned_bytes_.size())) {
      owned_bytes_.resize(static_cast<std::size_t>(rank), 0);
    }
    auto& slot = owned_bytes_[static_cast<std::size_t>(rank - 1)];
    slot = static_cast<std::uint64_t>(static_cast<std::int64_t>(slot) + delta);
  }

  std::unordered_map<VertexId, Entry> entries_;
  std::vector<std::uint64_t> owned_bytes_;
  std::int64_t invalidations_ = 0;
};

}  // namespace easyhps::store

#pragma once
/// \file block_store.hpp
/// Per-rank block store — the data plane's storage layer.
///
/// With the control/data-plane split (DESIGN.md, "Control plane vs. data
/// plane") a slave *retains* every block it computes instead of shipping it
/// back through the master: peers fetch dependency halos straight from the
/// owning rank (`HaloRequest`/`HaloData`), and the master pulls full blocks
/// only at job end.  The store is the slave-side half of that contract:
///
///  * keyed by (job, vertex) so a request from a stale job can never be
///    answered with the wrong job's cells;
///  * LRU-evicting under a configurable byte budget — an evicted block is
///    returned to the caller, which *spills* it to the master so the data
///    stays reachable (owner falls back to rank 0);
///  * flushed at JobEnd: vertex ids restart at 0 every job, so blocks must
///    never survive a job boundary (the store analogue of the wire
///    protocol's stale-job-result discard).
///
/// Streaming pipeline (DESIGN.md, "Cross-level dataflow pipelining"):
/// stores hold only *finished* blocks.  A peer-served halo whose producer
/// is still in flight never reaches the store; it streams as
/// `HaloPartial` fragments instead, and the master only lists a rank as a
/// `HaloSource` once the producer's Result landed.  The byte budget is
/// validated up front (`RuntimeConfig::validate` rejects 0 — a store
/// that can't fit a block would silently defeat the spill machinery).
///
/// Thread-safe: the slave's compute loop inserts while its data-plane
/// thread serves peer requests concurrently.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"
#include "easyhps/runtime/job.hpp"

namespace easyhps::store {

/// One retained block (also the unit handed back on eviction).
struct StoredBlock {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  /// Content checksum recorded at put() time (wire::blockChecksum over the
  /// full block) — rides every spill/fetch reply so receivers verify the
  /// cells against what the block hashed to when it was *computed*, not
  /// merely what left the store.
  std::uint64_t checksum = 0;
  std::vector<Score> data;  ///< row-major over `rect`
};

/// Monotonic counters; snapshot under the store's lock.
struct BlockStoreStats {
  std::int64_t puts = 0;
  std::int64_t hits = 0;       ///< extract() found the block
  std::int64_t misses = 0;     ///< extract() on an absent/evicted block
  std::int64_t evictions = 0;  ///< blocks pushed out by the byte budget
  std::uint64_t spilledBytes = 0;  ///< payload bytes of evicted blocks
  std::uint64_t peakBytes = 0;     ///< high-water mark of bytesStored
};

class BlockStore {
 public:
  /// `byteBudget` caps the retained payload bytes; 0 = unlimited.
  explicit BlockStore(std::uint64_t byteBudget = 0)
      : byte_budget_(byteBudget) {}

  /// Retains a block and returns the blocks evicted (LRU-first) to get
  /// back under the byte budget.  The caller must spill every returned
  /// block to the master or its cells become unreachable.  A block larger
  /// than the whole budget is evicted immediately (it comes back in the
  /// result); correctness is preserved by the spill.
  /// `checksum` is the block's completion-time content checksum; it is
  /// returned with evictions and by checksumOf() so data leaving the store
  /// stays end-to-end verifiable.
  std::vector<StoredBlock> put(JobId job, VertexId vertex, const CellRect& rect,
                               std::vector<Score> data,
                               std::uint64_t checksum = 0);

  /// Copies sub-rectangle `sub` (must lie inside the stored rect) out of
  /// block (job, vertex); refreshes its LRU position.  nullopt = absent.
  std::optional<std::vector<Score>> extract(JobId job, VertexId vertex,
                                            const CellRect& sub);

  /// Like extract() but fills `out` in place (resized to the sub rect),
  /// reusing its capacity.  The data-plane serving loop calls this per
  /// request with a long-lived scratch buffer instead of allocating a
  /// fresh vector per halo/fetch.  Returns false when absent (`out` is
  /// left cleared).
  bool extractInto(JobId job, VertexId vertex, const CellRect& sub,
                   std::vector<Score>& out);

  bool contains(JobId job, VertexId vertex) const;

  /// Completion-time checksum recorded with the block; nullopt = absent.
  std::optional<std::uint64_t> checksumOf(JobId job, VertexId vertex) const;

  /// Drops every block of `job` (JobEnd flush).  Not counted as eviction.
  void clear(JobId job);
  void clearAll();

  std::uint64_t bytesStored() const;
  std::size_t blockCount() const;
  std::uint64_t byteBudget() const { return byte_budget_; }
  BlockStoreStats stats() const;

 private:
  struct Key {
    JobId job;
    VertexId vertex;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::int64_t>{}(k.job * 0x9e3779b97f4a7c15LL ^
                                       k.vertex);
    }
  };
  struct Entry {
    CellRect rect;
    std::uint64_t checksum = 0;
    std::vector<Score> data;
    std::list<Key>::iterator lruPos;
  };

  std::uint64_t entryBytes(const Entry& e) const {
    return static_cast<std::uint64_t>(e.data.size()) * sizeof(Score);
  }

  const std::uint64_t byte_budget_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> blocks_;
  std::list<Key> lru_;  ///< front = least recently used
  std::uint64_t bytes_stored_ = 0;
  BlockStoreStats stats_;
};

}  // namespace easyhps::store

#include "easyhps/store/block_store.hpp"

#include "easyhps/util/error.hpp"

namespace easyhps::store {

std::vector<StoredBlock> BlockStore::put(JobId job, VertexId vertex,
                                         const CellRect& rect,
                                         std::vector<Score> data,
                                         std::uint64_t checksum) {
  EASYHPS_EXPECTS(static_cast<std::int64_t>(data.size()) == rect.cellCount());
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{job, vertex};
  // Idempotent: a timed-out sub-task can be re-distributed back to the
  // rank that first computed it, which then stores the block twice.  The
  // recompute is deterministic, so replace (and refresh the LRU slot).
  if (auto it = blocks_.find(key); it != blocks_.end()) {
    bytes_stored_ -= entryBytes(it->second);
    lru_.erase(it->second.lruPos);
    blocks_.erase(it);
  }

  lru_.push_back(key);
  Entry entry{rect, checksum, std::move(data), std::prev(lru_.end())};
  bytes_stored_ += entryBytes(entry);
  blocks_.emplace(key, std::move(entry));
  ++stats_.puts;
  stats_.peakBytes = std::max(stats_.peakBytes, bytes_stored_);

  std::vector<StoredBlock> evicted;
  while (byte_budget_ > 0 && bytes_stored_ > byte_budget_ && !lru_.empty()) {
    const Key victim = lru_.front();
    lru_.pop_front();
    auto it = blocks_.find(victim);
    bytes_stored_ -= entryBytes(it->second);
    ++stats_.evictions;
    stats_.spilledBytes += entryBytes(it->second);
    evicted.push_back(StoredBlock{victim.job, victim.vertex, it->second.rect,
                                  it->second.checksum,
                                  std::move(it->second.data)});
    blocks_.erase(it);
  }
  return evicted;
}

std::optional<std::vector<Score>> BlockStore::extract(JobId job,
                                                      VertexId vertex,
                                                      const CellRect& sub) {
  std::vector<Score> out;
  if (!extractInto(job, vertex, sub, out)) {
    return std::nullopt;
  }
  return out;
}

bool BlockStore::extractInto(JobId job, VertexId vertex, const CellRect& sub,
                             std::vector<Score>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blocks_.find(Key{job, vertex});
  if (it == blocks_.end()) {
    ++stats_.misses;
    out.clear();
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  lru_.splice(lru_.end(), lru_, e.lruPos);  // refresh: now most recent
  const CellRect& r = e.rect;
  EASYHPS_EXPECTS(sub.row0 >= r.row0 && sub.rowEnd() <= r.rowEnd());
  EASYHPS_EXPECTS(sub.col0 >= r.col0 && sub.colEnd() <= r.colEnd());
  out.resize(static_cast<std::size_t>(sub.cellCount()));
  for (std::int64_t row = 0; row < sub.rows; ++row) {
    const auto srcOff = static_cast<std::size_t>(
        (sub.row0 + row - r.row0) * r.cols + (sub.col0 - r.col0));
    std::copy(e.data.begin() + static_cast<std::ptrdiff_t>(srcOff),
              e.data.begin() +
                  static_cast<std::ptrdiff_t>(srcOff + sub.cols),
              out.begin() + static_cast<std::ptrdiff_t>(row * sub.cols));
  }
  return true;
}

bool BlockStore::contains(JobId job, VertexId vertex) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.find(Key{job, vertex}) != blocks_.end();
}

std::optional<std::uint64_t> BlockStore::checksumOf(JobId job,
                                                    VertexId vertex) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blocks_.find(Key{job, vertex});
  if (it == blocks_.end()) {
    return std::nullopt;
  }
  return it->second.checksum;
}

void BlockStore::clear(JobId job) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.job == job) {
      bytes_stored_ -= entryBytes(it->second);
      lru_.erase(it->second.lruPos);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockStore::clearAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_.clear();
  lru_.clear();
  bytes_stored_ = 0;
}

std::uint64_t BlockStore::bytesStored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_stored_;
}

std::size_t BlockStore::blockCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

BlockStoreStats BlockStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace easyhps::store

#pragma once
/// \file mailbox.hpp
/// Per-rank message store with (source, tag) matching semantics.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <span>

#include "easyhps/msg/message.hpp"

namespace easyhps::msg {

/// Holds undelivered messages for one rank.  Receives match the *earliest*
/// message whose (source, tag) satisfies the requested pattern — the same
/// non-overtaking guarantee MPI gives for a (source, tag, comm) triple.
class Mailbox {
 public:
  /// Enqueues a message and wakes matching waiters.
  void deliver(Message message);

  /// Blocks until a matching message arrives or the mailbox closes.
  /// Returns nullopt only after close() with no matching message queued.
  std::optional<Message> recv(int source, int tag);

  /// Timed variant of recv(); nullopt on timeout as well.
  std::optional<Message> recvFor(int source, int tag,
                                 std::chrono::nanoseconds timeout);

  /// Blocks until a message from `source` matching *any* of `tags`
  /// arrives (earliest match wins, preserving non-overtaking order per
  /// pattern).  The control/data-plane split needs this: a rank's main
  /// loop must take control tags only, leaving data-plane tags for the
  /// rank's data thread.  Real MPI would model it as one MPI_Waitany over
  /// persistent receives.
  std::optional<Message> recvAnyOf(int source, std::span<const int> tags);

  /// Non-blocking matching receive.
  std::optional<Message> tryRecv(int source, int tag);

  /// Non-blocking probe: metadata of the first matching message, if any.
  std::optional<MessageInfo> probe(int source, int tag) const;

  /// Closes the mailbox: blocked receivers wake, future delivers are
  /// dropped silently (a rank that has exited no longer receives).
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Extracts the first matching message under the caller's lock.
  std::optional<Message> extractLocked(int source, int tag);
  std::optional<Message> extractAnyLocked(int source,
                                          std::span<const int> tags);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> messages_;
  bool closed_ = false;
};

}  // namespace easyhps::msg

#pragma once
/// \file mailbox.hpp
/// Per-rank message store with (source, tag) matching semantics.
///
/// Two implementations live behind one interface, selected by the
/// process-wide `MsgPath` at construction time:
///
///  * *fast* (default) — messages are sharded into per-(source, tag)
///    lanes.  A specific receive is an O(1) lane lookup instead of an
///    O(pending) scan over unrelated traffic; wildcard receives arbitrate
///    across matching lanes by the delivery sequence number, which
///    reproduces the exact earliest-match order of a single queue.
///    Waiters register their (source, tags) pattern and own a private
///    condition variable, so a delivery wakes only receivers it can
///    satisfy — a data-plane block never wakes a control-loop waiter.
///  * *legacy* (`MsgPath::kCopy`) — the seed's single deque + broadcast
///    condvar, kept verbatim as the semantics oracle for `bench_msg` and
///    the equivalence tests.
///
/// Both give the same guarantee: receives match the *earliest* message
/// whose (source, tag) satisfies the requested pattern — the
/// non-overtaking order MPI promises for a (source, tag, comm) triple.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "easyhps/msg/message.hpp"
#include "easyhps/msg/payload.hpp"

namespace easyhps::msg {

class Mailbox {
 public:
  Mailbox() : mode_(msgPath()) {}

  /// Enqueues a message and wakes matching waiters.
  void deliver(Message message);

  /// Blocks until a matching message arrives or the mailbox closes.
  /// Returns nullopt only after close() with no matching message queued.
  std::optional<Message> recv(int source, int tag);

  /// Timed variant of recv(); nullopt on timeout as well.
  std::optional<Message> recvFor(int source, int tag,
                                 std::chrono::nanoseconds timeout);

  /// Blocks until a message from `source` matching *any* of `tags`
  /// arrives (earliest match wins, preserving non-overtaking order per
  /// pattern).  The control/data-plane split needs this: a rank's main
  /// loop must take control tags only, leaving data-plane tags for the
  /// rank's data thread.  Real MPI would model it as one MPI_Waitany over
  /// persistent receives.
  std::optional<Message> recvAnyOf(int source, std::span<const int> tags);

  /// Non-blocking matching receive.
  std::optional<Message> tryRecv(int source, int tag);

  /// Non-blocking probe: metadata of the first matching message, if any.
  std::optional<MessageInfo> probe(int source, int tag) const;

  /// Closes the mailbox: blocked receivers wake, future delivers are
  /// dropped silently (a rank that has exited no longer receives).
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  /// One blocked receiver: its match pattern plus a private condvar so
  /// deliveries wake exactly the receivers they can satisfy.
  struct Waiter {
    std::condition_variable cv;
    int source = kAnySource;
    std::span<const int> tags;
  };

  static bool matchesPattern(int msgSource, int msgTag, int source,
                             std::span<const int> tags) {
    if (source != kAnySource && msgSource != source) {
      return false;
    }
    for (int t : tags) {
      if (t == kAnyTag || t == msgTag) {
        return true;
      }
    }
    return false;
  }

  static std::uint64_t laneKey(int source, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// Shared blocking core: nullopt deadline = wait forever.
  std::optional<Message> recvImpl(
      int source, std::span<const int> tags,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  // Fast path: lane bookkeeping under the caller's lock.
  std::optional<Message> takeFastLocked(int source, std::span<const int> tags);
  const Message* peekFastLocked(int source, std::span<const int> tags) const;

  // Legacy path: the seed's linear scan under the caller's lock.
  std::optional<Message> takeLegacyLocked(int source,
                                          std::span<const int> tags);

  const MsgPath mode_;
  mutable std::mutex mutex_;
  bool closed_ = false;

  // Legacy storage (MsgPath::kCopy).
  std::condition_variable cv_;
  std::deque<Message> messages_;

  // Fast storage: per-(source, tag) FIFO lanes + registered waiters.
  // Lanes are never erased — their number is bounded by ranks × live
  // tags, and keeping them avoids rehash churn on the hot path.
  std::unordered_map<std::uint64_t, std::deque<Message>> lanes_;
  std::vector<Waiter*> waiters_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace easyhps::msg

#pragma once
/// \file message.hpp
/// Wire message for the in-process message-passing substrate.
///
/// The substrate mirrors the MPI point-to-point model the paper's runtime is
/// built on (MPICH + POSIX threads): messages carry a source rank, a
/// destination rank, an integer tag and an opaque byte payload; receives
/// match on (source, tag) with wildcards.  Keeping MPI semantics means the
/// runtime layer (`src/easyhps/runtime`) would port to a real cluster by
/// replacing this transport alone — the substitution documented in
/// DESIGN.md.

#include <cstddef>
#include <cstdint>

#include "easyhps/msg/payload.hpp"

namespace easyhps::msg {

/// Wildcard source rank (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for internal collectives.
inline constexpr int kInternalTagBase = 1 << 28;

/// One point-to-point message.
struct Message {
  int source = 0;
  int dest = 0;
  int tag = 0;
  Payload payload;
  /// Mailbox arrival number, stamped at delivery.  The sharded mailbox
  /// arbitrates wildcard receives across lanes by it, reproducing the
  /// exact earliest-match order a single queue gives.
  std::uint64_t seq = 0;

  std::size_t sizeBytes() const { return payload.size(); }
};

/// Metadata returned by probe operations.
struct MessageInfo {
  int source = 0;
  int tag = 0;
  std::size_t sizeBytes = 0;
};

}  // namespace easyhps::msg

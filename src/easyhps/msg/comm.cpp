#include "easyhps/msg/comm.hpp"

#include <algorithm>

#include "easyhps/util/error.hpp"

namespace easyhps::msg {
namespace {

// Internal tag layout: collectives encode an epoch so that back-to-back
// collectives on the same ranks cannot cross-match.
constexpr int kBarrierTag = kInternalTagBase + 0;
constexpr int kBroadcastTag = kInternalTagBase + 1;
constexpr int kGatherTag = kInternalTagBase + 2;

int epochTag(int base, int epoch) { return base + 16 * epoch; }

}  // namespace

struct ClusterState::DelayedDelivery {
  std::chrono::steady_clock::time_point due;
  std::uint64_t seq = 0;  ///< tie-break so equal deadlines keep send order
  Message message;

  // std::push_heap builds a max-heap; invert so the *earliest* due wins.
  bool operator<(const DelayedDelivery& other) const {
    if (due != other.due) {
      return due > other.due;
    }
    return seq > other.seq;
  }
};

ClusterState::ClusterState(int size) {
  EASYHPS_EXPECTS(size > 0);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  link_bytes_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
}

ClusterState::~ClusterState() { stopTimer(); }

Mailbox& ClusterState::mailbox(int rank) {
  EASYHPS_EXPECTS(rank >= 0 && rank < size());
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void ClusterState::deliver(Message message) {
  EASYHPS_EXPECTS(message.dest >= 0 && message.dest < size());
  TransportDecision decision;
  if (const auto hook = transport_.load(std::memory_order_acquire);
      hook != nullptr) {
    decision = (*hook)(message);
  }
  if (decision.drop) {
    traffic_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (decision.duplicate) {
    // The copy shares heap buffers by reference count; on the kCopy path
    // deliverNow deep-copies it like any other message.  Delivered before
    // corruption is applied: corruption is per-copy, and the intact
    // duplicate exercises the receiver's accept-after-reject path.
    traffic_.duplicated.fetch_add(1, std::memory_order_relaxed);
    deliverNow(message);
  }
  if (decision.corrupt && !message.payload.empty()) {
    // One byte flipped at a deterministic (size-derived) offset.  The
    // payload is immutable/refcounted, so the corrupted copy is rebuilt
    // from the linearized bytes — shared buffers (a duplicate already
    // delivered, the sender's copy) stay intact.
    std::vector<std::byte> bytes = message.payload.linearize();
    const std::size_t pos =
        static_cast<std::size_t>(bytes.size() * 0x9E3779B97F4A7C15ULL %
                                 bytes.size());
    bytes[pos] ^= std::byte{0x2D};
    message.payload = Payload(std::move(bytes));
    traffic_.corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  if (decision.delay.count() > 0) {
    traffic_.delayed.fetch_add(1, std::memory_order_relaxed);
    deliverLater(std::move(message), decision.delay);
    return;
  }
  deliverNow(std::move(message));
}

void ClusterState::deliverLater(Message message,
                                std::chrono::nanoseconds delay) {
  std::lock_guard<std::mutex> lock(timer_mutex_);
  if (timer_stop_) {
    return;  // teardown already started: the message would be dropped anyway
  }
  DelayedDelivery item;
  item.due = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 delay);
  item.seq = timer_seq_++;
  item.message = std::move(message);
  timer_queue_.push_back(std::move(item));
  std::push_heap(timer_queue_.begin(), timer_queue_.end());
  if (!timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { timerLoop(); });
  }
  timer_cv_.notify_one();
}

void ClusterState::timerLoop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!timer_stop_) {
    if (timer_queue_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto due = timer_queue_.front().due;
    if (std::chrono::steady_clock::now() < due) {
      timer_cv_.wait_until(lock, due);
      continue;  // re-examine: a nearer delivery may have been queued
    }
    std::pop_heap(timer_queue_.begin(), timer_queue_.end());
    Message message = std::move(timer_queue_.back().message);
    timer_queue_.pop_back();
    lock.unlock();
    // A mailbox closed in the meantime drops the message silently — the
    // documented Mailbox contract, so late deliveries cannot crash
    // teardown.
    deliverNow(std::move(message));
    lock.lock();
  }
}

void ClusterState::stopTimer() {
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_stop_ = true;
    timer_queue_.clear();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) {
    timer_thread_.join();
  }
}

void ClusterState::deliverNow(Message message) {
  const std::size_t bytes = message.sizeBytes();
  traffic_.messages.fetch_add(1, std::memory_order_relaxed);
  traffic_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  link_bytes_[static_cast<std::size_t>(message.source * size() +
                                       message.dest)]
      .fetch_add(bytes, std::memory_order_relaxed);
  if (msgPath() == MsgPath::kCopy) {
    // Oracle semantics: model an MPI buffered send — the receiver gets a
    // fresh copy sharing no storage with the sender's buffer.
    message.payload = message.payload.deepCopy();
  } else if (bytes > 0) {
    traffic_.copiesAvoided.fetch_add(1, std::memory_order_relaxed);
    traffic_.zeroCopyBytes.fetch_add(message.payload.sharedBytes(),
                                     std::memory_order_relaxed);
  }
  mailbox(message.dest).deliver(std::move(message));
}

std::vector<std::uint64_t> ClusterState::linkBytesSnapshot() const {
  const auto n = static_cast<std::size_t>(size()) *
                 static_cast<std::size_t>(size());
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = link_bytes_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void ClusterState::closeAll() {
  for (auto& mb : mailboxes_) {
    mb->close();
  }
}

Comm::Comm(int rank, ClusterState* state) : rank_(rank), state_(state) {
  EASYHPS_EXPECTS(state != nullptr);
  EASYHPS_EXPECTS(rank >= 0 && rank < state->size());
}

void Comm::send(int dest, int tag, Payload payload) {
  EASYHPS_EXPECTS(tag >= 0 && tag < kInternalTagBase);
  Message m;
  m.source = rank_;
  m.dest = dest;
  m.tag = tag;
  m.payload = std::move(payload);
  state_->deliver(std::move(m));
}

Message Comm::recv(int source, int tag) {
  auto m = state_->mailbox(rank_).recv(source, tag);
  if (!m) {
    throw CommError("recv on closed mailbox (rank " + std::to_string(rank_) +
                    ")");
  }
  return std::move(*m);
}

Message Comm::recvTags(int source, std::initializer_list<int> tags) {
  auto m = state_->mailbox(rank_).recvAnyOf(
      source, std::span<const int>(tags.begin(), tags.size()));
  if (!m) {
    throw CommError("recv on closed mailbox (rank " + std::to_string(rank_) +
                    ")");
  }
  return std::move(*m);
}

std::optional<Message> Comm::recvFor(int source, int tag,
                                     std::chrono::nanoseconds timeout) {
  return state_->mailbox(rank_).recvFor(source, tag, timeout);
}

std::optional<Message> Comm::tryRecv(int source, int tag) {
  return state_->mailbox(rank_).tryRecv(source, tag);
}

std::optional<MessageInfo> Comm::probe(int source, int tag) const {
  return state_->mailbox(rank_).probe(source, tag);
}

TrafficSnapshot Comm::traffic() const {
  const TrafficStats& t = state_->traffic();
  TrafficSnapshot snap;
  snap.messages = t.messages.load();
  snap.bytes = t.bytes.load();
  snap.dropped = t.dropped.load();
  snap.duplicated = t.duplicated.load();
  snap.delayed = t.delayed.load();
  snap.corrupted = t.corrupted.load();
  snap.copiesAvoided = t.copiesAvoided.load();
  snap.zeroCopyBytes = t.zeroCopyBytes.load();
  snap.ranks = size();
  snap.linkBytes = state_->linkBytesSnapshot();
  return snap;
}

bool Comm::mailboxClosed() const {
  return state_->mailbox(rank_).closed();
}

void Comm::barrier() {
  // Dissemination barrier: log2(n) rounds of paired send/recv.  One empty
  // payload (inline storage, no heap) serves every round.
  const int n = size();
  const int tag = epochTag(kBarrierTag, barrier_epoch_ % 4);
  ++barrier_epoch_;
  const Payload empty;
  for (int distance = 1; distance < n; distance *= 2) {
    const int to = (rank_ + distance) % n;
    const int from = (rank_ - distance % n + n) % n;
    Message m;
    m.source = rank_;
    m.dest = to;
    m.tag = tag;
    m.payload = empty;
    state_->deliver(std::move(m));
    auto got = state_->mailbox(rank_).recv(from, tag);
    if (!got) {
      throw CommError("barrier interrupted by cluster shutdown");
    }
  }
}

void Comm::broadcast(int root, Payload& payload) {
  const int tag = epochTag(kBroadcastTag, collective_epoch_ % 4);
  ++collective_epoch_;
  // Binomial tree rooted at `root` (ranks rotated so root maps to 0).
  const int n = size();
  const int me = (rank_ - root + n) % n;
  if (me != 0) {
    // Receive from parent.
    int parent = me & (me - 1);  // clear lowest set bit
    auto got = state_->mailbox(rank_).recv((parent + root) % n, tag);
    if (!got) {
      throw CommError("broadcast interrupted by cluster shutdown");
    }
    payload = std::move(got->payload);
  }
  // Forward to children: me + 2^k for 2^k > me.  A Payload copy shares
  // heap buffers by reference count, so each forward costs at most the
  // inline head — never a heap byte copy.
  for (int bit = 1; bit < n; bit *= 2) {
    if ((me & (bit - 1)) != 0 || (me & bit) != 0) {
      continue;
    }
    const int child = me + bit;
    if (child >= n) {
      break;
    }
    Message m;
    m.source = rank_;
    m.dest = (child + root) % n;
    m.tag = tag;
    m.payload = payload;
    state_->deliver(std::move(m));
  }
}

std::vector<Payload> Comm::gather(int root, Payload payload) {
  const int tag = epochTag(kGatherTag, collective_epoch_ % 4);
  ++collective_epoch_;
  if (rank_ != root) {
    Message m;
    m.source = rank_;
    m.dest = root;
    m.tag = tag;
    m.payload = std::move(payload);
    state_->deliver(std::move(m));
    return {};
  }
  std::vector<Payload> result(static_cast<std::size_t>(size()));
  result[static_cast<std::size_t>(rank_)] = std::move(payload);
  for (int i = 0; i < size() - 1; ++i) {
    auto got = state_->mailbox(rank_).recv(kAnySource, tag);
    if (!got) {
      throw CommError("gather interrupted by cluster shutdown");
    }
    result[static_cast<std::size_t>(got->source)] = std::move(got->payload);
  }
  return result;
}

}  // namespace easyhps::msg

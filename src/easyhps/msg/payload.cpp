#include "easyhps/msg/payload.hpp"

#include <cstdlib>
#include <cstring>

namespace easyhps::msg {
namespace {

// EASYHPS_MSG_PATH=copy forces the seed transport semantics process-wide
// without a rebuild — the A/B switch bench_msg and the equivalence suite
// flip, mirroring EASYHPS_KERNEL_PATH.  Anything else (including unset)
// selects the zero-copy fast path.
MsgPath initialMsgPath() {
  const char* env = std::getenv("EASYHPS_MSG_PATH");
  if (env != nullptr && std::strcmp(env, "copy") == 0) {
    return MsgPath::kCopy;
  }
  return MsgPath::kFast;
}

// Relaxed is enough: the toggle is set before a cluster is constructed
// and read at encode/deliver time; it is a mode switch, not a
// synchronization point.
std::atomic<MsgPath> g_msg_path{initialMsgPath()};

}  // namespace

MsgPath msgPath() { return g_msg_path.load(std::memory_order_relaxed); }

void setMsgPath(MsgPath path) {
  g_msg_path.store(path, std::memory_order_relaxed);
}

}  // namespace easyhps::msg

#include "easyhps/msg/mailbox.hpp"

namespace easyhps::msg {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return;  // receiver already exited; drop like MPI_Cancel'd traffic
    }
    messages_.push_back(std::move(message));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::extractLocked(int source, int tag) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::extractAnyLocked(int source,
                                                 std::span<const int> tags) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    for (int tag : tags) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        messages_.erase(it);
        return m;
      }
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::recvAnyOf(int source,
                                          std::span<const int> tags) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extractAnyLocked(source, tags)) {
      return m;
    }
    if (closed_) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::recv(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extractLocked(source, tag)) {
      return m;
    }
    if (closed_) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::recvFor(int source, int tag,
                                        std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extractLocked(source, tag)) {
      return m;
    }
    if (closed_) {
      return std::nullopt;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return extractLocked(source, tag);  // final chance after wake
    }
  }
}

std::optional<Message> Mailbox::tryRecv(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return extractLocked(source, tag);
}

std::optional<MessageInfo> Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : messages_) {
    if (matches(m, source, tag)) {
      return MessageInfo{m.source, m.tag, m.sizeBytes()};
    }
  }
  return std::nullopt;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_.size();
}

}  // namespace easyhps::msg

#include "easyhps/msg/mailbox.hpp"

#include <algorithm>

namespace easyhps::msg {

void Mailbox::deliver(Message message) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    return;  // receiver already exited; drop like MPI_Cancel'd traffic
  }
  if (mode_ == MsgPath::kCopy) {
    messages_.push_back(std::move(message));
    lock.unlock();
    cv_.notify_all();
    return;
  }
  message.seq = next_seq_++;
  const int source = message.source;
  const int tag = message.tag;
  lanes_[laneKey(source, tag)].push_back(std::move(message));
  ++pending_;
  // Targeted wakeup: only receivers whose pattern this message satisfies.
  // All of them, not just one — a woken waiter may take a *different*
  // (earlier) message and return, and the next matching waiter must not
  // be left asleep with this one queued.
  for (Waiter* w : waiters_) {
    if (matchesPattern(source, tag, w->source, w->tags)) {
      w->cv.notify_one();
    }
  }
}

std::optional<Message> Mailbox::takeLegacyLocked(int source,
                                                 std::span<const int> tags) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    if (matchesPattern(it->source, it->tag, source, tags)) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::takeFastLocked(int source,
                                               std::span<const int> tags) {
  if (pending_ == 0) {
    return std::nullopt;
  }
  std::deque<Message>* best = nullptr;
  bool wildcard = source == kAnySource;
  for (int t : tags) {
    wildcard = wildcard || t == kAnyTag;
  }
  if (!wildcard) {
    // Fully specified pattern: direct lane lookups, no scan at all.
    for (int t : tags) {
      const auto it = lanes_.find(laneKey(source, t));
      if (it != lanes_.end() && !it->second.empty() &&
          (best == nullptr ||
           it->second.front().seq < best->front().seq)) {
        best = &it->second;
      }
    }
  } else {
    // Wildcard: arbitrate across matching lanes by arrival number — the
    // earliest matching message overall, exactly as a single queue scan
    // would find.  O(lanes), which is bounded by ranks × live tags, not
    // by the number of queued messages.
    for (auto& [key, lane] : lanes_) {
      if (lane.empty()) {
        continue;
      }
      const Message& front = lane.front();
      if (!matchesPattern(front.source, front.tag, source, tags)) {
        continue;
      }
      if (best == nullptr || front.seq < best->front().seq) {
        best = &lane;
      }
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  Message m = std::move(best->front());
  best->pop_front();
  --pending_;
  return m;
}

const Message* Mailbox::peekFastLocked(int source,
                                       std::span<const int> tags) const {
  const Message* best = nullptr;
  for (const auto& [key, lane] : lanes_) {
    if (lane.empty()) {
      continue;
    }
    const Message& front = lane.front();
    if (!matchesPattern(front.source, front.tag, source, tags)) {
      continue;
    }
    if (best == nullptr || front.seq < best->seq) {
      best = &front;
    }
  }
  return best;
}

std::optional<Message> Mailbox::recvImpl(
    int source, std::span<const int> tags,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (mode_ == MsgPath::kCopy) {
    for (;;) {
      if (auto m = takeLegacyLocked(source, tags)) {
        return m;
      }
      if (closed_) {
        return std::nullopt;
      }
      if (deadline) {
        if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout) {
          return takeLegacyLocked(source, tags);  // final chance after wake
        }
      } else {
        cv_.wait(lock);
      }
    }
  }

  if (auto m = takeFastLocked(source, tags)) {
    return m;
  }
  if (closed_) {
    return std::nullopt;
  }
  Waiter w;
  w.source = source;
  w.tags = tags;
  waiters_.push_back(&w);
  std::optional<Message> out;
  for (;;) {
    if (deadline) {
      if (w.cv.wait_until(lock, *deadline) == std::cv_status::timeout) {
        out = takeFastLocked(source, tags);  // final chance after wake
        break;
      }
    } else {
      w.cv.wait(lock);
    }
    if ((out = takeFastLocked(source, tags))) {
      break;
    }
    if (closed_) {
      break;
    }
  }
  waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &w));
  return out;
}

std::optional<Message> Mailbox::recv(int source, int tag) {
  const int tags[1] = {tag};
  return recvImpl(source, tags, std::nullopt);
}

std::optional<Message> Mailbox::recvFor(int source, int tag,
                                        std::chrono::nanoseconds timeout) {
  const int tags[1] = {tag};
  return recvImpl(source, tags, std::chrono::steady_clock::now() + timeout);
}

std::optional<Message> Mailbox::recvAnyOf(int source,
                                          std::span<const int> tags) {
  return recvImpl(source, tags, std::nullopt);
}

std::optional<Message> Mailbox::tryRecv(int source, int tag) {
  const int tags[1] = {tag};
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_ == MsgPath::kCopy ? takeLegacyLocked(source, tags)
                                 : takeFastLocked(source, tags);
}

std::optional<MessageInfo> Mailbox::probe(int source, int tag) const {
  const int tags[1] = {tag};
  std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == MsgPath::kCopy) {
    for (const auto& m : messages_) {
      if (matchesPattern(m.source, m.tag, source, tags)) {
        return MessageInfo{m.source, m.tag, m.sizeBytes()};
      }
    }
    return std::nullopt;
  }
  if (const Message* m = peekFastLocked(source, tags)) {
    return MessageInfo{m->source, m->tag, m->sizeBytes()};
  }
  return std::nullopt;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    for (Waiter* w : waiters_) {
      w->cv.notify_one();
    }
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_ == MsgPath::kCopy ? messages_.size() : pending_;
}

}  // namespace easyhps::msg

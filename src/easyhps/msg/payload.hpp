#pragma once
/// \file payload.hpp
/// Zero-copy message payload for the in-process substrate.
///
/// The seed transport shipped every payload as an owned
/// `std::vector<std::byte>`: one heap allocation per control message and a
/// full memcpy of every block/halo buffer on its way through the "wire".
/// `Payload` removes both costs while keeping the byte stream identical:
///
///  * a *head* — up to `kInlineCapacity` bytes stored inline (control
///    messages never touch the heap), spilling to a refcounted immutable
///    heap buffer when larger;
///  * an optional *body* — a refcounted view of a trailing buffer (the
///    Score cells of a block or halo) that moves between ranks by
///    reference count instead of memcpy.  `PayloadWriter::putVectorZeroCopy`
///    creates it; readers borrow it via `ByteReader`'s segmented view.
///
/// Logically a payload is still one flat byte sequence, head followed by
/// body: `linearize()` materializes it and is bit-identical to what the
/// copying serializer produces, which is what keeps `TrafficStats` byte
/// accounting and the wire format independent of the path taken.
///
/// Which path runs is a process-wide toggle (`MsgPath`), mirroring the
/// kernel layer's `KernelPath` A/B discipline: `kCopy` keeps the seed
/// semantics — copying serializer plus a deep copy at delivery, modelling
/// an MPI buffered send — as the oracle `bench_msg` measures against.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps::msg {

/// Which transport implementation the substrate uses, process-wide.
enum class MsgPath {
  kFast,  ///< inline/refcounted payloads, sharded mailboxes (default)
  kCopy,  ///< seed semantics: copying serializer, buffered-send deep copy,
          ///< single-deque mailbox (oracle / A-B baseline)
};

/// Process-wide message path; defaults to kFast, or kCopy when the process
/// started with EASYHPS_MSG_PATH=copy in the environment (no-rebuild A/B
/// switch, same discipline as EASYHPS_KERNEL_PATH).
MsgPath msgPath();
void setMsgPath(MsgPath path);

/// RAII path override for benches and the equivalence suite.  Flip it
/// before constructing the cluster: mailboxes capture their mode at
/// construction.
class ScopedMsgPath {
 public:
  explicit ScopedMsgPath(MsgPath path) : prev_(msgPath()) {
    setMsgPath(path);
  }
  ~ScopedMsgPath() { setMsgPath(prev_); }
  ScopedMsgPath(const ScopedMsgPath&) = delete;
  ScopedMsgPath& operator=(const ScopedMsgPath&) = delete;

 private:
  MsgPath prev_;
};

/// Immutable message payload: inline or refcounted head plus an optional
/// refcounted body segment.  Copies never duplicate heap bytes (shared
/// buffers bump a reference count); `deepCopy()` does, deliberately.
class Payload {
 public:
  /// Head bytes stored inline; chosen to cover every control-plane
  /// message (Idle/JobStart/JobEnd = 8 B, Assign headers, HaloRequest =
  /// 45 B, SlaveStats = 80 B spills — the largest fixed header under it).
  static constexpr std::size_t kInlineCapacity = 64;

  // User-provided (not `= default`) so `const Payload` default-initializes
  // without requiring the inline array to be zeroed.
  Payload() {}

  /// Implicit on purpose: every pre-existing call site hands a
  /// `std::vector<std::byte>` (ByteWriter::take(), test helpers).
  Payload(std::vector<std::byte> bytes) {
    if (bytes.size() <= kInlineCapacity) {
      inline_size_ = bytes.size();
      if (!bytes.empty()) {
        std::memcpy(inline_.data(), bytes.data(), bytes.size());
      }
    } else {
      heap_ = std::make_shared<const std::vector<std::byte>>(
          std::move(bytes));
    }
  }

  std::span<const std::byte> head() const {
    if (heap_ != nullptr) {
      return {heap_->data(), heap_->size()};
    }
    return {inline_.data(), inline_size_};
  }

  std::span<const std::byte> body() const {
    return {body_ptr_, body_size_};
  }

  /// Keepalive of the body segment; readers that borrow a view of the
  /// body copy this so the cells outlive the message.
  const std::shared_ptr<const void>& bodyOwner() const {
    return body_owner_;
  }

  std::size_t size() const { return head().size() + body_size_; }
  bool empty() const { return size() == 0; }

  /// Bytes that cross the wire by reference count instead of memcpy —
  /// the refcounted heap head plus the body segment.  Inline bytes are
  /// excluded: they are copied (cheaply) with the message struct.
  std::size_t sharedBytes() const {
    return (heap_ != nullptr ? heap_->size() : 0) + body_size_;
  }

  /// The logical byte stream, head followed by body.  Bit-identical to
  /// the copying serializer's output for the same writes.
  std::vector<std::byte> linearize() const {
    std::vector<std::byte> out;
    out.reserve(size());
    const auto h = head();
    out.insert(out.end(), h.begin(), h.end());
    out.insert(out.end(), body_ptr_, body_ptr_ + body_size_);
    return out;
  }

  /// Fresh owned copy sharing no buffers with this payload — the MPI
  /// buffered-send model the kCopy oracle applies at delivery.
  Payload deepCopy() const { return Payload(linearize()); }

 private:
  friend class PayloadWriter;

  std::array<std::byte, kInlineCapacity> inline_;
  std::size_t inline_size_ = 0;
  std::shared_ptr<const std::vector<std::byte>> heap_;

  std::shared_ptr<const void> body_owner_;
  const std::byte* body_ptr_ = nullptr;
  std::size_t body_size_ = 0;
};

/// Serializer producing a `Payload` directly: fixed-size fields accumulate
/// in the (inline-first) head, and one trailing vector may become the
/// refcounted body via `putVectorZeroCopy` — no byte of it is copied on
/// the fast path.  Under `MsgPath::kCopy` the same calls degrade to the
/// plain copying serializer, so encoders are path-agnostic and the byte
/// stream is identical either way.
class PayloadWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PayloadWriter::put requires a trivially copyable type");
    append(&value, sizeof(T));
  }

  template <typename T>
  void putVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PayloadWriter::putVector requires trivially copyable T");
    put<std::uint64_t>(v.size());
    append(v.data(), v.size() * sizeof(T));
  }

  /// Same byte stream as putVector (count prefix + raw elements), but the
  /// elements become the payload's refcounted body instead of being
  /// copied.  The body is the trailing segment, so this must be the final
  /// write; small vectors stay in the head (a shared_ptr per 16-byte halo
  /// sliver would cost more than the memcpy it saves).
  template <typename T>
  void putVectorZeroCopy(std::vector<T> v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PayloadWriter::putVectorZeroCopy requires trivially "
                  "copyable T");
    put<std::uint64_t>(v.size());
    const std::size_t bytes = v.size() * sizeof(T);
    if (bytes > Payload::kInlineCapacity && msgPath() == MsgPath::kFast) {
      auto owner = std::make_shared<const std::vector<T>>(std::move(v));
      payload_.body_ptr_ = reinterpret_cast<const std::byte*>(owner->data());
      payload_.body_size_ = bytes;
      payload_.body_owner_ = std::move(owner);
      sealed_ = true;
    } else {
      append(v.data(), bytes);
    }
  }

  Payload take() && {
    if (!spill_.empty()) {
      payload_.heap_ = std::make_shared<const std::vector<std::byte>>(
          std::move(spill_));
      payload_.inline_size_ = 0;
    } else {
      payload_.inline_ = inline_;
      payload_.inline_size_ = inline_size_;
    }
    return std::move(payload_);
  }

 private:
  void append(const void* src, std::size_t n) {
    EASYHPS_EXPECTS(!sealed_);  // the zero-copy body must be the last write
    if (n == 0) {
      return;
    }
    if (spill_.empty() && inline_size_ + n <= Payload::kInlineCapacity) {
      std::memcpy(inline_.data() + inline_size_, src, n);
      inline_size_ += n;
      return;
    }
    if (spill_.empty()) {
      spill_.assign(inline_.data(), inline_.data() + inline_size_);
      inline_size_ = 0;
    }
    const auto offset = spill_.size();
    spill_.resize(offset + n);
    std::memcpy(spill_.data() + offset, src, n);
  }

  Payload payload_;
  std::array<std::byte, Payload::kInlineCapacity> inline_;
  std::size_t inline_size_ = 0;
  std::vector<std::byte> spill_;
  bool sealed_ = false;
};

}  // namespace easyhps::msg

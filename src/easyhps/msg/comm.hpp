#pragma once
/// \file comm.hpp
/// Communicator bound to one rank of an in-process cluster.
///
/// `Comm` exposes the subset of MPI the EasyHPS runtime needs: blocking
/// matched send/recv, probe, barrier, broadcast and gather.  Collectives are
/// implemented *on top of* point-to-point messages with reserved tags, just
/// as a minimal MPI layer would be, so their costs are visible to the
/// substrate's traffic statistics.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "easyhps/msg/mailbox.hpp"
#include "easyhps/msg/message.hpp"
#include "easyhps/msg/payload.hpp"

namespace easyhps::msg {

/// Aggregate traffic counters for one cluster run.
struct TrafficStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> dropped{0};
  /// Chaos-transport outcomes: extra copies delivered and deliveries that
  /// were held back by an injected latency (see TransportFn).
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};
  /// Deliveries whose payload had a byte flipped in transit (corruption
  /// chaos).  The message is still delivered — detection is the
  /// receiver's job, via the wire layer's end-to-end checksums.
  std::atomic<std::uint64_t> corrupted{0};
  /// Deliveries that skipped the buffered-send copy the kCopy oracle
  /// performs (every non-empty fast-path message), and the bytes that
  /// moved by reference count instead of memcpy.  `bytes` stays the
  /// logical payload size on both paths — these two only record how the
  /// bytes travelled.
  std::atomic<std::uint64_t> copiesAvoided{0};
  std::atomic<std::uint64_t> zeroCopyBytes{0};
};

/// Point-in-time copy of the cluster traffic counters.  Differencing two
/// snapshots yields per-interval (e.g. per-job) message/byte counts.
struct TrafficSnapshot {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t copiesAvoided = 0;
  std::uint64_t zeroCopyBytes = 0;

  /// Per-link byte totals, indexed `source * ranks + dest` — the data the
  /// control/data-plane split is judged by: bytes on links touching rank 0
  /// went via the master, the rest moved peer-to-peer.
  int ranks = 0;
  std::vector<std::uint64_t> linkBytes;

  std::uint64_t linkAt(int source, int dest) const {
    return linkBytes[static_cast<std::size_t>(source * ranks + dest)];
  }

  /// Total bytes on links with `rank` as source or destination.
  std::uint64_t bytesTouching(int rank) const {
    std::uint64_t sum = 0;
    for (int other = 0; other < ranks; ++other) {
      sum += linkAt(rank, other) + linkAt(other, rank);
    }
    return sum;  // self-links are zero in this substrate, no double count
  }
};

/// Optional transport fault hook: return true to *drop* the message.  Used
/// by fault-tolerance tests to simulate lost traffic / dead slaves.
using DropFn = std::function<bool(const Message&)>;

/// What the transport hook decided for one message.  Default-constructed
/// means "deliver normally".  `duplicate` delivers an extra copy
/// immediately (before the original); `delay > 0` holds the original back
/// on a timer thread; `corrupt` flips one payload byte before delivery
/// (the duplicate, if any, is delivered intact — corruption is per-copy
/// in a real network, and the clean duplicate exercises the receiver's
/// accept-after-reject path).  Drop wins over all.
struct TransportDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::chrono::nanoseconds delay{0};
};

/// Generalized transport fault hook (chaos layer): inspects a message and
/// decides drop / duplicate / delay.  DropFn is the boolean special case.
using TransportFn = std::function<TransportDecision(const Message&)>;

/// Shared state of an in-process cluster (one mailbox per rank).
class ClusterState {
 public:
  explicit ClusterState(int size);
  ~ClusterState();

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank);
  const TrafficStats& traffic() const { return traffic_; }

  /// Installs a transport fault hook; pass nullptr to clear.  Safe against
  /// concurrent sends: the hot path reads one atomic pointer (a send
  /// racing an install sees either the old or the new hook, never a torn
  /// one), and superseded hooks are retired to a list that lives as long
  /// as the cluster, so an in-flight call can never dangle.  Installs are
  /// rare (test setup, fault-plan toggles), so the retire list stays tiny.
  void setTransportFn(TransportFn fn) {
    std::lock_guard<std::mutex> lock(transport_install_mutex_);
    const TransportFn* next = nullptr;
    if (fn) {
      transport_retired_.push_back(
          std::make_unique<const TransportFn>(std::move(fn)));
      next = transport_retired_.back().get();
    }
    transport_.store(next, std::memory_order_release);
  }

  /// Boolean special case kept for the existing fault-tolerance tests.
  void setDropFn(DropFn fn) {
    if (!fn) {
      setTransportFn(nullptr);
      return;
    }
    setTransportFn([drop = std::move(fn)](const Message& m) {
      TransportDecision d;
      d.drop = drop(m);
      return d;
    });
  }

  /// Routes a message to its destination mailbox (the "network"),
  /// applying the installed transport hook first.
  void deliver(Message message);

  /// Copy of the per-link byte counters (source * size + dest).
  std::vector<std::uint64_t> linkBytesSnapshot() const;

  /// Closes every mailbox (cluster teardown).  Delayed deliveries still
  /// pending fire into closed mailboxes, which drop them silently; the
  /// timer thread itself is joined by the destructor.
  void closeAll();

 private:
  struct DelayedDelivery;

  /// The actual routing step: counting, path semantics, mailbox handoff.
  void deliverNow(Message message);
  /// Hands the message to the (lazily started) delay-timer thread.
  void deliverLater(Message message, std::chrono::nanoseconds delay);
  void timerLoop();
  void stopTimer();

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficStats traffic_;
  /// Delivered bytes per (source, dest) link, indexed source * size + dest.
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_bytes_;
  std::atomic<const TransportFn*> transport_{nullptr};
  std::mutex transport_install_mutex_;  ///< serializes installs
  std::vector<std::unique_ptr<const TransportFn>> transport_retired_;

  // Delayed-delivery timer (only materializes when a hook asks for delay).
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<DelayedDelivery> timer_queue_;  ///< min-heap by due time
  std::uint64_t timer_seq_ = 0;
  std::thread timer_thread_;
  bool timer_stop_ = false;
};

/// Rank-local handle; cheap to copy within the owning rank's thread.
class Comm {
 public:
  Comm(int rank, ClusterState* state);

  int rank() const { return rank_; }
  int size() const { return state_->size(); }

  /// Blocking send (buffered: always completes immediately in-process).
  /// Accepts a Payload or, via its implicit conversion, a plain byte
  /// vector.  On the fast path the buffer moves to the receiver without
  /// a copy; the kCopy oracle deep-copies at delivery instead.
  void send(int dest, int tag, Payload payload);

  /// Blocking matched receive; throws CommError if the cluster closed.
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Blocking receive matching any tag in `tags` from `source`; throws
  /// CommError if the cluster closed.  Lets a rank's control loop listen
  /// to its control tags while a sibling thread owns the data-plane tags.
  Message recvTags(int source, std::initializer_list<int> tags);

  /// Timed receive; nullopt on timeout.
  std::optional<Message> recvFor(int source, int tag,
                                 std::chrono::nanoseconds timeout);

  /// Non-blocking receive.
  std::optional<Message> tryRecv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe.
  std::optional<MessageInfo> probe(int source = kAnySource,
                                   int tag = kAnyTag) const;

  /// Snapshot of the cluster-wide traffic counters (all ranks).
  TrafficSnapshot traffic() const;

  /// True once the cluster shut this rank's mailbox (abort or teardown).
  /// Pollers using recvFor must check this: a closed mailbox returns
  /// nullopt immediately, which is otherwise indistinguishable from a
  /// timeout.
  bool mailboxClosed() const;

  /// Dissemination barrier over point-to-point messages.  Rounds reuse
  /// one preallocated empty payload (inline storage: no allocation per
  /// round or per rank).
  void barrier();

  /// Broadcast from `root`; every rank passes its buffer, non-roots get it
  /// replaced.  Forwarding to children shares the buffer by reference
  /// count (and moves it outright to the last child) instead of copying
  /// the bytes once per subtree.
  void broadcast(int root, Payload& payload);

  /// Gather to `root`: returns size() payloads at root (indexed by rank),
  /// empty vector elsewhere.  Contributions move end-to-end; no per-rank
  /// byte copy.
  std::vector<Payload> gather(int root, Payload payload);

 private:
  int rank_;
  ClusterState* state_;
  int barrier_epoch_ = 0;
  int collective_epoch_ = 0;
};

}  // namespace easyhps::msg

#pragma once
/// \file cluster.hpp
/// In-process cluster harness: runs N ranks, each on its own thread.
///
/// This is the stand-in for `mpirun`: `Cluster::run(n, fn)` spawns `n`
/// threads, hands each a `Comm` bound to its rank, and joins them.  An
/// exception escaping any rank aborts the cluster (mailboxes close, blocked
/// receives wake) and is rethrown to the caller — matching the
/// fail-fast behaviour of an MPI job where one rank calling MPI_Abort kills
/// the world.

#include <functional>
#include <string>

#include "easyhps/msg/comm.hpp"

namespace easyhps::msg {

/// Per-run report returned by Cluster::run.  Taken after every rank has
/// joined, so the per-link matrix is a consistent final tally.
struct ClusterReport {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  /// Chaos-transport outcomes (zero unless a TransportFn injects faults).
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  /// Zero-copy transport counters (see TrafficStats): deliveries that
  /// skipped the buffered-send copy, and bytes moved by reference count.
  /// Both zero under MsgPath::kCopy.
  std::uint64_t copiesAvoided = 0;
  std::uint64_t zeroCopyBytes = 0;

  /// Per-link byte totals, indexed `source * ranks + dest` (see
  /// TrafficSnapshot for the mid-run equivalent).
  int ranks = 0;
  std::vector<std::uint64_t> linkBytes;

  std::uint64_t linkAt(int source, int dest) const {
    return linkBytes[static_cast<std::size_t>(source * ranks + dest)];
  }

  /// Total bytes on links with `rank` as source or destination.
  std::uint64_t bytesTouching(int rank) const {
    std::uint64_t sum = 0;
    for (int other = 0; other < ranks; ++other) {
      sum += linkAt(rank, other) + linkAt(other, rank);
    }
    return sum;
  }
};

class Cluster {
 public:
  using RankMain = std::function<void(Comm&)>;

  /// Runs `main` on `size` ranks; blocks until all ranks return.
  /// `dropFn` (optional) injects transport faults.
  /// Throws the first rank exception encountered (by rank order).
  static ClusterReport run(int size, const RankMain& main,
                           DropFn dropFn = nullptr);

  /// Same, with the generalized drop/duplicate/delay hook (chaos layer).
  static ClusterReport run(int size, const RankMain& main,
                           TransportFn transportFn);
};

}  // namespace easyhps::msg

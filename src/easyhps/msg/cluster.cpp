#include "easyhps/msg/cluster.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "easyhps/util/error.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps::msg {

ClusterReport Cluster::run(int size, const RankMain& main, DropFn dropFn) {
  TransportFn transport;
  if (dropFn) {
    transport = [drop = std::move(dropFn)](const Message& m) {
      TransportDecision d;
      d.drop = drop(m);
      return d;
    };
  }
  return run(size, main, std::move(transport));
}

ClusterReport Cluster::run(int size, const RankMain& main,
                           TransportFn transportFn) {
  EASYHPS_EXPECTS(size > 0);
  EASYHPS_EXPECTS(main != nullptr);

  ClusterState state(size);
  if (transportFn) {
    state.setTransportFn(std::move(transportFn));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  {
    std::vector<std::jthread> ranks;
    ranks.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      ranks.emplace_back([&, r] {
        log::setThreadName("rank-" + std::to_string(r));
        Comm comm(r, &state);
        try {
          main(comm);
        } catch (const std::exception& ex) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          EASYHPS_LOG_WARN("rank " << r << " failed ("
                                   << ex.what() << "); aborting cluster");
          state.closeAll();  // wake every blocked recv so ranks can exit
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          EASYHPS_LOG_WARN("rank " << r << " failed; aborting cluster");
          state.closeAll();  // wake every blocked recv so ranks can exit
        }
      });
    }
  }  // join

  state.closeAll();
  for (auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  ClusterReport report;
  report.messages = state.traffic().messages.load();
  report.bytes = state.traffic().bytes.load();
  report.dropped = state.traffic().dropped.load();
  report.duplicated = state.traffic().duplicated.load();
  report.delayed = state.traffic().delayed.load();
  report.copiesAvoided = state.traffic().copiesAvoided.load();
  report.zeroCopyBytes = state.traffic().zeroCopyBytes.load();
  report.ranks = size;
  report.linkBytes = state.linkBytesSnapshot();
  return report;
}

}  // namespace easyhps::msg

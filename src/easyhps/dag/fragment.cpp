#include "easyhps/dag/fragment.hpp"

#include <algorithm>

namespace easyhps {

CellRect intersectRects(const CellRect& a, const CellRect& b) {
  const std::int64_t r0 = std::max(a.row0, b.row0);
  const std::int64_t c0 = std::max(a.col0, b.col0);
  const std::int64_t r1 = std::min(a.rowEnd(), b.rowEnd());
  const std::int64_t c1 = std::min(a.colEnd(), b.colEnd());
  if (r1 <= r0 || c1 <= c0) return {};
  return {r0, c0, r1 - r0, c1 - c0};
}

void subtractRect(const CellRect& a, const CellRect& b,
                  std::vector<CellRect>& out) {
  const CellRect inter = intersectRects(a, b);
  if (inter.cellCount() == 0) {
    if (a.cellCount() > 0) out.push_back(a);
    return;
  }
  // Slice `a` into the band above the hole, the band below it, and the
  // left/right remainders of the middle band.
  if (inter.row0 > a.row0) {
    out.push_back({a.row0, a.col0, inter.row0 - a.row0, a.cols});
  }
  if (inter.rowEnd() < a.rowEnd()) {
    out.push_back({inter.rowEnd(), a.col0, a.rowEnd() - inter.rowEnd(),
                   a.cols});
  }
  if (inter.col0 > a.col0) {
    out.push_back({inter.row0, a.col0, inter.rows, inter.col0 - a.col0});
  }
  if (inter.colEnd() < a.colEnd()) {
    out.push_back({inter.row0, inter.colEnd(), inter.rows,
                   a.colEnd() - inter.colEnd()});
  }
}

std::vector<CellRect> externalSegments(const std::vector<CellRect>& reads,
                                       const CellRect& home) {
  std::vector<CellRect> out;
  for (const CellRect& r : reads) {
    subtractRect(r, home, out);
  }
  return out;
}

CoverageSplit partitionByCoverage(const CellRect& piece,
                                  const std::vector<CellRect>& validRects) {
  CoverageSplit split;
  if (piece.cellCount() == 0) return split;
  std::vector<CellRect> pending{piece};
  std::vector<CellRect> next;
  for (const CellRect& valid : validRects) {
    next.clear();
    for (const CellRect& p : pending) {
      const CellRect inter = intersectRects(p, valid);
      if (inter.cellCount() > 0) split.covered.push_back(inter);
      subtractRect(p, valid, next);
    }
    pending.swap(next);
    if (pending.empty()) break;
  }
  split.pending = std::move(pending);
  return split;
}

void HaloFragmentTracker::expect(const CellRect& rect) {
  if (rect.cellCount() == 0) return;
  outstanding_.push_back(rect);
  expected_cells_ += rect.cellCount();
}

bool HaloFragmentTracker::blocked(const CellRect& rect) const {
  for (const CellRect& o : outstanding_) {
    if (intersectRects(o, rect).cellCount() > 0) return true;
  }
  return false;
}

std::vector<CellRect> HaloFragmentTracker::intersectOutstanding(
    const CellRect& rect) const {
  std::vector<CellRect> pieces;
  for (const CellRect& o : outstanding_) {
    const CellRect inter = intersectRects(o, rect);
    if (inter.cellCount() > 0) pieces.push_back(inter);
  }
  return pieces;
}

bool HaloFragmentTracker::fill(const CellRect& rect) {
  if (rect.cellCount() == 0 || outstanding_.empty()) return false;
  std::vector<CellRect> next;
  next.reserve(outstanding_.size());
  bool grew = false;
  for (const CellRect& o : outstanding_) {
    if (intersectRects(o, rect).cellCount() == 0) {
      next.push_back(o);
      continue;
    }
    grew = true;
    subtractRect(o, rect, next);
  }
  outstanding_.swap(next);
  return grew;
}

std::int64_t HaloFragmentTracker::outstandingCells() const {
  std::int64_t cells = 0;
  for (const CellRect& o : outstanding_) cells += o.cellCount();
  return cells;
}

double HaloFragmentTracker::progress() const {
  if (expected_cells_ == 0) return 1.0;
  const double missing = static_cast<double>(outstandingCells());
  return 1.0 - missing / static_cast<double>(expected_cells_);
}

}  // namespace easyhps

#pragma once
/// \file parse_state.hpp
/// Runtime DAG parsing (paper §IV-E, Fig 8).
///
/// "Parsing" the DAG Pattern Model is incremental topological sorting: a
/// vertex is *computable* when it has no unfinished predecessor; finishing a
/// vertex "removes it with its connecting edges", possibly exposing new
/// computable vertices.  `DagParseState` implements that with remaining
/// predecessor counters instead of physical edge removal.
///
/// finish() is idempotent by design: the fault-tolerance path can deliver
/// the same sub-task result twice (a timed-out slave may still reply after
/// the task was re-distributed), and the second delivery must be a no-op.

#include <cstdint>
#include <vector>

#include "easyhps/dag/pattern.hpp"

namespace easyhps {

class DagParseState {
 public:
  explicit DagParseState(const DagPattern& dag);

  /// Vertices computable before anything finished (DAG sources).
  std::vector<VertexId> initiallyComputable() const;

  /// Marks `v` finished; returns the vertices that just became computable.
  /// Finishing an already-finished vertex returns an empty list.
  ///
  /// `allowPendingPreds` is the streamed-completion path (cross-level
  /// pipelining, runtime/pipeline.hpp): a vertex fired early off halo
  /// fragments can complete while some precedence predecessors are still
  /// in flight.  Its data dependencies were satisfied cell-by-cell when it
  /// computed, so finishing it with pending predecessor *counters* is
  /// sound; the counters keep draining as those predecessors finish, and
  /// the `finished_` guard below keeps it from being re-announced.
  std::vector<VertexId> finish(VertexId v, bool allowPendingPreds = false);

  /// Unfinished predecessor count (fragment-eligibility bookkeeping).
  std::int64_t remainingPreds(VertexId v) const {
    EASYHPS_EXPECTS(v >= 0 && v < vertexCount());
    return remaining_preds_[static_cast<std::size_t>(v)];
  }

  bool isFinished(VertexId v) const {
    EASYHPS_EXPECTS(v >= 0 && v < vertexCount());
    return finished_[static_cast<std::size_t>(v)];
  }

  std::int64_t vertexCount() const { return dag_->vertexCount(); }
  std::int64_t finishedCount() const { return finished_count_; }
  bool allDone() const { return finished_count_ == vertexCount(); }

  /// Restores the initial state (used when a slave re-runs a sub-task DAG).
  void reset();

 private:
  const DagPattern* dag_;
  std::vector<std::int64_t> remaining_preds_;
  std::vector<bool> finished_;
  std::int64_t finished_count_ = 0;
};

}  // namespace easyhps

#include "easyhps/dag/library.hpp"

namespace easyhps {
namespace {

/// Shared scaffolding: enumerate active blocks, number them, wire edges.
PartitionedDag buildFromPreds(const BlockGrid& grid, PatternKind kind,
                              const PredsFn& topoPreds,
                              const PredsFn& dataPreds,
                              const ActiveFn& activeFn) {
  const std::int64_t blocks = grid.blockCount();
  std::vector<VertexId> blockToVertex(static_cast<std::size_t>(blocks), -1);
  std::vector<BlockCoord> coords;
  for (std::int64_t bi = 0; bi < grid.gridRows(); ++bi) {
    for (std::int64_t bj = 0; bj < grid.gridCols(); ++bj) {
      if (activeFn && !activeFn(bi, bj)) {
        continue;
      }
      blockToVertex[static_cast<std::size_t>(grid.linearId(bi, bj))] =
          static_cast<VertexId>(coords.size());
      coords.push_back(BlockCoord{bi, bj});
    }
  }

  auto vertexAt = [&](std::int64_t bi, std::int64_t bj) -> VertexId {
    if (bi < 0 || bi >= grid.gridRows() || bj < 0 || bj >= grid.gridCols()) {
      return -1;
    }
    return blockToVertex[static_cast<std::size_t>(grid.linearId(bi, bj))];
  };

  DagPattern::Builder builder(static_cast<std::int64_t>(coords.size()));
  for (std::size_t vi = 0; vi < coords.size(); ++vi) {
    const auto v = static_cast<VertexId>(vi);
    const auto [bi, bj] = coords[vi];
    for (const BlockCoord& p : topoPreds(bi, bj)) {
      const VertexId pv = vertexAt(p.bi, p.bj);
      if (pv >= 0) {
        builder.addEdge(pv, v);
      }
    }
    const auto& dataFn = dataPreds ? dataPreds : topoPreds;
    for (const BlockCoord& p : dataFn(bi, bj)) {
      const VertexId pv = vertexAt(p.bi, p.bj);
      if (pv >= 0) {
        builder.addDataEdge(pv, v);
      }
    }
  }

  PartitionedDag out{std::move(builder).finalize(), grid, kind,
                     std::move(coords), std::move(blockToVertex)};
  return out;
}

}  // namespace

std::string patternKindName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kWavefront2D:
      return "wavefront-2d";
    case PatternKind::kFlippedWavefront2D:
      return "flipped-wavefront-2d";
    case PatternKind::kTriangular2D1D:
      return "triangular-2d1d";
    case PatternKind::kFull2D2D:
      return "full-2d2d";
    case PatternKind::kLinear1D:
      return "linear-1d";
    case PatternKind::kRowDependent2D:
      return "row-dependent-2d";
    case PatternKind::kUserDefined:
      return "user-defined";
  }
  return "unknown";
}

PartitionedDag makeWavefront2D(const BlockGrid& grid) {
  auto topo = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{{bi - 1, bj}, {bi, bj - 1}};
  };
  auto data = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{
        {bi - 1, bj}, {bi, bj - 1}, {bi - 1, bj - 1}};
  };
  return buildFromPreds(grid, PatternKind::kWavefront2D, topo, data, nullptr);
}

PartitionedDag makeFlippedWavefront2D(const BlockGrid& grid) {
  auto topo = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{{bi + 1, bj}, {bi, bj - 1}};
  };
  auto data = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{
        {bi + 1, bj}, {bi, bj - 1}, {bi + 1, bj - 1}};
  };
  return buildFromPreds(grid, PatternKind::kFlippedWavefront2D, topo, data,
                        nullptr);
}

PartitionedDag makeTriangular2D1D(const BlockGrid& grid) {
  // A block is active when its rectangle intersects the upper triangle
  // {r <= c} — geometric so ragged edge blocks are handled.
  auto active = [&grid](std::int64_t bi, std::int64_t bj) {
    const CellRect r = grid.blockRect(bi, bj);
    return r.row0 <= r.colEnd() - 1;
  };
  auto topo = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{{bi + 1, bj}, {bi, bj - 1}};
  };
  auto data = [&grid](std::int64_t bi, std::int64_t bj) {
    // Row segment (bi, K) for K < bj, and column segment (K, bj) for
    // K > bi: the split term of 2D/1D recurrences reads the whole row to
    // the left and the whole column below.
    std::vector<BlockCoord> preds;
    for (std::int64_t k = bi; k < bj; ++k) {
      preds.push_back({bi, k});
    }
    for (std::int64_t k = bi + 1; k <= bj && k < grid.gridRows(); ++k) {
      preds.push_back({k, bj});
    }
    preds.push_back({bi + 1, bj - 1});  // diagonal neighbour (pair term)
    return preds;
  };
  return buildFromPreds(grid, PatternKind::kTriangular2D1D, topo, data,
                        active);
}

PartitionedDag makeFull2D2D(const BlockGrid& grid) {
  EASYHPS_CHECK(grid.blockCount() <= 16384,
                "2D/2D data edges are quadratic in block count; partition "
                "more coarsely");
  auto topo = [](std::int64_t bi, std::int64_t bj) {
    return std::vector<BlockCoord>{{bi - 1, bj}, {bi, bj - 1}};
  };
  auto data = [](std::int64_t bi, std::int64_t bj) {
    std::vector<BlockCoord> preds;
    for (std::int64_t i = 0; i <= bi; ++i) {
      for (std::int64_t j = 0; j <= bj; ++j) {
        if (i != bi || j != bj) {
          preds.push_back({i, j});
        }
      }
    }
    return preds;
  };
  return buildFromPreds(grid, PatternKind::kFull2D2D, topo, data, nullptr);
}

PartitionedDag makeRowDependent2D(const BlockGrid& grid) {
  auto preds = [&grid](std::int64_t bi, std::int64_t bj) {
    (void)bj;
    std::vector<BlockCoord> out;
    if (bi > 0) {
      out.reserve(static_cast<std::size_t>(grid.gridCols()));
      for (std::int64_t k = 0; k < grid.gridCols(); ++k) {
        out.push_back({bi - 1, k});
      }
    }
    return out;
  };
  return buildFromPreds(grid, PatternKind::kRowDependent2D, preds, preds,
                        nullptr);
}

PartitionedDag makeLinear1D(std::int64_t length) {
  EASYHPS_EXPECTS(length > 0);
  const BlockGrid grid(1, length, 1, 1);
  auto topo = [](std::int64_t, std::int64_t bj) {
    return std::vector<BlockCoord>{{0, bj - 1}};
  };
  return buildFromPreds(grid, PatternKind::kLinear1D, topo, nullptr, nullptr);
}

PartitionedDag makeCustom(const BlockGrid& grid, const PredsFn& topoPreds,
                          const PredsFn& dataPreds, const ActiveFn& activeFn) {
  EASYHPS_EXPECTS(topoPreds != nullptr);
  return buildFromPreds(grid, PatternKind::kUserDefined, topoPreds, dataPreds,
                        activeFn);
}

PartitionedDag makeFromLibrary(PatternKind kind, const BlockGrid& grid) {
  switch (kind) {
    case PatternKind::kWavefront2D:
      return makeWavefront2D(grid);
    case PatternKind::kFlippedWavefront2D:
      return makeFlippedWavefront2D(grid);
    case PatternKind::kTriangular2D1D:
      return makeTriangular2D1D(grid);
    case PatternKind::kFull2D2D:
      return makeFull2D2D(grid);
    case PatternKind::kLinear1D:
      return makeLinear1D(grid.gridRows() * grid.gridCols());
    case PatternKind::kRowDependent2D:
      return makeRowDependent2D(grid);
    case PatternKind::kUserDefined:
      break;
  }
  throw LogicError("makeFromLibrary: kUserDefined requires makeCustom");
}

}  // namespace easyhps

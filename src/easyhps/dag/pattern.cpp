#include "easyhps/dag/pattern.hpp"

#include <algorithm>
#include <deque>

namespace easyhps {

DagPattern::Builder::Builder(std::int64_t vertexCount)
    : vertex_count_(vertexCount),
      successors_(static_cast<std::size_t>(vertexCount)),
      data_predecessors_(static_cast<std::size_t>(vertexCount)) {
  EASYHPS_EXPECTS(vertexCount >= 0);
}

void DagPattern::Builder::addEdge(VertexId from, VertexId to) {
  EASYHPS_EXPECTS(from >= 0 && from < vertex_count_);
  EASYHPS_EXPECTS(to >= 0 && to < vertex_count_);
  EASYHPS_CHECK(from != to, "self-edge in DAG pattern");
  successors_[static_cast<std::size_t>(from)].push_back(to);
}

void DagPattern::Builder::addDataEdge(VertexId from, VertexId to) {
  EASYHPS_EXPECTS(from >= 0 && from < vertex_count_);
  EASYHPS_EXPECTS(to >= 0 && to < vertex_count_);
  EASYHPS_CHECK(from != to, "self data-edge in DAG pattern");
  data_predecessors_[static_cast<std::size_t>(to)].push_back(from);
}

DagPattern DagPattern::Builder::finalize() && {
  DagPattern p;
  const auto n = static_cast<std::size_t>(vertex_count_);
  p.pred_count_.assign(n, 0);
  p.succ_offset_.assign(n + 1, 0);
  p.data_pred_offset_.assign(n + 1, 0);

  // Deduplicate and sort adjacency for deterministic traversal order.
  std::size_t total_edges = 0;
  for (auto& succ : successors_) {
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    total_edges += succ.size();
  }
  std::size_t total_data = 0;
  for (auto& preds : data_predecessors_) {
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    total_data += preds.size();
  }

  p.succ_flat_.reserve(total_edges);
  for (std::size_t v = 0; v < n; ++v) {
    p.succ_offset_[v] = p.succ_flat_.size();
    for (VertexId s : successors_[v]) {
      p.succ_flat_.push_back(s);
      ++p.pred_count_[static_cast<std::size_t>(s)];
    }
  }
  p.succ_offset_[n] = p.succ_flat_.size();

  p.data_pred_flat_.reserve(total_data);
  for (std::size_t v = 0; v < n; ++v) {
    p.data_pred_offset_[v] = p.data_pred_flat_.size();
    for (VertexId d : data_predecessors_[v]) {
      p.data_pred_flat_.push_back(d);
    }
  }
  p.data_pred_offset_[n] = p.data_pred_flat_.size();

  // Acyclicity: Kahn's algorithm must consume every vertex.
  const auto order = p.topologicalOrder();
  EASYHPS_CHECK(static_cast<std::int64_t>(order.size()) == p.vertexCount(),
                "DAG pattern contains a cycle");
  return p;
}

std::vector<VertexId> DagPattern::sources() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertexCount(); ++v) {
    if (pred_count_[static_cast<std::size_t>(v)] == 0) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<VertexId> DagPattern::topologicalOrder() const {
  std::vector<std::int64_t> remaining = pred_count_;
  std::deque<VertexId> frontier;
  for (VertexId v = 0; v < vertexCount(); ++v) {
    if (remaining[static_cast<std::size_t>(v)] == 0) {
      frontier.push_back(v);
    }
  }
  std::vector<VertexId> order;
  order.reserve(static_cast<std::size_t>(vertexCount()));
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    for (VertexId s : successors(v)) {
      if (--remaining[static_cast<std::size_t>(s)] == 0) {
        frontier.push_back(s);
      }
    }
  }
  return order;
}

bool DagPattern::dataEdgesCoveredByPrecedence() const {
  // Propagate "position in a topological order" and verify that every data
  // predecessor has a strictly smaller position.  Positions are a valid
  // witness only because a topological order exists (finalize checked it):
  // pos[from] < pos[to] for every topological edge, and reachability is what
  // we need — a data pred not ordered before its vertex in *some* topo order
  // must be checked against actual reachability.  We verify the stronger
  // property directly: ancestors via BFS over reversed edges would be
  // O(V·E), so instead check the standard sufficient invariant used by the
  // runtime — completing vertices in any topological order makes data of
  // every data-pred available.  That invariant is exactly "data pred is an
  // ancestor"; we compute ancestor sets as interval checks per pattern in
  // tests and, generically here, via one reverse BFS per vertex only for
  // small graphs.
  if (vertexCount() > 4096) {
    return true;  // checked exhaustively in tests for representative sizes
  }
  // Build predecessor lists.
  std::vector<std::vector<VertexId>> preds(
      static_cast<std::size_t>(vertexCount()));
  for (VertexId v = 0; v < vertexCount(); ++v) {
    for (VertexId s : successors(v)) {
      preds[static_cast<std::size_t>(s)].push_back(v);
    }
  }
  for (VertexId v = 0; v < vertexCount(); ++v) {
    const auto data = dataPredecessors(v);
    if (data.empty()) {
      continue;
    }
    // Reverse BFS from v collecting ancestors.
    std::vector<bool> seen(static_cast<std::size_t>(vertexCount()), false);
    std::deque<VertexId> queue{v};
    seen[static_cast<std::size_t>(v)] = true;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId p : preds[static_cast<std::size_t>(u)]) {
        if (!seen[static_cast<std::size_t>(p)]) {
          seen[static_cast<std::size_t>(p)] = true;
          queue.push_back(p);
        }
      }
    }
    for (VertexId d : data) {
      if (!seen[static_cast<std::size_t>(d)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace easyhps

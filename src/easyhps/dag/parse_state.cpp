#include "easyhps/dag/parse_state.hpp"

namespace easyhps {

DagParseState::DagParseState(const DagPattern& dag) : dag_(&dag) {
  reset();
}

void DagParseState::reset() {
  const auto n = static_cast<std::size_t>(dag_->vertexCount());
  remaining_preds_.resize(n);
  for (VertexId v = 0; v < dag_->vertexCount(); ++v) {
    remaining_preds_[static_cast<std::size_t>(v)] = dag_->predCount(v);
  }
  finished_.assign(n, false);
  finished_count_ = 0;
}

std::vector<VertexId> DagParseState::initiallyComputable() const {
  return dag_->sources();
}

std::vector<VertexId> DagParseState::finish(VertexId v, bool allowPendingPreds) {
  EASYHPS_EXPECTS(v >= 0 && v < vertexCount());
  if (!allowPendingPreds) {
    EASYHPS_CHECK(remaining_preds_[static_cast<std::size_t>(v)] == 0,
                  "finishing a vertex whose predecessors are incomplete");
  }
  if (finished_[static_cast<std::size_t>(v)]) {
    return {};  // duplicate completion (fault-tolerance re-delivery)
  }
  finished_[static_cast<std::size_t>(v)] = true;
  ++finished_count_;
  std::vector<VertexId> newly;
  for (VertexId s : dag_->successors(v)) {
    // A successor finished ahead of its counters (streamed completion)
    // must not be announced computable a second time.
    if (--remaining_preds_[static_cast<std::size_t>(s)] == 0 &&
        !finished_[static_cast<std::size_t>(s)]) {
      newly.push_back(s);
    }
  }
  return newly;
}

}  // namespace easyhps

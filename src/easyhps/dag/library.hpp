#pragma once
/// \file library.hpp
/// The DAG Pattern Model library (paper §IV-C).
///
/// The paper classifies DP algorithms as tD/eD (matrix size O(n^t), each
/// cell depending on O(n^e) cells) and ships frequently used patterns in a
/// library; users can also register their own ("user-defined patterns").
/// Patterns here are generated directly at *block* granularity: after task
/// partition (Fig 6) each vertex is a block of cells, so the library
/// functions take a `BlockGrid` and emit the abstract DAG of Fig 6(c).
/// Generating at cell granularity is the special case of 1×1 blocks — the
/// partitioner tests exploit that to cross-validate block DAGs against cell
/// DAGs.

#include <functional>
#include <string>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

/// Built-in pattern shapes (`dag_pattern_type` in the paper's Table I).
enum class PatternKind {
  kWavefront2D,         ///< 2D/0D: cell (i,j) ← (i-1,j), (i,j-1), (i-1,j-1)
  kFlippedWavefront2D,  ///< cell (i,j) ← (i+1,j), (i,j-1) — triangular DPs
                        ///  inside one rectangular block
  kTriangular2D1D,      ///< 2D/1D on the upper triangle (Nussinov, OBST)
  kFull2D2D,            ///< 2D/2D: cell (i,j) ← all (i'<i, j'<j)
  kLinear1D,            ///< simple chain
  kRowDependent2D,      ///< cell (i,j) ← every cell of row i-1 (Viterbi-
                        ///  class DPs: whole previous stage per step)
  kUserDefined,         ///< built via makeCustom
};

std::string patternKindName(PatternKind kind);

/// A block-level DAG plus the geometry that produced it.  `coords` maps
/// vertex ids to block coordinates; `blockToVertex` is the inverse (−1 for
/// blocks outside the active region, e.g. below the diagonal of a
/// triangular pattern).
struct PartitionedDag {
  DagPattern dag;
  BlockGrid grid;
  PatternKind kind = PatternKind::kUserDefined;
  std::vector<BlockCoord> coords;
  std::vector<VertexId> blockToVertex;

  std::int64_t vertexCount() const { return dag.vertexCount(); }

  BlockCoord coordOf(VertexId v) const {
    EASYHPS_EXPECTS(v >= 0 && v < vertexCount());
    return coords[static_cast<std::size_t>(v)];
  }

  CellRect rectOf(VertexId v) const { return grid.blockRect(coordOf(v)); }

  /// Vertex at block (bi,bj), or −1 if that block is inactive.
  VertexId vertexAt(std::int64_t bi, std::int64_t bj) const {
    if (bi < 0 || bi >= grid.gridRows() || bj < 0 || bj >= grid.gridCols()) {
      return -1;
    }
    return blockToVertex[static_cast<std::size_t>(grid.linearId(bi, bj))];
  }
};

/// Classic down-right wavefront (Smith-Waterman, edit distance).
PartitionedDag makeWavefront2D(const BlockGrid& grid);

/// Up-right wavefront: dependencies point up and right-ward fill — the
/// intra-block pattern of triangular DPs (Nussinov: (i,j) ← (i+1,j),(i,j-1)).
PartitionedDag makeFlippedWavefront2D(const BlockGrid& grid);

/// Upper-triangular 2D/1D pattern: active blocks intersect {r ≤ c}; block
/// (bi,bj) ← (bi+1,bj), (bi,bj-1); data deps: whole row-segment (bi,K),
/// K<bj and column-segment (K,bj), K>bi.
PartitionedDag makeTriangular2D1D(const BlockGrid& grid);

/// 2D/2D pattern: precedence reduces to the wavefront; data deps are every
/// block weakly up-left.  Quadratic in block count — intended for modest
/// grids (guarded).
PartitionedDag makeFull2D2D(const BlockGrid& grid);

/// Chain over blocks in row-major order (1D DPs).
PartitionedDag makeLinear1D(std::int64_t length);

/// Row-dependent pattern: block (bi, bj) ← all blocks (bi-1, k).  The
/// shape of staged DPs (Viterbi, Bellman-Ford rounds) where every cell of
/// a stage reads the whole previous stage.  Blocks in one row must not
/// read each other — valid only when cell rows never depend on cells of
/// the same row, which holds by construction for stage DPs.
PartitionedDag makeRowDependent2D(const BlockGrid& grid);

/// User-defined pattern (paper: "programmers should define and implement
/// the DAG Pattern Model by themselves").
///  * activeFn(bi,bj)    — whether the block exists (nullptr ⇒ all active)
///  * topoPreds(bi,bj)   — precedence predecessors as block coords
///  * dataPreds(bi,bj)   — data-dependency predecessors (nullptr ⇒ same as
///                         topological predecessors)
/// Inactive or out-of-grid predecessors are ignored.
using ActiveFn = std::function<bool(std::int64_t bi, std::int64_t bj)>;
using PredsFn =
    std::function<std::vector<BlockCoord>(std::int64_t bi, std::int64_t bj)>;

PartitionedDag makeCustom(const BlockGrid& grid, const PredsFn& topoPreds,
                          const PredsFn& dataPreds = nullptr,
                          const ActiveFn& activeFn = nullptr);

/// Dispatch by kind for the built-in library (`kUserDefined` not allowed).
PartitionedDag makeFromLibrary(PatternKind kind, const BlockGrid& grid);

}  // namespace easyhps

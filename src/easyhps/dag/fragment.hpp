#pragma once
/// \file fragment.hpp
/// Halo-fragment geometry and readiness tracking for cross-level
/// dataflow pipelining.
///
/// Barrier-mode EasyHPS stitches its two scheduling levels with
/// whole-block handoffs: a consumer block only starts once its *entire*
/// halo is resident.  Streaming mode (runtime/pipeline.hpp) breaks the
/// halo into *fragments* — intersections of producer sub-blocks with the
/// consumer-facing boundary rects — and lets both levels react as
/// fragments land:
///
///  * the slave pool fires a sub-block node as soon as the halo segments
///    that node actually reads (`externalSegments`) are covered;
///  * the master fires a consumer block assignment once the first
///    fragment of its pending halo arrives (runtime/master.cpp).
///
/// `HaloFragmentTracker` is the readiness core shared by both sides: a
/// set of outstanding rectangles shrunk by rectangle subtraction as
/// fragments arrive.  It is deliberately order-free — fragments may
/// arrive out of order, duplicated (transport chaos, resends) or
/// coalesced (one wide fragment covering many expected segments); only
/// coverage matters.  `intersectOutstanding` doubles as the dedup
/// primitive: callers inject exactly the not-yet-covered pieces, so a
/// valid cell is never rewritten while a fired node may be reading it.

#include <cstdint>
#include <vector>

#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

/// Intersection of two cell rects; a rect with rows == 0 or cols == 0
/// (cellCount() == 0) when they are disjoint.
CellRect intersectRects(const CellRect& a, const CellRect& b);

/// Appends the up-to-four rectangular pieces of `a \ b` to `out`.
/// Appends `a` unchanged when the rects are disjoint.
void subtractRect(const CellRect& a, const CellRect& b,
                  std::vector<CellRect>& out);

/// The pieces of `reads` that fall outside `home`: the halo segments a
/// sub-block node needs from *outside* its own block, i.e. the cells that
/// stream in rather than being produced by sibling nodes of the same
/// slave DAG.
std::vector<CellRect> externalSegments(const std::vector<CellRect>& reads,
                                       const CellRect& home);

/// Splits `piece` against a set of already-valid rects: `covered` holds
/// the parts inside some valid rect, `pending` the remainder.  Used by
/// the master to inline the arrived part of a halo piece into an early
/// assignment and declare the rest as streaming.
struct CoverageSplit {
  std::vector<CellRect> covered;
  std::vector<CellRect> pending;
};
CoverageSplit partitionByCoverage(const CellRect& piece,
                                  const std::vector<CellRect>& validRects);

/// Rectangle-coverage readiness tracker.  `expect` registers segments
/// that must eventually arrive; `fill` shrinks the outstanding set and
/// reports whether coverage actually grew (a pure duplicate returns
/// false).  Not thread-safe; callers hold their own pool/master mutex.
class HaloFragmentTracker {
 public:
  /// Registers a segment that must arrive before the halo is complete.
  void expect(const CellRect& rect);

  /// True while any cell of `rect` is still outstanding.
  bool blocked(const CellRect& rect) const;

  /// The not-yet-covered pieces of `rect` (empty for a pure duplicate).
  std::vector<CellRect> intersectOutstanding(const CellRect& rect) const;

  /// Marks `rect` arrived.  Returns true when coverage grew.
  bool fill(const CellRect& rect);

  bool done() const { return outstanding_.empty(); }
  std::int64_t outstandingCells() const;
  std::int64_t expectedCells() const { return expected_cells_; }
  const std::vector<CellRect>& outstanding() const { return outstanding_; }

  /// Fraction of expected cells already arrived (1.0 when nothing was
  /// ever expected — an empty halo is trivially complete).
  double progress() const;

 private:
  std::vector<CellRect> outstanding_;
  std::int64_t expected_cells_ = 0;
};

}  // namespace easyhps

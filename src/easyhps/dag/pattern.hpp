#pragma once
/// \file pattern.hpp
/// The DAG Pattern Model (paper §IV-A).
///
/// A `DagPattern` D = {V, E} stores, for every vertex (sub-task):
///  * successor list        — `posfix_id` in the paper's Table I,
///  * predecessor count     — `pre_cnt`,
///  * data-dependency list  — `data_prefix_id`.
///
/// The paper distinguishes two levels of the model (§IV-D, Fig 7): the
/// *topological level* (precedence edges, used for parsing/scheduling) and
/// the *data-communication level* (which earlier vertices' data a sub-task
/// must receive).  Data edges are always a superset-closure of topological
/// reachability: every data predecessor is topologically before the vertex,
/// which is what makes "halo is available when the task becomes ready" an
/// invariant of the runtime.
///
/// Storage is CSR-style (offset + flat arrays): cache-friendly, O(V+E)
/// memory, and cheap to traverse during parsing.

#include <cstdint>
#include <span>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {

/// Vertex id within one DAG pattern; dense in [0, vertexCount).
using VertexId = std::int64_t;

/// Immutable DAG with topological edges and data-dependency edges.
class DagPattern {
 public:
  /// Incremental builder; finalize() validates and produces the pattern.
  class Builder {
   public:
    explicit Builder(std::int64_t vertexCount);

    /// Adds a precedence edge from → to (to cannot start before from).
    void addEdge(VertexId from, VertexId to);

    /// Adds a data-dependency: `to` needs data produced by `from`.
    void addDataEdge(VertexId from, VertexId to);

    /// Validates acyclicity and builds the immutable pattern.
    /// Throws LogicError if the graph has a cycle.
    DagPattern finalize() &&;

   private:
    std::int64_t vertex_count_;
    std::vector<std::vector<VertexId>> successors_;
    std::vector<std::vector<VertexId>> data_predecessors_;
  };

  std::int64_t vertexCount() const { return pred_count_.size(); }
  std::int64_t edgeCount() const {
    return static_cast<std::int64_t>(succ_flat_.size());
  }
  std::int64_t dataEdgeCount() const {
    return static_cast<std::int64_t>(data_pred_flat_.size());
  }

  /// Topological successors of v (`posfix_id`).
  std::span<const VertexId> successors(VertexId v) const {
    checkVertex(v);
    return {succ_flat_.data() + succ_offset_[static_cast<std::size_t>(v)],
            succ_flat_.data() + succ_offset_[static_cast<std::size_t>(v) + 1]};
  }

  /// Number of topological predecessors of v (`pre_cnt`).
  std::int64_t predCount(VertexId v) const {
    checkVertex(v);
    return pred_count_[static_cast<std::size_t>(v)];
  }

  /// Number of topological successors of v (`pos_cnt`).
  std::int64_t succCount(VertexId v) const {
    return static_cast<std::int64_t>(successors(v).size());
  }

  /// Data-dependency predecessors of v (`data_prefix_id`).
  std::span<const VertexId> dataPredecessors(VertexId v) const {
    checkVertex(v);
    return {
        data_pred_flat_.data() +
            data_pred_offset_[static_cast<std::size_t>(v)],
        data_pred_flat_.data() +
            data_pred_offset_[static_cast<std::size_t>(v) + 1]};
  }

  /// Vertices with no topological predecessor (initially computable).
  std::vector<VertexId> sources() const;

  /// One valid topological order (deterministic; Kahn with min-id tie-break
  /// would be O(E log V), so this uses plain FIFO order, still stable).
  std::vector<VertexId> topologicalOrder() const;

  /// True if every data predecessor of every vertex is topologically
  /// reachable from that vertex going backwards — the halo-availability
  /// invariant the runtime relies on.
  bool dataEdgesCoveredByPrecedence() const;

 private:
  DagPattern() = default;
  void checkVertex(VertexId v) const {
    EASYHPS_EXPECTS(v >= 0 && v < vertexCount());
  }

  std::vector<std::int64_t> pred_count_;
  std::vector<std::size_t> succ_offset_;   // vertexCount()+1 entries
  std::vector<VertexId> succ_flat_;
  std::vector<std::size_t> data_pred_offset_;
  std::vector<VertexId> data_pred_flat_;
};

}  // namespace easyhps

#include "easyhps/trace/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "easyhps/trace/report.hpp"
#include "easyhps/util/error.hpp"

namespace easyhps::trace {

std::string traceCsv(const std::vector<sim::TaskTrace>& trace) {
  std::ostringstream os;
  os << "vertex,node,dispatched,arrived,compute_done,result_processed\n";
  for (const sim::TaskTrace& t : trace) {
    os << t.vertex << "," << t.node << "," << t.dispatched << "," << t.arrived
       << "," << t.computeDone << "," << t.resultProcessed << "\n";
  }
  return os.str();
}

std::string asciiGantt(const std::vector<sim::TaskTrace>& trace,
                       double makespan, int nodes, std::size_t width) {
  EASYHPS_EXPECTS(nodes > 0);
  EASYHPS_EXPECTS(width >= 10);
  if (makespan <= 0.0) {
    return "(empty schedule)\n";
  }
  auto column = [&](double t) {
    const auto c = static_cast<std::int64_t>(
        t / makespan * static_cast<double>(width - 1));
    return static_cast<std::size_t>(
        std::clamp<std::int64_t>(c, 0,
                                 static_cast<std::int64_t>(width) - 1));
  };
  std::vector<std::string> rows(static_cast<std::size_t>(nodes),
                                std::string(width, ' '));
  for (const sim::TaskTrace& t : trace) {
    if (t.node < 0 || t.node >= nodes) {
      continue;
    }
    auto& row = rows[static_cast<std::size_t>(t.node)];
    // Transfer window: dispatched → arrived.
    for (std::size_t c = column(t.dispatched); c <= column(t.arrived); ++c) {
      if (row[c] == ' ') {
        row[c] = '.';
      }
    }
    // Compute window: arrived → computeDone.
    for (std::size_t c = column(t.arrived); c <= column(t.computeDone);
         ++c) {
      row[c] = '#';
    }
  }
  std::ostringstream os;
  for (int n = 0; n < nodes; ++n) {
    os << "node " << n << " |" << rows[static_cast<std::size_t>(n)] << "|\n";
  }
  os << "        0" << std::string(width - 8, ' ') << Table::num(makespan, 2)
     << "s\n";
  return os.str();
}

}  // namespace easyhps::trace

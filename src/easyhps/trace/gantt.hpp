#pragma once
/// \file gantt.hpp
/// Rendering of simulator task traces: CSV for plotting, ASCII Gantt for
/// the terminal.  Makes schedule pathologies (BCW stalls, end-of-wavefront
/// starvation, fault recovery gaps) visible without external tooling.

#include <string>
#include <vector>

#include "easyhps/sim/simulator.hpp"

namespace easyhps::trace {

/// CSV with one row per task: vertex,node,dispatched,arrived,computeDone,
/// resultProcessed.
std::string traceCsv(const std::vector<sim::TaskTrace>& trace);

/// ASCII Gantt chart: one row per computing node, `width` character
/// columns spanning [0, makespan]; '#' marks compute, '.' transfer/idle
/// gaps inside assignments.
std::string asciiGantt(const std::vector<sim::TaskTrace>& trace,
                       double makespan, int nodes, std::size_t width = 100);

}  // namespace easyhps::trace

#pragma once
/// \file report.hpp
/// Plain-text table/series rendering for the benchmark harness.
///
/// Every figure bench prints the same series the paper plots (cores on the
/// x-axis, elapsed time / speedup / ratio on the y-axis) as aligned text
/// tables plus an optional CSV block, so results can be eyeballed in the
/// terminal and regenerated into plots.

#include <cstdint>
#include <string>
#include <vector>

namespace easyhps::trace {

/// Column-aligned text table with a title row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);

  /// Renders with padded columns.
  std::string render() const;

  /// Renders as CSV (headers + rows).
  std::string csv() const;

  /// Renders as a JSON array of row objects keyed by header.  Cells that
  /// parse fully as numbers are emitted unquoted, so downstream plotting
  /// scripts need no schema.
  std::string json() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner for bench output.
std::string banner(const std::string& title);

/// Renders `RunStats::linkBytes` (row-major ranks×ranks, [src*ranks+dst])
/// as a src\dst matrix table in kilobytes — makes the control/data-plane
/// split visible at a glance: under the peer-to-peer data plane row/column
/// 0 carries metadata while the slave↔slave cells carry the halos.
Table linkMatrixTable(const std::vector<std::uint64_t>& linkBytes,
                      int ranks);

}  // namespace easyhps::trace

#include "easyhps/trace/report.hpp"

#include <iomanip>
#include <sstream>

#include "easyhps/util/error.hpp"

namespace easyhps::trace {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EASYHPS_EXPECTS(!headers_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  EASYHPS_CHECK(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string banner(const std::string& title) {
  std::ostringstream os;
  os << "\n== " << title << " " << std::string(72 - std::min<std::size_t>(
                                                       72, title.size() + 4),
                                               '=')
     << "\n";
  return os.str();
}

}  // namespace easyhps::trace

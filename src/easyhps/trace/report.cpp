#include "easyhps/trace/report.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "easyhps/util/error.hpp"

namespace easyhps::trace {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EASYHPS_EXPECTS(!headers_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  EASYHPS_CHECK(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

namespace {

bool isJsonNumber(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  // strtod accepts inf/nan/hex, which are not valid JSON; restrict to the
  // characters a JSON number can contain before letting strtod decide.
  if (s.find_first_not_of("+-0123456789.eE") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void appendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Table::json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) {
        os << ", ";
      }
      appendJsonString(os, headers_[c]);
      os << ": ";
      if (isJsonNumber(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        appendJsonString(os, rows_[r][c]);
      }
    }
    os << "}";
    if (r + 1 < rows_.size()) {
      os << ",";
    }
    os << "\n";
  }
  os << "]\n";
  return os.str();
}

Table linkMatrixTable(const std::vector<std::uint64_t>& linkBytes,
                      int ranks) {
  EASYHPS_EXPECTS(ranks >= 0);
  EASYHPS_EXPECTS(linkBytes.size() ==
                  static_cast<std::size_t>(ranks) *
                      static_cast<std::size_t>(ranks));
  std::vector<std::string> headers;
  headers.reserve(static_cast<std::size_t>(ranks) + 1);
  headers.push_back("src\\dst kB");
  for (int dst = 0; dst < ranks; ++dst) {
    headers.push_back(std::to_string(dst));
  }
  Table t(std::move(headers));
  for (int src = 0; src < ranks; ++src) {
    std::vector<std::string> row;
    row.reserve(static_cast<std::size_t>(ranks) + 1);
    row.push_back(std::to_string(src));
    for (int dst = 0; dst < ranks; ++dst) {
      const auto idx =
          static_cast<std::size_t>(src) * static_cast<std::size_t>(ranks) +
          static_cast<std::size_t>(dst);
      row.push_back(Table::num(static_cast<double>(linkBytes[idx]) / 1e3, 1));
    }
    t.addRow(std::move(row));
  }
  return t;
}

std::string banner(const std::string& title) {
  std::ostringstream os;
  os << "\n== " << title << " " << std::string(72 - std::min<std::size_t>(
                                                       72, title.size() + 4),
                                               '=')
     << "\n";
  return os.str();
}

}  // namespace easyhps::trace

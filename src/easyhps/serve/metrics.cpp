#include "easyhps/serve/metrics.hpp"

namespace easyhps::serve {

trace::Table metricsTable(const ServiceMetrics& m) {
  trace::Table t({"policy", "kpath", "tile", "accepted", "rejected",
                  "completed", "cancelled",
                  "failed", "queue_depth", "mean_wait_s", "max_wait_s",
                  "mean_ttfb_s", "jobs_per_s", "messages", "master_mb",
                  "p2p_mb", "zc_msgs", "zc_mb", "fragments", "early_starts",
                  "overlap_s", "retries", "requeues",
                  "own_inval", "spills", "steals",
                  "quarantines", "hb_misses", "faults",
                  "job_retries", "recovered_blocks", "corrupt_blocks",
                  "decode_errors", "master_restarts", "recovery_s",
                  "cache_hits", "cache_bytes", "coalesced",
                  "shed_jobs", "deadline_misses"});
  t.addRow({m.policy, m.kernelPath.empty() ? "-" : m.kernelPath,
            m.tiles.empty() ? "-" : m.tiles,
            trace::Table::num(m.accepted),
            trace::Table::num(m.rejected), trace::Table::num(m.completed),
            trace::Table::num(m.cancelled), trace::Table::num(m.failed),
            trace::Table::num(m.queueDepth),
            trace::Table::num(m.meanQueueWaitSeconds(), 4),
            trace::Table::num(m.maxQueueWaitSeconds, 4),
            trace::Table::num(m.meanTimeToFirstBlockSeconds(), 4),
            trace::Table::num(m.jobsPerSecond(), 2),
            trace::Table::num(static_cast<std::int64_t>(m.messages)),
            trace::Table::num(static_cast<double>(m.bytesViaMaster) / 1e6, 2),
            trace::Table::num(static_cast<double>(m.bytesPeerToPeer) / 1e6,
                              2),
            trace::Table::num(static_cast<std::int64_t>(m.copiesAvoided)),
            trace::Table::num(static_cast<double>(m.zeroCopyBytes) / 1e6, 2),
            trace::Table::num(m.fragmentsSent),
            trace::Table::num(m.blocksStartedEarly),
            trace::Table::num(m.streamOverlapSeconds, 4),
            trace::Table::num(m.retries), trace::Table::num(m.subTaskRequeues),
            trace::Table::num(m.ownershipInvalidations),
            trace::Table::num(m.placementSpills),
            trace::Table::num(m.tasksStolen),
            trace::Table::num(m.quarantines),
            trace::Table::num(m.heartbeatMisses),
            trace::Table::num(m.faultsTriggered),
            trace::Table::num(m.jobRetries),
            trace::Table::num(m.recoveredBlocks),
            trace::Table::num(m.corruptBlocks),
            trace::Table::num(m.decodeErrors),
            trace::Table::num(m.masterRestarts),
            trace::Table::num(m.recoverySeconds, 4),
            trace::Table::num(m.cacheHits),
            trace::Table::num(m.cacheBytes),
            trace::Table::num(m.dedupCoalesced),
            trace::Table::num(m.shedJobs),
            trace::Table::num(m.deadlineMisses)});
  return t;
}

}  // namespace easyhps::serve

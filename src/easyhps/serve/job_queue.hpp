#pragma once
/// \file job_queue.hpp
/// Thread-safe admission-controlled job queue of the serve layer.
///
/// Sits between the submitting threads and the master service loop: any
/// thread may `offer` (admission check + enqueue under the scheduler
/// policy) or `cancelQueued`; the master rank's feed calls `take` to block
/// for the next dispatch.  Admission is bounded-depth with
/// reject-with-reason — under overload the service sheds jobs at submit
/// time instead of queueing unboundedly, and the caller learns why.
///
/// Close is *graceful*: after `close`, offers are rejected but already
/// queued jobs are still handed out until the queue runs dry, when `take`
/// returns nullptr (the drain-then-shutdown ordering).  `drainRemaining`
/// is the non-graceful variant for the service-failure path.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "easyhps/serve/scheduler.hpp"

namespace easyhps::serve {

class JobQueue {
 public:
  /// `maxDepth` bounds the number of queued (undispatched) jobs.
  JobQueue(std::unique_ptr<JobScheduler> scheduler, std::size_t maxDepth);

  /// Admission check + enqueue.  Returns nullopt on success, otherwise the
  /// rejection reason.  The job must be in state kQueued.
  std::optional<std::string> offer(std::shared_ptr<JobRecord> job);

  /// Blocks for the next job per the scheduling policy; transitions it
  /// kQueued → kRunning.  Returns nullptr once the queue is closed *and*
  /// drained.
  std::shared_ptr<JobRecord> take();

  /// Cancels a job that is still queued: transitions it kQueued →
  /// kCancelled and frees its admission slot.  False if the job already
  /// left the queued state (running, finished, or already cancelled).
  bool cancelQueued(JobRecord& job);

  /// Stops admission with the given rejection reason; queued jobs still
  /// drain through take().
  void close(std::string reason);

  /// Empties the queue, transitioning every remaining job to kCancelled;
  /// returns them so the caller can publish outcomes.  Used on service
  /// failure, where "still drains" would wait forever.
  std::vector<std::shared_ptr<JobRecord>> drainRemaining();

  /// Queued (undispatched, uncancelled) jobs right now.
  std::size_t depth() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unique_ptr<JobScheduler> scheduler_;
  const std::size_t maxDepth_;
  std::size_t depth_ = 0;  ///< admission slots in use
  bool closed_ = false;
  std::string closeReason_;
};

}  // namespace easyhps::serve

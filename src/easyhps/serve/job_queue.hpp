#pragma once
/// \file job_queue.hpp
/// Thread-safe admission-controlled job queue of the serve layer.
///
/// Sits between the submitting threads and the master service loop: any
/// thread may `offer` (admission check + enqueue under the scheduler
/// policy) or `cancelQueued`; the master rank's feed calls `take` to block
/// for the next dispatch.  Admission is bounded-depth with
/// reject-with-reason — under overload the service sheds jobs at submit
/// time instead of queueing unboundedly, and the caller learns why.
///
/// Close is *graceful*: after `close`, offers are rejected but already
/// queued jobs are still handed out until the queue runs dry, when `take`
/// returns nullptr (the drain-then-shutdown ordering).  `drainRemaining`
/// is the non-graceful variant for the service-failure path.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "easyhps/serve/scheduler.hpp"

namespace easyhps::serve {

/// Admission bounds (ServiceConfig mirrors these; see its field docs).
struct QueueLimits {
  /// Hard bound on queued (undispatched) jobs.
  std::size_t maxDepth = 64;
  /// Per-class bounds; 0 = only maxDepth applies to that class.
  std::int64_t maxInteractive = 0;
  std::int64_t maxBatch = 0;
  /// Load-shedding watermark: after an admission pushes the depth past
  /// it, the scheduler's least-valuable queued jobs are shed (turned
  /// kFailed with kRejectedOverload) until the depth is back at the
  /// watermark.  0 = off.  Shedding keeps *latency* bounded under
  /// sustained overload where the hard bound alone only keeps *memory*
  /// bounded: the queue stays short, so admitted jobs still meet their
  /// deadlines, at the price of failing the least valuable ones fast.
  std::size_t shedWatermark = 0;
};

class JobQueue {
 public:
  /// Admission verdict.  Exactly one of `admitted` / non-empty `reason`
  /// holds; `overloaded` distinguishes capacity rejections (retryable,
  /// backpressure) from closed/stopping ones.  `shed` holds watermark
  /// victims — already transitioned kQueued → kFailed — whose outcomes
  /// the *caller* publishes outside the queue lock (the admitted job
  /// itself may be among them if it was instantly the least valuable).
  struct Offer {
    bool admitted = false;
    bool overloaded = false;
    std::string reason;
    std::vector<std::shared_ptr<JobRecord>> shed;
  };

  JobQueue(std::unique_ptr<JobScheduler> scheduler, QueueLimits limits);

  /// Admission check + enqueue + watermark shedding.  The job must be in
  /// state kQueued.
  Offer offer(std::shared_ptr<JobRecord> job);

  /// Blocks for the next job per the scheduling policy; transitions it
  /// kQueued → kRunning.  Returns nullptr once the queue is closed *and*
  /// drained.
  std::shared_ptr<JobRecord> take();

  /// Cancels a job that is still queued: transitions it kQueued →
  /// kCancelled and frees its admission slot.  False if the job already
  /// left the queued state (running, finished, or already cancelled).
  bool cancelQueued(JobRecord& job);

  /// Stops admission with the given rejection reason; queued jobs still
  /// drain through take().
  void close(std::string reason);

  /// Empties the queue, transitioning every remaining job to kCancelled;
  /// returns them so the caller can publish outcomes.  Used on service
  /// failure, where "still drains" would wait forever.
  std::vector<std::shared_ptr<JobRecord>> drainRemaining();

  /// Queued (undispatched, uncancelled) jobs right now.
  std::size_t depth() const;

 private:
  /// Frees the admission slot(s) `job` holds (total + its class).
  void releaseSlotLocked(const JobRecord& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unique_ptr<JobScheduler> scheduler_;
  const QueueLimits limits_;
  std::size_t depth_ = 0;  ///< admission slots in use
  std::int64_t interactiveDepth_ = 0;
  std::int64_t batchDepth_ = 0;
  bool closed_ = false;
  std::string closeReason_;
};

}  // namespace easyhps::serve

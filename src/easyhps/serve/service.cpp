#include "easyhps/serve/service.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <vector>

#include "easyhps/msg/cluster.hpp"
#include "easyhps/runtime/master.hpp"
#include "easyhps/runtime/slave.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/serve/job_queue.hpp"
#include "easyhps/util/clock.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps::serve {

void ServiceConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw LogicError("invalid ServiceConfig: " + what);
  };
  runtime.validate();
  if (maxQueueDepth < 1) {
    fail("maxQueueDepth must be >= 1");
  }
  if (maxInteractiveDepth < 0) {
    fail("maxInteractiveDepth must be >= 0 (0 = uncapped)");
  }
  if (maxBatchDepth < 0) {
    fail("maxBatchDepth must be >= 0 (0 = uncapped)");
  }
  if (retryAfterHint.count() < 0) {
    fail("retryAfterHint must be non-negative");
  }
  if (cache.byteBudget < 1) {
    fail("cache.byteBudget must be >= 1");
  }
}

namespace detail {

/// The service engine.  Owns the job queue and the cluster thread;
/// implements JobFeed for the master rank and SlaveJobDirectory for the
/// slave ranks.  Kept alive by the Service *and* every outstanding
/// JobTicket, so tickets stay valid after the Service is destroyed.
///
/// Caching & dedup (DESIGN.md, "Serve-layer caching, admission & SLOs"):
/// a cacheable submission (fingerprintable problem, no per-job faults,
/// full-matrix assembly) first consults the ResultCache — a hit publishes
/// the ticket's outcome immediately, without touching the queue.  On a
/// miss with dedup enabled, identical concurrent submissions coalesce:
/// one internal *exec* record (JobRecord::isExec, never ticket-backed)
/// runs through the queue, and every ticket becomes a *waiter* whose
/// outcome is fanned out when the exec finishes.  Cancelling a waiter
/// detaches only that ticket; the exec is cancelled only when its last
/// waiter detaches.
class ServiceCore final : public JobFeed, public SlaveJobDirectory {
 public:
  /// trySubmit verdict (the Service maps it onto Admission).
  struct CoreAdmission {
    std::shared_ptr<JobRecord> rec;
    std::string reason;
    bool overloaded = false;
    std::chrono::milliseconds retryAfter{0};
  };

  explicit ServiceCore(ServiceConfig cfg)
      : cfg_(validated(std::move(cfg))),
        cache_(cfg_.cache.enabled
                   ? (cfg_.sharedCache != nullptr
                          ? cfg_.sharedCache
                          : std::make_shared<cache::ResultCache>(
                                cfg_.cache.byteBudget))
                   : nullptr),
        queue_(makeJobScheduler(cfg_.policy),
               QueueLimits{cfg_.maxQueueDepth, cfg_.maxInteractiveDepth,
                           cfg_.maxBatchDepth, cfg_.shedWatermark}) {}

  ~ServiceCore() override {
    try {
      shutdown();
    } catch (...) {
      // Destructor: the cluster already reported its failure through the
      // job outcomes; nothing useful left to do with it here.
    }
  }

  void start() {
    cluster_ = std::thread([this] {
      try {
        msg::Cluster::run(
            cfg_.runtime.slaveCount + 1,
            [this](msg::Comm& comm) {
              if (comm.rank() == 0) {
                runMasterService(comm, cfg_.runtime, *this);
              } else {
                runSlaveService(comm, cfg_.runtime, *this);
              }
            },
            wire::makeChaosTransport(cfg_.runtime.transportChaos,
                                     cfg_.runtime.slaveCount + 1));
      } catch (const std::exception& e) {
        failService(e.what());
      } catch (...) {
        failService("unknown cluster failure");
      }
    });
  }

  CoreAdmission trySubmit(std::shared_ptr<const DpProblem> problem,
                          JobOptions options) {
    EASYHPS_EXPECTS(problem != nullptr);
    EASYHPS_EXPECTS(options.weight > 0.0);

    if (options.maxAttempts < 1) {
      return rejectOptions("maxAttempts must be >= 1");
    }
    if (options.softDeadline.has_value() &&
        options.softDeadline->count() <= 0) {
      return rejectOptions("softDeadline must be positive");
    }
    for (const fault::FaultSpec& spec : options.faults) {
      if (spec.kind == fault::FaultKind::kSlaveDeath &&
          !(cfg_.runtime.enableLiveness && cfg_.runtime.enableFaultTolerance)) {
        return rejectOptions(
            "kSlaveDeath faults require enableLiveness and "
            "enableFaultTolerance in the runtime config");
      }
    }

    auto rec = std::make_shared<JobRecord>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Pre-queue rejections: the queue's close reason says "draining"
      // for the whole drain-then-shutdown sequence (first reason wins),
      // so report the stronger condition here.
      if (stopped_) {
        ++rejected_;
        return {nullptr, failure_.empty() ? "service stopped"
                                          : "service failed: " + failure_};
      }
      rec->id = nextId_++;
      rec->seq = nextSeq_++;
    }
    if (options.name.empty()) {
      options.name = "job-" + std::to_string(rec->id);
    }
    rec->options = std::move(options);
    rec->plan = std::make_shared<fault::FaultPlan>(rec->options.faults,
                                                   rec->options.chaosSeed);
    rec->estimatedOps = problem->blockOps(
        CellRect{0, 0, problem->rows(), problem->cols()});
    rec->problem = std::move(problem);
    rec->submitted = std::chrono::steady_clock::now();
    if (rec->options.softDeadline.has_value()) {
      rec->deadline = rec->submitted + *rec->options.softDeadline;
    }

    // Content identity: only fault-free submissions of fingerprintable
    // problems, and only when the run assembles the full matrix (a
    // boundary-only result is not what the cache promises).  Fault
    // injectors exist to exercise failure paths — they always execute.
    if (cache_ != nullptr && cache::cacheEnabled() &&
        rec->options.faults.empty() && rec->options.chaosSeed == 0 &&
        cfg_.runtime.assembleFullMatrix) {
      rec->cacheKey = cache::jobKey(*rec->problem, cfg_.runtime);
    }

    if (rec->cacheKey.has_value()) {
      if (auto hit = cache_->find(*rec->cacheKey)) {
        return admitCacheHit(std::move(rec), std::move(hit));
      }
      if (cfg_.cache.dedupInFlight) {
        return admitDedup(std::move(rec));
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++cacheMisses_;
    }

    JobQueue::Offer off = queue_.offer(rec);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!off.admitted) {
        ++rejected_;
      } else {
        ++accepted_;
        ++activeJobs_;
      }
    }
    publishShedVictims(off.shed);
    if (!off.admitted) {
      return rejection(std::move(off));
    }
    return {std::move(rec), ""};
  }

  bool cancel(const std::shared_ptr<JobRecord>& rec) {
    if (rec->coalesceWaiter) {
      return cancelWaiter(rec);
    }
    if (queue_.cancelQueued(*rec)) {
      // Cancelled before dispatch: the job never reaches the cluster, so
      // the service publishes the outcome itself.
      auto o = std::make_shared<JobOutcome>();
      o->state = JobState::kCancelled;
      o->stats = rec->stats;
      o->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
      finishAndAccount(rec, std::move(o));
      return true;
    }
    if (rec->state.load(std::memory_order_acquire) == JobState::kRunning) {
      // The master control thread polls this flag and stops the job at
      // the next block boundary.
      rec->cancelRequested.store(true, std::memory_order_release);
      return true;
    }
    return false;  // already terminal
  }

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    queue_.close("service draining");
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return activeJobs_ == 0; });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    queue_.close("service draining");
    if (cluster_.joinable()) {
      // Graceful: the queue still drains, so the master finishes every
      // admitted job before the feed reports end-of-jobs.
      cluster_.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }

  ServiceMetrics metrics() const {
    cache::ResultCache::Stats cs;
    if (cache_ != nullptr) {
      cs = cache_->stats();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceMetrics m;
    m.policy = jobSchedPolicyName(cfg_.policy);
    m.kernelPath = lastKernelPath_;
    m.tiles = lastTiles_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.cancelled = cancelled_;
    m.failed = failed_;
    m.queueDepth = static_cast<std::int64_t>(queue_.depth());
    m.jobRunning = running_ != nullptr;
    m.uptimeSeconds = uptime_.elapsedSeconds();
    m.totalQueueWaitSeconds = totalQueueWait_;
    m.maxQueueWaitSeconds = maxQueueWait_;
    m.totalExecSeconds = totalExec_;
    m.totalTimeToFirstBlockSeconds = totalTtfb_;
    m.timeToFirstBlockSamples = ttfbSamples_;
    m.messages = messages_;
    m.bytes = bytes_;
    m.bytesViaMaster = bytesViaMaster_;
    m.bytesPeerToPeer = bytesPeerToPeer_;
    m.copiesAvoided = copiesAvoided_;
    m.zeroCopyBytes = zeroCopyBytes_;
    m.fragmentsSent = fragmentsSent_;
    m.fragmentsApplied = fragmentsApplied_;
    m.blocksStartedEarly = blocksStartedEarly_;
    m.streamOverlapSeconds = streamOverlapSeconds_;
    m.retries = retries_;
    m.subTaskRequeues = subTaskRequeues_;
    m.ownershipInvalidations = ownershipInvalidations_;
    m.placementSpills = placementSpills_;
    m.tasksStolen = tasksStolen_;
    m.quarantines = quarantines_;
    m.heartbeatMisses = heartbeatMisses_;
    m.faultsTriggered = faultsTriggered_;
    m.jobRetries = jobRetries_;
    m.recoveredBlocks = recoveredBlocks_;
    m.corruptBlocks = corruptBlocks_;
    m.decodeErrors = decodeErrors_;
    m.masterRestarts = masterRestarts_;
    m.recoverySeconds = recoverySeconds_;
    m.cacheHits = cacheHits_;
    m.cacheMisses = cacheMisses_;
    m.cacheBytes = cs.bytes;
    m.cacheEntries = cs.entries;
    m.cacheEvictions = cs.evictions;
    m.dedupCoalesced = dedupCoalesced_;
    m.shedJobs = shedJobs_;
    m.deadlineMisses = deadlineMisses_;
    return m;
  }

  const ServiceConfig& config() const { return cfg_; }

  std::shared_ptr<cache::ResultCache> resultCache() const { return cache_; }

  // --- JobFeed (called from the master rank's thread) -------------------

  std::optional<ServiceJob> nextJob() override {
    std::shared_ptr<JobRecord> rec = queue_.take();
    if (rec == nullptr) {
      return std::nullopt;  // closed and drained
    }
    // Retry backoff: a re-queued job carries its not-before gate; honour
    // it here on the master thread (only this feed dispatches, so nothing
    // else can run meanwhile anyway — the cluster is a serial resource).
    const auto now = std::chrono::steady_clock::now();
    if (rec->notBefore > now) {
      std::this_thread::sleep_for(rec->notBefore - now);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++rec->attempts;
    rec->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
    rec->stats.dispatchSeq = dispatchCounter_++;
    rec->matrix.emplace(
        CellRect{0, 0, rec->problem->rows(), rec->problem->cols()},
        rec->problem->boundaryFn());
    running_ = rec;
    // Publish before JobStart goes out, so slaves can resolve the id.
    directory_[rec->id] = rec;
    return ServiceJob{rec->id, rec->problem.get(), &*rec->matrix,
                      &rec->cancelRequested, rec->plan.get()};
  }

  void jobFinished(JobId id, MasterJobOutcome mo) override {
    std::shared_ptr<JobRecord> rec;
    std::vector<std::shared_ptr<JobRecord>> shedVictims;
    bool requeued = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rec = std::move(running_);
      running_.reset();
      EASYHPS_EXPECTS(rec != nullptr && rec->id == id);
      directory_.erase(id);

      if (mo.failed && rec->attempts < rec->options.maxAttempts &&
          rec->cancelRequested.load(std::memory_order_acquire) == false) {
        // Exponential backoff: attempt k (1-based) failed → wait
        // retryBackoff * 2^(k-1) before dispatching attempt k+1.
        rec->matrix.reset();
        rec->notBefore =
            std::chrono::steady_clock::now() +
            rec->options.retryBackoff * (std::int64_t{1}
                                         << (rec->attempts - 1));
        rec->state.store(JobState::kQueued, std::memory_order_release);
        ++jobRetries_;
        EASYHPS_LOG_WARN("serve: job " << id << " attempt " << rec->attempts
                                       << " failed (" << mo.failureReason
                                       << "); re-queueing");
        JobQueue::Offer off = queue_.offer(rec);
        if (off.admitted) {
          requeued = true;  // a later jobFinished settles the ticket(s)
          shedVictims = std::move(off.shed);
        } else {
          // Queue closed while the job was in flight: terminal below.
          rec->state.store(JobState::kRunning, std::memory_order_release);
        }
      }
    }
    if (requeued) {
      publishShedVictims(shedVictims);
      return;
    }

    if (rec->isExec) {
      finishExec(rec, std::move(mo));
      return;
    }

    auto o = std::make_shared<JobOutcome>();
    if (mo.failed) {
      rec->matrix.reset();
      o->state = JobState::kFailed;
      o->stats = rec->stats;
      o->stats.run = mo.stats;
      o->stats.run.faultsTriggered = rec->plan->triggered();
      o->error = mo.failureReason;
      o->failure = JobFailure{mo.failureReason, rec->attempts};
    } else {
      o->state = mo.cancelled ? JobState::kCancelled : JobState::kDone;
      o->stats = rec->stats;
      o->stats.execSeconds = mo.stats.elapsedSeconds;
      o->stats.timeToFirstBlockSeconds = mo.timeToFirstBlockSeconds;
      o->stats.run = mo.stats;
      o->stats.run.faultsTriggered = rec->plan->triggered();
      if (!mo.cancelled) {
        o->matrix = std::move(rec->matrix);
        if (rec->cacheKey.has_value() && cache_ != nullptr) {
          cache_->insert(*rec->cacheKey, *o->matrix,
                         o->stats.run.tableChecksum);
        }
      }
      rec->matrix.reset();
    }
    finishAndAccount(rec, std::move(o));
  }

  // --- SlaveJobDirectory (called from slave rank threads) ---------------

  Entry find(JobId job) const override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = directory_.find(job);
    EASYHPS_CHECK(it != directory_.end(),
                  "slave asked for unknown job " + std::to_string(job));
    return Entry{it->second->problem.get(), it->second->plan.get()};
  }

 private:
  /// One coalesced execution: the queued/running exec record plus every
  /// ticket waiting on its result.  Guarded by mutex_.
  struct InflightEntry {
    std::shared_ptr<JobRecord> exec;
    std::vector<std::shared_ptr<JobRecord>> waiters;
  };

  static ServiceConfig validated(ServiceConfig cfg) {
    applySchedulerEnv(cfg.runtime);
    cfg.validate();
    return cfg;
  }

  double sinceSeconds(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t)
        .count();
  }

  CoreAdmission rejectOptions(std::string reason) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    return {nullptr, std::move(reason)};
  }

  CoreAdmission rejection(JobQueue::Offer off) {
    CoreAdmission a{nullptr, std::move(off.reason), off.overloaded, {}};
    if (a.overloaded) {
      a.retryAfter = cfg_.retryAfterHint;
    }
    return a;
  }

  /// Cache hit: the ticket's outcome is published right here — the job
  /// never touches the queue or the cluster.  Drain/stop still gate it:
  /// "rejected from the moment drain begins" holds for hits too.
  CoreAdmission admitCacheHit(
      std::shared_ptr<JobRecord> rec,
      std::shared_ptr<const cache::CachedResult> hit) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_ || stopped_) {
        ++rejected_;
        return {nullptr, "service draining"};
      }
      ++accepted_;
      ++activeJobs_;
      ++cacheHits_;
    }
    auto o = std::make_shared<JobOutcome>();
    o->state = JobState::kDone;
    o->matrix = hit->matrix;  // copy; the cached entry stays immutable
    o->stats = rec->stats;
    o->stats.cacheHit = true;
    o->stats.run.servedFromCache = true;
    o->stats.run.tableChecksum = hit->tableChecksum;
    finishAndAccount(rec, std::move(o));
    return {std::move(rec), ""};
  }

  /// Cache miss with dedup: attach to the in-flight group for this key,
  /// or become its leader by queueing an internal exec record.
  CoreAdmission admitDedup(std::shared_ptr<JobRecord> rec) {
    rec->coalesceWaiter = true;
    std::shared_ptr<JobRecord> exec;
    JobQueue::Offer off;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_ || draining_) {
        ++rejected_;
        return {nullptr, "service draining"};
      }
      auto it = inflight_.find(*rec->cacheKey);
      if (it != inflight_.end()) {
        rec->stats.coalesced = true;
        it->second.waiters.push_back(rec);
        ++accepted_;
        ++activeJobs_;
        ++dedupCoalesced_;
        return {std::move(rec), ""};
      }
      // Leader: build the exec record.  It shares the problem/options but
      // is owned by the service — no ticket, not counted in activeJobs_.
      exec = std::make_shared<JobRecord>();
      exec->id = nextId_++;
      exec->seq = nextSeq_++;
      exec->options = rec->options;
      exec->options.name += "#exec";
      exec->plan = rec->plan;  // empty fault plan (cacheable ⇒ fault-free)
      exec->problem = rec->problem;
      exec->estimatedOps = rec->estimatedOps;
      exec->submitted = rec->submitted;
      exec->deadline = rec->deadline;
      exec->cacheKey = rec->cacheKey;
      exec->isExec = true;
      off = queue_.offer(exec);
      if (off.admitted) {
        inflight_[*rec->cacheKey] = InflightEntry{exec, {rec}};
        ++accepted_;
        ++activeJobs_;
        ++cacheMisses_;
      } else {
        ++rejected_;
      }
    }
    publishShedVictims(off.shed);
    if (!off.admitted) {
      return rejection(std::move(off));
    }
    return {std::move(rec), ""};
  }

  /// Ticket cancel of a dedup waiter: detaches only that ticket.  The
  /// shared exec keeps running for the remaining waiters; only the last
  /// detaching waiter takes the exec down with it.
  bool cancelWaiter(const std::shared_ptr<JobRecord>& rec) {
    std::shared_ptr<JobRecord> execToCancel;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(*rec->cacheKey);
      if (it == inflight_.end()) {
        return false;  // exec already finished; outcome is being fanned
      }
      auto& waiters = it->second.waiters;
      auto pos = std::find(waiters.begin(), waiters.end(), rec);
      if (pos == waiters.end()) {
        return false;  // already detached
      }
      waiters.erase(pos);
      if (waiters.empty()) {
        execToCancel = it->second.exec;
        inflight_.erase(it);
      }
    }
    auto o = std::make_shared<JobOutcome>();
    o->state = JobState::kCancelled;
    o->stats = rec->stats;
    o->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
    finishAndAccount(rec, std::move(o));
    if (execToCancel != nullptr) {
      // Nobody is waiting anymore.  A queued exec just disappears (no
      // ticket to settle); a running one stops at the next block
      // boundary, and finishExec finds no waiters to fan out to.
      if (!queue_.cancelQueued(*execToCancel)) {
        execToCancel->cancelRequested.store(true, std::memory_order_release);
      }
    }
    return true;
  }

  /// Terminal outcome of an exec record: detach the in-flight group and
  /// fan the result out to every waiter.  The exec itself has no ticket
  /// and is never finish()ed.
  void finishExec(const std::shared_ptr<JobRecord>& rec,
                  MasterJobOutcome mo) {
    std::vector<std::shared_ptr<JobRecord>> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(*rec->cacheKey);
      if (it != inflight_.end() && it->second.exec == rec) {
        waiters = std::move(it->second.waiters);
        inflight_.erase(it);
      }
    }

    std::optional<Window> matrix;
    if (!mo.failed && !mo.cancelled) {
      matrix = std::move(rec->matrix);
      if (matrix.has_value() && cache_ != nullptr) {
        cache_->insert(*rec->cacheKey, *matrix, mo.stats.tableChecksum);
      }
    }
    rec->matrix.reset();

    for (std::size_t i = 0; i < waiters.size(); ++i) {
      const auto& w = waiters[i];
      auto o = std::make_shared<JobOutcome>();
      o->stats = w->stats;  // keeps the per-waiter coalesced flag
      o->stats.execSeconds = mo.stats.elapsedSeconds;
      o->stats.timeToFirstBlockSeconds = mo.timeToFirstBlockSeconds;
      o->stats.dispatchSeq = rec->stats.dispatchSeq;
      o->stats.queueWaitSeconds = std::max(
          0.0, sinceSeconds(w->submitted) - mo.stats.elapsedSeconds);
      o->stats.run = mo.stats;
      if (mo.failed) {
        o->state = JobState::kFailed;
        o->error = mo.failureReason;
        o->failure = JobFailure{mo.failureReason, rec->attempts};
      } else if (mo.cancelled) {
        o->state = JobState::kCancelled;
      } else {
        o->state = JobState::kDone;
        o->matrix = matrix;  // per-ticket copy of the solved table
      }
      // The run executed once: its substrate counters roll into the
      // service totals once, through the first waiter only.
      finishAndAccount(w, std::move(o), /*accountRun=*/i == 0);
    }
  }

  /// Publishes kRejectedOverload outcomes for watermark-shed records.
  /// Exec victims fan the rejection out to their whole dedup group.
  void publishShedVictims(
      const std::vector<std::shared_ptr<JobRecord>>& victims) {
    for (const auto& victim : victims) {
      std::vector<std::shared_ptr<JobRecord>> tickets;
      if (victim->isExec) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = inflight_.find(*victim->cacheKey);
        if (it != inflight_.end() && it->second.exec == victim) {
          tickets = std::move(it->second.waiters);
          inflight_.erase(it);
        }
      } else {
        tickets.push_back(victim);
      }
      for (const auto& rec : tickets) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++shedJobs_;
        }
        auto o = std::make_shared<JobOutcome>();
        o->state = JobState::kFailed;
        o->stats = rec->stats;
        o->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
        o->error = "shed under overload (queue past watermark)";
        o->failure = JobFailure{o->error, 0, FailureCode::kRejectedOverload,
                                cfg_.retryAfterHint};
        finishAndAccount(rec, std::move(o));
      }
    }
  }

  /// Publishes a terminal outcome and rolls it into the service counters.
  /// `accountRun` gates the per-run substrate counters so a fanned-out
  /// dedup group charges its one execution exactly once.
  void finishAndAccount(const std::shared_ptr<JobRecord>& rec,
                        std::shared_ptr<JobOutcome> o,
                        bool accountRun = true) {
    if (rec->deadline.has_value() && o->state != JobState::kCancelled &&
        std::chrono::steady_clock::now() > *rec->deadline) {
      o->stats.missedDeadline = true;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      switch (o->state) {
        case JobState::kDone:
          ++completed_;
          break;
        case JobState::kCancelled:
          ++cancelled_;
          break;
        default:
          ++failed_;
      }
      if (o->stats.missedDeadline) {
        ++deadlineMisses_;
      }
      totalQueueWait_ += o->stats.queueWaitSeconds;
      maxQueueWait_ = std::max(maxQueueWait_, o->stats.queueWaitSeconds);
      totalExec_ += o->stats.execSeconds;
      if (o->stats.timeToFirstBlockSeconds >= 0.0) {
        totalTtfb_ += o->stats.timeToFirstBlockSeconds;
        ++ttfbSamples_;
      }
      if (accountRun) {
        messages_ += o->stats.run.messages;
        bytes_ += o->stats.run.bytes;
        bytesViaMaster_ += o->stats.run.bytesViaMaster;
        bytesPeerToPeer_ += o->stats.run.bytesPeerToPeer;
        copiesAvoided_ += o->stats.run.copiesAvoided;
        zeroCopyBytes_ += o->stats.run.zeroCopyBytes;
        fragmentsSent_ += o->stats.run.fragmentsSent;
        fragmentsApplied_ += o->stats.run.fragmentsApplied;
        blocksStartedEarly_ += o->stats.run.blocksStartedEarly;
        streamOverlapSeconds_ += o->stats.run.streamOverlapSeconds;
        retries_ += o->stats.run.retries;
        subTaskRequeues_ += o->stats.run.subTaskRequeues;
        ownershipInvalidations_ += o->stats.run.ownershipInvalidations;
        placementSpills_ += o->stats.run.placementSpills;
        tasksStolen_ += o->stats.run.tasksStolen;
        quarantines_ += o->stats.run.quarantines;
        heartbeatMisses_ += o->stats.run.heartbeatMisses;
        faultsTriggered_ += o->stats.run.faultsTriggered;
        recoveredBlocks_ += o->stats.run.blocksRecovered;
        corruptBlocks_ += o->stats.run.corruptBlocks;
        decodeErrors_ += o->stats.run.decodeErrors;
        masterRestarts_ += o->stats.run.masterRestarts;
        recoverySeconds_ += o->stats.run.recoverySeconds;
        if (!o->stats.run.kernelPathName.empty()) {
          lastKernelPath_ = o->stats.run.kernelPathName;
          lastTiles_ = o->stats.run.kernelTiles;
        }
      }
      EASYHPS_EXPECTS(activeJobs_ >= 1);
      --activeJobs_;
    }
    rec->finish(std::move(o));
    cv_.notify_all();
  }

  /// Cluster-abort path: the service cannot run anything anymore; every
  /// in-flight and queued job fails with the cluster's reason.
  void failService(std::string reason) {
    EASYHPS_LOG_WARN("serve: cluster failed: " << reason);
    std::vector<std::shared_ptr<JobRecord>> toFail;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      failure_ = reason;
      stopped_ = true;
      if (running_ != nullptr) {
        directory_.erase(running_->id);
        toFail.push_back(std::move(running_));
        running_.reset();
      }
      // Dedup groups: every waiter fails with the service; the exec
      // records themselves (ticketless) are dropped.
      for (auto& [key, entry] : inflight_) {
        for (auto& w : entry.waiters) {
          toFail.push_back(std::move(w));
        }
      }
      inflight_.clear();
    }
    queue_.close("service failed: " + reason);
    for (auto& rec : queue_.drainRemaining()) {
      toFail.push_back(std::move(rec));
    }
    for (const auto& rec : toFail) {
      if (rec->isExec) {
        continue;  // no ticket; its waiters were collected above
      }
      auto o = std::make_shared<JobOutcome>();
      o->state = JobState::kFailed;
      o->stats = rec->stats;
      o->error = reason;
      o->failure = JobFailure{reason, rec->attempts,
                              FailureCode::kServiceFailed};
      finishAndAccount(rec, std::move(o));
    }
  }

  ServiceConfig cfg_;
  std::shared_ptr<cache::ResultCache> cache_;
  JobQueue queue_;
  std::thread cluster_;
  Stopwatch uptime_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<JobId, std::shared_ptr<JobRecord>> directory_;
  std::unordered_map<cache::CacheKey, InflightEntry, cache::CacheKeyHasher>
      inflight_;
  std::shared_ptr<JobRecord> running_;
  JobId nextId_ = 1;
  std::int64_t nextSeq_ = 0;
  std::int64_t dispatchCounter_ = 0;
  std::int64_t activeJobs_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  std::string failure_;

  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t cancelled_ = 0;
  std::int64_t failed_ = 0;
  double totalQueueWait_ = 0.0;
  double maxQueueWait_ = 0.0;
  double totalExec_ = 0.0;
  double totalTtfb_ = 0.0;
  std::int64_t ttfbSamples_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t bytesViaMaster_ = 0;
  std::uint64_t bytesPeerToPeer_ = 0;
  std::uint64_t copiesAvoided_ = 0;
  std::uint64_t zeroCopyBytes_ = 0;
  std::int64_t fragmentsSent_ = 0;
  std::int64_t fragmentsApplied_ = 0;
  std::int64_t blocksStartedEarly_ = 0;
  double streamOverlapSeconds_ = 0.0;
  std::int64_t retries_ = 0;
  std::int64_t subTaskRequeues_ = 0;
  std::int64_t ownershipInvalidations_ = 0;
  std::int64_t placementSpills_ = 0;
  std::int64_t tasksStolen_ = 0;
  std::int64_t quarantines_ = 0;
  std::int64_t heartbeatMisses_ = 0;
  std::int64_t faultsTriggered_ = 0;
  std::int64_t jobRetries_ = 0;
  std::int64_t recoveredBlocks_ = 0;
  std::int64_t corruptBlocks_ = 0;
  std::int64_t decodeErrors_ = 0;
  std::int64_t masterRestarts_ = 0;
  double recoverySeconds_ = 0.0;
  std::int64_t cacheHits_ = 0;
  std::int64_t cacheMisses_ = 0;
  std::int64_t dedupCoalesced_ = 0;
  std::int64_t shedJobs_ = 0;
  std::int64_t deadlineMisses_ = 0;
  std::string lastKernelPath_;  ///< kernel tier of the last finished job
  std::string lastTiles_;       ///< autotuned tile memo at that point
};

}  // namespace detail

// --- JobTicket -----------------------------------------------------------

JobTicket::JobTicket(std::shared_ptr<detail::ServiceCore> core,
                     std::shared_ptr<JobRecord> record)
    : core_(std::move(core)), record_(std::move(record)) {}

JobId JobTicket::id() const { return record_->id; }

const std::string& JobTicket::name() const { return record_->options.name; }

JobState JobTicket::state() const {
  return record_->state.load(std::memory_order_acquire);
}

std::shared_ptr<const JobOutcome> JobTicket::wait() {
  return record_->await();
}

std::shared_ptr<const JobOutcome> JobTicket::waitFor(
    std::chrono::milliseconds d) {
  return record_->awaitFor(d);
}

bool JobTicket::cancel() { return core_->cancel(record_); }

// --- Service -------------------------------------------------------------

Service::Service(ServiceConfig cfg)
    : core_(std::make_shared<detail::ServiceCore>(std::move(cfg))) {
  core_->start();
}

Service::~Service() {
  try {
    core_->shutdown();
  } catch (...) {
    // Failures already surfaced through job outcomes.
  }
}

Admission Service::trySubmit(std::shared_ptr<const DpProblem> problem,
                             JobOptions options) {
  auto a = core_->trySubmit(std::move(problem), std::move(options));
  if (a.rec == nullptr) {
    return Admission{std::nullopt, std::move(a.reason), a.overloaded,
                     a.retryAfter};
  }
  return Admission{JobTicket(core_, std::move(a.rec)), "", false, {}};
}

JobTicket Service::submit(std::shared_ptr<const DpProblem> problem,
                          JobOptions options) {
  Admission a = trySubmit(std::move(problem), std::move(options));
  if (!a.accepted()) {
    throw AdmissionError("job rejected: " + a.reason);
  }
  return *std::move(a.ticket);
}

void Service::drain() { core_->drain(); }

void Service::shutdown() { core_->shutdown(); }

ServiceMetrics Service::metrics() const { return core_->metrics(); }

const ServiceConfig& Service::config() const { return core_->config(); }

std::shared_ptr<cache::ResultCache> Service::resultCache() const {
  return core_->resultCache();
}

}  // namespace easyhps::serve

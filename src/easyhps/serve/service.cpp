#include "easyhps/serve/service.hpp"

#include <thread>
#include <unordered_map>
#include <vector>

#include "easyhps/msg/cluster.hpp"
#include "easyhps/runtime/master.hpp"
#include "easyhps/runtime/slave.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/serve/job_queue.hpp"
#include "easyhps/util/clock.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps::serve {
namespace detail {

/// The service engine.  Owns the job queue and the cluster thread;
/// implements JobFeed for the master rank and SlaveJobDirectory for the
/// slave ranks.  Kept alive by the Service *and* every outstanding
/// JobTicket, so tickets stay valid after the Service is destroyed.
class ServiceCore final : public JobFeed, public SlaveJobDirectory {
 public:
  explicit ServiceCore(ServiceConfig cfg)
      : cfg_(std::move(cfg)),
        queue_(makeJobScheduler(cfg_.policy), cfg_.maxQueueDepth) {
    cfg_.runtime.validate();
    EASYHPS_EXPECTS(cfg_.maxQueueDepth >= 1);
  }

  ~ServiceCore() override {
    try {
      shutdown();
    } catch (...) {
      // Destructor: the cluster already reported its failure through the
      // job outcomes; nothing useful left to do with it here.
    }
  }

  void start() {
    cluster_ = std::thread([this] {
      try {
        msg::Cluster::run(
            cfg_.runtime.slaveCount + 1,
            [this](msg::Comm& comm) {
              if (comm.rank() == 0) {
                runMasterService(comm, cfg_.runtime, *this);
              } else {
                runSlaveService(comm, cfg_.runtime, *this);
              }
            },
            wire::makeChaosTransport(cfg_.runtime.transportChaos,
                                     cfg_.runtime.slaveCount + 1));
      } catch (const std::exception& e) {
        failService(e.what());
      } catch (...) {
        failService("unknown cluster failure");
      }
    });
  }

  std::pair<std::shared_ptr<JobRecord>, std::string> trySubmit(
      std::shared_ptr<const DpProblem> problem, JobOptions options) {
    EASYHPS_EXPECTS(problem != nullptr);
    EASYHPS_EXPECTS(options.weight > 0.0);

    if (options.maxAttempts < 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++rejected_;
      return {nullptr, "maxAttempts must be >= 1"};
    }
    for (const fault::FaultSpec& spec : options.faults) {
      if (spec.kind == fault::FaultKind::kSlaveDeath &&
          !(cfg_.runtime.enableLiveness && cfg_.runtime.enableFaultTolerance)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++rejected_;
        return {nullptr,
                "kSlaveDeath faults require enableLiveness and "
                "enableFaultTolerance in the runtime config"};
      }
    }

    auto rec = std::make_shared<JobRecord>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Pre-queue rejections: the queue's close reason says "draining"
      // for the whole drain-then-shutdown sequence (first reason wins),
      // so report the stronger condition here.
      if (stopped_) {
        ++rejected_;
        return {nullptr, failure_.empty() ? "service stopped"
                                          : "service failed: " + failure_};
      }
      rec->id = nextId_++;
      rec->seq = nextSeq_++;
    }
    if (options.name.empty()) {
      options.name = "job-" + std::to_string(rec->id);
    }
    rec->options = std::move(options);
    rec->plan = std::make_shared<fault::FaultPlan>(rec->options.faults,
                                                   rec->options.chaosSeed);
    rec->estimatedOps = problem->blockOps(
        CellRect{0, 0, problem->rows(), problem->cols()});
    rec->problem = std::move(problem);
    rec->submitted = std::chrono::steady_clock::now();

    if (auto rejection = queue_.offer(rec)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++rejected_;
      return {nullptr, *rejection};
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++accepted_;
    ++activeJobs_;
    return {std::move(rec), ""};
  }

  bool cancel(const std::shared_ptr<JobRecord>& rec) {
    if (queue_.cancelQueued(*rec)) {
      // Cancelled before dispatch: the job never reaches the cluster, so
      // the service publishes the outcome itself.
      auto o = std::make_shared<JobOutcome>();
      o->state = JobState::kCancelled;
      o->stats = rec->stats;
      o->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
      finishAndAccount(rec, std::move(o));
      return true;
    }
    if (rec->state.load(std::memory_order_acquire) == JobState::kRunning) {
      // The master control thread polls this flag and stops the job at
      // the next block boundary.
      rec->cancelRequested.store(true, std::memory_order_release);
      return true;
    }
    return false;  // already terminal
  }

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    queue_.close("service draining");
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return activeJobs_ == 0; });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    queue_.close("service draining");
    if (cluster_.joinable()) {
      // Graceful: the queue still drains, so the master finishes every
      // admitted job before the feed reports end-of-jobs.
      cluster_.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }

  ServiceMetrics metrics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceMetrics m;
    m.policy = jobSchedPolicyName(cfg_.policy);
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.cancelled = cancelled_;
    m.failed = failed_;
    m.queueDepth = static_cast<std::int64_t>(queue_.depth());
    m.jobRunning = running_ != nullptr;
    m.uptimeSeconds = uptime_.elapsedSeconds();
    m.totalQueueWaitSeconds = totalQueueWait_;
    m.maxQueueWaitSeconds = maxQueueWait_;
    m.totalExecSeconds = totalExec_;
    m.totalTimeToFirstBlockSeconds = totalTtfb_;
    m.timeToFirstBlockSamples = ttfbSamples_;
    m.messages = messages_;
    m.bytes = bytes_;
    m.bytesViaMaster = bytesViaMaster_;
    m.bytesPeerToPeer = bytesPeerToPeer_;
    m.copiesAvoided = copiesAvoided_;
    m.zeroCopyBytes = zeroCopyBytes_;
    m.retries = retries_;
    m.subTaskRequeues = subTaskRequeues_;
    m.ownershipInvalidations = ownershipInvalidations_;
    m.quarantines = quarantines_;
    m.heartbeatMisses = heartbeatMisses_;
    m.faultsTriggered = faultsTriggered_;
    m.jobRetries = jobRetries_;
    return m;
  }

  const ServiceConfig& config() const { return cfg_; }

  // --- JobFeed (called from the master rank's thread) -------------------

  std::optional<ServiceJob> nextJob() override {
    std::shared_ptr<JobRecord> rec = queue_.take();
    if (rec == nullptr) {
      return std::nullopt;  // closed and drained
    }
    // Retry backoff: a re-queued job carries its not-before gate; honour
    // it here on the master thread (only this feed dispatches, so nothing
    // else can run meanwhile anyway — the cluster is a serial resource).
    const auto now = std::chrono::steady_clock::now();
    if (rec->notBefore > now) {
      std::this_thread::sleep_for(rec->notBefore - now);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++rec->attempts;
    rec->stats.queueWaitSeconds = sinceSeconds(rec->submitted);
    rec->stats.dispatchSeq = dispatchCounter_++;
    rec->matrix.emplace(
        CellRect{0, 0, rec->problem->rows(), rec->problem->cols()},
        rec->problem->boundaryFn());
    running_ = rec;
    // Publish before JobStart goes out, so slaves can resolve the id.
    directory_[rec->id] = rec;
    return ServiceJob{rec->id, rec->problem.get(), &*rec->matrix,
                      &rec->cancelRequested, rec->plan.get()};
  }

  void jobFinished(JobId id, MasterJobOutcome mo) override {
    std::shared_ptr<JobRecord> rec;
    auto o = std::make_shared<JobOutcome>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rec = std::move(running_);
      running_.reset();
      EASYHPS_EXPECTS(rec != nullptr && rec->id == id);
      directory_.erase(id);

      if (mo.failed) {
        rec->matrix.reset();
        if (rec->attempts < rec->options.maxAttempts &&
            rec->cancelRequested.load(std::memory_order_acquire) == false) {
          // Exponential backoff: attempt k (1-based) failed → wait
          // retryBackoff * 2^(k-1) before dispatching attempt k+1.
          rec->notBefore =
              std::chrono::steady_clock::now() +
              rec->options.retryBackoff * (std::int64_t{1}
                                           << (rec->attempts - 1));
          rec->state.store(JobState::kQueued, std::memory_order_release);
          ++jobRetries_;
          EASYHPS_LOG_WARN("serve: job " << id << " attempt "
                                         << rec->attempts << " failed ("
                                         << mo.failureReason
                                         << "); re-queueing");
          if (!queue_.offer(rec)) {
            return;  // re-admitted; a later jobFinished settles the ticket
          }
          // Queue closed while the job was in flight: fall through to the
          // terminal failure below.
          rec->state.store(JobState::kRunning, std::memory_order_release);
        }
        o->state = JobState::kFailed;
        o->stats = rec->stats;
        o->stats.run = mo.stats;
        o->stats.run.faultsTriggered = rec->plan->triggered();
        o->error = mo.failureReason;
        o->failure = JobFailure{mo.failureReason, rec->attempts};
      } else {
        o->state = mo.cancelled ? JobState::kCancelled : JobState::kDone;
        o->stats = rec->stats;
        o->stats.execSeconds = mo.stats.elapsedSeconds;
        o->stats.timeToFirstBlockSeconds = mo.timeToFirstBlockSeconds;
        o->stats.run = mo.stats;
        o->stats.run.faultsTriggered = rec->plan->triggered();
        if (!mo.cancelled) {
          o->matrix = std::move(rec->matrix);
        }
        rec->matrix.reset();
      }
    }
    finishAndAccount(rec, std::move(o));
  }

  // --- SlaveJobDirectory (called from slave rank threads) ---------------

  Entry find(JobId job) const override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = directory_.find(job);
    EASYHPS_CHECK(it != directory_.end(),
                  "slave asked for unknown job " + std::to_string(job));
    return Entry{it->second->problem.get(), it->second->plan.get()};
  }

 private:
  double sinceSeconds(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t)
        .count();
  }

  /// Publishes a terminal outcome and rolls it into the service counters.
  void finishAndAccount(const std::shared_ptr<JobRecord>& rec,
                        std::shared_ptr<JobOutcome> o) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      switch (o->state) {
        case JobState::kDone:
          ++completed_;
          break;
        case JobState::kCancelled:
          ++cancelled_;
          break;
        default:
          ++failed_;
      }
      totalQueueWait_ += o->stats.queueWaitSeconds;
      maxQueueWait_ = std::max(maxQueueWait_, o->stats.queueWaitSeconds);
      totalExec_ += o->stats.execSeconds;
      if (o->stats.timeToFirstBlockSeconds >= 0.0) {
        totalTtfb_ += o->stats.timeToFirstBlockSeconds;
        ++ttfbSamples_;
      }
      messages_ += o->stats.run.messages;
      bytes_ += o->stats.run.bytes;
      bytesViaMaster_ += o->stats.run.bytesViaMaster;
      bytesPeerToPeer_ += o->stats.run.bytesPeerToPeer;
      copiesAvoided_ += o->stats.run.copiesAvoided;
      zeroCopyBytes_ += o->stats.run.zeroCopyBytes;
      retries_ += o->stats.run.retries;
      subTaskRequeues_ += o->stats.run.subTaskRequeues;
      ownershipInvalidations_ += o->stats.run.ownershipInvalidations;
      quarantines_ += o->stats.run.quarantines;
      heartbeatMisses_ += o->stats.run.heartbeatMisses;
      faultsTriggered_ += o->stats.run.faultsTriggered;
      EASYHPS_EXPECTS(activeJobs_ >= 1);
      --activeJobs_;
    }
    rec->finish(std::move(o));
    cv_.notify_all();
  }

  /// Cluster-abort path: the service cannot run anything anymore; every
  /// in-flight and queued job fails with the cluster's reason.
  void failService(std::string reason) {
    EASYHPS_LOG_WARN("serve: cluster failed: " << reason);
    std::vector<std::shared_ptr<JobRecord>> toFail;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      failure_ = reason;
      stopped_ = true;
      if (running_ != nullptr) {
        directory_.erase(running_->id);
        toFail.push_back(std::move(running_));
        running_.reset();
      }
    }
    queue_.close("service failed: " + reason);
    for (auto& rec : queue_.drainRemaining()) {
      toFail.push_back(std::move(rec));
    }
    for (const auto& rec : toFail) {
      auto o = std::make_shared<JobOutcome>();
      o->state = JobState::kFailed;
      o->stats = rec->stats;
      o->error = reason;
      o->failure = JobFailure{reason, rec->attempts};
      finishAndAccount(rec, std::move(o));
    }
  }

  ServiceConfig cfg_;
  JobQueue queue_;
  std::thread cluster_;
  Stopwatch uptime_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<JobId, std::shared_ptr<JobRecord>> directory_;
  std::shared_ptr<JobRecord> running_;
  JobId nextId_ = 1;
  std::int64_t nextSeq_ = 0;
  std::int64_t dispatchCounter_ = 0;
  std::int64_t activeJobs_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  std::string failure_;

  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t cancelled_ = 0;
  std::int64_t failed_ = 0;
  double totalQueueWait_ = 0.0;
  double maxQueueWait_ = 0.0;
  double totalExec_ = 0.0;
  double totalTtfb_ = 0.0;
  std::int64_t ttfbSamples_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t bytesViaMaster_ = 0;
  std::uint64_t bytesPeerToPeer_ = 0;
  std::uint64_t copiesAvoided_ = 0;
  std::uint64_t zeroCopyBytes_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t subTaskRequeues_ = 0;
  std::int64_t ownershipInvalidations_ = 0;
  std::int64_t quarantines_ = 0;
  std::int64_t heartbeatMisses_ = 0;
  std::int64_t faultsTriggered_ = 0;
  std::int64_t jobRetries_ = 0;
};

}  // namespace detail

// --- JobTicket -----------------------------------------------------------

JobTicket::JobTicket(std::shared_ptr<detail::ServiceCore> core,
                     std::shared_ptr<JobRecord> record)
    : core_(std::move(core)), record_(std::move(record)) {}

JobId JobTicket::id() const { return record_->id; }

const std::string& JobTicket::name() const { return record_->options.name; }

JobState JobTicket::state() const {
  return record_->state.load(std::memory_order_acquire);
}

std::shared_ptr<const JobOutcome> JobTicket::wait() {
  return record_->await();
}

std::shared_ptr<const JobOutcome> JobTicket::waitFor(
    std::chrono::milliseconds d) {
  return record_->awaitFor(d);
}

bool JobTicket::cancel() { return core_->cancel(record_); }

// --- Service -------------------------------------------------------------

Service::Service(ServiceConfig cfg)
    : core_(std::make_shared<detail::ServiceCore>(std::move(cfg))) {
  core_->start();
}

Service::~Service() {
  try {
    core_->shutdown();
  } catch (...) {
    // Failures already surfaced through job outcomes.
  }
}

Admission Service::trySubmit(std::shared_ptr<const DpProblem> problem,
                             JobOptions options) {
  auto [rec, reason] = core_->trySubmit(std::move(problem),
                                        std::move(options));
  if (rec == nullptr) {
    return Admission{std::nullopt, std::move(reason)};
  }
  return Admission{JobTicket(core_, std::move(rec)), ""};
}

JobTicket Service::submit(std::shared_ptr<const DpProblem> problem,
                          JobOptions options) {
  Admission a = trySubmit(std::move(problem), std::move(options));
  if (!a.accepted()) {
    throw AdmissionError("job rejected: " + a.reason);
  }
  return *std::move(a.ticket);
}

void Service::drain() { core_->drain(); }

void Service::shutdown() { core_->shutdown(); }

ServiceMetrics Service::metrics() const { return core_->metrics(); }

const ServiceConfig& Service::config() const { return core_->config(); }

}  // namespace easyhps::serve

#pragma once
/// \file service.hpp
/// easyhps::serve — a persistent multi-job service over the EasyHPS
/// cluster.
///
/// `Runtime::run` boots the master/slave cluster, solves one DP instance
/// and tears everything down.  `serve::Service` boots the cluster **once**
/// and keeps it alive across jobs: callers submit `DpProblem`s from any
/// thread and get back a `JobTicket` to wait on, while the master rank
/// multiplexes the jobs over the same slave ranks (see master.hpp).
///
/// Usage:
///
///   serve::ServiceConfig cfg;
///   cfg.runtime.slaveCount = 3;
///   cfg.policy = serve::JobSchedPolicy::kPriority;
///   serve::Service service(cfg);
///
///   auto p = std::make_shared<easyhps::EditDistance>(a, b);
///   serve::JobTicket t = service.submit(p, {.name = "align", .priority = 5});
///   auto outcome = t.wait();          // JobState::kDone
///   Score d = outcome->matrix->get(p->rows() - 1, p->cols() - 1);
///
///   service.drain();     // let queued jobs finish
///   service.shutdown();  // stop the cluster (also done by ~Service)
///
/// Admission is bounded (`maxQueueDepth`): under overload `trySubmit`
/// returns a rejection reason instead of queueing unboundedly, and
/// `submit` throws `AdmissionError`.

#include <memory>
#include <optional>
#include <string>

#include "easyhps/cache/result_cache.hpp"
#include "easyhps/serve/job.hpp"
#include "easyhps/serve/metrics.hpp"
#include "easyhps/serve/scheduler.hpp"
#include "easyhps/util/error.hpp"

namespace easyhps::serve {

namespace detail {
class ServiceCore;
}

struct ServiceConfig {
  /// Result-cache knobs.  The cache is keyed by content (cache/key.hpp):
  /// only fingerprintable problems submitted without per-job faults
  /// participate, and only when `runtime.assembleFullMatrix` is on.  The
  /// process-wide EASYHPS_CACHE=off escape hatch overrides `enabled`.
  struct CacheConfig {
    bool enabled = true;
    /// LRU byte budget of the result cache (>= 1).
    std::int64_t byteBudget = 256LL << 20;
    /// Coalesce identical concurrent submissions onto one execution whose
    /// result fans out to every ticket.
    bool dedupInFlight = true;
  };

  /// Cluster shape + per-job runtime knobs.  `runtime.faults` is ignored;
  /// faults are per-job (JobOptions::faults).
  RuntimeConfig runtime;
  /// Inter-job scheduling policy.
  JobSchedPolicy policy = JobSchedPolicy::kFifo;
  /// Admission bound on queued (undispatched) jobs.
  std::size_t maxQueueDepth = 64;
  /// Per-class admission bounds (0 = only maxQueueDepth applies).  A full
  /// class rejects with `Admission::overloaded` without starving the
  /// other class's slots.
  std::int64_t maxInteractiveDepth = 0;
  std::int64_t maxBatchDepth = 0;
  /// Load-shedding watermark (0 = off); see QueueLimits::shedWatermark.
  std::size_t shedWatermark = 0;
  /// Retry-after hint attached to overload rejections and shed outcomes.
  std::chrono::milliseconds retryAfterHint{25};

  CacheConfig cache;
  /// Share one ResultCache across services (A/B arms of a bench, a
  /// Runtime and a Service).  When null the service builds its own from
  /// `cache.byteBudget`.
  std::shared_ptr<cache::ResultCache> sharedCache;

  /// Rejects degenerate configurations with the offending field named
  /// (util LogicError); also validates `runtime`.  Called by Service.
  void validate() const;
};

/// Thrown by Service::submit when admission refuses the job.
class AdmissionError : public Error {
 public:
  using Error::Error;
};

/// Caller's handle on a submitted job.  Cheap to copy; all operations are
/// thread-safe.
class JobTicket {
 public:
  JobId id() const;
  const std::string& name() const;
  JobState state() const;

  /// Blocks until the job reaches a terminal state.
  std::shared_ptr<const JobOutcome> wait();

  /// Like wait() with a deadline; nullptr on timeout.
  std::shared_ptr<const JobOutcome> waitFor(std::chrono::milliseconds d);

  /// Requests cancellation.  A queued job is cancelled immediately and
  /// never runs; a running job stops at the next block boundary.  Returns
  /// false if the job already reached a terminal state.
  bool cancel();

 private:
  friend class Service;
  JobTicket(std::shared_ptr<detail::ServiceCore> core,
            std::shared_ptr<JobRecord> record);

  std::shared_ptr<detail::ServiceCore> core_;
  std::shared_ptr<JobRecord> record_;
};

/// Result of a trySubmit: either a ticket or a rejection reason.
struct Admission {
  std::optional<JobTicket> ticket;
  std::string reason;  ///< set when rejected
  /// The rejection was backpressure (queue or class at capacity) rather
  /// than a closed service or invalid options; retrying after
  /// `retryAfter` may succeed.
  bool overloaded = false;
  std::chrono::milliseconds retryAfter{0};

  bool accepted() const { return ticket.has_value(); }
};

class Service {
 public:
  /// Boots the cluster (1 master + runtime.slaveCount slaves) and starts
  /// the service loop.
  explicit Service(ServiceConfig cfg);

  /// Drains and shuts down (idempotent with shutdown()).
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-checked submit; never throws on rejection.
  Admission trySubmit(std::shared_ptr<const DpProblem> problem,
                      JobOptions options = {});

  /// Like trySubmit but throws AdmissionError on rejection.
  JobTicket submit(std::shared_ptr<const DpProblem> problem,
                   JobOptions options = {});

  /// Blocks until every admitted job has reached a terminal state.  New
  /// submissions are rejected from the moment drain begins.
  void drain();

  /// Graceful stop: stops admission, lets queued jobs finish, then sends
  /// End to the slaves and joins the cluster.  Idempotent.
  void shutdown();

  /// Consistent snapshot of the service-level counters.
  ServiceMetrics metrics() const;

  /// The service's result cache; nullptr when caching is disabled.
  std::shared_ptr<cache::ResultCache> resultCache() const;

  const ServiceConfig& config() const;

 private:
  std::shared_ptr<detail::ServiceCore> core_;
};

}  // namespace easyhps::serve

#include "easyhps/serve/job_queue.hpp"

#include "easyhps/util/error.hpp"

namespace easyhps::serve {

JobQueue::JobQueue(std::unique_ptr<JobScheduler> scheduler,
                   std::size_t maxDepth)
    : scheduler_(std::move(scheduler)), maxDepth_(maxDepth) {
  EASYHPS_EXPECTS(scheduler_ != nullptr);
  EASYHPS_EXPECTS(maxDepth_ >= 1);
}

std::optional<std::string> JobQueue::offer(std::shared_ptr<JobRecord> job) {
  EASYHPS_EXPECTS(job != nullptr);
  EASYHPS_EXPECTS(job->state.load() == JobState::kQueued);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return closeReason_;
    }
    if (depth_ >= maxDepth_) {
      return "queue full (depth " + std::to_string(depth_) + "/" +
             std::to_string(maxDepth_) + ")";
    }
    ++depth_;
    scheduler_->enqueue(std::move(job));
  }
  cv_.notify_all();
  return std::nullopt;
}

std::shared_ptr<JobRecord> JobQueue::take() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // The scheduler silently drops cancelled records, so poll it rather
    // than trusting a counter.
    if (std::shared_ptr<JobRecord> job = scheduler_->pick()) {
      EASYHPS_EXPECTS(depth_ >= 1);
      --depth_;
      JobState expected = JobState::kQueued;
      // The cancelled check in pick() and this transition are both under
      // the queue lock, so the CAS cannot lose to cancelQueued.
      const bool ok = job->state.compare_exchange_strong(
          expected, JobState::kRunning, std::memory_order_acq_rel);
      EASYHPS_ENSURES(ok);
      return job;
    }
    if (closed_) {
      return nullptr;  // closed and drained
    }
    cv_.wait(lock);
  }
}

bool JobQueue::cancelQueued(JobRecord& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobState expected = JobState::kQueued;
  if (!job.state.compare_exchange_strong(expected, JobState::kCancelled,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  // The record stays inside the scheduler; pick() drops it later.  Its
  // admission slot frees now, though, so a full queue accepts again.
  EASYHPS_EXPECTS(depth_ >= 1);
  --depth_;
  return true;
}

void JobQueue::close(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return;  // first reason wins
    }
    closed_ = true;
    closeReason_ = std::move(reason);
  }
  cv_.notify_all();
}

std::vector<std::shared_ptr<JobRecord>> JobQueue::drainRemaining() {
  std::vector<std::shared_ptr<JobRecord>> drained;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::shared_ptr<JobRecord> job = scheduler_->pick()) {
    EASYHPS_EXPECTS(depth_ >= 1);
    --depth_;
    JobState expected = JobState::kQueued;
    job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                       std::memory_order_acq_rel);
    drained.push_back(std::move(job));
  }
  return drained;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->size();
}

}  // namespace easyhps::serve

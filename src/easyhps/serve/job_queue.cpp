#include "easyhps/serve/job_queue.hpp"

#include "easyhps/util/error.hpp"

namespace easyhps::serve {

JobQueue::JobQueue(std::unique_ptr<JobScheduler> scheduler,
                   QueueLimits limits)
    : scheduler_(std::move(scheduler)), limits_(limits) {
  EASYHPS_EXPECTS(scheduler_ != nullptr);
  EASYHPS_EXPECTS(limits_.maxDepth >= 1);
}

JobQueue::Offer JobQueue::offer(std::shared_ptr<JobRecord> job) {
  EASYHPS_EXPECTS(job != nullptr);
  EASYHPS_EXPECTS(job->state.load() == JobState::kQueued);
  Offer result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      result.reason = closeReason_;
      return result;
    }
    if (depth_ >= limits_.maxDepth) {
      result.overloaded = true;
      result.reason = "queue full (depth " + std::to_string(depth_) + "/" +
                      std::to_string(limits_.maxDepth) + ")";
      return result;
    }
    const JobClass cls = job->options.jobClass;
    if (cls == JobClass::kInteractive && limits_.maxInteractive > 0 &&
        interactiveDepth_ >= limits_.maxInteractive) {
      result.overloaded = true;
      result.reason = "interactive class full (depth " +
                      std::to_string(interactiveDepth_) + "/" +
                      std::to_string(limits_.maxInteractive) + ")";
      return result;
    }
    if (cls == JobClass::kBatch && limits_.maxBatch > 0 &&
        batchDepth_ >= limits_.maxBatch) {
      result.overloaded = true;
      result.reason = "batch class full (depth " +
                      std::to_string(batchDepth_) + "/" +
                      std::to_string(limits_.maxBatch) + ")";
      return result;
    }
    ++depth_;
    (cls == JobClass::kInteractive ? interactiveDepth_ : batchDepth_)++;
    scheduler_->enqueue(std::move(job));
    result.admitted = true;
    // Watermark shedding: push out the least valuable queued jobs until
    // the depth is back at the watermark.  Victims are flipped to kFailed
    // here (same lock as the cancel CAS, so the transition cannot race);
    // the caller publishes their kRejectedOverload outcomes lock-free.
    while (limits_.shedWatermark > 0 && depth_ > limits_.shedWatermark) {
      std::shared_ptr<JobRecord> victim = scheduler_->shed();
      if (victim == nullptr) {
        break;  // depth_ counts records the scheduler already dropped
      }
      JobState expected = JobState::kQueued;
      const bool ok = victim->state.compare_exchange_strong(
          expected, JobState::kFailed, std::memory_order_acq_rel);
      EASYHPS_ENSURES(ok);  // shed() only returns still-queued records
      releaseSlotLocked(*victim);
      result.shed.push_back(std::move(victim));
    }
  }
  cv_.notify_all();
  return result;
}

std::shared_ptr<JobRecord> JobQueue::take() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // The scheduler silently drops cancelled records, so poll it rather
    // than trusting a counter.
    if (std::shared_ptr<JobRecord> job = scheduler_->pick()) {
      releaseSlotLocked(*job);
      JobState expected = JobState::kQueued;
      // The cancelled check in pick() and this transition are both under
      // the queue lock, so the CAS cannot lose to cancelQueued.
      const bool ok = job->state.compare_exchange_strong(
          expected, JobState::kRunning, std::memory_order_acq_rel);
      EASYHPS_ENSURES(ok);
      return job;
    }
    if (closed_) {
      return nullptr;  // closed and drained
    }
    cv_.wait(lock);
  }
}

bool JobQueue::cancelQueued(JobRecord& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobState expected = JobState::kQueued;
  if (!job.state.compare_exchange_strong(expected, JobState::kCancelled,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  // The record stays inside the scheduler; pick() drops it later.  Its
  // admission slot frees now, though, so a full queue accepts again.
  releaseSlotLocked(job);
  return true;
}

void JobQueue::close(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return;  // first reason wins
    }
    closed_ = true;
    closeReason_ = std::move(reason);
  }
  cv_.notify_all();
}

std::vector<std::shared_ptr<JobRecord>> JobQueue::drainRemaining() {
  std::vector<std::shared_ptr<JobRecord>> drained;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::shared_ptr<JobRecord> job = scheduler_->pick()) {
    releaseSlotLocked(*job);
    JobState expected = JobState::kQueued;
    job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                       std::memory_order_acq_rel);
    drained.push_back(std::move(job));
  }
  return drained;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->size();
}

void JobQueue::releaseSlotLocked(const JobRecord& job) {
  EASYHPS_EXPECTS(depth_ >= 1);
  --depth_;
  auto& classDepth = job.options.jobClass == JobClass::kInteractive
                         ? interactiveDepth_
                         : batchDepth_;
  EASYHPS_EXPECTS(classDepth >= 1);
  --classDepth;
}

}  // namespace easyhps::serve

#include "easyhps/serve/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps::serve {
namespace {

bool stillQueued(const JobRecord& job) {
  return job.state.load(std::memory_order_acquire) == JobState::kQueued;
}

/// Admission order.
class FifoScheduler final : public JobScheduler {
 public:
  const char* name() const override { return "fifo"; }

  void enqueue(std::shared_ptr<JobRecord> job) override {
    queue_.push_back(std::move(job));
  }

  std::shared_ptr<JobRecord> pick() override {
    while (!queue_.empty()) {
      std::shared_ptr<JobRecord> job = std::move(queue_.front());
      queue_.pop_front();
      if (stillQueued(*job)) {
        return job;
      }
    }
    return nullptr;
  }

  std::size_t size() const override {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [](const auto& j) { return stillQueued(*j); }));
  }

  std::shared_ptr<JobRecord> shed() override {
    // Newest admission is the least valuable under FIFO semantics.
    while (!queue_.empty()) {
      std::shared_ptr<JobRecord> job = std::move(queue_.back());
      queue_.pop_back();
      if (stillQueued(*job)) {
        return job;
      }
    }
    return nullptr;
  }

 private:
  std::deque<std::shared_ptr<JobRecord>> queue_;
};

/// Strict priority, FIFO within a level.
class PriorityScheduler final : public JobScheduler {
 public:
  const char* name() const override { return "priority"; }

  void enqueue(std::shared_ptr<JobRecord> job) override {
    queue_.push_back(std::move(job));
  }

  std::shared_ptr<JobRecord> pick() override {
    for (;;) {
      auto best = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (best == queue_.end() ||
            (*it)->options.priority > (*best)->options.priority ||
            ((*it)->options.priority == (*best)->options.priority &&
             (*it)->seq < (*best)->seq)) {
          best = it;
        }
      }
      if (best == queue_.end()) {
        return nullptr;
      }
      std::shared_ptr<JobRecord> job = std::move(*best);
      queue_.erase(best);
      if (stillQueued(*job)) {
        return job;
      }
    }
  }

  std::size_t size() const override {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [](const auto& j) { return stillQueued(*j); }));
  }

  std::shared_ptr<JobRecord> shed() override {
    for (;;) {
      auto worst = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (worst == queue_.end() ||
            (*it)->options.priority < (*worst)->options.priority ||
            ((*it)->options.priority == (*worst)->options.priority &&
             (*it)->seq > (*worst)->seq)) {
          worst = it;
        }
      }
      if (worst == queue_.end()) {
        return nullptr;
      }
      std::shared_ptr<JobRecord> job = std::move(*worst);
      queue_.erase(worst);
      if (stillQueued(*job)) {
        return job;
      }
    }
  }

 private:
  // Queue depths are bounded by admission control, so linear scans beat
  // the constant factors of an indexed structure here.
  std::vector<std::shared_ptr<JobRecord>> queue_;
};

/// Weighted fair share via stride scheduling.  A key's `pass` advances by
/// estimatedOps / weight per dispatched job, so over time each key's
/// consumed ops are proportional to its weight.  New keys start at the
/// current minimum pass so they cannot monopolize the cluster by arriving
/// late with zero history.
class FairShareScheduler final : public JobScheduler {
 public:
  const char* name() const override { return "fair-share"; }

  void enqueue(std::shared_ptr<JobRecord> job) override {
    // First sight of a key: join at the current minimum pass so a
    // late-arriving key cannot monopolize the cluster with zero history.
    if (pass_.find(job->shareKey()) == pass_.end()) {
      double floor = 0.0;
      bool any = false;
      for (const auto& [k, p] : pass_) {
        floor = any ? std::min(floor, p) : p;
        any = true;
      }
      pass_[job->shareKey()] = any ? floor : 0.0;
    }
    queue_.push_back(std::move(job));
  }

  std::shared_ptr<JobRecord> pick() override {
    for (;;) {
      auto best = queue_.end();
      double bestPass = 0.0;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const double p = pass_.at((*it)->shareKey());
        if (best == queue_.end() || p < bestPass ||
            (p == bestPass && (*it)->seq < (*best)->seq)) {
          best = it;
          bestPass = p;
        }
      }
      if (best == queue_.end()) {
        return nullptr;
      }
      std::shared_ptr<JobRecord> job = std::move(*best);
      queue_.erase(best);
      if (!stillQueued(*job)) {
        continue;  // cancelled while waiting: never charged to its share
      }
      const double weight = std::max(job->options.weight, 1e-9);
      pass_[job->shareKey()] += std::max(job->estimatedOps, 1.0) / weight;
      return job;
    }
  }

  std::size_t size() const override {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [](const auto& j) { return stillQueued(*j); }));
  }

  std::shared_ptr<JobRecord> shed() override {
    // Least valuable = the key furthest ahead of its fair share (highest
    // pass), newest submission within that key.  Shedding is never
    // charged to the share — the job did not run.
    for (;;) {
      auto worst = queue_.end();
      double worstPass = 0.0;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const double p = pass_.at((*it)->shareKey());
        if (worst == queue_.end() || p > worstPass ||
            (p == worstPass && (*it)->seq > (*worst)->seq)) {
          worst = it;
          worstPass = p;
        }
      }
      if (worst == queue_.end()) {
        return nullptr;
      }
      std::shared_ptr<JobRecord> job = std::move(*worst);
      queue_.erase(worst);
      if (stillQueued(*job)) {
        return job;
      }
    }
  }

 private:
  std::vector<std::shared_ptr<JobRecord>> queue_;
  std::unordered_map<std::string, double> pass_;
};

/// SLO-aware ordering by deadline slack and class utility.  Jobs with a
/// soft deadline run first, most urgent (earliest absolute deadline)
/// first — with one cluster and no preemption, least-slack-first is EDF,
/// which minimizes the worst lateness of the queued set.  Deadline-less
/// jobs follow: interactive before batch, then shortest estimated work
/// (SJF keeps mean latency low when nothing is urgent), then admission
/// order.
class DeadlineUtilityScheduler final : public JobScheduler {
 public:
  const char* name() const override { return "deadline-utility"; }

  void enqueue(std::shared_ptr<JobRecord> job) override {
    queue_.push_back(std::move(job));
  }

  std::shared_ptr<JobRecord> pick() override {
    return extract(/*worstFirst=*/false);
  }

  std::shared_ptr<JobRecord> shed() override {
    return extract(/*worstFirst=*/true);
  }

  std::size_t size() const override {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [](const auto& j) { return stillQueued(*j); }));
  }

 private:
  /// True when `a` should dispatch before `b`.
  static bool runsBefore(const JobRecord& a, const JobRecord& b) {
    if (a.deadline.has_value() != b.deadline.has_value()) {
      return a.deadline.has_value();
    }
    if (a.deadline.has_value()) {
      if (*a.deadline != *b.deadline) {
        return *a.deadline < *b.deadline;
      }
      return a.seq < b.seq;
    }
    if (a.options.jobClass != b.options.jobClass) {
      return a.options.jobClass == JobClass::kInteractive;
    }
    if (a.estimatedOps != b.estimatedOps) {
      return a.estimatedOps < b.estimatedOps;
    }
    return a.seq < b.seq;
  }

  std::shared_ptr<JobRecord> extract(bool worstFirst) {
    for (;;) {
      auto best = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (best == queue_.end() ||
            (worstFirst ? runsBefore(**best, **it)
                        : runsBefore(**it, **best))) {
          best = it;
        }
      }
      if (best == queue_.end()) {
        return nullptr;
      }
      std::shared_ptr<JobRecord> job = std::move(*best);
      queue_.erase(best);
      if (stillQueued(*job)) {
        return job;
      }
    }
  }

  std::vector<std::shared_ptr<JobRecord>> queue_;
};

}  // namespace

const char* jobSchedPolicyName(JobSchedPolicy p) {
  switch (p) {
    case JobSchedPolicy::kFifo:
      return "fifo";
    case JobSchedPolicy::kPriority:
      return "priority";
    case JobSchedPolicy::kFairShare:
      return "fair-share";
    case JobSchedPolicy::kDeadlineUtility:
      return "deadline-utility";
  }
  return "?";
}

std::unique_ptr<JobScheduler> makeJobScheduler(JobSchedPolicy policy) {
  switch (policy) {
    case JobSchedPolicy::kFifo:
      return std::make_unique<FifoScheduler>();
    case JobSchedPolicy::kPriority:
      return std::make_unique<PriorityScheduler>();
    case JobSchedPolicy::kFairShare:
      return std::make_unique<FairShareScheduler>();
    case JobSchedPolicy::kDeadlineUtility:
      return std::make_unique<DeadlineUtilityScheduler>();
  }
  throw LogicError("unknown job scheduling policy");
}

}  // namespace easyhps::serve

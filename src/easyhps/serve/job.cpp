#include "easyhps/serve/job.hpp"

#include "easyhps/util/error.hpp"

namespace easyhps::serve {

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

const char* jobClassName(JobClass c) {
  switch (c) {
    case JobClass::kInteractive:
      return "interactive";
    case JobClass::kBatch:
      return "batch";
  }
  return "?";
}

const char* failureCodeName(FailureCode c) {
  switch (c) {
    case FailureCode::kExecutionFailed:
      return "execution-failed";
    case FailureCode::kRejectedOverload:
      return "rejected-overload";
    case FailureCode::kServiceFailed:
      return "service-failed";
  }
  return "?";
}

void JobRecord::finish(std::shared_ptr<const JobOutcome> o) {
  EASYHPS_EXPECTS(o != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EASYHPS_EXPECTS(outcome_ == nullptr);
    state.store(o->state, std::memory_order_release);
    outcome_ = std::move(o);
  }
  cv_.notify_all();
}

std::shared_ptr<const JobOutcome> JobRecord::await() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return outcome_ != nullptr; });
  return outcome_;
}

std::shared_ptr<const JobOutcome> JobRecord::awaitFor(
    std::chrono::milliseconds d) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_for(lock, d, [&] { return outcome_ != nullptr; })) {
    return nullptr;
  }
  return outcome_;
}

}  // namespace easyhps::serve

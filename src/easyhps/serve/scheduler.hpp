#pragma once
/// \file scheduler.hpp
/// Pluggable inter-job scheduling policies for the serve layer.
///
/// This mirrors the intra-job `sched::SchedulingPolicy` design one level
/// up: a `JobScheduler` is a pure decision object — it owns the set of
/// queued jobs and decides which runs next, nothing else.  It is *not*
/// thread-safe; the owning `JobQueue` serializes all calls under its lock,
/// exactly as the master scheduler mutex serializes `pick`/`onReady`.
///
/// Policies:
///  * kFifo      — admission order.
///  * kPriority  — strict priority (JobOptions::priority, higher first),
///                 FIFO within a priority level.
///  * kFairShare — weighted fair sharing across share keys via stride
///                 scheduling: each key accumulates `pass` time at rate
///                 estimatedOps / weight as its jobs are dispatched; the
///                 key with the least pass runs next.  Keys with higher
///                 weight therefore receive proportionally more of the
///                 cluster.

#include <memory>
#include <string>

#include "easyhps/serve/job.hpp"

namespace easyhps::serve {

enum class JobSchedPolicy {
  kFifo,
  kPriority,
  kFairShare,
  /// SLO-aware ordering: jobs with a soft deadline run by least slack
  /// (most urgent first); deadline-less jobs follow, interactive before
  /// batch, shortest estimated work first within a class.
  kDeadlineUtility,
};

const char* jobSchedPolicyName(JobSchedPolicy p);

/// Inter-job scheduling policy.  Not thread-safe: callers (JobQueue) hold
/// a lock across every call.
class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  virtual const char* name() const = 0;

  /// Adds a queued job to the policy's consideration set.
  virtual void enqueue(std::shared_ptr<JobRecord> job) = 0;

  /// Removes and returns the next job to dispatch; nullptr if none is
  /// queued.  Jobs whose state is no longer kQueued (cancelled while
  /// waiting) are dropped without being charged to their share.
  virtual std::shared_ptr<JobRecord> pick() = 0;

  /// Queued (still dispatchable) jobs currently held.
  virtual std::size_t size() const = 0;

  /// Removes and returns the *least* valuable queued job — the one pick()
  /// would dispatch last — for load shedding past the admission
  /// watermark.  nullptr if nothing is queued.
  virtual std::shared_ptr<JobRecord> shed() = 0;
};

std::unique_ptr<JobScheduler> makeJobScheduler(JobSchedPolicy policy);

}  // namespace easyhps::serve

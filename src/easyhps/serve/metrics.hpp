#pragma once
/// \file metrics.hpp
/// Service-level observability counters for easyhps::serve.
///
/// Complements the per-job `RunStats`: where RunStats describes what the
/// cluster did *inside* one job, `ServiceMetrics` describes how jobs moved
/// *through* the service — admission outcomes, queue wait, time to first
/// block, throughput.  A snapshot is cheap and internally consistent (the
/// service copies it under its lock).

#include <cstdint>
#include <string>

#include "easyhps/trace/report.hpp"

namespace easyhps::serve {

struct ServiceMetrics {
  std::string policy;  ///< inter-job scheduling policy name

  /// Kernel tier of the most recent finished job ("simd"/"span"/
  /// "reference", post ISA demotion) and the autotuner's tile picks at
  /// that point — the serve-side mirror of RunStats::kernelPathName /
  /// kernelTiles, so mixed-tier fleets are diagnosable from the metrics
  /// table.  Empty until a job finishes.
  std::string kernelPath;
  std::string tiles;

  std::int64_t accepted = 0;   ///< submissions admitted
  std::int64_t rejected = 0;   ///< submissions refused (full/closed)
  std::int64_t completed = 0;  ///< jobs finished kDone
  std::int64_t cancelled = 0;  ///< jobs finished kCancelled
  std::int64_t failed = 0;     ///< jobs finished kFailed

  std::int64_t queueDepth = 0;  ///< queued jobs right now
  bool jobRunning = false;      ///< a job is on the cluster right now
  double uptimeSeconds = 0.0;   ///< since the service booted

  // Aggregates over dispatched jobs.
  double totalQueueWaitSeconds = 0.0;
  double maxQueueWaitSeconds = 0.0;
  double totalExecSeconds = 0.0;
  double totalTimeToFirstBlockSeconds = 0.0;
  std::int64_t timeToFirstBlockSamples = 0;

  // Substrate traffic since boot (includes job brackets).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  // Data-plane split of the per-job traffic (sums of the jobs' RunStats;
  // see DESIGN.md, "Control plane vs. data plane").  Bytes on links that
  // touch rank 0 vs bytes moved directly between slave ranks.
  std::uint64_t bytesViaMaster = 0;
  std::uint64_t bytesPeerToPeer = 0;

  // Zero-copy transport counters (sums of the jobs' RunStats; see
  // DESIGN.md, "Messaging fast path").  Both zero under MsgPath::kCopy.
  std::uint64_t copiesAvoided = 0;
  std::uint64_t zeroCopyBytes = 0;

  // Streaming-pipeline counters (sums of the jobs' RunStats; see
  // DESIGN.md, "Cross-level dataflow pipelining").  All zero under
  // PipelineMode::kBarrier.
  std::int64_t fragmentsSent = 0;       ///< producer halo fragments emitted
  std::int64_t fragmentsApplied = 0;    ///< fragments injected by consumers
  std::int64_t blocksStartedEarly = 0;  ///< assignments fired pre-full-halo
  double streamOverlapSeconds = 0.0;    ///< compute overlapped with halo

  // Fault-tolerance counters (sums of the jobs' RunStats; see DESIGN.md,
  // "Fault domains & chaos").  All zero on a healthy, chaos-free service.
  std::int64_t retries = 0;          ///< master task re-distributions
  std::int64_t subTaskRequeues = 0;  ///< slave overtime re-queues
  std::int64_t ownershipInvalidations = 0;
  // Heterogeneity-aware placement counters (sums of the jobs' RunStats;
  // zero unless the master policy is kEct / kEctSteal).
  std::int64_t placementSpills = 0;  ///< placements past every store budget
  std::int64_t tasksStolen = 0;      ///< steal re-issues granted
  std::int64_t quarantines = 0;
  std::int64_t heartbeatMisses = 0;
  std::int64_t faultsTriggered = 0;  ///< injected faults that fired
  /// Whole-job retries: failed runs re-queued by the serve-layer retry
  /// machinery (distinct from the runtime's per-task `retries`).
  std::int64_t jobRetries = 0;

  // Checkpoint/restart & end-to-end integrity counters (sums of the jobs'
  // RunStats; see DESIGN.md, "Checkpoint/restart & end-to-end integrity").
  // All zero with journaling off and no corruption chaos.
  std::int64_t recoveredBlocks = 0;  ///< blocks seeded from journal replay
  std::int64_t corruptBlocks = 0;    ///< payloads dropped on checksum fail
  std::int64_t decodeErrors = 0;     ///< malformed payloads turned faults
  std::int64_t masterRestarts = 0;   ///< kMasterCrash resumes
  double recoverySeconds = 0.0;      ///< crash-to-frontier-regained, summed

  // Result cache, dedup and SLO counters (see DESIGN.md, "Serve-layer
  // caching, admission & SLOs").  All zero with the cache disabled and no
  // deadlines/watermark configured.
  std::int64_t cacheHits = 0;    ///< submissions served from the cache
  std::int64_t cacheMisses = 0;  ///< cacheable submissions that executed
  std::int64_t cacheBytes = 0;   ///< bytes resident in the cache now
  std::int64_t cacheEntries = 0;
  std::int64_t cacheEvictions = 0;
  /// Submissions coalesced onto an in-flight identical execution.
  std::int64_t dedupCoalesced = 0;
  /// Jobs shed past the admission watermark (failed kRejectedOverload
  /// after admission; submit-time capacity rejections count as
  /// `rejected`).
  std::int64_t shedJobs = 0;
  /// Jobs that finished past their soft deadline.
  std::int64_t deadlineMisses = 0;

  double meanQueueWaitSeconds() const {
    const std::int64_t n = completed + cancelled + failed;
    return n > 0 ? totalQueueWaitSeconds / static_cast<double>(n) : 0.0;
  }
  double meanTimeToFirstBlockSeconds() const {
    return timeToFirstBlockSamples > 0
               ? totalTimeToFirstBlockSeconds /
                     static_cast<double>(timeToFirstBlockSamples)
               : 0.0;
  }
  /// Completed jobs per second of service uptime.
  double jobsPerSecond() const {
    return uptimeSeconds > 0.0
               ? static_cast<double>(completed) / uptimeSeconds
               : 0.0;
  }
};

/// One-row summary table of a metrics snapshot (for demos and benches).
trace::Table metricsTable(const ServiceMetrics& m);

}  // namespace easyhps::serve

#pragma once
/// \file job.hpp
/// Job records of the easyhps::serve layer.
///
/// A submitted job moves through a small lifecycle:
///
///   kQueued ──take──▶ kRunning ──▶ kDone | kCancelled | kFailed
///      └──cancel──▶ kCancelled
///
/// `JobRecord` is the shared bookkeeping object: the submitting thread
/// holds it through a `JobTicket`, the scheduler holds it while queued,
/// and the master service loop holds it while running.  Completion is
/// published as an immutable `JobOutcome` snapshot guarded by the record's
/// mutex/cv, so `wait()` never observes a half-written result.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "easyhps/cache/key.hpp"
#include "easyhps/dp/problem.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/runtime/config.hpp"
#include "easyhps/runtime/job.hpp"

namespace easyhps::serve {

/// Lifecycle states of a submitted job.
enum class JobState {
  kQueued,     ///< admitted, waiting for dispatch
  kRunning,    ///< being executed by the cluster
  kDone,       ///< completed; matrix available
  kCancelled,  ///< cancelled before or during execution
  kFailed,     ///< the service failed while the job was in flight
};

const char* jobStateName(JobState s);

/// Request class for SLO-aware admission and scheduling.  Interactive
/// jobs are latency-sensitive (a user is waiting); batch jobs are
/// throughput work.  The kDeadlineUtility scheduler prefers interactive
/// among deadline-less jobs, and admission can cap each class separately
/// (ServiceConfig::maxInteractiveDepth / maxBatchDepth).
enum class JobClass {
  kInteractive,
  kBatch,
};

const char* jobClassName(JobClass c);

/// Per-job submission options.
struct JobOptions {
  /// Display name for reports; defaults to "job-<id>".
  std::string name;
  /// Strict-priority rank (higher runs first under kPriority).
  int priority = 0;
  /// Fair-share weight of this job's share key (must be > 0).
  double weight = 1.0;
  /// Fair-share accounting bucket; empty = the job's own name (every job
  /// its own bucket).
  std::string shareKey;
  /// Faults injected into this job only.
  std::vector<fault::FaultSpec> faults;
  /// Seed for the fault plan's probabilistic specs (see fault::ChaosPlan);
  /// the same seed replays the same fault schedule.
  std::uint64_t chaosSeed = 0;
  /// Dispatch attempts before the ticket turns terminal kFailed (>= 1).
  /// A job whose run *fails* (injected abort, master-reported failure) is
  /// re-queued until its attempts are exhausted; cancellation and
  /// successful completion are always terminal.
  int maxAttempts = 1;
  /// Base delay before a retry is dispatched again; doubles per attempt
  /// (exponential backoff: retry k waits retryBackoff * 2^(k-1)).
  std::chrono::milliseconds retryBackoff{10};
  /// Request class (admission caps + kDeadlineUtility tie-breaking).
  JobClass jobClass = JobClass::kBatch;
  /// Soft SLO deadline, measured from submit.  Must be positive when set.
  /// kDeadlineUtility orders runnable jobs by slack against it; the
  /// service counts `deadline_misses` for jobs finishing past it.  Soft:
  /// a missed deadline never cancels the job.
  std::optional<std::chrono::milliseconds> softDeadline;
};

/// Service-level timing around one job, alongside the runtime's RunStats.
struct JobStats {
  double queueWaitSeconds = 0.0;  ///< submit → dispatch
  double execSeconds = 0.0;       ///< dispatch → finish
  /// Dispatch → first block injected by the master; -1 if none was.
  double timeToFirstBlockSeconds = -1.0;
  /// Global dispatch order (0 = first job the cluster ran); -1 if the job
  /// never ran.  Completion order is timing-dependent, dispatch order is
  /// exactly what the inter-job scheduler decided — benches assert on it.
  std::int64_t dispatchSeq = -1;
  /// Served from the result cache: no cluster execution, `run` counters
  /// are zero except tableChecksum.
  bool cacheHit = false;
  /// Coalesced onto an in-flight identical submission (dedup follower).
  bool coalesced = false;
  /// Finished past the job's soft deadline (JobOptions::softDeadline).
  bool missedDeadline = false;
  RunStats run;  ///< per-job runtime statistics
};

/// Machine-readable cause attached to a terminal kFailed outcome.
enum class FailureCode {
  kExecutionFailed,    ///< the run itself failed (all attempts exhausted)
  kRejectedOverload,   ///< shed by admission control under load
  kServiceFailed,      ///< the cluster/service died under the job
};

const char* failureCodeName(FailureCode c);

/// Structured failure report attached to a terminal kFailed outcome.
struct JobFailure {
  /// What made the final attempt fail (master's failureReason, or the
  /// cluster failure that took the service down).
  std::string reason;
  /// Dispatch attempts consumed (0 = the job never reached the cluster).
  int attempts = 0;
  FailureCode code = FailureCode::kExecutionFailed;
  /// Backpressure hint for kRejectedOverload: resubmitting sooner than
  /// this is unlikely to be admitted.  Zero otherwise.
  std::chrono::milliseconds retryAfter{0};
};

/// Immutable snapshot published when a job reaches a terminal state.
struct JobOutcome {
  JobState state = JobState::kFailed;
  /// Solved whole-matrix window; present only when state == kDone.
  std::optional<Window> matrix;
  JobStats stats;
  /// Human-readable failure reason when state == kFailed.
  std::string error;
  /// Structured failure details; present only when state == kFailed.
  std::optional<JobFailure> failure;
};

/// Shared bookkeeping for one submitted job.  Thread-safety: `state` and
/// `cancelRequested` are atomics; `outcome` is guarded by `mutex` and
/// written exactly once (by `finish`); everything else is written by the
/// service before the record becomes visible to other threads.
struct JobRecord {
  JobId id = kNoJob;
  std::int64_t seq = 0;  ///< admission order (FIFO / tie-break key)
  JobOptions options;
  std::shared_ptr<const DpProblem> problem;
  std::shared_ptr<fault::FaultPlan> plan;
  /// Scheduler cost estimate (DpProblem::blockOps over the whole matrix).
  double estimatedOps = 0.0;
  std::chrono::steady_clock::time_point submitted;
  /// Absolute soft deadline (submitted + options.softDeadline) when set.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Content-addressed identity when the job is cacheable (fingerprintable
  /// problem, fault-free options); drives cache insert + in-flight dedup.
  std::optional<cache::CacheKey> cacheKey;
  /// Internal executor record of a dedup group: owned by the service, runs
  /// through the queue, but is never ticket-backed and never finish()ed —
  /// its outcome fans out to the group's waiter records instead.
  bool isExec = false;
  /// Ticket-backed member of a dedup group (the leader's own ticket and
  /// every coalesced follower).  Never enters the queue; cancel detaches
  /// it from the group instead of going through the queue.
  bool coalesceWaiter = false;

  std::atomic<JobState> state{JobState::kQueued};
  std::atomic<bool> cancelRequested{false};

  /// Dispatch attempts so far (incremented by the feed at dispatch) and
  /// the backoff gate before the next one.  Touched only by the service
  /// (under its lock) and the master feed thread.
  int attempts = 0;
  std::chrono::steady_clock::time_point notBefore{};

  /// Matrix under construction while running (master writes into it).
  std::optional<Window> matrix;
  /// Filled by the service at dispatch / finish.
  JobStats stats;

  /// The job's share key after defaulting (see JobOptions::shareKey).
  const std::string& shareKey() const {
    return options.shareKey.empty() ? options.name : options.shareKey;
  }

  /// Publishes the terminal outcome and wakes all waiters.  Must be called
  /// at most once.
  void finish(std::shared_ptr<const JobOutcome> o);

  /// Blocks until the job reaches a terminal state.
  std::shared_ptr<const JobOutcome> await();

  /// Like await() with a deadline; nullptr on timeout.
  std::shared_ptr<const JobOutcome> awaitFor(std::chrono::milliseconds d);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<const JobOutcome> outcome_;
};

}  // namespace easyhps::serve

#include "easyhps/fault/plan.hpp"

namespace easyhps::fault {

bool FaultPlan::matchAndConsume(FaultKind kind, VertexId vertex, int slave,
                                VertexId subVertex,
                                std::chrono::milliseconds* delay) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = specs_.begin(); it != specs_.end(); ++it) {
    if (it->kind != kind) {
      continue;
    }
    if (it->vertex != vertex) {
      continue;
    }
    if (it->slave != -1 && it->slave != slave) {
      continue;
    }
    if (kind == FaultKind::kThreadCrash && it->subVertex != -1 &&
        it->subVertex != subVertex) {
      continue;
    }
    if (delay != nullptr) {
      *delay = it->delay;
    }
    specs_.erase(it);
    ++triggered_;
    return true;
  }
  return false;
}

bool FaultPlan::consumeBlackhole(VertexId vertex, int slave) {
  return matchAndConsume(FaultKind::kTaskBlackhole, vertex, slave, -1,
                         nullptr);
}

std::chrono::milliseconds FaultPlan::consumeDelay(VertexId vertex, int slave) {
  std::chrono::milliseconds delay{0};
  if (matchAndConsume(FaultKind::kTaskDelay, vertex, slave, -1, &delay)) {
    return delay;
  }
  return std::chrono::milliseconds{0};
}

bool FaultPlan::consumeThreadCrash(VertexId vertex, int slave,
                                   VertexId subVertex) {
  return matchAndConsume(FaultKind::kThreadCrash, vertex, slave, subVertex,
                         nullptr);
}

std::int64_t FaultPlan::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

}  // namespace easyhps::fault

#include "easyhps/fault/plan.hpp"

#include "easyhps/util/rng.hpp"

namespace easyhps::fault {
namespace {

std::size_t kindIndex(FaultKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTaskBlackhole:
      return "task-blackhole";
    case FaultKind::kTaskDelay:
      return "task-delay";
    case FaultKind::kThreadCrash:
      return "thread-crash";
    case FaultKind::kSlaveDeath:
      return "slave-death";
    case FaultKind::kJobAbort:
      return "job-abort";
    case FaultKind::kMasterCrash:
      return "master-crash";
    case FaultKind::kPayloadCorrupt:
      return "payload-corrupt";
  }
  return "unknown";
}

ChaosPlan::ChaosPlan(std::vector<FaultSpec> specs, std::uint64_t seed)
    : seed_(seed) {
  slots_.reserve(specs.size());
  for (FaultSpec& spec : specs) {
    slots_.push_back(Slot{spec});
  }
}

void ChaosPlan::add(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.push_back(Slot{spec});
}

bool ChaosPlan::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.empty();
}

bool ChaosPlan::rollFires(const Slot& slot, std::size_t index) const {
  if (slot.spec.probability >= 1.0) {
    return true;
  }
  if (slot.spec.probability <= 0.0) {
    return false;
  }
  // Pure function of (seed, spec index, match ordinal): replaying the same
  // match sequence against the same seed reproduces the same schedule.
  SplitMix64 mixer(seed_ ^ (static_cast<std::uint64_t>(index) + 1) *
                               0x9E3779B97F4A7C15ULL ^
                   static_cast<std::uint64_t>(slot.matches) *
                       0xBF58476D1CE4E5B9ULL);
  const double roll =
      static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  return roll < slot.spec.probability;
}

bool ChaosPlan::matchAndConsume(FaultKind kind, VertexId vertex, int slave,
                                VertexId subVertex,
                                std::chrono::milliseconds* delay) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    const FaultSpec& spec = slot.spec;
    if (spec.kind != kind) {
      continue;
    }
    if (spec.count >= 0 && slot.fired >= spec.count) {
      continue;  // retired
    }
    if (spec.vertex != -1 && spec.vertex != vertex) {
      continue;
    }
    if (spec.slave != -1 && spec.slave != slave) {
      continue;
    }
    if (kind == FaultKind::kThreadCrash && spec.subVertex != -1 &&
        spec.subVertex != subVertex) {
      continue;
    }
    ++slot.matches;
    if (slot.matches <= spec.skip) {
      continue;  // still in the skip window
    }
    if (!rollFires(slot, i)) {
      continue;
    }
    if (delay != nullptr) {
      *delay = spec.delay;
    }
    ++slot.fired;
    ++triggered_;
    ++byKind_[kindIndex(kind)];
    return true;
  }
  return false;
}

bool ChaosPlan::consumeBlackhole(VertexId vertex, int slave) {
  return matchAndConsume(FaultKind::kTaskBlackhole, vertex, slave, -1,
                         nullptr);
}

std::chrono::milliseconds ChaosPlan::consumeDelay(VertexId vertex, int slave) {
  std::chrono::milliseconds delay{0};
  if (matchAndConsume(FaultKind::kTaskDelay, vertex, slave, -1, &delay)) {
    return delay;
  }
  return std::chrono::milliseconds{0};
}

bool ChaosPlan::consumeThreadCrash(VertexId vertex, int slave,
                                   VertexId subVertex) {
  return matchAndConsume(FaultKind::kThreadCrash, vertex, slave, subVertex,
                         nullptr);
}

bool ChaosPlan::consumeSlaveDeath(VertexId vertex, int slave) {
  return matchAndConsume(FaultKind::kSlaveDeath, vertex, slave, -1, nullptr);
}

bool ChaosPlan::consumeJobAbort() {
  return matchAndConsume(FaultKind::kJobAbort, -1, -1, -1, nullptr);
}

bool ChaosPlan::consumeMasterCrash(VertexId vertex, int slave) {
  return matchAndConsume(FaultKind::kMasterCrash, vertex, slave, -1, nullptr);
}

bool ChaosPlan::consumeCorrupt(VertexId vertex, int slave) {
  return matchAndConsume(FaultKind::kPayloadCorrupt, vertex, slave, -1,
                         nullptr);
}

std::int64_t ChaosPlan::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

std::int64_t ChaosPlan::triggered(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return byKind_[kindIndex(kind)];
}

}  // namespace easyhps::fault

#pragma once
/// \file plan.hpp
/// Deterministic fault injection (paper §V fault tolerance, evaluated in
/// ablation B).
///
/// Tianhe-1A hardware faults are obviously not reproducible here, so the
/// repo substitutes *planned* faults that exercise the same recovery paths:
///
///  * `kTaskBlackhole` — a slave silently discards an assigned sub-task
///    (a crashed/partitioned node).  Detected by the master overtime queue,
///    recovered by cancelling the registration and re-distributing.
///  * `kTaskDelay` — a slave completes a sub-task but replies late (a slow
///    or flaky node).  Exercises late-result handling: the re-distributed
///    copy and the late reply race; completion must stay idempotent.
///  * `kThreadCrash` — a computing thread throws while executing a
///    sub-sub-task.  Detected in the slave pool, recovered by restarting
///    the thread and re-queueing the sub-sub-task (paper §V-C step h).
///
/// Every fault triggers at most once (consume-on-match), which makes
/// recovery terminate deterministically.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "easyhps/dag/pattern.hpp"

namespace easyhps::fault {

enum class FaultKind { kTaskBlackhole, kTaskDelay, kThreadCrash };

struct FaultSpec {
  FaultKind kind = FaultKind::kTaskBlackhole;
  /// Master-DAG vertex (for task faults) or slave-DAG vertex (thread
  /// crashes, matched together with `vertex` = the enclosing task).
  VertexId vertex = -1;
  /// Slave rank the fault binds to; -1 = any slave.
  int slave = -1;
  /// For kThreadCrash: which sub-sub-task inside the task; -1 = first one.
  VertexId subVertex = -1;
  /// For kTaskDelay: how late the reply is.
  std::chrono::milliseconds delay{0};
};

/// Thrown by a computing thread hit by kThreadCrash.
class InjectedThreadCrash : public std::exception {
 public:
  const char* what() const noexcept override {
    return "injected computing-thread crash";
  }
};

/// A consumable list of fault specs.  Thread-safe; shared by all simulated
/// nodes of one run.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultSpec> specs) : specs_(std::move(specs)) {}

  void add(FaultSpec spec) { specs_.push_back(spec); }
  bool empty() const { return specs_.empty(); }

  /// Consumes a blackhole fault matching (vertex, slave), if present.
  bool consumeBlackhole(VertexId vertex, int slave);

  /// Consumes a delay fault; returns the delay (0 = no fault).
  std::chrono::milliseconds consumeDelay(VertexId vertex, int slave);

  /// Consumes a thread-crash fault for (task, subVertex) on `slave`.
  bool consumeThreadCrash(VertexId vertex, int slave, VertexId subVertex);

  /// Number of faults consumed so far.
  std::int64_t triggered() const;

 private:
  bool matchAndConsume(FaultKind kind, VertexId vertex, int slave,
                       VertexId subVertex, std::chrono::milliseconds* delay);

  mutable std::mutex mutex_;
  std::vector<FaultSpec> specs_;
  std::int64_t triggered_ = 0;
};

}  // namespace easyhps::fault

#pragma once
/// \file plan.hpp
/// Deterministic and seeded-randomized fault injection (paper §V fault
/// tolerance, evaluated in ablation B; chaos soak in tests/test_chaos.cpp).
///
/// Tianhe-1A hardware faults are obviously not reproducible here, so the
/// repo substitutes *planned* faults that exercise the same recovery paths:
///
///  * `kTaskBlackhole` — a slave silently discards an assigned sub-task
///    (a crashed/partitioned node).  Detected by the master overtime queue,
///    recovered by cancelling the registration and re-distributing.
///  * `kTaskDelay` — a slave completes a sub-task but replies late (a slow
///    or flaky node).  Exercises late-result handling: the re-distributed
///    copy and the late reply race; completion must stay idempotent.
///  * `kThreadCrash` — a computing thread throws while executing a
///    sub-sub-task.  Detected in the slave pool, recovered by restarting
///    the thread and re-queueing the sub-sub-task (paper §V-C step h).
///  * `kSlaveDeath` — the whole rank stops servicing traffic mid-run: no
///    results, no halo replies, no heartbeat acks.  Detected by the
///    master's liveness/quarantine machinery (runtime/health.hpp);
///    recovered by re-distribution plus ownership invalidation.
///  * `kJobAbort` — the master fails the job before dispatching it.
///    Exercises the serve layer's retry/backoff and terminal-kFailed paths.
///
/// A spec fires once by default (consume-on-match, the seed semantics); the
/// chaos extensions make it *recurring* (`count`), *offset* (`skip`) or
/// *probabilistic* (`probability`).  Probability rolls are a pure function
/// of (plan seed, spec index, per-spec match ordinal), so a ChaosPlan
/// replayed against the same sequence of match events reproduces the same
/// fault schedule — the property the seeded chaos soak asserts.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "easyhps/dag/pattern.hpp"

namespace easyhps::fault {

enum class FaultKind {
  kTaskBlackhole,
  kTaskDelay,
  kThreadCrash,
  kSlaveDeath,
  kJobAbort,
  /// The master "process" dies right after completing a block: the
  /// in-memory scheduler state (parse state, register table, matrix) is
  /// abandoned and a fresh master incarnation resumes the job from the
  /// checkpoint journal (easyhps::ckpt) — or from scratch when
  /// journaling is off.  Consumed in the master's result path.
  kMasterCrash,
  /// A slave flips one byte of an outgoing Result's cell data *after*
  /// computing the content checksum — silent data corruption at the
  /// source.  The master's verify-at-inject check must detect and
  /// re-distribute; detection count equals trigger count by design.
  kPayloadCorrupt,
};
constexpr int kFaultKindCount = 7;

const char* faultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kTaskBlackhole;
  /// Master-DAG vertex (for task faults) or slave-DAG vertex (thread
  /// crashes, matched together with `vertex` = the enclosing task).
  /// -1 = any vertex (chaos extension; deterministic specs name one).
  VertexId vertex = -1;
  /// Slave rank the fault binds to; -1 = any slave.
  int slave = -1;
  /// For kThreadCrash: which sub-sub-task inside the task; -1 = first one.
  VertexId subVertex = -1;
  /// For kTaskDelay: how late the reply is.
  std::chrono::milliseconds delay{0};
  // --- chaos extensions (appended so aggregate inits of the seed fields
  // keep compiling) ---
  /// How many times the spec fires before retiring; -1 = unlimited.
  int count = 1;
  /// Matching events to let pass before the spec becomes eligible.
  int skip = 0;
  /// Chance each eligible match actually fires (deterministic roll keyed
  /// by the plan seed and the per-spec match ordinal).
  double probability = 1.0;
};

/// Thrown by a computing thread hit by kThreadCrash.
class InjectedThreadCrash : public std::exception {
 public:
  const char* what() const noexcept override {
    return "injected computing-thread crash";
  }
};

/// A consumable, optionally seeded list of fault specs.  Thread-safe;
/// shared by all simulated nodes of one run.
class ChaosPlan {
 public:
  ChaosPlan() = default;
  explicit ChaosPlan(std::vector<FaultSpec> specs, std::uint64_t seed = 0);

  void add(FaultSpec spec);
  bool empty() const;

  /// Consumes a blackhole fault matching (vertex, slave), if present.
  bool consumeBlackhole(VertexId vertex, int slave);

  /// Consumes a delay fault; returns the delay (0 = no fault).
  std::chrono::milliseconds consumeDelay(VertexId vertex, int slave);

  /// Consumes a thread-crash fault for (task, subVertex) on `slave`.
  bool consumeThreadCrash(VertexId vertex, int slave, VertexId subVertex);

  /// Consumes a slave-death fault for the assignment (vertex, slave).
  /// With `skip = K` the rank dies on its (K+1)th assignment, after
  /// completing K blocks — the shape that forces ownership invalidation.
  bool consumeSlaveDeath(VertexId vertex, int slave);

  /// Consumes a job-abort fault (checked by the master before dispatch).
  bool consumeJobAbort();

  /// Consumes a master-crash fault; checked by the master after each
  /// completed block, so `skip = K` crashes the master after K blocks.
  bool consumeMasterCrash(VertexId vertex, int slave);

  /// Consumes a payload-corruption fault for the Result of (vertex, slave).
  bool consumeCorrupt(VertexId vertex, int slave);

  /// Number of faults consumed so far (all kinds).
  std::int64_t triggered() const;
  /// Number of faults of one kind consumed so far.
  std::int64_t triggered(FaultKind kind) const;

 private:
  struct Slot {
    FaultSpec spec;
    std::int64_t matches = 0;  ///< eligible match events observed
    std::int64_t fired = 0;    ///< times this spec actually fired
  };

  bool matchAndConsume(FaultKind kind, VertexId vertex, int slave,
                       VertexId subVertex, std::chrono::milliseconds* delay);
  bool rollFires(const Slot& slot, std::size_t index) const;

  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::vector<Slot> slots_;
  std::int64_t triggered_ = 0;
  std::array<std::int64_t, kFaultKindCount> byKind_{};
};

/// The seed semantics (one-shot deterministic faults) under the original
/// name; the runtime and serve layers spell it FaultPlan throughout.
using FaultPlan = ChaosPlan;

}  // namespace easyhps::fault

#include "easyhps/fault/chaos.hpp"

#include "easyhps/util/error.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps::fault {

TransportChaosEngine::TransportChaosEngine(TransportChaos config, int ranks)
    : config_(config), ranks_(ranks) {
  EASYHPS_EXPECTS(ranks > 0);
  EASYHPS_EXPECTS(config.dropProbability >= 0.0 &&
                  config.dropProbability <= 1.0);
  EASYHPS_EXPECTS(config.duplicateProbability >= 0.0 &&
                  config.duplicateProbability <= 1.0);
  EASYHPS_EXPECTS(config.delayProbability >= 0.0 &&
                  config.delayProbability <= 1.0);
  EASYHPS_EXPECTS(config.corruptProbability >= 0.0 &&
                  config.corruptProbability <= 1.0);
  linkSeq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks));
}

msg::TransportDecision TransportChaosEngine::decide(int source, int dest) {
  EASYHPS_EXPECTS(source >= 0 && source < ranks_);
  EASYHPS_EXPECTS(dest >= 0 && dest < ranks_);
  const auto link =
      static_cast<std::size_t>(source) * static_cast<std::size_t>(ranks_) +
      static_cast<std::size_t>(dest);
  const std::uint64_t ordinal =
      linkSeq_[link].fetch_add(1, std::memory_order_relaxed);
  // Independent rolls from one per-message stream; roll order is part of
  // the schedule, so keep it fixed: drop, duplicate, delay, corrupt (the
  // corrupt roll is appended last so pre-existing seeded schedules are
  // unchanged when corruptProbability is 0).
  SplitMix64 mixer(config_.seed ^
                   (static_cast<std::uint64_t>(link) + 1) *
                       0x9E3779B97F4A7C15ULL ^
                   ordinal * 0xBF58476D1CE4E5B9ULL);
  const auto roll = [&mixer] {
    return static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  };
  msg::TransportDecision decision;
  decision.drop = roll() < config_.dropProbability;
  decision.duplicate = roll() < config_.duplicateProbability;
  if (roll() < config_.delayProbability) {
    decision.delay = config_.delay;
  }
  decision.corrupt = roll() < config_.corruptProbability;
  return decision;
}

}  // namespace easyhps::fault

#pragma once
/// \file chaos.hpp
/// Seeded randomized transport faults (the network half of the chaos
/// layer; task/rank faults live in plan.hpp).
///
/// `TransportChaos` is plain configuration — probabilities per outcome and
/// a seed — carried by `RuntimeConfig`.  `TransportChaosEngine` turns it
/// into per-message `msg::TransportDecision`s: every (source, dest) link
/// keeps an ordinal counter, and the decision for the n-th message on a
/// link is a pure hash of (seed, source, dest, n).  Two engines with the
/// same seed therefore produce identical decision *sequences* per link,
/// which is what "the same seed reproduces the same fault schedule" means
/// under concurrent senders (the interleaving across links may differ, the
/// per-link schedule does not).
///
/// The engine is tag-agnostic by design; which wire tags are eligible for
/// chaos at all is runtime policy (see wire::makeChaosTransport), not a
/// property of the fault model.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "easyhps/msg/comm.hpp"

namespace easyhps::fault {

/// Randomized transport-fault mix injected into the cluster substrate.
struct TransportChaos {
  double dropProbability = 0.0;
  double duplicateProbability = 0.0;
  double delayProbability = 0.0;
  /// Chance a data-carrying payload has one byte flipped in transit.
  /// Detection relies on the end-to-end content checksums every
  /// block/halo transfer carries (wire layer), not on the transport.
  double corruptProbability = 0.0;
  /// Latency added to a delayed message.
  std::chrono::milliseconds delay{3};
  std::uint64_t seed = 0;

  bool enabled() const {
    return dropProbability > 0.0 || duplicateProbability > 0.0 ||
           delayProbability > 0.0 || corruptProbability > 0.0;
  }
};

/// Deterministic decision source for one cluster run.  Thread-safe: the
/// only mutable state is one atomic ordinal per link.
class TransportChaosEngine {
 public:
  TransportChaosEngine(TransportChaos config, int ranks);

  /// Decision for the next message on the (source, dest) link; advances
  /// that link's ordinal.
  msg::TransportDecision decide(int source, int dest);

  const TransportChaos& config() const { return config_; }

 private:
  TransportChaos config_;
  int ranks_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> linkSeq_;
};

}  // namespace easyhps::fault

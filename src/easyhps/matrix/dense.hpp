#pragma once
/// \file dense.hpp
/// Dense row-major matrix with rectangle extraction/injection.
///
/// The master holds the full DP matrix; slaves receive halo rectangles with
/// each sub-task and return the computed block rectangle.  `extract` /
/// `inject` are the primitives behind that data-communication level of the
/// DAG Data Driven Model (paper Fig 7b).

#include <cstdint>
#include <vector>

#include "easyhps/matrix/geometry.hpp"
#include "easyhps/util/error.hpp"

namespace easyhps {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::int64_t rows, std::int64_t cols, T fill = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {
    EASYHPS_EXPECTS(rows >= 0 && cols >= 0);
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  T& at(std::int64_t r, std::int64_t c) {
    EASYHPS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  const T& at(std::int64_t r, std::int64_t c) const {
    EASYHPS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Unchecked access for hot kernels (callers validate the rectangle once).
  T& atUnchecked(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& atUnchecked(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Copies `rect` out as a row-major buffer of rect.cellCount() elements.
  std::vector<T> extract(const CellRect& rect) const {
    EASYHPS_EXPECTS(rect.row0 >= 0 && rect.rowEnd() <= rows_);
    EASYHPS_EXPECTS(rect.col0 >= 0 && rect.colEnd() <= cols_);
    std::vector<T> out(static_cast<std::size_t>(rect.cellCount()));
    for (std::int64_t r = 0; r < rect.rows; ++r) {
      const T* src =
          data_.data() + static_cast<std::size_t>(
                             (rect.row0 + r) * cols_ + rect.col0);
      std::copy(src, src + rect.cols,
                out.begin() + static_cast<std::ptrdiff_t>(r * rect.cols));
    }
    return out;
  }

  /// Writes a row-major buffer back into `rect`.
  void inject(const CellRect& rect, const std::vector<T>& values) {
    EASYHPS_EXPECTS(rect.row0 >= 0 && rect.rowEnd() <= rows_);
    EASYHPS_EXPECTS(rect.col0 >= 0 && rect.colEnd() <= cols_);
    EASYHPS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                    rect.cellCount());
    for (std::int64_t r = 0; r < rect.rows; ++r) {
      const T* src =
          values.data() + static_cast<std::size_t>(r * rect.cols);
      std::copy(src, src + rect.cols,
                data_.begin() + static_cast<std::ptrdiff_t>(
                                    (rect.row0 + r) * cols_ + rect.col0));
    }
  }

  const std::vector<T>& raw() const { return data_; }
  std::vector<T>& raw() { return data_; }

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace easyhps

#pragma once
/// \file geometry.hpp
/// Block-partition geometry of a DP matrix.
///
/// Task partition in EasyHPS (paper §IV-D, Fig 6) divides the cell-level DP
/// matrix into rectangular blocks; each block becomes one vertex of the
/// abstract DAG.  `BlockGrid` owns that index arithmetic: cell rectangle of
/// a block, linear block ids, and the ragged edges when the matrix size is
/// not a multiple of the partition size.  The same geometry is used at both
/// levels — process_partition_size on the master, thread_partition_size
/// inside each slave.

#include <cstdint>

#include "easyhps/util/error.hpp"

namespace easyhps {

/// Half-open rectangle of matrix cells [row0, row0+rows) × [col0, col0+cols).
struct CellRect {
  std::int64_t row0 = 0;
  std::int64_t col0 = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  std::int64_t cellCount() const { return rows * cols; }
  std::int64_t rowEnd() const { return row0 + rows; }
  std::int64_t colEnd() const { return col0 + cols; }

  bool contains(std::int64_t r, std::int64_t c) const {
    return r >= row0 && r < rowEnd() && c >= col0 && c < colEnd();
  }

  friend bool operator==(const CellRect&, const CellRect&) = default;
};

/// Block coordinates within the partition grid.
struct BlockCoord {
  std::int64_t bi = 0;  ///< block row
  std::int64_t bj = 0;  ///< block column

  friend bool operator==(const BlockCoord&, const BlockCoord&) = default;
};

/// Partition of a rows×cols matrix into blockRows×blockCols tiles.
class BlockGrid {
 public:
  BlockGrid(std::int64_t rows, std::int64_t cols, std::int64_t blockRows,
            std::int64_t blockCols)
      : rows_(rows), cols_(cols), block_rows_(blockRows),
        block_cols_(blockCols) {
    EASYHPS_EXPECTS(rows > 0 && cols > 0);
    EASYHPS_EXPECTS(blockRows > 0 && blockCols > 0);
    grid_rows_ = (rows + blockRows - 1) / blockRows;
    grid_cols_ = (cols + blockCols - 1) / blockCols;
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t blockRows() const { return block_rows_; }
  std::int64_t blockCols() const { return block_cols_; }
  std::int64_t gridRows() const { return grid_rows_; }
  std::int64_t gridCols() const { return grid_cols_; }
  std::int64_t blockCount() const { return grid_rows_ * grid_cols_; }

  /// Cell rectangle covered by block (bi, bj); edge blocks may be smaller.
  CellRect blockRect(std::int64_t bi, std::int64_t bj) const {
    EASYHPS_EXPECTS(bi >= 0 && bi < grid_rows_);
    EASYHPS_EXPECTS(bj >= 0 && bj < grid_cols_);
    CellRect r;
    r.row0 = bi * block_rows_;
    r.col0 = bj * block_cols_;
    r.rows = std::min(block_rows_, rows_ - r.row0);
    r.cols = std::min(block_cols_, cols_ - r.col0);
    return r;
  }

  CellRect blockRect(BlockCoord b) const { return blockRect(b.bi, b.bj); }

  /// Row-major linear id of a block; the DAG vertex id at this level.
  std::int64_t linearId(std::int64_t bi, std::int64_t bj) const {
    EASYHPS_EXPECTS(bi >= 0 && bi < grid_rows_);
    EASYHPS_EXPECTS(bj >= 0 && bj < grid_cols_);
    return bi * grid_cols_ + bj;
  }

  std::int64_t linearId(BlockCoord b) const { return linearId(b.bi, b.bj); }

  BlockCoord coordOf(std::int64_t linear) const {
    EASYHPS_EXPECTS(linear >= 0 && linear < blockCount());
    return BlockCoord{linear / grid_cols_, linear % grid_cols_};
  }

  /// Block containing cell (r, c).
  BlockCoord blockOfCell(std::int64_t r, std::int64_t c) const {
    EASYHPS_EXPECTS(r >= 0 && r < rows_);
    EASYHPS_EXPECTS(c >= 0 && c < cols_);
    return BlockCoord{r / block_rows_, c / block_cols_};
  }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t block_rows_;
  std::int64_t block_cols_;
  std::int64_t grid_rows_;
  std::int64_t grid_cols_;
};

}  // namespace easyhps

#pragma once
/// \file worker_pool.hpp
/// Worker-pool bookkeeping components (paper §V-A).
///
/// The paper's master/slave worker pools are built from four structures:
/// the computable sub-task stack and finished sub-task stack (both are
/// `BlockingStack`/`BlockingQueue` from util), the *overtime queue* and the
/// *sub-task register table* implemented here.
///
/// Assignments carry an **epoch**: the overtime queue may fire for an
/// assignment the fault-tolerance thread already cancelled and re-issued;
/// comparing epochs distinguishes "this very assignment timed out" from
/// "a newer assignment of the same task is in flight".

#include <chrono>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "easyhps/dag/pattern.hpp"

namespace easyhps {

/// Monotone per-task assignment counter.
using AssignmentEpoch = std::int64_t;

/// Records which sub-tasks are currently executing and where
/// (paper §V-A-4).  Thread-safe.
class RegisterTable {
 public:
  struct Entry {
    int worker = -1;
    AssignmentEpoch epoch = 0;
  };

  /// Registers a new assignment of `task` on `worker`; returns its epoch.
  AssignmentEpoch registerTask(VertexId task, int worker);

  /// Cancels the registration if (task, epoch) still matches; returns
  /// whether it did.  Used by the fault-tolerance thread before
  /// re-distributing.
  bool cancel(VertexId task, AssignmentEpoch epoch);

  /// Unregisters on successful completion regardless of epoch; returns the
  /// entry if the task was registered.
  std::optional<Entry> complete(VertexId task);

  bool isRegistered(VertexId task) const;

  /// True iff `task` is registered with exactly this epoch (used by a
  /// worker to learn whether its in-flight assignment was cancelled).
  bool matches(VertexId task, AssignmentEpoch epoch) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<VertexId, Entry> entries_;
  AssignmentEpoch next_epoch_ = 1;
};

/// Deadline min-heap of executing sub-tasks (paper §V-A-3).  Thread-safe.
class OvertimeQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    VertexId task = -1;
    int worker = -1;
    AssignmentEpoch epoch = 0;
    Clock::time_point deadline;
  };

  /// Adds an executing assignment with a deadline `timeout` from now.
  void push(VertexId task, int worker, AssignmentEpoch epoch,
            Clock::duration timeout);

  /// Pops every entry whose deadline passed (they may or may not still be
  /// registered — the caller checks against the RegisterTable).
  std::vector<Entry> popExpired(Clock::time_point now = Clock::now());

  /// Earliest deadline, if any (lets the FT thread sleep precisely).
  std::optional<Clock::time_point> nextDeadline() const;

  std::size_t size() const;

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.deadline > b.deadline;
    }
  };

  mutable std::mutex mutex_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace easyhps

#include "easyhps/sched/worker_pool.hpp"

namespace easyhps {

AssignmentEpoch RegisterTable::registerTask(VertexId task, int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  const AssignmentEpoch epoch = next_epoch_++;
  entries_[task] = Entry{worker, epoch};
  return epoch;
}

bool RegisterTable::cancel(VertexId task, AssignmentEpoch epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(task);
  if (it == entries_.end() || it->second.epoch != epoch) {
    return false;  // already completed or re-assigned since
  }
  entries_.erase(it);
  return true;
}

std::optional<RegisterTable::Entry> RegisterTable::complete(VertexId task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(task);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  const Entry e = it->second;
  entries_.erase(it);
  return e;
}

bool RegisterTable::isRegistered(VertexId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(task) > 0;
}

bool RegisterTable::matches(VertexId task, AssignmentEpoch epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(task);
  return it != entries_.end() && it->second.epoch == epoch;
}

std::size_t RegisterTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void OvertimeQueue::push(VertexId task, int worker, AssignmentEpoch epoch,
                         Clock::duration timeout) {
  std::lock_guard<std::mutex> lock(mutex_);
  heap_.push(Entry{task, worker, epoch, Clock::now() + timeout});
}

std::vector<OvertimeQueue::Entry> OvertimeQueue::popExpired(
    Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> expired;
  while (!heap_.empty() && heap_.top().deadline <= now) {
    expired.push_back(heap_.top());
    heap_.pop();
  }
  return expired;
}

std::optional<OvertimeQueue::Clock::time_point> OvertimeQueue::nextDeadline()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.top().deadline;
}

std::size_t OvertimeQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace easyhps

#pragma once
/// \file policy.hpp
/// Scheduling policies shared by the real runtime and the simulator.
///
/// A policy answers one question: *which ready sub-task should worker w run
/// next?*  Keeping it a pure decision object (DESIGN.md decision 2) means
/// the paper's comparison — dynamic worker pool (EasyHPS) vs static
/// block-cyclic wavefront (BCW) — tests the policy itself, identically in
/// the real runtime and in the discrete-event simulator that regenerates
/// Fig 17.
///
///  * `DynamicPolicy` — the EasyHPS dynamic worker pool (§V): one shared
///    computable sub-task stack, any idle worker takes the top.
///  * `BlockCyclicWavefrontPolicy` — the BCW baseline (Liu & Schmidt):
///    block column j is statically owned by worker (j mod P); an idle
///    worker may only run blocks it owns.  The paper's "fatal situation" —
///    computable tasks exist while idle workers own none of them — shows up
///    here as `pick()` returning nullopt while `queuedCount() > 0`, and is
///    counted in `stalledPicks()`.
///  * `ColumnWavefrontPolicy` — CW, the special case of BCW where each
///    worker owns one contiguous band of columns.
///
/// Policies are not thread-safe; the runtime serializes calls under its
/// scheduler mutex.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "easyhps/dag/library.hpp"
#include "easyhps/sched/profile.hpp"

namespace easyhps {

enum class PolicyKind {
  kDynamic,               ///< EasyHPS dynamic worker pool
  kBlockCyclicWavefront,  ///< BCW static baseline
  kColumnWavefront,       ///< CW static baseline (contiguous bands)
  kLocality,              ///< dynamic pool + ownership-directory affinity
  kEct,                   ///< heterogeneity-aware estimated-completion-time
  kEctSteal,              ///< ECT + slave→slave work stealing for the tail
};

std::string policyKindName(PolicyKind kind);

/// Inverse of `policyKindName` (plus the CLI/env spellings "bcw"/"cw"/
/// "ect-steal"); nullopt on an unknown name.  Backs `--policy` and the
/// `EASYHPS_SCHED` env knob.
std::optional<PolicyKind> parsePolicyKind(const std::string& name);

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// A sub-task became computable.
  virtual void onReady(VertexId task) = 0;

  /// Worker `worker` is idle; returns a task for it or nullopt if the
  /// policy has nothing this worker may run.
  virtual std::optional<VertexId> pick(int worker) = 0;

  /// Computable tasks currently queued (any owner).
  virtual std::int64_t queuedCount() const = 0;

  /// Streaming pipeline (PipelineMode::kStreaming): fraction of `task`'s
  /// halo cells already arrived, in [0, 1].  Called as fragments land —
  /// including for tasks already queued via onReady (a partially-ready
  /// early fire) — so policies can prefer work that is closer to fully
  /// fed.  Default: ignore fragment progress.
  virtual void onFragmentProgress(VertexId task, double fraction) {
    (void)task;
    (void)fraction;
  }

  /// `task` finished on `worker` after `seconds` of assign-to-result
  /// latency (0 when the caller has no measurement, e.g. a late duplicate
  /// result whose bookkeeping must still be cleared).  Planning policies
  /// use it to settle in-flight accounting and feed the rank estimator;
  /// default: ignore.
  virtual void onTaskCompleted(VertexId task, int worker, double seconds) {
    (void)task;
    (void)worker;
    (void)seconds;
  }

  /// Steal grants: tasks revoked from one worker's plan and re-issued to
  /// an idle one (PolicyKind::kEctSteal only; 0 elsewhere).
  virtual std::int64_t tasksStolen() const { return 0; }

  /// Placements where no rank had store budget left for the task's output
  /// block — the reactive-spill blind spot surfaced as a counter
  /// (PolicyKind::kEct/kEctSteal only; 0 elsewhere).
  virtual std::int64_t placementSpills() const { return 0; }

  /// Times pick() returned nullopt while queuedCount() > 0 — the static
  /// schedule's "ready task but forbidden worker" stalls.
  std::int64_t stalledPicks() const { return stalled_picks_; }

 protected:
  void noteStall() { ++stalled_picks_; }

 private:
  std::int64_t stalled_picks_ = 0;
};

/// Creates a policy bound to a DAG and worker count.
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind,
                                             const PartitionedDag& dag,
                                             int workers);

/// Affinity oracle for the locality policy: bytes of `task`'s dependency
/// halos already resident at `worker`'s rank.  Called from pick()/onReady()
/// — i.e. under whatever lock serializes the policy — so it may read the
/// master's ownership directory directly.
using LocalityAffinityFn =
    std::function<std::int64_t(VertexId task, int worker)>;

/// Locality-aware variant of the dynamic pool: an idle worker prefers the
/// ready task whose dependency bytes it already owns (per the ownership
/// directory); with no affinity signal it degrades to the plain dynamic
/// pool.  `makePolicy(kLocality, ...)` builds one with a null oracle
/// (pure dynamic behaviour) so the simulator and CLI keep working; the
/// runtime injects the real oracle via this factory.
std::unique_ptr<SchedulingPolicy> makeLocalityPolicy(
    const PartitionedDag& dag, int workers, LocalityAffinityFn affinity);

/// Wiring for the ECT policy.  All oracles are called under whatever lock
/// serializes the policy (the master's scheduler mutex), so they may read
/// the ownership directory / health registry directly.  Null oracles
/// degrade gracefully: no remoteBytes = no bandwidth term, no blockBytes =
/// no memory-capacity check, no allowAssign = every worker eligible.
struct EctOptions {
  /// Grant steal requests from idle workers (PolicyKind::kEctSteal).
  bool steal = false;
  /// Speed/bandwidth/RTT/budget source; required (shared with the master
  /// service so estimates persist across jobs).
  std::shared_ptr<RankEstimator> estimator;
  /// Work units in `task` (e.g. DpProblem::blockOps); null = block cell
  /// count from the DAG.
  std::function<double(VertexId task)> taskWork;
  /// Dependency-halo bytes `worker` would have to pull from other ranks.
  std::function<std::int64_t(VertexId task, int worker)> remoteBytes;
  /// Output-block bytes `task` will pin in its rank's BlockStore; enables
  /// the placement-time budget check and the placementSpills counter.
  std::function<std::uint64_t(VertexId task)> blockBytes;
  /// Bytes already resident in `worker`'s store per the master's ownership
  /// directory (reflects spills/evictions the planner cannot see).
  std::function<std::uint64_t(int worker)> residentBytes;
  /// Health gate: false = quarantined, never plan onto this worker.
  std::function<bool(int worker)> allowAssign;
};

/// Estimated-completion-time policy (heterogeneity- and memory-aware):
/// each ready task is planned onto the worker minimizing
/// (backlog + in-flight + work) / speed + remote bytes / bandwidth + rtt,
/// preferring workers whose store budget still fits the output block.
/// With `options.steal` an idle worker may steal the *least-committed*
/// (tail) queued task from the most-loaded eligible worker, when it would
/// finish it sooner than the victim.
std::unique_ptr<SchedulingPolicy> makeEctPolicy(const PartitionedDag& dag,
                                                int workers,
                                                EctOptions options);

}  // namespace easyhps

#pragma once
/// \file policy.hpp
/// Scheduling policies shared by the real runtime and the simulator.
///
/// A policy answers one question: *which ready sub-task should worker w run
/// next?*  Keeping it a pure decision object (DESIGN.md decision 2) means
/// the paper's comparison — dynamic worker pool (EasyHPS) vs static
/// block-cyclic wavefront (BCW) — tests the policy itself, identically in
/// the real runtime and in the discrete-event simulator that regenerates
/// Fig 17.
///
///  * `DynamicPolicy` — the EasyHPS dynamic worker pool (§V): one shared
///    computable sub-task stack, any idle worker takes the top.
///  * `BlockCyclicWavefrontPolicy` — the BCW baseline (Liu & Schmidt):
///    block column j is statically owned by worker (j mod P); an idle
///    worker may only run blocks it owns.  The paper's "fatal situation" —
///    computable tasks exist while idle workers own none of them — shows up
///    here as `pick()` returning nullopt while `queuedCount() > 0`, and is
///    counted in `stalledPicks()`.
///  * `ColumnWavefrontPolicy` — CW, the special case of BCW where each
///    worker owns one contiguous band of columns.
///
/// Policies are not thread-safe; the runtime serializes calls under its
/// scheduler mutex.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "easyhps/dag/library.hpp"

namespace easyhps {

enum class PolicyKind {
  kDynamic,               ///< EasyHPS dynamic worker pool
  kBlockCyclicWavefront,  ///< BCW static baseline
  kColumnWavefront,       ///< CW static baseline (contiguous bands)
  kLocality,              ///< dynamic pool + ownership-directory affinity
};

std::string policyKindName(PolicyKind kind);

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// A sub-task became computable.
  virtual void onReady(VertexId task) = 0;

  /// Worker `worker` is idle; returns a task for it or nullopt if the
  /// policy has nothing this worker may run.
  virtual std::optional<VertexId> pick(int worker) = 0;

  /// Computable tasks currently queued (any owner).
  virtual std::int64_t queuedCount() const = 0;

  /// Streaming pipeline (PipelineMode::kStreaming): fraction of `task`'s
  /// halo cells already arrived, in [0, 1].  Called as fragments land —
  /// including for tasks already queued via onReady (a partially-ready
  /// early fire) — so policies can prefer work that is closer to fully
  /// fed.  Default: ignore fragment progress.
  virtual void onFragmentProgress(VertexId task, double fraction) {
    (void)task;
    (void)fraction;
  }

  /// Times pick() returned nullopt while queuedCount() > 0 — the static
  /// schedule's "ready task but forbidden worker" stalls.
  std::int64_t stalledPicks() const { return stalled_picks_; }

 protected:
  void noteStall() { ++stalled_picks_; }

 private:
  std::int64_t stalled_picks_ = 0;
};

/// Creates a policy bound to a DAG and worker count.
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind,
                                             const PartitionedDag& dag,
                                             int workers);

/// Affinity oracle for the locality policy: bytes of `task`'s dependency
/// halos already resident at `worker`'s rank.  Called from pick()/onReady()
/// — i.e. under whatever lock serializes the policy — so it may read the
/// master's ownership directory directly.
using LocalityAffinityFn =
    std::function<std::int64_t(VertexId task, int worker)>;

/// Locality-aware variant of the dynamic pool: an idle worker prefers the
/// ready task whose dependency bytes it already owns (per the ownership
/// directory); with no affinity signal it degrades to the plain dynamic
/// pool.  `makePolicy(kLocality, ...)` builds one with a null oracle
/// (pure dynamic behaviour) so the simulator and CLI keep working; the
/// runtime injects the real oracle via this factory.
std::unique_ptr<SchedulingPolicy> makeLocalityPolicy(
    const PartitionedDag& dag, int workers, LocalityAffinityFn affinity);

}  // namespace easyhps

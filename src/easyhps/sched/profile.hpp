#pragma once
/// \file profile.hpp
/// Per-rank capability profiles and the online rank estimator.
///
/// The paper's two-level scheduler assumes identical slaves; real clusters
/// are heterogeneous.  A `RankProfile` states what the operator believes
/// about a rank — relative compute speed, store byte budget, link
/// bandwidth — and a `RankEstimator` refines that belief online from
/// observed task latencies (EWMA of work-units-per-second per rank, seeded
/// from the health registry's ack RTTs) and from timed peer-to-peer halo
/// transfers (the per-link byte matrix the data plane already collects).
///
/// The estimator is the single source of truth the ECT scheduling policy
/// (`policy.hpp`, PolicyKind::kEct / kEctSteal) scores candidates against:
///
///   ECT(task, rank) = (backlog + in-flight + task work) / speed(rank)
///                   + remote halo bytes / bandwidth(rank)
///                   + rtt(rank)
///
/// Speeds mix two unit systems: profiles are *relative* (speed 2 = twice
/// the baseline), observations are *absolute* (work units per second).
/// `speed()` reconciles them by calibrating unobserved ranks against the
/// mean observed-per-profile-unit rate of the ranks we have seen, so a
/// never-assigned rank stays comparable instead of starving or hogging.
///
/// Thread-safe: the master's worker threads observe under the scheduler
/// mutex while the service loop seeds RTTs between jobs; a private mutex
/// keeps the estimator usable from tests without external locking.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace easyhps {

/// Operator-declared belief about one slave rank.  Defaults describe the
/// homogeneous baseline (relative speed 1, the RuntimeConfig default store
/// budget, the simulator's default link bandwidth).
struct RankProfile {
  /// Relative compute speed; 2.0 = twice the baseline rank.  Must be > 0.
  double speed = 1.0;
  /// BlockStore byte budget for this rank; the placement-time capacity
  /// check and the slave's actual store both use it.  Must be > 0 when
  /// profiles are configured (0 only means "unlimited" inside tests that
  /// build estimators directly).
  std::uint64_t memoryBudget = 256ULL << 20;
  /// Master→rank link bandwidth in bytes/second.  Must be > 0.
  double linkBandwidth = 3.0e9;
};

/// Online refinement of a cluster's `RankProfile`s.  Workers are 0-based
/// (worker w drives slave rank w+1, matching SchedulingPolicy).
class RankEstimator {
 public:
  /// `profiles` may be empty (uniform defaults) or have exactly `workers`
  /// entries.
  RankEstimator(int workers, std::vector<RankProfile> profiles = {});

  int workers() const { return static_cast<int>(ranks_.size()); }

  /// Calibrated work units per second for `worker` — the observed EWMA
  /// once the rank has completed a task, the profile speed times the
  /// cluster calibration factor before that.  Always > 0.
  double speed(int worker) const;

  /// Bytes per second on the link to `worker` — observed transfer EWMA if
  /// any, else the profile value.  Always > 0.
  double bandwidth(int worker) const;

  /// Control-plane round-trip estimate (seeded from the health registry's
  /// ack-latency EWMA); 0 until seeded.
  double rttSeconds(int worker) const;

  /// Store byte budget for `worker`; 0 = unlimited.
  std::uint64_t memoryBudget(int worker) const;

  RankProfile profile(int worker) const;

  /// A task worth `workUnits` completed on `worker` in `seconds`
  /// (assign-send to result-receive).  Non-positive inputs are ignored.
  void observeTask(int worker, double workUnits, double seconds);

  /// `bytes` moved over `worker`'s link in `seconds` (timed halo fetch or
  /// per-link matrix delta).  Non-positive inputs are ignored.
  void observeTransfer(int worker, double bytes, double seconds);

  /// Seeds/refreshes the RTT term, e.g. from
  /// `HealthRegistry::ewmaLatencySeconds`.
  void setRttSeconds(int worker, double seconds);

  /// Task observations absorbed so far (all ranks).
  std::int64_t taskObservations() const;

 private:
  struct Rank {
    RankProfile profile;
    double ewmaOpsPerSec = 0.0;
    double ewmaBytesPerSec = 0.0;
    double rttSeconds = 0.0;
    bool sawTask = false;
    bool sawTransfer = false;
  };

  /// Mean observed ops/sec per unit of profile speed; 1.0 with no
  /// observations.  Caller holds mutex_.
  double calibrationLocked() const;

  mutable std::mutex mutex_;
  std::vector<Rank> ranks_;
  std::int64_t task_observations_ = 0;
};

/// Parses a comma-separated speed list ("4,1,1,1") into profiles carrying
/// `memoryBudget`/`linkBandwidth` defaults from `base`.  Returns an empty
/// vector (and leaves a note in `error` if non-null) when the text is
/// malformed or the count does not match `workers`.  Backs the
/// `EASYHPS_RANK_SPEEDS` env knob.
std::vector<RankProfile> parseRankSpeeds(const std::string& text, int workers,
                                         const RankProfile& base,
                                         std::string* error = nullptr);

}  // namespace easyhps

#include "easyhps/sched/policy.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {
namespace {

/// EasyHPS dynamic worker pool: single shared LIFO computable stack.
class DynamicPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "dynamic"; }

  void onReady(VertexId task) override { stack_.push_back(task); }

  std::optional<VertexId> pick(int worker) override {
    (void)worker;  // any worker may take any task
    if (stack_.empty()) {
      return std::nullopt;
    }
    const VertexId t = stack_.back();
    stack_.pop_back();
    return t;
  }

  std::int64_t queuedCount() const override {
    return static_cast<std::int64_t>(stack_.size());
  }

 private:
  std::vector<VertexId> stack_;
};

/// Static ownership baseline: every task belongs to exactly one worker.
class StaticOwnershipPolicy : public SchedulingPolicy {
 public:
  StaticOwnershipPolicy(const PartitionedDag& dag, int workers)
      : dag_(&dag), queues_(static_cast<std::size_t>(workers)) {
    EASYHPS_EXPECTS(workers > 0);
  }

  void onReady(VertexId task) override {
    const int owner = ownerOf(task);
    queues_[static_cast<std::size_t>(owner)].push_back(task);
    ++queued_;
  }

  std::optional<VertexId> pick(int worker) override {
    EASYHPS_EXPECTS(worker >= 0 &&
                    worker < static_cast<int>(queues_.size()));
    auto& q = queues_[static_cast<std::size_t>(worker)];
    if (q.empty()) {
      if (queued_ > 0) {
        noteStall();  // ready tasks exist, but this worker owns none
      }
      return std::nullopt;
    }
    // FIFO: static wavefront executes blocks in readiness order.
    const VertexId t = q.front();
    q.pop_front();
    --queued_;
    return t;
  }

  std::int64_t queuedCount() const override { return queued_; }

 protected:
  virtual int ownerOf(VertexId task) const = 0;

  const PartitionedDag* dag_;
  std::vector<std::deque<VertexId>> queues_;
  std::int64_t queued_ = 0;
};

class BcwPolicy final : public StaticOwnershipPolicy {
 public:
  using StaticOwnershipPolicy::StaticOwnershipPolicy;

  std::string name() const override { return "block-cyclic-wavefront"; }

 private:
  int ownerOf(VertexId task) const override {
    // Block column j is owned by worker (j mod P) — block-cyclic.
    const BlockCoord c = dag_->coordOf(task);
    return static_cast<int>(c.bj % static_cast<std::int64_t>(queues_.size()));
  }
};

class CwPolicy final : public StaticOwnershipPolicy {
 public:
  CwPolicy(const PartitionedDag& dag, int workers)
      : StaticOwnershipPolicy(dag, workers) {
    const std::int64_t cols = dag.grid.gridCols();
    const auto p = static_cast<std::int64_t>(workers);
    band_ = (cols + p - 1) / p;
  }

  std::string name() const override { return "column-wavefront"; }

 private:
  int ownerOf(VertexId task) const override {
    // One contiguous band of block columns per worker: CW is BCW with
    // block_col = data_col / worker count (paper §VI).
    const BlockCoord c = dag_->coordOf(task);
    return static_cast<int>(c.bj / band_);
  }

  std::int64_t band_ = 1;
};

/// Dynamic pool with an affinity tie-break: among ready tasks, an idle
/// worker takes the one whose dependency bytes it already owns the most
/// of; equal-affinity candidates are ordered by halo-fragment progress
/// (streaming pipeline — a block whose halo has fully arrived beats one
/// still waiting on fragments); on a full tie (including the no-oracle
/// case, affinity ≡ 0 and barrier mode, progress ≡ unset) the most
/// recently readied task wins, matching DynamicPolicy's LIFO order.
class LocalityPolicy final : public SchedulingPolicy {
 public:
  explicit LocalityPolicy(LocalityAffinityFn affinity)
      : affinity_(std::move(affinity)) {}

  std::string name() const override { return "locality"; }

  void onReady(VertexId task) override { ready_.push_back(task); }

  void onFragmentProgress(VertexId task, double fraction) override {
    progress_[task] = fraction;
  }

  std::optional<VertexId> pick(int worker) override {
    if (ready_.empty()) {
      return std::nullopt;
    }
    std::size_t best = ready_.size() - 1;  // LIFO default
    if (affinity_ || !progress_.empty()) {
      std::int64_t bestScore = affinity_ ? affinity_(ready_[best], worker) : 0;
      double bestProgress = progressOf(ready_[best]);
      for (std::size_t i = ready_.size(); i-- > 0;) {
        const std::int64_t score =
            affinity_ ? affinity_(ready_[i], worker) : 0;
        const double progress = progressOf(ready_[i]);
        if (score > bestScore ||
            (score == bestScore && progress > bestProgress)) {
          best = i;
          bestScore = score;
          bestProgress = progress;
        }
      }
    }
    const VertexId t = ready_[best];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));
    progress_.erase(t);
    return t;
  }

  std::int64_t queuedCount() const override {
    return static_cast<std::int64_t>(ready_.size());
  }

 private:
  double progressOf(VertexId task) const {
    const auto it = progress_.find(task);
    // Unreported = not streaming = fully available.
    return it == progress_.end() ? 1.0 : it->second;
  }

  LocalityAffinityFn affinity_;
  std::vector<VertexId> ready_;
  std::unordered_map<VertexId, double> progress_;
};

/// Heterogeneity- and memory-aware planner.  Unlike the pull-based pools
/// above, ECT commits every ready task to a per-worker lane the moment it
/// becomes computable, scoring candidates by estimated completion time
/// against the shared RankEstimator:
///
///   ECT(t, w) = (backlog_w + inflight_w + work_t) / speed_w
///             + remoteBytes(t, w) / bandwidth_w + rtt_w
///
/// Memory awareness: a worker whose BlockStore budget cannot fit the
/// task's output block on top of its pending + resident bytes is skipped
/// in a first pass; only when *no* worker fits does the planner fall back
/// to the min-ECT worker and count a `placementSpills` (the old reactive
/// spill, now visible).  With `steal` an idle worker revokes the tail
/// (least-committed, lowest fragment progress is irrelevant — back of the
/// FIFO) task of the most-loaded worker when it would finish it sooner.
///
/// Invariant the double-assign test leans on: a task lives in exactly one
/// of {some lane's queue, the in-flight map} between onReady and
/// onTaskCompleted; pick/steal move it atomically (under the caller's
/// scheduler mutex), so no sequence of picks can return it twice without
/// an intervening timeout re-onReady.
class EctPolicy final : public SchedulingPolicy {
 public:
  EctPolicy(const PartitionedDag& dag, int workers, EctOptions options)
      : dag_(&dag), opt_(std::move(options)),
        lanes_(static_cast<std::size_t>(workers)) {
    EASYHPS_EXPECTS(workers > 0);
    EASYHPS_EXPECTS(opt_.estimator != nullptr);
    EASYHPS_EXPECTS(opt_.estimator->workers() == workers);
  }

  std::string name() const override { return opt_.steal ? "ect-steal" : "ect"; }

  void onReady(VertexId task) override {
    // A timeout re-distribution re-readies a task we still carry as
    // in-flight: the old assignment is cancelled, so release its debit
    // (the block was never produced) before planning it afresh.
    releaseInflight(task);
    if (queued_.count(task) != 0) {
      return;  // duplicate onReady; already planned
    }
    plan(task);
  }

  void onFragmentProgress(VertexId task, double fraction) override {
    progress_[task] = fraction;
  }

  std::optional<VertexId> pick(int worker) override {
    EASYHPS_EXPECTS(worker >= 0 &&
                    worker < static_cast<int>(lanes_.size()));
    reclaimDisallowed();
    if (!allowed(worker)) {
      return std::nullopt;  // quarantined; master gate normally precedes us
    }
    Lane& lane = lanes_[static_cast<std::size_t>(worker)];
    if (!lane.queue.empty()) {
      // Prefer the queued task whose halo fragments have advanced
      // furthest (streaming pipeline); ties fall back to FIFO order.
      std::size_t best = 0;
      double bestProgress = progressOf(lane.queue[0]);
      for (std::size_t i = 1; i < lane.queue.size(); ++i) {
        const double p = progressOf(lane.queue[i]);
        if (p > bestProgress) {
          best = i;
          bestProgress = p;
        }
      }
      return take(worker, worker, best);
    }
    if (opt_.steal) {
      if (const auto stolen = trySteal(worker)) {
        return stolen;
      }
    }
    if (queued_count_ > 0) {
      noteStall();  // ready tasks exist, but they are planned elsewhere
    }
    return std::nullopt;
  }

  void onTaskCompleted(VertexId task, int worker, double seconds) override {
    releaseInflight(task);
    // A late duplicate may complete a task that a timeout re-planned onto
    // some queue; drop the stale queued copy so it is never re-issued.
    const auto qit = queued_.find(task);
    if (qit != queued_.end()) {
      Lane& lane = lanes_[static_cast<std::size_t>(qit->second.lane)];
      const auto pos =
          std::find(lane.queue.begin(), lane.queue.end(), task);
      if (pos != lane.queue.end()) {
        lane.queue.erase(pos);
      }
      lane.backlogWork -= qit->second.work;
      lane.pendingBytes -= qit->second.bytes;
      --queued_count_;
      queued_.erase(qit);
    }
    progress_.erase(task);
    if (seconds > 0) {
      opt_.estimator->observeTask(worker, workOf(task), seconds);
    }
  }

  std::int64_t queuedCount() const override { return queued_count_; }
  std::int64_t tasksStolen() const override { return steals_; }
  std::int64_t placementSpills() const override { return spills_; }

 private:
  /// One task's planned footprint; `lane` is where its work/bytes are
  /// currently debited.
  struct TaskInfo {
    int lane = 0;
    double work = 0.0;
    std::uint64_t bytes = 0;
  };

  struct Lane {
    std::deque<VertexId> queue;  ///< planned, not yet issued (FIFO)
    double backlogWork = 0.0;    ///< work units queued
    double inflightWork = 0.0;   ///< work units issued, result pending
    std::uint64_t pendingBytes = 0;  ///< output bytes queued + in flight
  };

  bool allowed(int worker) const {
    return !opt_.allowAssign || opt_.allowAssign(worker);
  }

  double workOf(VertexId task) const {
    return opt_.taskWork
               ? opt_.taskWork(task)
               : static_cast<double>(dag_->rectOf(task).cellCount());
  }

  double progressOf(VertexId task) const {
    const auto it = progress_.find(task);
    return it == progress_.end() ? 1.0 : it->second;
  }

  /// Estimated completion time of `task` if appended to `worker`'s lane.
  double ectOf(VertexId task, int worker, double work) const {
    const Lane& lane = lanes_[static_cast<std::size_t>(worker)];
    const RankEstimator& est = *opt_.estimator;
    double ect =
        (lane.backlogWork + lane.inflightWork + work) / est.speed(worker);
    if (opt_.remoteBytes) {
      ect += static_cast<double>(opt_.remoteBytes(task, worker)) /
             est.bandwidth(worker);
    }
    return ect + est.rttSeconds(worker);
  }

  /// Seconds until `worker` drains everything already planned on it.
  double drainSecondsOf(int worker) const {
    const Lane& lane = lanes_[static_cast<std::size_t>(worker)];
    return (lane.backlogWork + lane.inflightWork) /
           opt_.estimator->speed(worker);
  }

  bool fitsBudget(int worker, std::uint64_t bytes) const {
    const std::uint64_t budget = opt_.estimator->memoryBudget(worker);
    if (budget == 0 || bytes == 0) {
      return true;  // unlimited store / no capacity oracle
    }
    std::uint64_t used = lanes_[static_cast<std::size_t>(worker)].pendingBytes;
    if (opt_.residentBytes) {
      used += opt_.residentBytes(worker);
    }
    return used + bytes <= budget;
  }

  /// Min-ECT worker for `task`; workers that fail the store-budget check
  /// lose to any worker that fits.  `requireAllowed` skips quarantined
  /// workers; -1 if that leaves nobody.
  int bestLaneFor(VertexId task, double work, std::uint64_t bytes,
                  bool requireAllowed, bool* fits) const {
    int best = -1;
    bool bestFits = false;
    double bestEct = 0.0;
    for (int w = 0; w < static_cast<int>(lanes_.size()); ++w) {
      if (requireAllowed && !allowed(w)) {
        continue;
      }
      const bool f = fitsBudget(w, bytes);
      const double ect = ectOf(task, w, work);
      if (best < 0 || (f && !bestFits) ||
          (f == bestFits && ect < bestEct)) {
        best = w;
        bestFits = f;
        bestEct = ect;
      }
    }
    *fits = bestFits;
    return best;
  }

  void plan(VertexId task) {
    const double work = workOf(task);
    const std::uint64_t bytes = opt_.blockBytes ? opt_.blockBytes(task) : 0;
    bool fits = false;
    int lane = bestLaneFor(task, work, bytes, /*requireAllowed=*/true, &fits);
    if (lane < 0) {
      // Every worker quarantined: plan anyway (the master's health gate
      // withholds the actual assignment until a rank is readmitted).
      lane = bestLaneFor(task, work, bytes, /*requireAllowed=*/false, &fits);
    }
    if (!fits && bytes > 0) {
      ++spills_;  // will spill reactively at the slave; count it up front
    }
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    l.queue.push_back(task);
    l.backlogWork += work;
    l.pendingBytes += bytes;
    queued_[task] = TaskInfo{lane, work, bytes};
    ++queued_count_;
  }

  /// Removes queue position `index` of `victimLane` and marks it in
  /// flight on `worker` (== victimLane except when stealing).
  VertexId take(int worker, int victimLane, std::size_t index) {
    Lane& victim = lanes_[static_cast<std::size_t>(victimLane)];
    const VertexId task = victim.queue[index];
    victim.queue.erase(victim.queue.begin() +
                       static_cast<std::ptrdiff_t>(index));
    TaskInfo info = queued_.at(task);
    victim.backlogWork -= info.work;
    victim.pendingBytes -= info.bytes;
    queued_.erase(task);
    --queued_count_;
    info.lane = worker;
    Lane& mine = lanes_[static_cast<std::size_t>(worker)];
    mine.inflightWork += info.work;
    mine.pendingBytes += info.bytes;
    inflight_[task] = info;
    progress_.erase(task);
    return task;
  }

  /// Idle `thief` asks for the tail task of the most-loaded worker; grant
  /// it when the thief's ECT beats the victim's projected drain time.
  std::optional<VertexId> trySteal(int thief) {
    int victim = -1;
    double victimDrain = 0.0;
    for (int w = 0; w < static_cast<int>(lanes_.size()); ++w) {
      if (w == thief || lanes_[static_cast<std::size_t>(w)].queue.empty()) {
        continue;
      }
      const double drain = drainSecondsOf(w);
      if (victim < 0 || drain > victimDrain) {
        victim = w;
        victimDrain = drain;
      }
    }
    if (victim < 0) {
      return std::nullopt;
    }
    const Lane& lane = lanes_[static_cast<std::size_t>(victim)];
    const VertexId candidate = lane.queue.back();  // tail = least committed
    if (ectOf(candidate, thief, workOf(candidate)) >= victimDrain) {
      return std::nullopt;  // the victim would finish it sooner anyway
    }
    ++steals_;
    return take(thief, victim, lane.queue.size() - 1);
  }

  /// Cancelled in-flight assignment (timeout or completion): undo its
  /// work and byte debits.
  void releaseInflight(VertexId task) {
    const auto it = inflight_.find(task);
    if (it == inflight_.end()) {
      return;
    }
    Lane& lane = lanes_[static_cast<std::size_t>(it->second.lane)];
    lane.inflightWork -= it->second.work;
    lane.pendingBytes -= it->second.bytes;
    inflight_.erase(it);
  }

  /// Re-plans tasks stranded on quarantined workers so the job cannot
  /// deadlock waiting on a lane nobody is allowed to drain.
  void reclaimDisallowed() {
    if (!opt_.allowAssign) {
      return;
    }
    bool anyAllowed = false;
    for (int w = 0; w < static_cast<int>(lanes_.size()); ++w) {
      anyAllowed = anyAllowed || allowed(w);
    }
    if (!anyAllowed) {
      return;  // nowhere to move them; wait for a readmission
    }
    for (int w = 0; w < static_cast<int>(lanes_.size()); ++w) {
      Lane& lane = lanes_[static_cast<std::size_t>(w)];
      if (allowed(w) || lane.queue.empty()) {
        continue;
      }
      std::vector<VertexId> stranded(lane.queue.begin(), lane.queue.end());
      for (const VertexId task : stranded) {
        const TaskInfo info = queued_.at(task);
        lane.queue.pop_front();
        lane.backlogWork -= info.work;
        lane.pendingBytes -= info.bytes;
        queued_.erase(task);
        --queued_count_;
        plan(task);
      }
    }
  }

  const PartitionedDag* dag_;
  EctOptions opt_;
  std::vector<Lane> lanes_;
  std::unordered_map<VertexId, TaskInfo> queued_;
  std::unordered_map<VertexId, TaskInfo> inflight_;
  std::unordered_map<VertexId, double> progress_;
  std::int64_t queued_count_ = 0;
  std::int64_t steals_ = 0;
  std::int64_t spills_ = 0;
};

}  // namespace

std::string policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDynamic:
      return "dynamic";
    case PolicyKind::kBlockCyclicWavefront:
      return "bcw";
    case PolicyKind::kColumnWavefront:
      return "cw";
    case PolicyKind::kLocality:
      return "locality";
    case PolicyKind::kEct:
      return "ect";
    case PolicyKind::kEctSteal:
      return "ect-steal";
  }
  return "unknown";
}

std::optional<PolicyKind> parsePolicyKind(const std::string& name) {
  if (name == "dynamic") {
    return PolicyKind::kDynamic;
  }
  if (name == "bcw") {
    return PolicyKind::kBlockCyclicWavefront;
  }
  if (name == "cw") {
    return PolicyKind::kColumnWavefront;
  }
  if (name == "locality") {
    return PolicyKind::kLocality;
  }
  if (name == "ect") {
    return PolicyKind::kEct;
  }
  if (name == "ect-steal") {
    return PolicyKind::kEctSteal;
  }
  return std::nullopt;
}

std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind,
                                             const PartitionedDag& dag,
                                             int workers) {
  EASYHPS_EXPECTS(workers > 0);
  switch (kind) {
    case PolicyKind::kDynamic:
      return std::make_unique<DynamicPolicy>();
    case PolicyKind::kBlockCyclicWavefront:
      return std::make_unique<BcwPolicy>(dag, workers);
    case PolicyKind::kColumnWavefront:
      return std::make_unique<CwPolicy>(dag, workers);
    case PolicyKind::kLocality:
      return std::make_unique<LocalityPolicy>(nullptr);
    case PolicyKind::kEct:
    case PolicyKind::kEctSteal: {
      // Default wiring (CLI / simulator fallback): uniform profiles,
      // block cell count as the work unit, no capacity or health oracles.
      EctOptions opt;
      opt.steal = kind == PolicyKind::kEctSteal;
      opt.estimator = std::make_shared<RankEstimator>(workers);
      return makeEctPolicy(dag, workers, std::move(opt));
    }
  }
  throw LogicError("unknown policy kind");
}

std::unique_ptr<SchedulingPolicy> makeLocalityPolicy(
    const PartitionedDag& dag, int workers, LocalityAffinityFn affinity) {
  (void)dag;
  EASYHPS_EXPECTS(workers > 0);
  return std::make_unique<LocalityPolicy>(std::move(affinity));
}

std::unique_ptr<SchedulingPolicy> makeEctPolicy(const PartitionedDag& dag,
                                                int workers,
                                                EctOptions options) {
  EASYHPS_EXPECTS(workers > 0);
  return std::make_unique<EctPolicy>(dag, workers, std::move(options));
}

}  // namespace easyhps

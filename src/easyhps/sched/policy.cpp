#include "easyhps/sched/policy.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

#include "easyhps/util/error.hpp"

namespace easyhps {
namespace {

/// EasyHPS dynamic worker pool: single shared LIFO computable stack.
class DynamicPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "dynamic"; }

  void onReady(VertexId task) override { stack_.push_back(task); }

  std::optional<VertexId> pick(int worker) override {
    (void)worker;  // any worker may take any task
    if (stack_.empty()) {
      return std::nullopt;
    }
    const VertexId t = stack_.back();
    stack_.pop_back();
    return t;
  }

  std::int64_t queuedCount() const override {
    return static_cast<std::int64_t>(stack_.size());
  }

 private:
  std::vector<VertexId> stack_;
};

/// Static ownership baseline: every task belongs to exactly one worker.
class StaticOwnershipPolicy : public SchedulingPolicy {
 public:
  StaticOwnershipPolicy(const PartitionedDag& dag, int workers)
      : dag_(&dag), queues_(static_cast<std::size_t>(workers)) {
    EASYHPS_EXPECTS(workers > 0);
  }

  void onReady(VertexId task) override {
    const int owner = ownerOf(task);
    queues_[static_cast<std::size_t>(owner)].push_back(task);
    ++queued_;
  }

  std::optional<VertexId> pick(int worker) override {
    EASYHPS_EXPECTS(worker >= 0 &&
                    worker < static_cast<int>(queues_.size()));
    auto& q = queues_[static_cast<std::size_t>(worker)];
    if (q.empty()) {
      if (queued_ > 0) {
        noteStall();  // ready tasks exist, but this worker owns none
      }
      return std::nullopt;
    }
    // FIFO: static wavefront executes blocks in readiness order.
    const VertexId t = q.front();
    q.pop_front();
    --queued_;
    return t;
  }

  std::int64_t queuedCount() const override { return queued_; }

 protected:
  virtual int ownerOf(VertexId task) const = 0;

  const PartitionedDag* dag_;
  std::vector<std::deque<VertexId>> queues_;
  std::int64_t queued_ = 0;
};

class BcwPolicy final : public StaticOwnershipPolicy {
 public:
  using StaticOwnershipPolicy::StaticOwnershipPolicy;

  std::string name() const override { return "block-cyclic-wavefront"; }

 private:
  int ownerOf(VertexId task) const override {
    // Block column j is owned by worker (j mod P) — block-cyclic.
    const BlockCoord c = dag_->coordOf(task);
    return static_cast<int>(c.bj % static_cast<std::int64_t>(queues_.size()));
  }
};

class CwPolicy final : public StaticOwnershipPolicy {
 public:
  CwPolicy(const PartitionedDag& dag, int workers)
      : StaticOwnershipPolicy(dag, workers) {
    const std::int64_t cols = dag.grid.gridCols();
    const auto p = static_cast<std::int64_t>(workers);
    band_ = (cols + p - 1) / p;
  }

  std::string name() const override { return "column-wavefront"; }

 private:
  int ownerOf(VertexId task) const override {
    // One contiguous band of block columns per worker: CW is BCW with
    // block_col = data_col / worker count (paper §VI).
    const BlockCoord c = dag_->coordOf(task);
    return static_cast<int>(c.bj / band_);
  }

  std::int64_t band_ = 1;
};

/// Dynamic pool with an affinity tie-break: among ready tasks, an idle
/// worker takes the one whose dependency bytes it already owns the most
/// of; equal-affinity candidates are ordered by halo-fragment progress
/// (streaming pipeline — a block whose halo has fully arrived beats one
/// still waiting on fragments); on a full tie (including the no-oracle
/// case, affinity ≡ 0 and barrier mode, progress ≡ unset) the most
/// recently readied task wins, matching DynamicPolicy's LIFO order.
class LocalityPolicy final : public SchedulingPolicy {
 public:
  explicit LocalityPolicy(LocalityAffinityFn affinity)
      : affinity_(std::move(affinity)) {}

  std::string name() const override { return "locality"; }

  void onReady(VertexId task) override { ready_.push_back(task); }

  void onFragmentProgress(VertexId task, double fraction) override {
    progress_[task] = fraction;
  }

  std::optional<VertexId> pick(int worker) override {
    if (ready_.empty()) {
      return std::nullopt;
    }
    std::size_t best = ready_.size() - 1;  // LIFO default
    if (affinity_ || !progress_.empty()) {
      std::int64_t bestScore = affinity_ ? affinity_(ready_[best], worker) : 0;
      double bestProgress = progressOf(ready_[best]);
      for (std::size_t i = ready_.size(); i-- > 0;) {
        const std::int64_t score =
            affinity_ ? affinity_(ready_[i], worker) : 0;
        const double progress = progressOf(ready_[i]);
        if (score > bestScore ||
            (score == bestScore && progress > bestProgress)) {
          best = i;
          bestScore = score;
          bestProgress = progress;
        }
      }
    }
    const VertexId t = ready_[best];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(best));
    progress_.erase(t);
    return t;
  }

  std::int64_t queuedCount() const override {
    return static_cast<std::int64_t>(ready_.size());
  }

 private:
  double progressOf(VertexId task) const {
    const auto it = progress_.find(task);
    // Unreported = not streaming = fully available.
    return it == progress_.end() ? 1.0 : it->second;
  }

  LocalityAffinityFn affinity_;
  std::vector<VertexId> ready_;
  std::unordered_map<VertexId, double> progress_;
};

}  // namespace

std::string policyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDynamic:
      return "dynamic";
    case PolicyKind::kBlockCyclicWavefront:
      return "bcw";
    case PolicyKind::kColumnWavefront:
      return "cw";
    case PolicyKind::kLocality:
      return "locality";
  }
  return "unknown";
}

std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind,
                                             const PartitionedDag& dag,
                                             int workers) {
  EASYHPS_EXPECTS(workers > 0);
  switch (kind) {
    case PolicyKind::kDynamic:
      return std::make_unique<DynamicPolicy>();
    case PolicyKind::kBlockCyclicWavefront:
      return std::make_unique<BcwPolicy>(dag, workers);
    case PolicyKind::kColumnWavefront:
      return std::make_unique<CwPolicy>(dag, workers);
    case PolicyKind::kLocality:
      return std::make_unique<LocalityPolicy>(nullptr);
  }
  throw LogicError("unknown policy kind");
}

std::unique_ptr<SchedulingPolicy> makeLocalityPolicy(
    const PartitionedDag& dag, int workers, LocalityAffinityFn affinity) {
  (void)dag;
  EASYHPS_EXPECTS(workers > 0);
  return std::make_unique<LocalityPolicy>(std::move(affinity));
}

}  // namespace easyhps

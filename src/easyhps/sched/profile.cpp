#include "easyhps/sched/profile.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "easyhps/util/error.hpp"

namespace easyhps {
namespace {

/// EWMA smoothing for latency/bandwidth observations; matches the health
/// registry's ack-latency filter so both signals move at the same pace.
constexpr double kEwmaAlpha = 0.25;

/// Floor for speed/bandwidth estimates so a pathological observation can
/// never make an ECT score divide by ~0.
constexpr double kMinRate = 1e-9;

double ewma(double current, double sample, bool seeded) {
  return seeded ? (1.0 - kEwmaAlpha) * current + kEwmaAlpha * sample : sample;
}

}  // namespace

RankEstimator::RankEstimator(int workers, std::vector<RankProfile> profiles) {
  EASYHPS_EXPECTS(workers > 0);
  EASYHPS_EXPECTS(profiles.empty() ||
                  static_cast<int>(profiles.size()) == workers);
  ranks_.resize(static_cast<std::size_t>(workers));
  for (std::size_t w = 0; w < ranks_.size(); ++w) {
    if (!profiles.empty()) {
      ranks_[w].profile = profiles[w];
    }
  }
}

double RankEstimator::calibrationLocked() const {
  double sum = 0.0;
  int seen = 0;
  for (const Rank& r : ranks_) {
    if (r.sawTask && r.profile.speed > 0) {
      sum += r.ewmaOpsPerSec / r.profile.speed;
      ++seen;
    }
  }
  return seen > 0 ? sum / seen : 1.0;
}

double RankEstimator::speed(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Rank& r = ranks_.at(static_cast<std::size_t>(worker));
  const double s = r.sawTask ? r.ewmaOpsPerSec
                             : r.profile.speed * calibrationLocked();
  return std::max(s, kMinRate);
}

double RankEstimator::bandwidth(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Rank& r = ranks_.at(static_cast<std::size_t>(worker));
  const double b = r.sawTransfer ? r.ewmaBytesPerSec : r.profile.linkBandwidth;
  return std::max(b, kMinRate);
}

double RankEstimator::rttSeconds(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ranks_.at(static_cast<std::size_t>(worker)).rttSeconds;
}

std::uint64_t RankEstimator::memoryBudget(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ranks_.at(static_cast<std::size_t>(worker)).profile.memoryBudget;
}

RankProfile RankEstimator::profile(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ranks_.at(static_cast<std::size_t>(worker)).profile;
}

void RankEstimator::observeTask(int worker, double workUnits, double seconds) {
  if (workUnits <= 0 || seconds <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Rank& r = ranks_.at(static_cast<std::size_t>(worker));
  r.ewmaOpsPerSec = ewma(r.ewmaOpsPerSec, workUnits / seconds, r.sawTask);
  r.sawTask = true;
  ++task_observations_;
}

void RankEstimator::observeTransfer(int worker, double bytes, double seconds) {
  if (bytes <= 0 || seconds <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Rank& r = ranks_.at(static_cast<std::size_t>(worker));
  r.ewmaBytesPerSec = ewma(r.ewmaBytesPerSec, bytes / seconds, r.sawTransfer);
  r.sawTransfer = true;
}

void RankEstimator::setRttSeconds(int worker, double seconds) {
  if (seconds < 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_.at(static_cast<std::size_t>(worker)).rttSeconds = seconds;
}

std::int64_t RankEstimator::taskObservations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return task_observations_;
}

std::vector<RankProfile> parseRankSpeeds(const std::string& text, int workers,
                                         const RankProfile& base,
                                         std::string* error) {
  std::vector<RankProfile> profiles;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const double speed = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || speed <= 0) {
      if (error) {
        *error = "bad speed entry '" + item + "'";
      }
      return {};
    }
    RankProfile p = base;
    p.speed = speed;
    profiles.push_back(p);
  }
  if (static_cast<int>(profiles.size()) != workers) {
    if (error) {
      *error = "expected " + std::to_string(workers) + " speeds, got " +
               std::to_string(profiles.size());
    }
    return {};
  }
  return profiles;
}

}  // namespace easyhps

#include "easyhps/runtime/pipeline.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace easyhps {
namespace {

PipelineMode initialPipelineMode() {
  const char* env = std::getenv("EASYHPS_PIPELINE");
  if (env != nullptr && std::strcmp(env, "barrier") == 0) {
    return PipelineMode::kBarrier;
  }
  return PipelineMode::kStreaming;
}

std::atomic<PipelineMode> g_pipeline_mode{initialPipelineMode()};

}  // namespace

PipelineMode pipelineMode() {
  return g_pipeline_mode.load(std::memory_order_relaxed);
}

void setPipelineMode(PipelineMode mode) {
  g_pipeline_mode.store(mode, std::memory_order_relaxed);
}

const char* pipelineModeName(PipelineMode mode) {
  return mode == PipelineMode::kBarrier ? "barrier" : "streaming";
}

}  // namespace easyhps

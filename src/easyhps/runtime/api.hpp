#pragma once
/// \file api.hpp
/// The "easy" user API — a functional mirror of the paper's Table I.
///
/// The paper's pitch is that users parallelize a DP by filling in a
/// `dag_pattern` descriptor (pattern type, dag_size, partition_size, data
/// mapping function, per-vertex process function) instead of writing MPI +
/// pthreads code.  `FunctionalDpProblem` is that descriptor: pick a library
/// pattern, provide a *per-cell* recurrence lambda and a boundary lambda,
/// optionally a data-mapping (halo) function, and run.  The adapter derives
/// everything else: block kernels iterate cells in the pattern's
/// dependency-correct order, halos default to the pattern's canonical
/// shape, and the reference solver is synthesized from the same lambda.
///
/// Example (edit distance in ~10 lines, see examples/easy_api.cpp):
///
///   api::Spec spec;
///   spec.name = "edit-distance";
///   spec.pattern = PatternKind::kWavefront2D;
///   spec.rows = spec.cols = n;
///   spec.boundary = [](i64 r, i64 c) { ... };
///   spec.cell = [&](const api::CellCtx& m, i64 r, i64 c) {
///     return std::min({m(r-1,c)+1, m(r,c-1)+1,
///                      m(r-1,c-1) + (a[r]==b[c] ? 0 : 1)});
///   };
///   api::FunctionalDpProblem problem(std::move(spec));

#include <functional>
#include <string>

#include "easyhps/dp/problem.hpp"

namespace easyhps::api {

/// Read-only view of already-computed cells handed to the cell lambda.
/// Dereferences through whichever window backs the current execution.
class CellCtx {
 public:
  using GetFn = Score (*)(const void*, std::int64_t, std::int64_t);

  CellCtx(const void* window, GetFn get) : window_(window), get_(get) {}

  Score operator()(std::int64_t r, std::int64_t c) const {
    return get_(window_, r, c);
  }

 private:
  const void* window_;
  GetFn get_;
};

/// The recurrence: value of cell (r, c) given earlier cells.
using CellFn =
    std::function<Score(const CellCtx& m, std::int64_t r, std::int64_t c)>;

/// Virtual cells outside the matrix (first row/column of textbook
/// formulations).
using CellBoundaryFn = std::function<Score(std::int64_t r, std::int64_t c)>;

/// Optional data-mapping override (`data_mapping_function` in Table I):
/// which rectangles a block reads outside itself.  nullptr = the pattern's
/// canonical halo.
using HaloFn = std::function<std::vector<CellRect>(const CellRect& rect)>;

/// Table I descriptor.
struct Spec {
  std::string name = "user-dp";
  PatternKind pattern = PatternKind::kWavefront2D;  ///< dag_pattern_type
  std::int64_t rows = 0;                            ///< dag_size
  std::int64_t cols = 0;
  CellFn cell;                                      ///< process
  CellBoundaryFn boundary;
  HaloFn haloOverride;                              ///< data_mapping_function
  /// Abstract ops per cell for the simulator's cost model (default 1).
  std::function<double(std::int64_t r, std::int64_t c)> cellOps;
};

/// Adapts a Spec to the full DpProblem interface.
/// Supported patterns: kWavefront2D (row-major iteration, up/left/diag
/// halo), kTriangular2D1D (bottom-up iteration, triangular halo, upper
/// triangle active), kRowDependent2D (stage iteration, previous-row halo,
/// full-width master blocks).
class FunctionalDpProblem final : public DpProblem {
 public:
  explicit FunctionalDpProblem(Spec spec);

  std::string name() const override { return spec_.name; }
  std::int64_t rows() const override { return spec_.rows; }
  std::int64_t cols() const override { return spec_.cols; }
  PatternKind masterPatternKind() const override { return spec_.pattern; }
  PatternKind slavePatternKind() const override;
  PartitionedDag masterDag(const BlockGrid& grid) const override;
  PartitionedDag slaveDagFor(const CellRect& blockRect,
                             std::int64_t threadPartitionRows,
                             std::int64_t threadPartitionCols) const override;
  Score boundary(std::int64_t r, std::int64_t c) const override;
  bool cellActive(std::int64_t r, std::int64_t c) const override;
  bool rectActive(const CellRect& rect) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  double blockOps(const CellRect& rect) const override;

 private:
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;

  Spec spec_;
};

}  // namespace easyhps::api

#pragma once
/// \file slave.hpp
/// Slave part of the EasyHPS runtime (paper §III, §V-C), multiplexed over
/// a stream of jobs.
///
/// A slave rank runs a *service loop*: on JobStart it looks up the job's
/// problem and fault plan, resets its per-job state and acks with Idle;
/// it then loops: receive a sub-task (block + halo) → initialize the
/// *slave* DAG Data Driven Model over the block → execute its
/// sub-sub-tasks on a pool of computing threads under the slave scheduler
/// → reply with the computed block → repeat, until JobEnd, whereupon it
/// reports the job's counters and waits for the next JobStart (or End,
/// which shuts the rank down).  The paper's single-job slave is this loop
/// with a one-entry job stream.
///
/// Thread-level fault tolerance: a computing thread hit by an injected
/// crash re-enters its work loop (the in-process analogue of the paper's
/// "restart the corresponding computing thread") after re-queueing the
/// failed sub-sub-task; the slave overtime queue tracks overdue
/// sub-sub-tasks.  Unlike the paper's pthread_cancel-based design, a
/// *hung* (not crashed) thread is never duplicated — in-process threads
/// cannot be force-killed without UB, and double-computing a sub-block
/// would race on the shared window (see DESIGN.md).

#include "easyhps/dp/problem.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/msg/comm.hpp"
#include "easyhps/runtime/config.hpp"
#include "easyhps/runtime/job.hpp"
#include "easyhps/runtime/wire.hpp"

namespace easyhps {

/// Resolves a job id to the problem/fault-plan the slave should run it
/// with.  JobStart carries only the id: in this in-process substrate the
/// directory is shared memory; over real MPI the master would broadcast a
/// serialized problem descriptor instead (see DESIGN.md, "Job
/// multiplexing").  Entries must stay valid from the JobStart that names
/// them until the matching JobEnd has been acked with Stats.
class SlaveJobDirectory {
 public:
  struct Entry {
    const DpProblem* problem = nullptr;
    fault::FaultPlan* plan = nullptr;
  };

  virtual ~SlaveJobDirectory() = default;

  /// Called once per JobStart; must throw if the id is unknown.
  virtual Entry find(JobId job) const = 0;
};

/// Runs the slave service loop on this rank until the master sends End.
void runSlaveService(msg::Comm& comm, const RuntimeConfig& cfg,
                     const SlaveJobDirectory& directory);

/// Executes one assignment on a fresh thread pool; exposed separately so
/// tests can drive the slave pool without a cluster.  Returns the computed
/// block data (row-major over `assign.rect`).
///
/// Streaming pipeline: when `assign.pendingRects` is non-empty the pool
/// starts with those halo rects quarantined and the calling thread pumps
/// kTagHaloPartial fragments from `comm` (required non-null) while ready
/// sub-blocks already compute; when `assign.streamRects` is non-empty and
/// `comm` is set, boundary fragments are emitted to the master as each
/// covering sub-block completes.  If the fragment stream starves past its
/// retry budget the assignment is dropped: `*abandoned` is set and the
/// returned vector is empty.
std::vector<Score> executeAssignment(const DpProblem& problem,
                                     const RuntimeConfig& cfg,
                                     fault::FaultPlan& plan, int slaveRank,
                                     const wire::AssignPayload& assign,
                                     wire::SlaveStatsPayload& stats,
                                     msg::Comm* comm = nullptr,
                                     bool* abandoned = nullptr);

}  // namespace easyhps

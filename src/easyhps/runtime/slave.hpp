#pragma once
/// \file slave.hpp
/// Slave part of the EasyHPS runtime (paper §III, §V-C).
///
/// A slave rank loops: announce idle → receive a sub-task (block + halo) →
/// initialize the *slave* DAG Data Driven Model over the block → execute
/// its sub-sub-tasks on a pool of computing threads under the slave
/// scheduler → reply with the computed block → repeat, until End.
///
/// Thread-level fault tolerance: a computing thread hit by an injected
/// crash re-enters its work loop (the in-process analogue of the paper's
/// "restart the corresponding computing thread") after re-queueing the
/// failed sub-sub-task; the slave overtime queue tracks overdue
/// sub-sub-tasks.  Unlike the paper's pthread_cancel-based design, a
/// *hung* (not crashed) thread is never duplicated — in-process threads
/// cannot be force-killed without UB, and double-computing a sub-block
/// would race on the shared window (see DESIGN.md).

#include "easyhps/dp/problem.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/msg/comm.hpp"
#include "easyhps/runtime/config.hpp"
#include "easyhps/runtime/wire.hpp"

namespace easyhps {

/// Runs the slave main loop on this rank until the master sends End.
/// `plan` injects faults (shared across ranks; pass an empty plan for
/// fault-free runs).
void runSlave(msg::Comm& comm, const DpProblem& problem,
              const RuntimeConfig& cfg, fault::FaultPlan& plan);

/// Executes one assignment on a fresh thread pool; exposed separately so
/// tests can drive the slave pool without a cluster.  Returns the computed
/// block data (row-major over `assign.rect`).
std::vector<Score> executeAssignment(const DpProblem& problem,
                                     const RuntimeConfig& cfg,
                                     fault::FaultPlan& plan, int slaveRank,
                                     const wire::AssignPayload& assign,
                                     wire::SlaveStatsPayload& stats);

}  // namespace easyhps

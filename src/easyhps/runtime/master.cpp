#include "easyhps/runtime/master.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "easyhps/cache/key.hpp"
#include "easyhps/ckpt/journal.hpp"
#include "easyhps/dag/fragment.hpp"
#include "easyhps/dag/parse_state.hpp"
#include "easyhps/dp/autotune.hpp"
#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/runtime/pipeline.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/sched/worker_pool.hpp"
#include "easyhps/store/ownership.hpp"
#include "easyhps/util/clock.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps {
namespace {

/// Scheduler state shared by the master worker threads, the control
/// thread and the data-plane thread, scoped to one job.
struct MasterState {
  MasterState(JobId j, const PartitionedDag& d, const DpProblem& prob,
              Window& m, bool p, bool s)
      : jobId(j), dag(&d), problem(&prob), parse(d.dag), matrix(&m), peer(p),
        streaming(s) {}

  const JobId jobId;
  const PartitionedDag* dag;
  const DpProblem* problem;  ///< for last-resort block recompute
  DagParseState parse;
  std::unique_ptr<SchedulingPolicy> policy;
  RegisterTable registerTable;
  OvertimeQueue overtime;
  Window* matrix;
  const bool peer;  ///< DataPlaneMode::kPeerToPeer
  Stopwatch watch;  ///< started at job dispatch (time-to-first-block)
  /// Job-clock epoch for the schedule/quarantine traces.
  const std::chrono::steady_clock::time_point traceBase =
      std::chrono::steady_clock::now();

  /// Liveness registry (service lifetime); nullptr = liveness off.
  HealthRegistry* health = nullptr;
  std::chrono::milliseconds fetchTimeout{250};
  bool recordTrace = false;

  /// Chaos plan of the job (kMasterCrash consumption); may be nullptr.
  fault::FaultPlan* plan = nullptr;
  /// Checkpoint journal (thread-safe, its own mutex); nullptr = off.
  ckpt::JournalWriter* journal = nullptr;
  /// Bounded re-fetch → recompute escalation (cfg.maxRecoveryRefetches).
  int maxFetchAttempts = 4;
  /// This incarnation resumed an in-flight job (skip bracket/ready-acks).
  bool resumed = false;
  /// Completions at the prior incarnation's crash; < 0 = not resuming.
  std::int64_t crashTarget = -1;
  /// Journal-recorded block checksums (0 = none): what a block reloaded
  /// from a slave store at assembly time must hash to.
  std::vector<std::uint64_t> expectedChecksum;

  // Data-plane geometry, precomputed once per job (peer mode, and — for
  // the streaming pipeline — relay mode too).
  // haloPieces[u]: u's halo rects decomposed into per-block pieces
  // (owner filled in at Assign time from the directory).
  // outboundRects[v]: deduped sub-rects of block v some successor's halo
  // reads — what v's result ack must carry back (Assign's ackRects).
  std::vector<std::vector<wire::HaloSource>> haloPieces;
  std::vector<std::vector<CellRect>> outboundRects;

  // Streaming pipeline (PipelineMode::kStreaming), all guarded by mutex.
  // streamOut[v]: pieces a slave computing v must emit as HaloPartial
  // fragments the moment the covering sub-block finishes (relay: every
  // successor-facing piece; peer: ack-sized only, thick pieces stay on
  // the ownership path).  fragmentConsumers[v]: blocks whose halo reads v.
  // precedencePreds[u]: u's block-DAG predecessors (reverse adjacency) —
  // an early fire must never overtake a pure-ordering edge.
  // fragTracker[v] / validRects[v]: which of v's streamOut cells have
  // already landed in the master matrix (dedup + resend source).
  const bool streaming;
  std::vector<std::vector<CellRect>> streamOut;
  std::vector<std::vector<VertexId>> fragmentConsumers;
  std::vector<std::vector<VertexId>> precedencePreds;
  std::vector<HaloFragmentTracker> fragTracker;
  std::vector<std::vector<CellRect>> validRects;
  std::vector<char> firedEarly;   ///< queued/assigned ahead of its preds
  std::vector<char> inFlight;     ///< currently assigned to some rank
  std::vector<int> assignedRank;  ///< rank computing v (0 = none)

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool cancelled = false;
  bool crashed = false;  ///< kMasterCrash fired this incarnation

  // Guarded by mutex, like the parse state it must stay consistent with.
  store::OwnershipDirectory directory;

  // Statistics (guarded by mutex).
  std::int64_t tasksSent = 0;
  std::int64_t completed = 0;
  std::int64_t retries = 0;
  std::int64_t lateResults = 0;
  std::int64_t staleJobResults = 0;
  std::uint64_t tableChecksum = 0;
  std::int64_t blocksAssembled = 0;
  std::int64_t blocksRecomputed = 0;
  std::int64_t statsSkipped = 0;
  std::int64_t fragmentsForwarded = 0;
  std::int64_t fragmentsCoalesced = 0;
  std::int64_t blocksStartedEarly = 0;
  std::int64_t blocksRecovered = 0;
  std::int64_t corruptBlocks = 0;
  std::int64_t decodeErrors = 0;
  double recoverySeconds = -1.0;
  double firstBlockSeconds = -1.0;
  std::vector<std::int64_t> tasksPerSlave;
  std::vector<RunStats::ScheduleEvent> scheduleTrace;

  double jobSeconds(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double>(t - traceBase).count();
  }
};

/// Ack threshold: a successor-facing piece rides back in the result ack
/// only if it covers at most a quarter of its block ("boundary rows/cols").
/// Thicker dependencies — triangular patterns want entire row/column
/// segments, i.e. whole blocks — stay on the owning rank and move
/// peer-to-peer; shipping them through the ack would recreate the relay
/// protocol's master bottleneck.
bool ackSized(const CellRect& piece, const CellRect& block) {
  return piece.cellCount() * 4 <= block.cellCount();
}

/// Decomposes every vertex's halo rects into per-block pieces and derives
/// each block's outbound (ack) rects.  Exact-duplicate pieces are deduped
/// per block: triangular patterns request the same full-block rect from
/// every row/column successor, and without the dedupe an ack would carry
/// the block once per successor.
///
/// Streaming pipeline: additionally fills streamOut (the pieces a
/// producer must emit as fragments — relay streams everything a successor
/// reads, peer mode only ack-sized pieces so thick dependencies keep
/// riding the ownership path and bench_dataplane's traffic split holds),
/// the fragmentConsumers reverse map, per-producer fragment trackers, and
/// the precedence reverse adjacency.
void buildHaloGeometry(const DpProblem& problem, MasterState& state) {
  const PartitionedDag& dag = *state.dag;
  const BlockGrid& grid = dag.grid;
  const auto count = static_cast<std::size_t>(dag.vertexCount());
  state.haloPieces.resize(count);
  state.outboundRects.resize(count);
  if (state.streaming) {
    state.streamOut.resize(count);
    state.fragmentConsumers.resize(count);
    state.precedencePreds.resize(count);
    state.fragTracker.resize(count);
    state.validRects.resize(count);
    state.firedEarly.assign(count, 0);
    state.inFlight.assign(count, 0);
    state.assignedRank.assign(count, 0);
    for (VertexId v = 0; v < dag.vertexCount(); ++v) {
      for (VertexId s : dag.dag.successors(v)) {
        state.precedencePreds[static_cast<std::size_t>(s)].push_back(v);
      }
    }
  }
  for (VertexId u = 0; u < dag.vertexCount(); ++u) {
    for (const CellRect& halo : problem.haloFor(dag.rectOf(u))) {
      if (halo.cellCount() <= 0) {
        continue;
      }
      // haloFor rects lie inside the matrix (the relay path extracts them
      // from the whole-matrix window), so the block span is in-grid.
      const std::int64_t bi0 = halo.row0 / grid.blockRows();
      const std::int64_t bi1 = (halo.rowEnd() - 1) / grid.blockRows();
      const std::int64_t bj0 = halo.col0 / grid.blockCols();
      const std::int64_t bj1 = (halo.colEnd() - 1) / grid.blockCols();
      for (std::int64_t bi = bi0; bi <= bi1; ++bi) {
        for (std::int64_t bj = bj0; bj <= bj1; ++bj) {
          const CellRect piece =
              intersectRects(halo, grid.blockRect(bi, bj));
          if (piece.cellCount() <= 0) {
            continue;
          }
          const VertexId v = dag.vertexAt(bi, bj);
          state.haloPieces[static_cast<std::size_t>(u)].push_back(
              wire::HaloSource{piece, v, 0});
          if (v < 0 || v == u) {
            continue;
          }
          const bool small = ackSized(piece, grid.blockRect(bi, bj));
          if (small) {
            auto& out = state.outboundRects[static_cast<std::size_t>(v)];
            if (std::find(out.begin(), out.end(), piece) == out.end()) {
              out.push_back(piece);
            }
          }
          if (state.streaming && (small || !state.peer)) {
            auto& so = state.streamOut[static_cast<std::size_t>(v)];
            if (std::find(so.begin(), so.end(), piece) == so.end()) {
              so.push_back(piece);
              state.fragTracker[static_cast<std::size_t>(v)].expect(piece);
            }
            auto& fc = state.fragmentConsumers[static_cast<std::size_t>(v)];
            if (std::find(fc.begin(), fc.end(), u) == fc.end()) {
              fc.push_back(u);
            }
          }
        }
      }
    }
  }
}

/// Fraction of `u`'s halo cells already available to a streamed
/// assignment (finished producers count in full).  Under state.mutex.
double haloProgress(const MasterState& state, VertexId u) {
  std::int64_t total = 0;
  std::int64_t arrived = 0;
  for (const wire::HaloSource& p :
       state.haloPieces[static_cast<std::size_t>(u)]) {
    total += p.rect.cellCount();
    if (p.vertex < 0 || p.vertex == u || state.parse.isFinished(p.vertex)) {
      arrived += p.rect.cellCount();
      continue;
    }
    std::int64_t missing = 0;
    for (const CellRect& o :
         state.fragTracker[static_cast<std::size_t>(p.vertex)].outstanding()) {
      missing += intersectRects(o, p.rect).cellCount();
    }
    arrived += p.rect.cellCount() - missing;
  }
  return total == 0 ? 1.0 : static_cast<double>(arrived) /
                                static_cast<double>(total);
}

/// Early-fire check (streaming pipeline, under state.mutex): queues `u`
/// for assignment while some of its predecessors are still computing,
/// provided the stream can actually feed it —
///  * every unfinished halo producer is itself in flight (its fragments
///    are coming; in peer mode the piece must also be ack-sized, thick
///    pieces never stream),
///  * every pure-precedence predecessor is finished or in flight,
///  * at least one fragment of its pending halo has already landed
///    ("assignments eligible at first fragment").
/// Deadlock-freedom: eligibility only ever *adds* runnable work for
/// queued-behind fragments; a producer that dies mid-stream is handled by
/// the consumer's bounded resend/abandon path plus the master's overtime
/// re-distribution — never an unbounded wait.
void maybeFireEarly(MasterState& state, VertexId u) {
  if (!state.streaming || state.done) {
    return;
  }
  const auto iu = static_cast<std::size_t>(u);
  if (state.parse.isFinished(u) || state.parse.remainingPreds(u) == 0 ||
      state.firedEarly[iu] != 0 || state.inFlight[iu] != 0) {
    return;
  }
  bool anyFragment = false;
  for (const wire::HaloSource& p : state.haloPieces[iu]) {
    if (p.vertex < 0 || p.vertex == u || state.parse.isFinished(p.vertex)) {
      continue;
    }
    const auto ip = static_cast<std::size_t>(p.vertex);
    if (state.inFlight[ip] == 0) {
      return;  // producer not running: nothing will stream this piece
    }
    if (state.peer && !ackSized(p.rect, state.dag->rectOf(p.vertex))) {
      return;  // thick piece stays on the ownership path; wait for finish
    }
    if (!anyFragment) {
      for (const CellRect& v : state.validRects[ip]) {
        if (intersectRects(v, p.rect).cellCount() > 0) {
          anyFragment = true;
          break;
        }
      }
    }
  }
  if (!anyFragment) {
    return;
  }
  for (VertexId pred : state.precedencePreds[iu]) {
    if (!state.parse.isFinished(pred) &&
        state.inFlight[static_cast<std::size_t>(pred)] == 0) {
      return;  // ordering edge not yet backed by running work
    }
  }
  state.firedEarly[iu] = 1;
  ++state.blocksStartedEarly;
  state.policy->onFragmentProgress(u, haloProgress(state, u));
  state.policy->onReady(u);
  state.cv.notify_all();
}

/// Injects a result and advances the parse state.  Returns true if this
/// completion was new (false = stale job, duplicate, or late result).
/// `data` is the decoded cell view (borrowed from the message body on the
/// fast path; `result.data` itself stays empty).
///
/// Streaming pipeline: a completion also closes the producer's fragment
/// stream — any streamOut piece whose fragments were chaos-dropped is
/// proactively forwarded (from the just-injected matrix cells) to every
/// early-fired in-flight consumer, so a consumer never waits on a
/// fragment whose producer already finished.  Sends happen after the
/// mutex is released; targets are captured under the same mutex that
/// assigns ranks, so there is no forward/assign gap.
bool processResult(msg::Comm& comm, MasterState& state,
                   const wire::ResultPayload& result,
                   std::span<const Score> data, int slaveRank,
                   double elapsedSeconds = 0.0) {
  struct Forward {
    int rank;
    wire::HaloPartialPayload payload;
  };
  std::vector<Forward> forwards;
  ckpt::BlockRecord journalRec;
  bool journalIt = false;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (result.job != state.jobId) {
      // A reply that outlived its job (delay fault, slow slave).  Vertex
      // ids restart at 0 every job, so crediting it here would corrupt
      // the current job's matrix; discard it.
      ++state.staleJobResults;
      return false;
    }
    // End-to-end integrity, tier 1: the header checksum covers vertex,
    // rect, the block checksum and every boundary edge.  On mismatch
    // nothing in the payload can be trusted — not even the vertex id —
    // so the result is dropped outright and the overtime queue
    // re-distributes the assignment.
    if (wire::resultChecksum(result) != result.edgesChecksum) {
      ++state.corruptBlocks;
      EASYHPS_LOG_WARN("corrupt result header from slave " << slaveRank
                                                           << "; dropped");
      return false;
    }
    if (result.vertex < 0 || result.vertex >= state.dag->vertexCount() ||
        !(result.rect == state.dag->rectOf(result.vertex))) {
      // Header verified but inconsistent with this job's partition: a
      // slave-side fault, not transport damage.  Same recovery: drop.
      ++state.corruptBlocks;
      return false;
    }
    (void)state.registerTable.complete(result.vertex);
    if (state.parse.isFinished(result.vertex)) {
      // Late duplicate: the vertex is done, but a planning policy may
      // still carry this assignment (or a stale re-queued copy) on its
      // books — clear it without feeding the latency estimator.
      state.policy->onTaskCompleted(result.vertex, slaveRank - 1, 0.0);
      ++state.lateResults;
      return false;
    }
    if (!state.peer) {
      // Tier 2 (relay): the block cells travel in this very message;
      // verify them against the checksum the (intact) header vouches
      // for.  The vertex id is trusted here, so an immediate requeue is
      // safe — and cheaper than waiting out the overtime deadline.
      if (wire::blockChecksum(result.vertex, result.rect, data) !=
          result.checksum) {
        ++state.corruptBlocks;
        state.policy->onTaskCompleted(result.vertex, slaveRank - 1, 0.0);
        if (state.streaming) {
          const auto iv = static_cast<std::size_t>(result.vertex);
          state.inFlight[iv] = 0;
          state.assignedRank[iv] = 0;
          state.firedEarly[iv] = 0;
        }
        state.policy->onReady(result.vertex);
        state.cv.notify_all();
        EASYHPS_LOG_WARN("corrupt block cells for sub-task "
                         << result.vertex << " from slave " << slaveRank
                         << "; re-queued");
        return false;
      }
    }
    if (state.peer) {
      // Ack: inject the boundary cells and record who owns the full block.
      bool resident = false;
      for (const wire::HaloBlock& edge : result.edges) {
        state.matrix->inject(edge.rect, edge.data);
        resident = resident || edge.rect == result.rect;
      }
      state.directory.registerBlock(
          result.vertex, slaveRank,
          static_cast<std::uint64_t>(result.rect.cellCount()) *
              sizeof(Score));
      if (resident) {
        state.directory.markResident(result.vertex);
      }
      state.tableChecksum += result.checksum;
    } else {
      state.matrix->inject(result.rect, data);
      state.tableChecksum += result.checksum;
    }
    if (state.streaming) {
      const auto iv = static_cast<std::size_t>(result.vertex);
      state.inFlight[iv] = 0;
      state.assignedRank[iv] = 0;
      state.firedEarly[iv] = 0;
      auto& tracker = state.fragTracker[iv];
      if (!tracker.done()) {
        const std::vector<CellRect> missing = tracker.outstanding();
        for (VertexId u : state.fragmentConsumers[iv]) {
          const auto iu = static_cast<std::size_t>(u);
          if (state.firedEarly[iu] == 0 || state.inFlight[iu] == 0 ||
              state.assignedRank[iu] <= 0) {
            continue;
          }
          for (const CellRect& rect : missing) {
            std::vector<Score> fragCells = state.matrix->extract(rect);
            const std::uint64_t fragSum =
                wire::blockChecksum(result.vertex, rect, fragCells);
            forwards.push_back(
                {state.assignedRank[iu],
                 wire::HaloPartialPayload{state.jobId, result.vertex, rect,
                                          fragSum, std::move(fragCells)}});
            ++state.fragmentsForwarded;
          }
        }
        for (const CellRect& rect : missing) {
          tracker.fill(rect);
          state.validRects[iv].push_back(rect);
        }
      }
    }
    // A streamed (early-fired) completion may finish with live preds:
    // allowPendingPreds skips the counter check, and successors already
    // queued or running via their own early fire are not re-announced.
    for (VertexId next : state.parse.finish(result.vertex, state.streaming)) {
      if (state.streaming &&
          state.firedEarly[static_cast<std::size_t>(next)] != 0) {
        continue;
      }
      state.policy->onReady(next);
    }
    if (state.streaming && !state.done) {
      // Full coverage from this completion may unlock early fires (and
      // refresh fragment-progress hints) for the consumers it feeds.
      for (VertexId u :
           state.fragmentConsumers[static_cast<std::size_t>(result.vertex)]) {
        if (!state.parse.isFinished(u)) {
          state.policy->onFragmentProgress(u, haloProgress(state, u));
          maybeFireEarly(state, u);
        }
      }
    }
    // Settle the policy's in-flight accounting and feed the rank
    // estimator (assign-to-result latency; 0 when this worker was not the
    // assignee, e.g. a duplicate delivered cross-rank).
    state.policy->onTaskCompleted(result.vertex, slaveRank - 1,
                                  elapsedSeconds);
    ++state.completed;
    if (state.recoverySeconds < 0.0 && state.crashTarget >= 0 &&
        state.completed >= state.crashTarget) {
      // The resumed incarnation regained the completion level the prior
      // one crashed at: recovery is over, normal progress resumes.
      state.recoverySeconds = state.watch.elapsedSeconds();
    }
    if (state.firstBlockSeconds < 0.0) {
      state.firstBlockSeconds = state.watch.elapsedSeconds();
    }
    if (state.journal != nullptr) {
      // Journal the completion: full cells under relay, the ack-edge
      // boundary cells (plus the owning rank) under peer — everything a
      // restarted master needs to rebuild successor halos.
      journalIt = true;
      journalRec.vertex = result.vertex;
      journalRec.owner = state.peer ? slaveRank : 0;
      journalRec.checksum = result.checksum;
      journalRec.rect = result.rect;
      if (state.peer) {
        journalRec.pieces.reserve(result.edges.size());
        for (const wire::HaloBlock& edge : result.edges) {
          journalRec.pieces.push_back(ckpt::BlockPiece{edge.rect, edge.data});
        }
      } else {
        journalRec.pieces.push_back(ckpt::BlockPiece{
            result.rect, std::vector<Score>(data.begin(), data.end())});
      }
    }
    if (state.plan != nullptr &&
        state.plan->consumeMasterCrash(result.vertex, slaveRank)) {
      // kMasterCrash: this incarnation dies right here — no JobEnd, no
      // assembly, no further sends.  The journal's unflushed tail is
      // dropped by the service loop (simulateCrash) before the restart.
      state.crashed = true;
      state.done = true;
      forwards.clear();
    }
    if (state.parse.allDone()) {
      state.done = true;
    }
    state.cv.notify_all();
  }
  if (journalIt && state.journal != nullptr) {
    state.journal->appendBlock(std::move(journalRec));
    state.journal->maybeFlush();
  }
  for (Forward& f : forwards) {
    comm.send(f.rank, wire::kTagHaloPartial,
              wire::encodeHaloPartial(std::move(f.payload)));
  }
  return true;
}

/// One master worker thread: drives slave rank `slaveRank` through one job
/// (paper §V-B).  The JobEnd/Stats bracket moved to runMasterJob: under
/// the peer-to-peer data plane the job only ends after assembly.
void masterWorkerLoop(msg::Comm& comm, const DpProblem& problem,
                      const RuntimeConfig& cfg, MasterState& state,
                      int slaveRank) {
  const int workerIdx = slaveRank - 1;
  log::setThreadName("master/worker-" + std::to_string(slaveRank));

  // Wait for the slave's per-job ready signal (paper §V-C step a) —
  // bounded, because a dead slave never acks: the job must be able to
  // finish on the surviving ranks while this worker idles.  Ready signals
  // of an *earlier* job (stale after a slave death) are discarded.
  // A resumed incarnation (kMasterCrash restart) skips the wait: the
  // slaves never saw JobEnd and acked the job to the crashed master.
  if (!state.resumed) {
    bool ready = false;
    while (!ready) {
      auto idle = comm.recvFor(slaveRank, wire::kTagIdle,
                               std::chrono::milliseconds(20));
      if (idle) {
        ready = wire::decodeJobControl(idle->payload).job == state.jobId;
        continue;
      }
      if (comm.mailboxClosed()) {
        throw CommError("cluster shut down while awaiting slave " +
                        std::to_string(slaveRank) + " ready ack");
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.done) {
        return;  // job finished without this slave ever joining it
      }
    }
  }

  struct Inflight {
    VertexId vertex;
    AssignmentEpoch epoch;
    /// Assign-send time — the task-latency sample the rank estimator
    /// ingests when the matching result lands.
    std::chrono::steady_clock::time_point sentAt;
  };
  std::optional<Inflight> inflight;

  for (;;) {
    if (!inflight) {
      wire::AssignPayload assign;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.cv.wait(lock, [&] {
          return state.done || state.policy->queuedCount() > 0;
        });
        if (state.done) {
          break;
        }
        if (state.health != nullptr && !state.health->allowAssign(slaveRank)) {
          // Quarantined: leave the ready tasks to healthy slaves' workers
          // and re-check after the backoff-scale nap (re-admission is the
          // only way back).
          state.cv.wait_for(lock, std::chrono::milliseconds(5));
          continue;
        }
        auto picked = state.policy->pick(workerIdx);
        if (!picked) {
          // Static policy: ready tasks exist but none owned by this
          // worker's slave — the BCW "fatal situation".  Re-check shortly.
          state.cv.wait_for(lock, std::chrono::milliseconds(1));
          continue;
        }
        const VertexId vertex = *picked;
        const AssignmentEpoch epoch =
            state.registerTable.registerTask(vertex, slaveRank);
        if (cfg.enableFaultTolerance) {
          state.overtime.push(vertex, slaveRank, epoch, cfg.taskTimeout);
        }
        ++state.tasksSent;
        ++state.tasksPerSlave[static_cast<std::size_t>(workerIdx)];
        if (state.recordTrace) {
          // Recorded in the same critical section as the allowAssign check
          // above, so an event time after a quarantine begin implies the
          // check itself ran before the transition.
          state.scheduleTrace.push_back(RunStats::ScheduleEvent{
              state.jobSeconds(std::chrono::steady_clock::now()), slaveRank,
              vertex});
        }
        inflight = Inflight{vertex, epoch, std::chrono::steady_clock::now()};
        assign.vertex = vertex;
        if (state.peer && !state.streaming) {
          // Metadata-only assignment: fetch instructions resolved against
          // the ownership directory (which this mutex also guards).
          const auto& pieces =
              state.haloPieces[static_cast<std::size_t>(vertex)];
          assign.sources.reserve(pieces.size());
          for (wire::HaloSource src : pieces) {
            src.owner =
                src.vertex >= 0 ? state.directory.haloSource(src.vertex) : 0;
            assign.sources.push_back(src);
          }
          assign.ackRects =
              state.outboundRects[static_cast<std::size_t>(vertex)];
        }
        if (state.streaming) {
          // Streamed assignment, built fully under the mutex (fragments
          // mutate the matrix concurrently, so the barrier path's
          // outside-mutex halo extraction is off the table).  Pieces of
          // finished producers resolve as usual (inline extract / fetch
          // sources); each unfinished producer's piece splits into the
          // part whose fragments already landed (inlined) and the part
          // the consumer's fragment pump will cover (pendingRects).
          const auto ivx = static_cast<std::size_t>(vertex);
          state.inFlight[ivx] = 1;
          state.assignedRank[ivx] = slaveRank;
          assign.streamRects = state.streamOut[ivx];
          if (state.peer) {
            assign.ackRects = state.outboundRects[ivx];
          }
          for (const wire::HaloSource& p : state.haloPieces[ivx]) {
            if (p.rect.cellCount() <= 0) {
              continue;
            }
            if (p.vertex < 0 || state.parse.isFinished(p.vertex)) {
              if (state.peer) {
                wire::HaloSource src = p;
                src.owner = p.vertex >= 0
                                ? state.directory.haloSource(p.vertex)
                                : 0;
                assign.sources.push_back(src);
              } else {
                assign.halos.push_back(
                    wire::HaloBlock{p.rect, state.matrix->extract(p.rect)});
              }
              continue;
            }
            const CoverageSplit split = partitionByCoverage(
                p.rect, state.validRects[static_cast<std::size_t>(p.vertex)]);
            for (const CellRect& c : split.covered) {
              assign.halos.push_back(
                  wire::HaloBlock{c, state.matrix->extract(c)});
            }
            for (const CellRect& q : split.pending) {
              assign.pendingRects.push_back(q);
            }
          }
          // This vertex is now a live fragment source: consumers blocked
          // only on "producer not in flight" may become eligible.
          for (VertexId u : state.fragmentConsumers[ivx]) {
            maybeFireEarly(state, u);
          }
        }
      }
      assign.job = state.jobId;
      assign.rect = state.dag->rectOf(assign.vertex);

      // Relay mode: halo extraction and send happen outside the scheduler
      // mutex; see master.hpp for why this is race-free.  (Streamed jobs
      // extracted under the mutex above.)
      if (!state.peer && !state.streaming) {
        for (const CellRect& h : problem.haloFor(assign.rect)) {
          assign.halos.push_back(
              wire::HaloBlock{h, state.matrix->extract(h)});
        }
      }
      comm.send(slaveRank, wire::kTagAssign, wire::encodeAssign(assign));
      continue;
    }

    // Wait for this slave's result; wake periodically to notice
    // cancellation or global completion.
    auto m = comm.recvFor(slaveRank, wire::kTagResult,
                          std::chrono::milliseconds(20));
    if (!m) {
      if (comm.mailboxClosed()) {
        // The cluster aborted (another rank failed): nothing more will
        // arrive; surface it instead of polling forever.
        throw CommError("cluster shut down while awaiting slave " +
                        std::to_string(slaveRank));
      }
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.done) {
          // Job finished without this reply (cancelled, or the vertex was
          // completed by a late duplicate).  The slave's eventual reply is
          // handled as late/stale by a later job.
          break;
        }
      }
      if (!state.registerTable.matches(inflight->vertex, inflight->epoch)) {
        // Cancelled (timed out and re-distributed) or completed via a
        // late duplicate processed by another worker.  Move on; if the
        // slave eventually replies, the result is handled as late.
        inflight.reset();
      }
      continue;
    }
    wire::ScoreCells cells;
    wire::ResultPayload result;
    try {
      result = wire::decodeResult(m->payload, cells);
    } catch (const DecodeError& e) {
      // Malformed/truncated result (transport corruption hit a length
      // field): count it and let the overtime queue re-distribute.
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.decodeErrors;
      EASYHPS_LOG_WARN("dropped undecodable result from slave "
                       << slaveRank << ": " << e.what());
      continue;
    }
    const bool matches =
        result.job == state.jobId && result.vertex == inflight->vertex;
    const double elapsed =
        matches ? std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - inflight->sentAt)
                      .count()
                : 0.0;
    processResult(comm, state, result, cells.cells(), slaveRank, elapsed);
    if (matches) {
      inflight.reset();
    }
  }
}

/// Master control thread: re-distributes timed-out assignments (paper
/// §V-B step g, Fig 10) and honours the job's cancellation flag.
void controlLoop(MasterState& state, const RuntimeConfig& cfg,
                 const std::atomic<bool>* cancelRequested) {
  log::setThreadName("master/ft");
  // Ranks whose ownership entries were already invalidated for the
  // current quarantine spell (reset on re-admission, so a relapse
  // invalidates again).
  std::vector<bool> invalidatedForSpell(
      static_cast<std::size_t>(cfg.slaveCount) + 1, false);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      if (state.done) {
        return;
      }
      if (cancelRequested != nullptr &&
          cancelRequested->load(std::memory_order_relaxed)) {
        state.cancelled = true;
        state.done = true;
        state.cv.notify_all();
        return;
      }
    }
    if (state.health != nullptr && state.peer) {
      // A freshly quarantined rank must stop being a halo source *now*,
      // not once one of its assignments times out: peers fetching from it
      // would each burn a fetch timeout.  The overtime queue still handles
      // re-distributing its in-flight tasks.
      for (int r = 1; r <= cfg.slaveCount; ++r) {
        const bool q = state.health->stateOf(r) == SlaveHealth::kQuarantined;
        auto seen = invalidatedForSpell[static_cast<std::size_t>(r)];
        if (q && !seen) {
          invalidatedForSpell[static_cast<std::size_t>(r)] = true;
          std::lock_guard<std::mutex> lock(state.mutex);
          const std::int64_t n = state.directory.invalidateRank(r);
          if (n > 0) {
            EASYHPS_LOG_WARN("quarantined slave " << r << ": invalidated "
                                                  << n << " ownership entries");
          }
        } else if (!q) {
          invalidatedForSpell[static_cast<std::size_t>(r)] = false;
        }
      }
    }
    if (cfg.enableFaultTolerance) {
      const auto expired = state.overtime.popExpired();
      if (!expired.empty()) {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (const auto& e : expired) {
          if (state.parse.isFinished(e.task)) {
            continue;  // completed in time; stale deadline entry
          }
          if (state.registerTable.cancel(e.task, e.epoch)) {
            ++state.retries;
            if (state.peer) {
              // The rank is slow or dead: peers must stop fetching halos
              // from it.  Every block it owns is re-routed to the master,
              // whose ack copies of the boundary cells suffice.
              const std::int64_t n = state.directory.invalidateRank(e.worker);
              if (n > 0) {
                EASYHPS_LOG_WARN("invalidated " << n
                                                << " ownership entries of slave "
                                                << e.worker);
              }
            }
            bool requeue = true;
            if (state.streaming) {
              const auto it = static_cast<std::size_t>(e.task);
              state.inFlight[it] = 0;
              state.assignedRank[it] = 0;
              if (state.firedEarly[it] != 0 &&
                  state.parse.remainingPreds(e.task) > 0) {
                // An early fire that timed out must NOT be requeued while
                // its preds still compute: a second early assignment
                // would chase the same possibly-dead fragment stream
                // (starvation livelock).  Clearing the flag re-arms the
                // normal paths — maybeFireEarly on the next fragment, or
                // plain readiness when the last pred finishes.
                state.firedEarly[it] = 0;
                requeue = false;
              }
              state.firedEarly[it] = 0;
            }
            if (requeue) {
              state.policy->onReady(e.task);
            }
            EASYHPS_LOG_WARN("sub-task " << e.task << " timed out on slave "
                                         << e.worker << "; re-distributing");
          }
        }
        state.cv.notify_all();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Copies sub-rectangle `sub` out of a row-major buffer covering `rect`.
std::vector<Score> fragmentPiece(const CellRect& rect,
                                 std::span<const Score> data,
                                 const CellRect& sub) {
  EASYHPS_EXPECTS(sub.row0 >= rect.row0 && sub.rowEnd() <= rect.rowEnd());
  EASYHPS_EXPECTS(sub.col0 >= rect.col0 && sub.colEnd() <= rect.colEnd());
  std::vector<Score> out(static_cast<std::size_t>(sub.cellCount()));
  for (std::int64_t r = 0; r < sub.rows; ++r) {
    const auto srcOff = static_cast<std::size_t>(
        (sub.row0 + r - rect.row0) * rect.cols + (sub.col0 - rect.col0));
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(srcOff),
              data.begin() + static_cast<std::ptrdiff_t>(srcOff + sub.cols),
              out.begin() + static_cast<std::ptrdiff_t>(r * sub.cols));
  }
  return out;
}

/// A producer-emitted halo fragment landed: inject the not-yet-covered
/// pieces into the matrix, refresh consumer progress/eligibility, and
/// forward the fragment (a payload refcount bump, not a re-encode) to
/// every early-fired in-flight consumer of the producer.  Duplicates
/// (chaos, resends) coalesce to a counter tick.
void absorbFragment(msg::Comm& comm, MasterState& state,
                    const msg::Message& m) {
  wire::ScoreCells cells;
  const wire::HaloPartialPayload frag =
      wire::decodeHaloPartial(m.payload, cells);
  std::vector<int> targets;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (frag.job != state.jobId || !state.streaming || frag.vertex < 0 ||
        frag.vertex >= state.dag->vertexCount()) {
      return;
    }
    if (wire::blockChecksum(frag.vertex, frag.rect, cells.cells()) !=
        frag.checksum) {
      // Corrupt fragment: drop it — the consumer's bounded stall-resend
      // path (and ultimately the producer's completion) re-covers it.
      ++state.corruptBlocks;
      EASYHPS_LOG_WARN("dropped corrupt halo fragment of sub-task "
                       << frag.vertex);
      return;
    }
    const auto iv = static_cast<std::size_t>(frag.vertex);
    auto& tracker = state.fragTracker[iv];
    const std::vector<CellRect> pieces =
        tracker.intersectOutstanding(frag.rect);
    if (pieces.empty()) {
      ++state.fragmentsCoalesced;
      return;
    }
    for (const CellRect& piece : pieces) {
      state.matrix->inject(piece, fragmentPiece(frag.rect, cells.cells(),
                                                piece));
      state.validRects[iv].push_back(piece);
    }
    tracker.fill(frag.rect);
    for (VertexId u : state.fragmentConsumers[iv]) {
      const auto iu = static_cast<std::size_t>(u);
      if (state.parse.isFinished(u)) {
        continue;
      }
      state.policy->onFragmentProgress(u, haloProgress(state, u));
      maybeFireEarly(state, u);
      if (state.firedEarly[iu] != 0 && state.inFlight[iu] != 0 &&
          state.assignedRank[iu] > 0) {
        const int rank = state.assignedRank[iu];
        if (std::find(targets.begin(), targets.end(), rank) ==
            targets.end()) {
          targets.push_back(rank);
        }
      }
    }
    state.fragmentsForwarded += static_cast<std::int64_t>(targets.size());
  }
  for (int rank : targets) {
    comm.send(rank, wire::kTagHaloPartial, m.payload);
  }
}

/// A consumer stalled mid-stream: re-send whatever of its pending halo
/// the matrix can currently cover.  Finished producers serve their whole
/// (streamable) piece; in-flight producers serve the fragments that have
/// landed so far.  The consumer clips against its own tracker, so over-
/// sending is harmless.
void serveFragmentResend(msg::Comm& comm, MasterState& state,
                         const msg::Message& m) {
  const auto req = wire::decodeFragmentResend(m.payload);
  std::vector<wire::HaloPartialPayload> replies;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (req.job != state.jobId || !state.streaming || req.vertex < 0 ||
        req.vertex >= state.dag->vertexCount()) {
      return;
    }
    for (const wire::HaloSource& p :
         state.haloPieces[static_cast<std::size_t>(req.vertex)]) {
      if (p.vertex < 0 || p.rect.cellCount() <= 0) {
        continue;
      }
      if (state.peer && !ackSized(p.rect, state.dag->rectOf(p.vertex))) {
        continue;  // thick pieces were fetch sources, never pendingRects
      }
      if (state.parse.isFinished(p.vertex)) {
        std::vector<Score> cells = state.matrix->extract(p.rect);
        const std::uint64_t sum =
            wire::blockChecksum(p.vertex, p.rect, cells);
        replies.push_back(
            {state.jobId, p.vertex, p.rect, sum, std::move(cells)});
        continue;
      }
      const auto covered =
          partitionByCoverage(
              p.rect, state.validRects[static_cast<std::size_t>(p.vertex)])
              .covered;
      for (const CellRect& c : covered) {
        std::vector<Score> cells = state.matrix->extract(c);
        const std::uint64_t sum = wire::blockChecksum(p.vertex, c, cells);
        replies.push_back({state.jobId, p.vertex, c, sum, std::move(cells)});
      }
    }
    state.fragmentsForwarded += static_cast<std::int64_t>(replies.size());
  }
  for (wire::HaloPartialPayload& r : replies) {
    comm.send(m.source, wire::kTagHaloPartial,
              wire::encodeHaloPartial(std::move(r)));
  }
}

void absorbSpill(MasterState& state, const msg::Payload& payload) {
  wire::ScoreCells cells;
  const wire::BlockSpillPayload spill =
      wire::decodeBlockSpill(payload, cells);
  ckpt::BlockRecord rec;
  bool journalIt = false;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (spill.job != state.jobId) {
      return;
    }
    if (spill.vertex < 0 || spill.vertex >= state.dag->vertexCount() ||
        wire::blockChecksum(spill.vertex, spill.rect, cells.cells()) !=
            spill.checksum) {
      // The spill is the only surviving copy of an evicted block, but a
      // corrupt one must not poison the table: drop it and let the
      // bounded fetch path escalate to a local recompute.
      ++state.corruptBlocks;
      EASYHPS_LOG_WARN("dropped corrupt block spill (sub-task "
                       << spill.vertex << ")");
      return;
    }
    state.matrix->inject(spill.rect, cells.cells());
    state.directory.markResident(spill.vertex);
    if (state.journal != nullptr) {
      // Re-journal with full cells: the spill copy superseded the owner's
      // store copy, so a restarted master can no longer fetch it.
      journalIt = true;
      rec.vertex = spill.vertex;
      rec.owner = 0;
      rec.spilled = true;
      rec.checksum = spill.checksum;
      rec.rect = spill.rect;
      rec.pieces.push_back(ckpt::BlockPiece{
          spill.rect,
          std::vector<Score>(cells.cells().begin(), cells.cells().end())});
    }
  }
  if (journalIt) {
    state.journal->appendBlock(std::move(rec));
    state.journal->maybeFlush();
  }
}

void materializeBlock(msg::Comm& comm, MasterState& state, VertexId v,
                      std::deque<msg::Message>* deferred);

/// Last-resort recovery: recomputes block `v` into the master matrix from
/// its dependencies' cells.  Every ack-sized dependency piece is already
/// in the matrix — it was injected with the dependency's result ack when
/// that block completed, and `v` completed after its dependencies — while
/// thicker pieces are materialized first, recursing down the (acyclic)
/// block DAG.  Reached only when the owning rank stopped answering with
/// the sole copy of the block (slave death / quarantine).
void recomputeBlock(msg::Comm& comm, MasterState& state, VertexId v,
                    std::deque<msg::Message>* deferred) {
  std::vector<VertexId> thickDeps;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const wire::HaloSource& p :
         state.haloPieces[static_cast<std::size_t>(v)]) {
      if (p.vertex < 0 || p.vertex == v) {
        continue;
      }
      if (state.directory.resident(p.vertex)) {
        continue;
      }
      if (ackSized(p.rect, state.dag->rectOf(p.vertex))) {
        continue;
      }
      thickDeps.push_back(p.vertex);
    }
  }
  for (VertexId dep : thickDeps) {
    materializeBlock(comm, state, dep, deferred);
  }
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.directory.resident(v)) {
    return;  // landed meanwhile (spill or a swapped reply)
  }
  state.problem->computeBlock(*state.matrix, state.dag->rectOf(v));
  state.directory.markResident(v);
  ++state.blocksRecomputed;
  EASYHPS_LOG_WARN("recomputed block " << v
                                       << " at the master (owner unreachable)");
}

/// Makes block `v`'s cells present in the master matrix, pulling it from
/// its owning rank if need be (the *lazy* half of the data plane: thick
/// halo pieces never ride the result ack, so the master first touches them
/// here or during assembly).  A pull that misses means the owner evicted
/// the block — its spill is then already queued on our kTagData mailbox
/// (the slave spills before replying), so we drain spills until it lands.
/// The other miss cause — the owner flushed its store at JobEnd — only
/// happens once the parse is done, i.e. the requester's assignment was
/// re-distributed and its result will be discarded; we bail out and serve
/// whatever the matrix holds.  Each pull waits at most
/// `state.fetchTimeout`; after `cfg.maxRecoveryRefetches` silent timeouts
/// (owner dead or the traffic chaos-dropped) the block is recomputed
/// locally.
/// `deferred` is non-null on the data thread only, which must set aside
/// peer *requests* it drains while waiting for a spill; the assembly phase
/// passes nullptr and lets the still-running data thread absorb spills.
void materializeBlock(msg::Comm& comm, MasterState& state, VertexId v,
                      std::deque<msg::Message>* deferred) {
  int fetchTimeouts = 0;
  for (;;) {
    int owner = 0;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.directory.resident(v)) {
        return;
      }
      owner = state.directory.assemblySource(v);
    }
    if (owner == 0) {
      return;  // never completed (cancelled job): serve matrix as-is
    }
    if (fetchTimeouts >= state.maxFetchAttempts) {
      recomputeBlock(comm, state, v, deferred);
      return;
    }
    comm.send(owner, wire::kTagData,
              wire::encodeBlockFetch({state.jobId, v, state.dag->rectOf(v)}));
    auto reply = comm.recvFor(owner, wire::kTagBlockData, state.fetchTimeout);
    if (!reply) {
      if (comm.mailboxClosed()) {
        return;
      }
      // Owner dead, request/reply chaos-dropped, or a concurrent fetch
      // from the same owner swallowed our reply — the loop re-checks
      // residency either way.
      ++fetchTimeouts;
      continue;
    }
    wire::ScoreCells cells;
    wire::BlockDataPayload block;
    try {
      block = wire::decodeBlockData(reply->payload, cells);
    } catch (const DecodeError&) {
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        ++state.decodeErrors;
      }
      ++fetchTimeouts;  // counts toward the recompute escalation
      continue;
    }
    if (block.found) {
      bool applied = true;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (block.job == state.jobId) {
          const bool inRange =
              block.vertex >= 0 && block.vertex < state.dag->vertexCount();
          const std::uint64_t sum =
              inRange ? wire::blockChecksum(block.vertex, block.rect,
                                            cells.cells())
                      : 0;
          const std::uint64_t journaled =
              inRange ? state.expectedChecksum[static_cast<std::size_t>(
                            block.vertex)]
                      : 0;
          if (!inRange || sum != block.checksum ||
              (journaled != 0 && sum != journaled)) {
            // End-to-end verification failed: either the transfer was
            // damaged (sum != carried checksum) or the owner's copy
            // diverged from what the journal recorded at completion time
            // — the latter means the rank must stop being a source.
            ++state.corruptBlocks;
            if (inRange && sum == block.checksum) {
              (void)state.directory.invalidateRank(owner);
            }
            EASYHPS_LOG_WARN("corrupt block fetch reply for sub-task "
                             << block.vertex << "; retrying");
            applied = false;
          } else {
            // Inject by payload identity: the assembly phase may be
            // fetching from the same owner concurrently, and (source,
            // tag) matching can hand each receiver the other's reply —
            // both replies get applied either way, so re-check residency
            // and retry if ours swapped.
            state.matrix->inject(block.rect, cells.cells());
            state.directory.markResident(block.vertex);
          }
        }
      }
      if (!applied) {
        ++fetchTimeouts;
      }
      continue;
    }
    // Evicted: the owner's spill is (or shortly will be) in our kTagData
    // queue.  Wait for it — but bounded: a chaos-dropped or corrupt-
    // dropped spill must escalate to recompute, not hang here.
    const auto spillDeadline =
        std::chrono::steady_clock::now() + state.fetchTimeout;
    bool spillLanded = false;
    while (!spillLanded) {
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.directory.resident(v)) {
          spillLanded = true;
          break;
        }
        if (state.done) {
          return;  // JobEnd flush: requester is redundant
        }
      }
      if (std::chrono::steady_clock::now() >= spillDeadline) {
        break;
      }
      if (deferred == nullptr) {
        // Assembly phase: the data thread still owns kTagData and will
        // absorb the in-flight spill; just wait for it.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto m = comm.recvFor(msg::kAnySource, wire::kTagData,
                            std::chrono::milliseconds(2));
      if (!m) {
        if (comm.mailboxClosed()) {
          return;
        }
        continue;
      }
      if (wire::peekDataKind(m->payload) == wire::DataMsgKind::kBlockSpill) {
        absorbSpill(state, m->payload);
      } else {
        deferred->push_back(std::move(*m));  // requests wait their turn
      }
    }
    if (!spillLanded) {
      ++fetchTimeouts;
    }
  }
}

/// Master data-plane thread (peer mode, and relay mode when streaming):
/// serves halo fallback requests from the job matrix (lazily pulling
/// non-resident blocks), absorbs spilled blocks, and — streaming
/// pipeline — absorbs producer fragments and serves consumer resend
/// requests.  Runs until the job's Stats handshake finished — a
/// re-distributed straggler may still be computing (and fetching) while
/// the main thread assembles.
void masterDataLoop(msg::Comm& comm, MasterState& state,
                    const std::atomic<bool>& stop) {
  log::setThreadName("master/data");
  std::deque<msg::Message> deferred;
  try {
    while (!stop.load(std::memory_order_acquire)) {
      std::optional<msg::Message> m;
      if (!deferred.empty()) {
        m = std::move(deferred.front());
        deferred.pop_front();
      } else {
        m = comm.recvFor(msg::kAnySource, wire::kTagData,
                         std::chrono::milliseconds(2));
        if (!m) {
          if (comm.mailboxClosed()) {
            return;
          }
          continue;
        }
      }
      try {
        switch (wire::peekDataKind(m->payload)) {
          case wire::DataMsgKind::kHaloRequest: {
            const auto req = wire::decodeHaloRequest(m->payload);
            wire::HaloDataPayload reply;
            reply.job = req.job;
            reply.rect = req.rect;
            if (req.job == state.jobId) {
              if (req.vertex >= 0) {
                materializeBlock(comm, state, req.vertex, &deferred);
              }
              std::lock_guard<std::mutex> lock(state.mutex);
              reply.found = true;
              reply.data = state.matrix->extract(req.rect);
              reply.checksum =
                  wire::blockChecksum(-1, reply.rect, reply.data);
            }
            comm.send(m->source, wire::kTagHaloData,
                      wire::encodeHaloData(std::move(reply)));
            break;
          }
          case wire::DataMsgKind::kBlockSpill:
            absorbSpill(state, m->payload);
            break;
          case wire::DataMsgKind::kHaloPartial:
            absorbFragment(comm, state, *m);
            break;
          case wire::DataMsgKind::kFragmentResend:
            serveFragmentResend(comm, state, *m);
            break;
          case wire::DataMsgKind::kBlockFetch:
          case wire::DataMsgKind::kPing:
            // Fetches and liveness pings only target slaves; drop.
            EASYHPS_LOG_WARN("master received a misrouted data message");
            break;
        }
      } catch (const DecodeError& e) {
        // A malformed data-plane payload (corruption landed in a length
        // or kind field) is dropped, never fatal: the sender's bounded
        // retry machinery covers the loss.
        std::lock_guard<std::mutex> lock(state.mutex);
        ++state.decodeErrors;
        EASYHPS_LOG_WARN("dropped undecodable data message: " << e.what());
      }
    }
  } catch (const CommError&) {
    // Cluster shut down mid-serve; the worker loops surface the failure.
  }
}

/// Seeds a (re)starting job from a replayed checkpoint journal: re-injects
/// the recorded cells, re-registers peer ownership, advances the parse
/// state to the journaled frontier and records the expected per-block
/// checksums later store fetches are verified against.  A record is
/// *restorable* when the journal itself carries the full block (relay
/// records, spills, resident acks) or when the owning slave's store
/// survived (`storesWarm`, i.e. an in-process master restart); anything
/// else — a peer-owned boundary-only record on a cold restart — is
/// skipped and its task reruns like a never-completed one.
void replayJournal(MasterState& state, const ckpt::RecoveredState& rec,
                   bool storesWarm) {
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const ckpt::BlockRecord& b : rec.blocks) {
    if (b.vertex < 0 || b.vertex >= state.dag->vertexCount() ||
        state.parse.isFinished(b.vertex) ||
        !(b.rect == state.dag->rectOf(b.vertex))) {
      continue;  // stale/foreign record (meta check should prevent this)
    }
    bool fullCells = false;
    bool piecesValid = true;
    for (const ckpt::BlockPiece& p : b.pieces) {
      if (p.rect.cellCount() !=
          static_cast<std::int64_t>(p.cells.size())) {
        piecesValid = false;
        break;
      }
      fullCells = fullCells || p.rect == b.rect;
    }
    if (!piecesValid) {
      continue;
    }
    if (!fullCells && !(state.peer && b.owner >= 1 && storesWarm)) {
      continue;  // no surviving full copy anywhere: recompute the task
    }
    for (const ckpt::BlockPiece& p : b.pieces) {
      if (p.rect.cellCount() > 0) {
        state.matrix->inject(p.rect, p.cells);
      }
    }
    if (state.peer) {
      if (fullCells) {
        state.directory.registerBlock(
            b.vertex, b.owner >= 1 ? b.owner : 1,
            static_cast<std::uint64_t>(b.rect.cellCount()) * sizeof(Score));
        state.directory.markResident(b.vertex);
      } else {
        state.directory.registerBlock(
            b.vertex, b.owner,
            static_cast<std::uint64_t>(b.rect.cellCount()) * sizeof(Score));
      }
    }
    state.expectedChecksum[static_cast<std::size_t>(b.vertex)] = b.checksum;
    state.tableChecksum += b.checksum;
    (void)state.parse.finish(b.vertex, true);
    ++state.completed;
    ++state.blocksRecovered;
  }
  if (state.parse.allDone()) {
    state.done = true;
  }
}

}  // namespace

MasterJobOutcome runMasterJob(msg::Comm& comm, const RuntimeConfig& cfg,
                              const ServiceJob& job, HealthRegistry* health,
                              const std::shared_ptr<RankEstimator>& estimator,
                              const MasterResume* resume) {
  EASYHPS_EXPECTS(cfg.slaveCount >= 1);
  EASYHPS_EXPECTS(comm.size() == cfg.slaveCount + 1);
  EASYHPS_EXPECTS(job.problem != nullptr && job.out != nullptr);
  const bool peer = cfg.dataPlane == DataPlaneMode::kPeerToPeer;
  // Cross-level dataflow pipelining: sampled once per job, so a job sees
  // one consistent mode even if the toggle flips mid-run.  Only the
  // master consults it — slaves behave per Assign contents, and under
  // kBarrier those are byte-for-byte the seed protocol.
  const bool streaming = pipelineMode() == PipelineMode::kStreaming;
  const bool resuming = resume != nullptr && resume->skipBracket;

  // Injected job-level failure (chaos plan): consumed *before* dispatch,
  // so there is no JobStart bracket to unwind — the serve layer's retry
  // machinery re-enqueues or fails the ticket.  A crash-resumed
  // incarnation must not consume one: the slaves are mid-job and a
  // bracket-less failure would strand them.
  if (!resuming && job.plan != nullptr && job.plan->consumeJobAbort()) {
    MasterJobOutcome outcome;
    outcome.failed = true;
    outcome.failureReason = "injected job abort (chaos plan)";
    outcome.stats.faultsTriggered = 1;
    return outcome;
  }

  const msg::TrafficSnapshot traffic0 = comm.traffic();
  const HealthRegistry::Counters health0 =
      health != nullptr ? health->counters() : HealthRegistry::Counters{};

  // Bracket the job: every slave resets its per-job state on JobStart.
  // Skipped on a crash resume — the slaves never saw a JobEnd and are
  // still inside this very job (warm stores and all).
  if (!resuming) {
    for (int s = 1; s <= cfg.slaveCount; ++s) {
      comm.send(s, wire::kTagJobStart, wire::encodeJobControl({job.id}));
    }
  }

  // Master DAG Data Driven Model initialization + task partition
  // (paper §V-B step a).
  const PartitionedDag dag = buildMasterDag(
      *job.problem, cfg.processPartitionRows, cfg.processPartitionCols);
  MasterState state(job.id, dag, *job.problem, *job.out, peer, streaming);
  state.health = health;
  state.fetchTimeout = cfg.dataFetchTimeout;
  state.recordTrace = cfg.recordScheduleTrace;
  state.plan = job.plan;
  state.maxFetchAttempts = std::max(1, cfg.maxRecoveryRefetches);
  state.expectedChecksum.assign(static_cast<std::size_t>(dag.vertexCount()),
                                0);
  if (resume != nullptr) {
    state.journal = resume->journal;
    state.resumed = resume->skipBracket;
    state.crashTarget = resume->completedAtCrash;
  }
  if (peer || streaming) {
    buildHaloGeometry(*job.problem, state);
  }
  if (cfg.masterPolicy == PolicyKind::kLocality) {
    // Affinity oracle over the ownership directory: bytes of the task's
    // halo pieces whose owning rank is the candidate worker's slave.
    // Called under state.mutex (policy calls are serialized by it).
    LocalityAffinityFn affinity;
    if (peer) {
      affinity = [&state](VertexId task, int worker) {
        std::int64_t bytes = 0;
        for (const wire::HaloSource& p :
             state.haloPieces[static_cast<std::size_t>(task)]) {
          if (p.vertex >= 0 &&
              state.directory.haloSource(p.vertex) == worker + 1) {
            bytes += p.rect.cellCount() *
                     static_cast<std::int64_t>(sizeof(Score));
          }
        }
        return bytes;
      };
    }
    state.policy = makeLocalityPolicy(dag, cfg.slaveCount, std::move(affinity));
  } else if (cfg.masterPolicy == PolicyKind::kEct ||
             cfg.masterPolicy == PolicyKind::kEctSteal) {
    // Heterogeneity-aware placement: score candidate ranks by estimated
    // completion time against the (service-lifetime) rank estimator.  All
    // oracles run under state.mutex, which also guards the directory.
    EctOptions opt;
    opt.steal = cfg.masterPolicy == PolicyKind::kEctSteal;
    opt.estimator = estimator != nullptr
                        ? estimator
                        : std::make_shared<RankEstimator>(
                              cfg.slaveCount, cfg.resolvedRankProfiles());
    if (health != nullptr) {
      // Seed/refresh the control-plane RTT term from the health
      // registry's ack-latency EWMA (PR 5 collects it; now it places).
      for (int s = 1; s <= cfg.slaveCount; ++s) {
        opt.estimator->setRttSeconds(s - 1,
                                     health->ewmaLatencySeconds(s));
      }
      opt.allowAssign = [health](int worker) {
        return health->allowAssign(worker + 1);
      };
    }
    opt.taskWork = [&state](VertexId task) {
      return state.problem->blockOps(state.dag->rectOf(task));
    };
    if (peer) {
      opt.blockBytes = [&state](VertexId task) {
        return static_cast<std::uint64_t>(
                   state.dag->rectOf(task).cellCount()) *
               sizeof(Score);
      };
      opt.remoteBytes = [&state](VertexId task, int worker) {
        // Halo bytes this rank would pull from elsewhere — pieces whose
        // current owner (per the directory) is not the candidate itself.
        std::int64_t bytes = 0;
        for (const wire::HaloSource& p :
             state.haloPieces[static_cast<std::size_t>(task)]) {
          if (p.vertex >= 0 &&
              state.directory.haloSource(p.vertex) == worker + 1) {
            continue;
          }
          bytes +=
              p.rect.cellCount() * static_cast<std::int64_t>(sizeof(Score));
        }
        return bytes;
      };
      opt.residentBytes = [&state](int worker) {
        return state.directory.bytesOwnedBy(worker + 1);
      };
    } else {
      // Relay mode: every halo ships from the master, so the byte term
      // only differentiates ranks through their link bandwidth.
      opt.remoteBytes = [&state](VertexId task, int worker) {
        (void)worker;
        return haloBytes(*state.problem, state.dag->rectOf(task));
      };
    }
    state.policy = makeEctPolicy(dag, cfg.slaveCount, std::move(opt));
  } else {
    state.policy = makePolicy(cfg.masterPolicy, dag, cfg.slaveCount);
  }
  state.tasksPerSlave.assign(static_cast<std::size_t>(cfg.slaveCount), 0);
  if (resume != nullptr && resume->recovered != nullptr) {
    replayJournal(state, *resume->recovered, resume->storesWarm);
    if (state.blocksRecovered > 0) {
      EASYHPS_LOG_WARN("resumed job " << job.id << " from checkpoint: "
                                      << state.blocksRecovered << "/"
                                      << dag.vertexCount()
                                      << " blocks recovered");
    }
  }
  if (state.crashTarget >= 0 && state.completed >= state.crashTarget) {
    state.recoverySeconds = state.watch.elapsedSeconds();
  }
  // Seed the ready frontier.  On a fresh job this is exactly
  // initiallyComputable(); after a journal replay it is every unfinished
  // vertex whose predecessors all sit behind the recovered frontier.
  for (VertexId v = 0; v < dag.vertexCount(); ++v) {
    if (!state.parse.isFinished(v) && state.parse.remainingPreds(v) == 0) {
      state.policy->onReady(v);
    }
  }
  if (state.parse.allDone()) {
    state.done = true;
  }

  std::vector<wire::SlaveStatsPayload> slaveStats(
      static_cast<std::size_t>(cfg.slaveCount));
  std::vector<std::exception_ptr> workerErrors(
      static_cast<std::size_t>(cfg.slaveCount));

  std::atomic<bool> stopData{false};
  std::optional<std::jthread> dataThread;
  if (peer || streaming) {
    // Streaming needs the data loop in *both* data-plane modes: producer
    // fragments and consumer resend requests ride the kTagData envelope.
    dataThread.emplace([&] { masterDataLoop(comm, state, stopData); });
  }

  try {
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(cfg.slaveCount) + 1);
      for (int s = 1; s <= cfg.slaveCount; ++s) {
        threads.emplace_back([&, s] {
          try {
            masterWorkerLoop(comm, *job.problem, cfg, state, s);
          } catch (...) {
            // A worker failure (closed cluster, kernel bug) must not take
            // the process down; release the siblings and rethrow below.
            workerErrors[static_cast<std::size_t>(s - 1)] =
                std::current_exception();
            std::lock_guard<std::mutex> lock(state.mutex);
            state.done = true;
            state.cv.notify_all();
          }
        });
      }
      if (cfg.enableFaultTolerance || job.cancelRequested != nullptr) {
        threads.emplace_back(
            [&] { controlLoop(state, cfg, job.cancelRequested); });
      }
    }  // join

    for (auto& e : workerErrors) {
      if (e) {
        std::rethrow_exception(e);
      }
    }
    if (!state.cancelled && !state.crashed) {
      EASYHPS_ENSURES(state.parse.allDone());
    }

    // Lazy assembly (peer mode): pull every block not already resident at
    // the master.  Suspect owners are still asked — in this in-process
    // substrate a slow rank answers eventually; a found=false reply means
    // the block was evicted and its spill is already in our kTagData
    // queue (absorbed by the still-running data thread).  A silent owner
    // (slave death) costs `cfg.maxRecoveryRefetches` fetch timeouts and
    // the block is recomputed locally.
    if (peer && !state.cancelled && !state.crashed &&
        cfg.assembleFullMatrix) {
      for (VertexId v = 0; v < dag.vertexCount(); ++v) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          if (state.directory.resident(v) ||
              state.directory.assemblySource(v) == 0) {
            continue;
          }
        }
        materializeBlock(comm, state, v, nullptr);
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.directory.resident(v)) {
          ++state.blocksAssembled;
        }
      }
    }

    // JobEnd/Stats bracket (moved out of the worker loops: the job ends
    // only after assembly, and a slave flushes its store on JobEnd).  A
    // crashed master sends nothing: the slaves stay in the job, stores
    // warm, until the resumed incarnation finishes it.
    if (!state.crashed) {
      for (int s = 1; s <= cfg.slaveCount; ++s) {
        comm.send(s, wire::kTagJobEnd, wire::encodeJobControl({state.jobId}));
      }
      for (int s = 1; s <= cfg.slaveCount; ++s) {
        auto& slot = slaveStats[static_cast<std::size_t>(s - 1)];
        for (;;) {
          auto statsMsg =
              comm.recvFor(s, wire::kTagStats, std::chrono::milliseconds(20));
          if (statsMsg) {
            slot = wire::decodeSlaveStats(statsMsg->payload);
            if (slot.job != state.jobId) {
              // Stats of an *earlier* job a reborn/slow slave finally
              // flushed; keep waiting for ours.
              slot = wire::SlaveStatsPayload{};
              continue;
            }
            break;
          }
          if (comm.mailboxClosed()) {
            throw CommError("cluster shut down while awaiting slave " +
                            std::to_string(s) + " stats");
          }
          if (health != nullptr &&
              health->stateOf(s) == SlaveHealth::kQuarantined) {
            // A dead slave never sends Stats; its work was re-distributed
            // and accounted by the survivors, so skip rather than hang.
            ++state.statsSkipped;
            break;
          }
          // No liveness registry: preserve the paper protocol and wait —
          // a slow slave's stats always arrive eventually.
        }
      }
    }
  } catch (...) {
    stopData.store(true, std::memory_order_release);
    throw;  // dataThread joins during unwind, after the stop flag is set
  }

  stopData.store(true, std::memory_order_release);
  if (dataThread) {
    dataThread->join();
    dataThread.reset();
  }
  if ((peer || streaming) && !state.crashed) {
    // Drain data requests that raced the shutdown: spills sent by a
    // straggler just before its Stats must land in the matrix (their
    // owner's store is flushed).  Requests of *earlier* jobs may also
    // surface here (and, streaming, stray fragments of this one); they
    // are dropped by the job-id / kind checks.  A crashed master leaves
    // the mailbox alone — the resumed incarnation's data thread absorbs
    // whatever is queued (same job id).
    while (auto m = comm.tryRecv(msg::kAnySource, wire::kTagData)) {
      try {
        if (wire::peekDataKind(m->payload) ==
            wire::DataMsgKind::kBlockSpill) {
          absorbSpill(state, m->payload);
        }
      } catch (const DecodeError&) {
        std::lock_guard<std::mutex> lock(state.mutex);
        ++state.decodeErrors;
      }
    }
  }

  MasterJobOutcome outcome;
  outcome.cancelled = state.cancelled;
  outcome.masterCrashed = state.crashed;
  outcome.completedAtCrash = state.completed;
  outcome.timeToFirstBlockSeconds = state.firstBlockSeconds;
  RunStats& stats = outcome.stats;
  stats.elapsedSeconds = state.watch.elapsedSeconds();
  stats.tasks = state.tasksSent;
  stats.completedTasks = state.completed;
  stats.retries = state.retries;
  stats.lateResults = state.lateResults;
  stats.staleJobResults = state.staleJobResults;
  stats.masterStalledPicks = state.policy->stalledPicks();
  stats.tasksPerSlave = state.tasksPerSlave;
  stats.tableChecksum = state.tableChecksum;
  stats.kernelPathName = kernelPathName(effectiveKernelPath());
  stats.kernelTiles = autotune::summary();
  stats.blocksAssembled = state.blocksAssembled;
  stats.blocksRecomputed = state.blocksRecomputed;
  stats.statsSkipped = state.statsSkipped;
  stats.fragmentsForwarded = state.fragmentsForwarded;
  stats.fragmentsCoalesced = state.fragmentsCoalesced;
  stats.blocksStartedEarly = state.blocksStartedEarly;
  stats.blocksRecovered = state.blocksRecovered;
  stats.corruptBlocks = state.corruptBlocks;
  stats.decodeErrors = state.decodeErrors;
  stats.recoverySeconds = std::max(0.0, state.recoverySeconds);
  if (state.crashed) {
    stats.faultsTriggered += 1;
  }
  stats.ownershipInvalidations = state.directory.invalidations();
  stats.placementSpills = state.policy->placementSpills();
  stats.tasksStolen = state.policy->tasksStolen();
  stats.scheduleTrace = std::move(state.scheduleTrace);
  if (health != nullptr) {
    const HealthRegistry::Counters health1 = health->counters();
    stats.heartbeatsSent = health1.pingsSent - health0.pingsSent;
    stats.heartbeatMisses = health1.misses - health0.misses;
    stats.quarantines = health1.quarantines - health0.quarantines;
    stats.readmissions = health1.readmissions - health0.readmissions;
    if (state.recordTrace) {
      for (const auto& span : health->quarantineSpans()) {
        RunStats::QuarantineEvent ev;
        ev.slave = span.rank;
        ev.beginSeconds = state.jobSeconds(span.begin);
        if (span.end.has_value()) {
          ev.endSeconds = state.jobSeconds(*span.end);
        }
        stats.quarantineTrace.push_back(ev);
      }
    }
  }
  for (std::size_t i = 0; i < slaveStats.size(); ++i) {
    const auto& s = slaveStats[i];
    stats.threadRestarts += s.threadRestarts;
    stats.subTaskRequeues += s.subTaskRequeues;
    stats.haloLocalHits += s.haloLocalHits;
    stats.haloPeerFetches += s.haloPeerFetches;
    stats.haloMasterFetches += s.haloMasterFetches;
    stats.halosServedToPeers += s.halosServed;
    stats.storeEvictions += s.storeEvictions;
    stats.storeSpilledBytes += s.storeSpilledBytes;
    stats.storePeakBytes = std::max(stats.storePeakBytes, s.storePeakBytes);
    stats.fragmentsSent += s.fragmentsSent;
    stats.fragmentsApplied += s.fragmentsApplied;
    stats.fragmentResends += s.fragmentResends;
    stats.corruptBlocks += s.corruptPayloads;
    stats.decodeErrors += s.decodeErrors;
    stats.streamOverlapSeconds +=
        static_cast<double>(s.streamOverlapMicros) * 1e-6;
    if (estimator != nullptr) {
      // Refine the link-bandwidth belief from the rank's timed p2p halo
      // fetches (the per-link byte matrix's scheduler-facing summary).
      estimator->observeTransfer(
          static_cast<int>(i), static_cast<double>(s.peerFetchBytes),
          static_cast<double>(s.peerFetchMicros) * 1e-6);
    }
  }
  const msg::TrafficSnapshot traffic1 = comm.traffic();
  stats.messages = traffic1.messages - traffic0.messages;
  stats.bytes = traffic1.bytes - traffic0.bytes;
  stats.copiesAvoided = traffic1.copiesAvoided - traffic0.copiesAvoided;
  stats.zeroCopyBytes = traffic1.zeroCopyBytes - traffic0.zeroCopyBytes;
  stats.transportDropped = traffic1.dropped - traffic0.dropped;
  stats.transportDuplicated = traffic1.duplicated - traffic0.duplicated;
  stats.transportDelayed = traffic1.delayed - traffic0.delayed;
  stats.transportCorrupted = traffic1.corrupted - traffic0.corrupted;
  const int ranks = traffic1.ranks;
  stats.linkBytes.assign(traffic1.linkBytes.size(), 0);
  for (int src = 0; src < ranks; ++src) {
    for (int dst = 0; dst < ranks; ++dst) {
      const auto idx = static_cast<std::size_t>(src * ranks + dst);
      const std::uint64_t delta =
          traffic1.linkBytes[idx] - traffic0.linkBytes[idx];
      stats.linkBytes[idx] = delta;
      if (src == 0 || dst == 0) {
        stats.bytesViaMaster += delta;
      } else {
        stats.bytesPeerToPeer += delta;
      }
    }
  }
  return outcome;
}

void runMasterService(msg::Comm& comm, const RuntimeConfig& cfg,
                      JobFeed& feed) {
  log::setThreadName("master");
  EASYHPS_EXPECTS(cfg.slaveCount >= 1);
  EASYHPS_EXPECTS(comm.size() == cfg.slaveCount + 1);

  // Service-lifetime liveness: the heartbeat thread spans jobs so a slave
  // quarantined during job N is still quarantined when job N+1 dispatches
  // (per-job deltas of the registry's counters land in each RunStats).
  const bool liveness = cfg.enableLiveness && cfg.enableFaultTolerance;
  std::optional<HealthRegistry> health;
  std::atomic<bool> stopLiveness{false};
  std::optional<std::jthread> livenessThread;
  if (liveness) {
    health.emplace(cfg.slaveCount,
                   HealthConfig{cfg.heartbeatInterval, cfg.heartbeatTimeout,
                                cfg.heartbeatMissThreshold,
                                cfg.quarantineBackoff});
    livenessThread.emplace([&comm, &cfg, &health, &stopLiveness] {
      log::setThreadName("master/liveness");
      const auto nap = std::min<std::chrono::milliseconds>(
          cfg.heartbeatInterval / 2, std::chrono::milliseconds(10));
      while (!stopLiveness.load(std::memory_order_acquire)) {
        for (const HealthRegistry::Ping& ping : health->duePings()) {
          // Pings ride kTagData so the slave's always-on data thread
          // answers even while its compute pool is busy (or wedged).
          comm.send(ping.rank, wire::kTagData,
                    wire::encodeHealthPing({ping.seq}));
        }
        while (auto ack = comm.tryRecv(msg::kAnySource, wire::kTagHealthAck)) {
          health->onAck(ack->source, wire::decodeHealthAck(ack->payload).seq);
        }
        for (int rank : health->sweep()) {
          EASYHPS_LOG_WARN("slave " << rank
                                    << " quarantined (missed heartbeats)");
        }
        if (comm.mailboxClosed()) {
          return;
        }
        std::this_thread::sleep_for(std::max<std::chrono::milliseconds>(
            nap, std::chrono::milliseconds(1)));
      }
    });
  }

  // Service-lifetime rank estimator: speeds/bandwidths learned while
  // serving job N place job N+1's blocks (only the ECT policies read it).
  std::shared_ptr<RankEstimator> estimator;
  if (cfg.masterPolicy == PolicyKind::kEct ||
      cfg.masterPolicy == PolicyKind::kEctSteal) {
    estimator = std::make_shared<RankEstimator>(cfg.slaveCount,
                                                cfg.resolvedRankProfiles());
  }

  // Durable checkpoint/restart (easyhps::ckpt): with `cfg.checkpointDir`
  // configured and a cacheable job, completed blocks are journaled as
  // results land; a journal left behind by a crashed incarnation (or an
  // earlier process over the same directory) seeds the resumed run's
  // completed frontier.  Journal open failures degrade to journaling off
  // — durability is best-effort, correctness never depends on it.
  const auto openJournal = [&cfg](const std::string& keyHex)
      -> std::unique_ptr<ckpt::JournalWriter> {
    ckpt::JobMetaRecord meta;
    meta.key = keyHex;
    meta.partitionRows = cfg.processPartitionRows;
    meta.partitionCols = cfg.processPartitionCols;
    meta.vertexCount = cfg.processPartitionRows * cfg.processPartitionCols;
    meta.dataPlane = static_cast<std::uint8_t>(cfg.dataPlane);
    ckpt::JournalWriter::Options opt;
    opt.dir = cfg.checkpointDir;
    opt.key = keyHex;
    opt.flushInterval = cfg.checkpointInterval;
    try {
      return std::make_unique<ckpt::JournalWriter>(std::move(opt), meta);
    } catch (const Error& e) {
      EASYHPS_LOG_WARN("checkpoint journaling disabled: " << e.what());
      return nullptr;
    }
  };
  const auto loadCompatible =
      [&cfg](const std::string& keyHex) -> std::optional<ckpt::RecoveredState> {
    std::optional<ckpt::RecoveredState> rec =
        ckpt::loadJournal(cfg.checkpointDir, keyHex);
    if (!rec) {
      return std::nullopt;
    }
    const ckpt::JobMetaRecord& m = rec->meta;
    const bool compatible =
        rec->hasMeta && !rec->committed &&
        m.partitionRows == cfg.processPartitionRows &&
        m.partitionCols == cfg.processPartitionCols &&
        m.dataPlane == static_cast<std::uint8_t>(cfg.dataPlane);
    if (!compatible) {
      // Wrong partitioning/data plane (or a stale committed leftover):
      // its records must not seed this run.
      ckpt::discardJournal(cfg.checkpointDir, keyHex);
      return std::nullopt;
    }
    return rec;
  };

  try {
    while (std::optional<ServiceJob> job = feed.nextJob()) {
      std::string keyHex;
      if (!cfg.checkpointDir.empty() && job->problem != nullptr) {
        if (auto key = cache::jobKey(*job->problem, cfg)) {
          keyHex = key->hex();
        }
      }
      std::unique_ptr<ckpt::JournalWriter> journal;
      std::optional<ckpt::RecoveredState> recovered;
      if (!keyHex.empty()) {
        recovered = loadCompatible(keyHex);
        journal = openJournal(keyHex);
      }
      MasterJobOutcome outcome;
      {
        MasterResume resume;
        resume.journal = journal.get();
        resume.recovered = recovered ? &*recovered : nullptr;
        const bool haveResume =
            resume.journal != nullptr || resume.recovered != nullptr;
        outcome =
            runMasterJob(comm, cfg, *job, health ? &*health : nullptr,
                         estimator, haveResume ? &resume : nullptr);
      }
      std::int64_t restarts = 0;
      while (outcome.masterCrashed) {
        // kMasterCrash chaos: the incarnation died mid-job.  Model the
        // restart faithfully — unflushed journal tail lost, journal
        // reopened, surviving state replayed — then re-run the job with
        // the slaves still inside it (warm stores, no bracket).
        ++restarts;
        EASYHPS_LOG_WARN("master crashed mid-job " << job->id
                                                   << " (chaos); restarting");
        recovered.reset();
        if (journal) {
          journal->simulateCrash();
          journal.reset();
        }
        if (!keyHex.empty()) {
          recovered = loadCompatible(keyHex);
          journal = openJournal(keyHex);
        }
        MasterResume resume;
        resume.journal = journal.get();
        resume.recovered = recovered ? &*recovered : nullptr;
        resume.skipBracket = true;
        resume.storesWarm = true;
        resume.completedAtCrash = outcome.completedAtCrash;
        outcome = runMasterJob(comm, cfg, *job, health ? &*health : nullptr,
                               estimator, &resume);
      }
      outcome.stats.masterRestarts = restarts;
      if (journal && !outcome.failed && !outcome.cancelled) {
        journal->commit();
      }
      feed.jobFinished(job->id, std::move(outcome));
    }
  } catch (...) {
    stopLiveness.store(true, std::memory_order_release);
    throw;  // livenessThread joins during unwind
  }
  stopLiveness.store(true, std::memory_order_release);
  if (livenessThread) {
    livenessThread->join();
    livenessThread.reset();
  }
  for (int s = 1; s <= cfg.slaveCount; ++s) {
    comm.send(s, wire::kTagEnd, {});
  }
}

}  // namespace easyhps

#include "easyhps/runtime/master.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "easyhps/dag/parse_state.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/sched/worker_pool.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps {
namespace {

/// Scheduler state shared by the master worker threads and the FT thread.
struct MasterState {
  explicit MasterState(const PartitionedDag& d, Window& m)
      : dag(&d), parse(d.dag), matrix(&m) {}

  const PartitionedDag* dag;
  DagParseState parse;
  std::unique_ptr<SchedulingPolicy> policy;
  RegisterTable registerTable;
  OvertimeQueue overtime;
  Window* matrix;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;

  // Statistics (guarded by mutex).
  std::int64_t tasksSent = 0;
  std::int64_t completed = 0;
  std::int64_t retries = 0;
  std::int64_t lateResults = 0;
  std::vector<std::int64_t> tasksPerSlave;
};

/// Injects a result and advances the parse state.  Returns true if this
/// completion was new (false = duplicate / late result).
bool processResult(MasterState& state, const wire::ResultPayload& result) {
  std::lock_guard<std::mutex> lock(state.mutex);
  (void)state.registerTable.complete(result.vertex);
  if (state.parse.isFinished(result.vertex)) {
    ++state.lateResults;
    return false;
  }
  state.matrix->inject(result.rect, result.data);
  for (VertexId next : state.parse.finish(result.vertex)) {
    state.policy->onReady(next);
  }
  ++state.completed;
  if (state.parse.allDone()) {
    state.done = true;
  }
  state.cv.notify_all();
  return true;
}

/// One master worker thread: drives slave rank `slaveRank` (paper §V-B).
void masterWorkerLoop(msg::Comm& comm, const DpProblem& problem,
                      const RuntimeConfig& cfg, MasterState& state,
                      int slaveRank, wire::SlaveStatsPayload& slaveStats) {
  const int workerIdx = slaveRank - 1;
  log::setThreadName("master/worker-" + std::to_string(slaveRank));

  // Wait for the slave's initial idle signal (paper §V-C step a).
  {
    const msg::Message idle = comm.recv(slaveRank, wire::kTagIdle);
    (void)idle;
  }

  struct Inflight {
    VertexId vertex;
    AssignmentEpoch epoch;
  };
  std::optional<Inflight> inflight;

  for (;;) {
    if (!inflight) {
      VertexId vertex = -1;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.cv.wait(lock, [&] {
          return state.done || state.policy->queuedCount() > 0;
        });
        if (state.done) {
          break;
        }
        auto picked = state.policy->pick(workerIdx);
        if (!picked) {
          // Static policy: ready tasks exist but none owned by this
          // worker's slave — the BCW "fatal situation".  Re-check shortly.
          state.cv.wait_for(lock, std::chrono::milliseconds(1));
          continue;
        }
        vertex = *picked;
        const AssignmentEpoch epoch =
            state.registerTable.registerTask(vertex, slaveRank);
        if (cfg.enableFaultTolerance) {
          state.overtime.push(vertex, slaveRank, epoch, cfg.taskTimeout);
        }
        ++state.tasksSent;
        ++state.tasksPerSlave[static_cast<std::size_t>(workerIdx)];
        inflight = Inflight{vertex, epoch};
      }

      // Halo extraction and send happen outside the scheduler mutex; see
      // master.hpp for why this is race-free.
      wire::AssignPayload assign;
      assign.vertex = vertex;
      assign.rect = state.dag->rectOf(vertex);
      for (const CellRect& h : problem.haloFor(assign.rect)) {
        assign.halos.push_back(
            wire::HaloBlock{h, state.matrix->extract(h)});
      }
      comm.send(slaveRank, wire::kTagAssign, wire::encodeAssign(assign));
      continue;
    }

    // Wait for this slave's result; wake periodically to notice
    // cancellation by the FT thread or global completion.
    auto m = comm.recvFor(slaveRank, wire::kTagResult,
                          std::chrono::milliseconds(20));
    if (!m) {
      if (comm.mailboxClosed()) {
        // The cluster aborted (another rank failed): nothing more will
        // arrive; surface it instead of polling forever.
        throw CommError("cluster shut down while awaiting slave " +
                        std::to_string(slaveRank));
      }
      if (!state.registerTable.matches(inflight->vertex, inflight->epoch)) {
        // Cancelled (timed out and re-distributed) or completed via a
        // late duplicate processed by another worker.  Move on; if the
        // slave eventually replies, the result is handled as late.
        inflight.reset();
      }
      continue;
    }
    const wire::ResultPayload result = wire::decodeResult(m->payload);
    processResult(state, result);
    if (result.vertex == inflight->vertex) {
      inflight.reset();
    }
  }

  comm.send(slaveRank, wire::kTagEnd, {});
  const msg::Message statsMsg = comm.recv(slaveRank, wire::kTagStats);
  slaveStats = wire::decodeSlaveStats(statsMsg.payload);
}

/// Master fault-tolerance thread: re-distributes timed-out assignments
/// (paper §V-B step g, Fig 10).
void faultToleranceLoop(MasterState& state) {
  log::setThreadName("master/ft");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      if (state.done) {
        return;
      }
    }
    const auto expired = state.overtime.popExpired();
    if (!expired.empty()) {
      std::lock_guard<std::mutex> lock(state.mutex);
      for (const auto& e : expired) {
        if (state.parse.isFinished(e.task)) {
          continue;  // completed in time; stale deadline entry
        }
        if (state.registerTable.cancel(e.task, e.epoch)) {
          ++state.retries;
          state.policy->onReady(e.task);
          EASYHPS_LOG_WARN("sub-task " << e.task << " timed out on slave "
                                       << e.worker << "; re-distributing");
        }
      }
      state.cv.notify_all();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

RunStats runMaster(msg::Comm& comm, const DpProblem& problem,
                   const RuntimeConfig& cfg, Window& out) {
  log::setThreadName("master");
  EASYHPS_EXPECTS(cfg.slaveCount >= 1);
  EASYHPS_EXPECTS(comm.size() == cfg.slaveCount + 1);

  // Master DAG Data Driven Model initialization + task partition
  // (paper §V-B step a).
  const PartitionedDag dag = buildMasterDag(
      problem, cfg.processPartitionRows, cfg.processPartitionCols);
  MasterState state(dag, out);
  state.policy = makePolicy(cfg.masterPolicy, dag, cfg.slaveCount);
  state.tasksPerSlave.assign(static_cast<std::size_t>(cfg.slaveCount), 0);
  for (VertexId v : state.parse.initiallyComputable()) {
    state.policy->onReady(v);
  }
  if (state.parse.allDone()) {
    state.done = true;
  }

  std::vector<wire::SlaveStatsPayload> slaveStats(
      static_cast<std::size_t>(cfg.slaveCount));
  std::vector<std::exception_ptr> workerErrors(
      static_cast<std::size_t>(cfg.slaveCount));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.slaveCount) + 1);
    for (int s = 1; s <= cfg.slaveCount; ++s) {
      threads.emplace_back([&, s] {
        try {
          masterWorkerLoop(comm, problem, cfg, state, s,
                           slaveStats[static_cast<std::size_t>(s - 1)]);
        } catch (...) {
          // A worker failure (closed cluster, kernel bug) must not take
          // the process down; release the siblings and rethrow below.
          workerErrors[static_cast<std::size_t>(s - 1)] =
              std::current_exception();
          std::lock_guard<std::mutex> lock(state.mutex);
          state.done = true;
          state.cv.notify_all();
        }
      });
    }
    if (cfg.enableFaultTolerance) {
      threads.emplace_back([&] { faultToleranceLoop(state); });
    }
  }  // join

  for (auto& e : workerErrors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  EASYHPS_ENSURES(state.parse.allDone());

  RunStats stats;
  stats.tasks = state.tasksSent;
  stats.completedTasks = state.completed;
  stats.retries = state.retries;
  stats.lateResults = state.lateResults;
  stats.masterStalledPicks = state.policy->stalledPicks();
  stats.tasksPerSlave = state.tasksPerSlave;
  for (const auto& s : slaveStats) {
    stats.threadRestarts += s.threadRestarts;
    stats.subTaskRequeues += s.subTaskRequeues;
  }
  return stats;
}

}  // namespace easyhps

#include "easyhps/runtime/master.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "easyhps/dag/parse_state.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/sched/worker_pool.hpp"
#include "easyhps/util/clock.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps {
namespace {

/// Scheduler state shared by the master worker threads and the control
/// thread, scoped to one job.
struct MasterState {
  MasterState(JobId j, const PartitionedDag& d, Window& m)
      : jobId(j), dag(&d), parse(d.dag), matrix(&m) {}

  const JobId jobId;
  const PartitionedDag* dag;
  DagParseState parse;
  std::unique_ptr<SchedulingPolicy> policy;
  RegisterTable registerTable;
  OvertimeQueue overtime;
  Window* matrix;
  Stopwatch watch;  ///< started at job dispatch (time-to-first-block)

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool cancelled = false;

  // Statistics (guarded by mutex).
  std::int64_t tasksSent = 0;
  std::int64_t completed = 0;
  std::int64_t retries = 0;
  std::int64_t lateResults = 0;
  std::int64_t staleJobResults = 0;
  double firstBlockSeconds = -1.0;
  std::vector<std::int64_t> tasksPerSlave;
};

/// Injects a result and advances the parse state.  Returns true if this
/// completion was new (false = stale job, duplicate, or late result).
bool processResult(MasterState& state, const wire::ResultPayload& result) {
  std::lock_guard<std::mutex> lock(state.mutex);
  if (result.job != state.jobId) {
    // A reply that outlived its job (delay fault, slow slave).  Vertex ids
    // restart at 0 every job, so crediting it here would corrupt the
    // current job's matrix; discard it.
    ++state.staleJobResults;
    return false;
  }
  (void)state.registerTable.complete(result.vertex);
  if (state.parse.isFinished(result.vertex)) {
    ++state.lateResults;
    return false;
  }
  state.matrix->inject(result.rect, result.data);
  for (VertexId next : state.parse.finish(result.vertex)) {
    state.policy->onReady(next);
  }
  ++state.completed;
  if (state.firstBlockSeconds < 0.0) {
    state.firstBlockSeconds = state.watch.elapsedSeconds();
  }
  if (state.parse.allDone()) {
    state.done = true;
  }
  state.cv.notify_all();
  return true;
}

/// One master worker thread: drives slave rank `slaveRank` through one job
/// (paper §V-B).
void masterWorkerLoop(msg::Comm& comm, const DpProblem& problem,
                      const RuntimeConfig& cfg, MasterState& state,
                      int slaveRank, wire::SlaveStatsPayload& slaveStats) {
  const int workerIdx = slaveRank - 1;
  log::setThreadName("master/worker-" + std::to_string(slaveRank));

  // Wait for the slave's per-job ready signal (paper §V-C step a).
  {
    const msg::Message idle = comm.recv(slaveRank, wire::kTagIdle);
    EASYHPS_CHECK(wire::decodeJobControl(idle.payload).job == state.jobId,
                  "slave acked the wrong job");
  }

  struct Inflight {
    VertexId vertex;
    AssignmentEpoch epoch;
  };
  std::optional<Inflight> inflight;

  for (;;) {
    if (!inflight) {
      VertexId vertex = -1;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.cv.wait(lock, [&] {
          return state.done || state.policy->queuedCount() > 0;
        });
        if (state.done) {
          break;
        }
        auto picked = state.policy->pick(workerIdx);
        if (!picked) {
          // Static policy: ready tasks exist but none owned by this
          // worker's slave — the BCW "fatal situation".  Re-check shortly.
          state.cv.wait_for(lock, std::chrono::milliseconds(1));
          continue;
        }
        vertex = *picked;
        const AssignmentEpoch epoch =
            state.registerTable.registerTask(vertex, slaveRank);
        if (cfg.enableFaultTolerance) {
          state.overtime.push(vertex, slaveRank, epoch, cfg.taskTimeout);
        }
        ++state.tasksSent;
        ++state.tasksPerSlave[static_cast<std::size_t>(workerIdx)];
        inflight = Inflight{vertex, epoch};
      }

      // Halo extraction and send happen outside the scheduler mutex; see
      // master.hpp for why this is race-free.
      wire::AssignPayload assign;
      assign.job = state.jobId;
      assign.vertex = vertex;
      assign.rect = state.dag->rectOf(vertex);
      for (const CellRect& h : problem.haloFor(assign.rect)) {
        assign.halos.push_back(
            wire::HaloBlock{h, state.matrix->extract(h)});
      }
      comm.send(slaveRank, wire::kTagAssign, wire::encodeAssign(assign));
      continue;
    }

    // Wait for this slave's result; wake periodically to notice
    // cancellation or global completion.
    auto m = comm.recvFor(slaveRank, wire::kTagResult,
                          std::chrono::milliseconds(20));
    if (!m) {
      if (comm.mailboxClosed()) {
        // The cluster aborted (another rank failed): nothing more will
        // arrive; surface it instead of polling forever.
        throw CommError("cluster shut down while awaiting slave " +
                        std::to_string(slaveRank));
      }
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.done) {
          // Job finished without this reply (cancelled, or the vertex was
          // completed by a late duplicate).  The slave's eventual reply is
          // handled as late/stale by a later job.
          break;
        }
      }
      if (!state.registerTable.matches(inflight->vertex, inflight->epoch)) {
        // Cancelled (timed out and re-distributed) or completed via a
        // late duplicate processed by another worker.  Move on; if the
        // slave eventually replies, the result is handled as late.
        inflight.reset();
      }
      continue;
    }
    const wire::ResultPayload result = wire::decodeResult(m->payload);
    processResult(state, result);
    if (result.job == state.jobId && result.vertex == inflight->vertex) {
      inflight.reset();
    }
  }

  comm.send(slaveRank, wire::kTagJobEnd,
            wire::encodeJobControl({state.jobId}));
  const msg::Message statsMsg = comm.recv(slaveRank, wire::kTagStats);
  slaveStats = wire::decodeSlaveStats(statsMsg.payload);
  EASYHPS_CHECK(slaveStats.job == state.jobId,
                "slave stats from the wrong job");
}

/// Master control thread: re-distributes timed-out assignments (paper
/// §V-B step g, Fig 10) and honours the job's cancellation flag.
void controlLoop(MasterState& state, const RuntimeConfig& cfg,
                 const std::atomic<bool>* cancelRequested) {
  log::setThreadName("master/ft");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      if (state.done) {
        return;
      }
      if (cancelRequested != nullptr &&
          cancelRequested->load(std::memory_order_relaxed)) {
        state.cancelled = true;
        state.done = true;
        state.cv.notify_all();
        return;
      }
    }
    if (cfg.enableFaultTolerance) {
      const auto expired = state.overtime.popExpired();
      if (!expired.empty()) {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (const auto& e : expired) {
          if (state.parse.isFinished(e.task)) {
            continue;  // completed in time; stale deadline entry
          }
          if (state.registerTable.cancel(e.task, e.epoch)) {
            ++state.retries;
            state.policy->onReady(e.task);
            EASYHPS_LOG_WARN("sub-task " << e.task << " timed out on slave "
                                         << e.worker << "; re-distributing");
          }
        }
        state.cv.notify_all();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

MasterJobOutcome runMasterJob(msg::Comm& comm, const RuntimeConfig& cfg,
                              const ServiceJob& job) {
  EASYHPS_EXPECTS(cfg.slaveCount >= 1);
  EASYHPS_EXPECTS(comm.size() == cfg.slaveCount + 1);
  EASYHPS_EXPECTS(job.problem != nullptr && job.out != nullptr);

  const msg::TrafficSnapshot traffic0 = comm.traffic();

  // Bracket the job: every slave resets its per-job state on JobStart.
  for (int s = 1; s <= cfg.slaveCount; ++s) {
    comm.send(s, wire::kTagJobStart, wire::encodeJobControl({job.id}));
  }

  // Master DAG Data Driven Model initialization + task partition
  // (paper §V-B step a).
  const PartitionedDag dag = buildMasterDag(
      *job.problem, cfg.processPartitionRows, cfg.processPartitionCols);
  MasterState state(job.id, dag, *job.out);
  state.policy = makePolicy(cfg.masterPolicy, dag, cfg.slaveCount);
  state.tasksPerSlave.assign(static_cast<std::size_t>(cfg.slaveCount), 0);
  for (VertexId v : state.parse.initiallyComputable()) {
    state.policy->onReady(v);
  }
  if (state.parse.allDone()) {
    state.done = true;
  }

  std::vector<wire::SlaveStatsPayload> slaveStats(
      static_cast<std::size_t>(cfg.slaveCount));
  std::vector<std::exception_ptr> workerErrors(
      static_cast<std::size_t>(cfg.slaveCount));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.slaveCount) + 1);
    for (int s = 1; s <= cfg.slaveCount; ++s) {
      threads.emplace_back([&, s] {
        try {
          masterWorkerLoop(comm, *job.problem, cfg, state, s,
                           slaveStats[static_cast<std::size_t>(s - 1)]);
        } catch (...) {
          // A worker failure (closed cluster, kernel bug) must not take
          // the process down; release the siblings and rethrow below.
          workerErrors[static_cast<std::size_t>(s - 1)] =
              std::current_exception();
          std::lock_guard<std::mutex> lock(state.mutex);
          state.done = true;
          state.cv.notify_all();
        }
      });
    }
    if (cfg.enableFaultTolerance || job.cancelRequested != nullptr) {
      threads.emplace_back(
          [&] { controlLoop(state, cfg, job.cancelRequested); });
    }
  }  // join

  for (auto& e : workerErrors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  if (!state.cancelled) {
    EASYHPS_ENSURES(state.parse.allDone());
  }

  MasterJobOutcome outcome;
  outcome.cancelled = state.cancelled;
  outcome.timeToFirstBlockSeconds = state.firstBlockSeconds;
  RunStats& stats = outcome.stats;
  stats.elapsedSeconds = state.watch.elapsedSeconds();
  stats.tasks = state.tasksSent;
  stats.completedTasks = state.completed;
  stats.retries = state.retries;
  stats.lateResults = state.lateResults;
  stats.staleJobResults = state.staleJobResults;
  stats.masterStalledPicks = state.policy->stalledPicks();
  stats.tasksPerSlave = state.tasksPerSlave;
  for (const auto& s : slaveStats) {
    stats.threadRestarts += s.threadRestarts;
    stats.subTaskRequeues += s.subTaskRequeues;
  }
  const msg::TrafficSnapshot traffic1 = comm.traffic();
  stats.messages = traffic1.messages - traffic0.messages;
  stats.bytes = traffic1.bytes - traffic0.bytes;
  return outcome;
}

void runMasterService(msg::Comm& comm, const RuntimeConfig& cfg,
                      JobFeed& feed) {
  log::setThreadName("master");
  EASYHPS_EXPECTS(cfg.slaveCount >= 1);
  EASYHPS_EXPECTS(comm.size() == cfg.slaveCount + 1);

  while (std::optional<ServiceJob> job = feed.nextJob()) {
    MasterJobOutcome outcome = runMasterJob(comm, cfg, *job);
    feed.jobFinished(job->id, std::move(outcome));
  }
  for (int s = 1; s <= cfg.slaveCount; ++s) {
    comm.send(s, wire::kTagEnd, {});
  }
}

}  // namespace easyhps

#include "easyhps/runtime/slave.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "easyhps/dag/parse_state.hpp"
#include "easyhps/sched/worker_pool.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps {
namespace {

/// Shared state of one slave worker pool (one assignment's lifetime).
struct PoolState {
  std::mutex mutex;
  std::condition_variable cv;
  DagParseState* parse = nullptr;
  SchedulingPolicy* policy = nullptr;
  OvertimeQueue overtime;
  bool done = false;
  std::int64_t threadRestarts = 0;
  std::int64_t subTaskRequeues = 0;
  std::exception_ptr error;  // first non-injected kernel failure
};

/// Dispatch helper so the pool code is storage-agnostic while the problem
/// kernels stay devirtualized per storage type.
void computeOn(const DpProblem& p, Window& w, const CellRect& rect) {
  p.computeBlock(w, rect);
}
void computeOn(const DpProblem& p, SparseWindow& w, const CellRect& rect) {
  p.computeBlockSparse(w, rect);
}

/// Computing-thread work loop: pick → compute → finish, until the pool is
/// done.  Returns normally only when done.
template <typename WindowT>
void computingThreadLoop(int threadIdx, const DpProblem& problem,
                         const RuntimeConfig& cfg, fault::FaultPlan& plan,
                         int slaveRank, const wire::AssignPayload& assign,
                         const PartitionedDag& slaveDag, WindowT& local,
                         PoolState& pool) {
  for (;;) {
    VertexId sub = -1;
    {
      std::unique_lock<std::mutex> lock(pool.mutex);
      pool.cv.wait(lock, [&] {
        return pool.done || pool.policy->queuedCount() > 0;
      });
      if (pool.done) {
        return;
      }
      auto picked = pool.policy->pick(threadIdx);
      if (!picked) {
        // Static policy: tasks queued but none owned by this thread.
        // Wait for state to change rather than spinning.
        pool.cv.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      sub = *picked;
      pool.overtime.push(sub, threadIdx, 0, cfg.subTaskTimeout);
    }

    try {
      if (plan.consumeThreadCrash(assign.vertex, slaveRank, sub)) {
        throw fault::InjectedThreadCrash();
      }
      computeOn(problem, local,
                slaveVertexRect(slaveDag, assign.rect, sub));
    } catch (const fault::InjectedThreadCrash&) {
      // Thread-level fault tolerance (paper §V-C step h): "restart" the
      // computing thread by re-entering the loop after re-queueing the
      // failed sub-sub-task.
      std::lock_guard<std::mutex> lock(pool.mutex);
      ++pool.threadRestarts;
      ++pool.subTaskRequeues;
      pool.policy->onReady(sub);
      pool.cv.notify_all();
      EASYHPS_LOG_WARN("computing thread " << threadIdx
                                           << " crashed on sub-task " << sub
                                           << "; restarting");
      continue;
    } catch (...) {
      // A genuine kernel failure (not injected): abort this pool cleanly
      // and surface the exception to the rank (→ cluster abort) instead
      // of terminating the process from a detached thread.
      std::lock_guard<std::mutex> lock(pool.mutex);
      if (!pool.error) {
        pool.error = std::current_exception();
      }
      pool.done = true;
      pool.cv.notify_all();
      return;
    }

    {
      std::lock_guard<std::mutex> lock(pool.mutex);
      for (VertexId next : pool.parse->finish(sub)) {
        pool.policy->onReady(next);
      }
      if (pool.parse->allDone()) {
        pool.done = true;
      }
    }
    pool.cv.notify_all();
  }
}

/// Runs the slave worker pool over any window storage.
template <typename WindowT>
std::vector<Score> runPool(const DpProblem& problem, const RuntimeConfig& cfg,
                           fault::FaultPlan& plan, int slaveRank,
                           const wire::AssignPayload& assign, WindowT& local,
                           wire::SlaveStatsPayload& stats) {
  // Slave DAG Data Driven Model initialization (paper §V-C steps c-d).
  const PartitionedDag slaveDag =
      buildSlaveDag(problem, assign.rect, cfg.threadPartitionRows,
                    cfg.threadPartitionCols);
  DagParseState parse(slaveDag.dag);
  auto policy = makePolicy(cfg.slavePolicy, slaveDag, cfg.threadsPerSlave);

  for (const wire::HaloBlock& h : assign.halos) {
    local.inject(h.rect, h.data);
  }

  PoolState pool;
  pool.parse = &parse;
  pool.policy = policy.get();
  for (VertexId v : parse.initiallyComputable()) {
    policy->onReady(v);
  }
  if (parse.allDone()) {
    pool.done = true;  // degenerate: empty slave DAG
  }

  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.threadsPerSlave));
    for (int t = 0; t < cfg.threadsPerSlave; ++t) {
      threads.emplace_back([&, t] {
        log::setThreadName("slave-" + std::to_string(slaveRank) + "/worker-" +
                           std::to_string(t));
        computingThreadLoop(t, problem, cfg, plan, slaveRank, assign,
                            slaveDag, local, pool);
      });
    }
  }  // join: pool.done was set by the thread finishing the last sub-task

  if (pool.error) {
    std::rethrow_exception(pool.error);
  }
  EASYHPS_ENSURES(parse.allDone());
  stats.threadRestarts += pool.threadRestarts;
  stats.subTaskRequeues += pool.subTaskRequeues;
  ++stats.tasksExecuted;
  return local.extract(assign.rect);
}

}  // namespace

std::vector<Score> executeAssignment(const DpProblem& problem,
                                     const RuntimeConfig& cfg,
                                     fault::FaultPlan& plan, int slaveRank,
                                     const wire::AssignPayload& assign,
                                     wire::SlaveStatsPayload& stats) {
  const auto halos = problem.haloFor(assign.rect);
  if (cfg.sparseSlaveWindows) {
    // Memory-bounded path: store only the block + halo segments.
    std::vector<CellRect> segments{assign.rect};
    segments.insert(segments.end(), halos.begin(), halos.end());
    SparseWindow local(std::move(segments), problem.boundaryFn());
    return runPool(problem, cfg, plan, slaveRank, assign, local, stats);
  }
  Window local(boundingBox(assign.rect, halos), problem.boundaryFn());
  return runPool(problem, cfg, plan, slaveRank, assign, local, stats);
}

namespace {

/// Runs one job on this slave rank: idle-ack, then assignments until the
/// master brackets the job with JobEnd.
void runSlaveJob(msg::Comm& comm, const RuntimeConfig& cfg, JobId job,
                 const DpProblem& problem, fault::FaultPlan& plan) {
  // Fresh per-job counters: each job gets its own Stats report.
  wire::SlaveStatsPayload stats;
  stats.job = job;

  // Step a: announce readiness for this job.
  comm.send(0, wire::kTagIdle, wire::encodeJobControl({job}));

  for (;;) {
    // Step b: wait for an assignment or the job-end bracket.
    msg::Message m = comm.recv(0, msg::kAnyTag);
    if (m.tag == wire::kTagJobEnd) {
      EASYHPS_CHECK(wire::decodeJobControl(m.payload).job == job,
                    "slave received JobEnd for the wrong job");
      break;
    }
    EASYHPS_CHECK(m.tag == wire::kTagAssign,
                  "slave received unexpected tag " + std::to_string(m.tag));
    const wire::AssignPayload assign = wire::decodeAssign(m.payload);
    EASYHPS_CHECK(assign.job == job,
                  "slave received assignment for the wrong job");

    if (plan.consumeBlackhole(assign.vertex, comm.rank())) {
      EASYHPS_LOG_WARN("blackhole fault: dropping sub-task "
                       << assign.vertex);
      continue;  // simulate a node that lost the task
    }

    const auto delay = plan.consumeDelay(assign.vertex, comm.rank());

    wire::ResultPayload result;
    result.job = job;
    result.vertex = assign.vertex;
    result.rect = assign.rect;
    result.data =
        executeAssignment(problem, cfg, plan, comm.rank(), assign, stats);

    if (delay.count() > 0) {
      EASYHPS_LOG_WARN("delay fault: holding result of sub-task "
                       << assign.vertex << " for " << delay.count() << "ms");
      std::this_thread::sleep_for(delay);
    }

    // Step: reply with the computed block (paper §V-B step e).  A result
    // held past its job's end still carries the job id, so the master
    // discards it instead of crediting it to a later job.
    comm.send(0, wire::kTagResult, wire::encodeResult(result));
  }

  // Per-job slave-side counters for the master's RunStats.
  comm.send(0, wire::kTagStats, wire::encodeSlaveStats(stats));
}

}  // namespace

void runSlaveService(msg::Comm& comm, const RuntimeConfig& cfg,
                     const SlaveJobDirectory& directory) {
  log::setThreadName("slave-" + std::to_string(comm.rank()));

  for (;;) {
    // Outer loop: a JobStart opens the next job; End retires the rank.
    msg::Message m = comm.recv(0, msg::kAnyTag);
    if (m.tag == wire::kTagEnd) {
      return;
    }
    EASYHPS_CHECK(m.tag == wire::kTagJobStart,
                  "slave expected JobStart, got tag " + std::to_string(m.tag));
    const JobId job = wire::decodeJobControl(m.payload).job;
    const SlaveJobDirectory::Entry entry = directory.find(job);
    EASYHPS_CHECK(entry.problem != nullptr && entry.plan != nullptr,
                  "job directory returned a null entry");
    runSlaveJob(comm, cfg, job, *entry.problem, *entry.plan);
  }
}

}  // namespace easyhps

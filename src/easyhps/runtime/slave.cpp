#include "easyhps/runtime/slave.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "easyhps/dag/fragment.hpp"
#include "easyhps/dag/parse_state.hpp"
#include "easyhps/sched/worker_pool.hpp"
#include "easyhps/store/block_store.hpp"
#include "easyhps/util/log.hpp"

namespace easyhps {
namespace {

/// Shared state of one slave worker pool (one assignment's lifetime).
struct PoolState {
  std::mutex mutex;
  std::condition_variable cv;
  DagParseState* parse = nullptr;
  SchedulingPolicy* policy = nullptr;
  OvertimeQueue overtime;
  bool done = false;
  std::int64_t threadRestarts = 0;
  std::int64_t subTaskRequeues = 0;
  std::exception_ptr error;  // first non-injected kernel failure

  // Streaming pipeline (assign.pendingRects non-empty).  The tracker and
  // the gated list are guarded by `mutex`; `comm` is only non-null when
  // the assignment streams (producer emission) or the rank has a comm at
  // all (runSlaveJob), and msg::Comm sends are thread-safe.
  bool streaming = false;
  msg::Comm* comm = nullptr;
  HaloFragmentTracker tracker;  ///< outstanding pending-halo coverage
  struct GatedNode {
    VertexId node = -1;
    std::vector<CellRect> reads;  ///< haloFor(sub-rect) of the node
  };
  std::vector<GatedNode> haloGated;  ///< DAG-ready but waiting on fragments
  bool abandoned = false;            ///< fragment starvation: give up
  std::atomic<std::int64_t> fragmentsSent{0};
  /// Set by the fragment pump when the last pending fragment lands
  /// (steady_clock micros since the pool started): the per-block
  /// "first-compute-to-full-halo overlap".
  std::int64_t fullHaloMicros = -1;
};

/// Under pool.mutex: a DAG-ready node either enters the scheduler or, if
/// any of its halo reads still overlaps outstanding pending fragments,
/// parks in the gated list until the pump covers them.  Reads *inside*
/// the block (sibling sub-blocks) never intersect the tracker — only the
/// assignment's pendingRects are ever outstanding.
void fireOrGate(PoolState& pool, const DpProblem& problem,
                const PartitionedDag& slaveDag, const CellRect& blockRect,
                VertexId node) {
  if (pool.streaming && !pool.tracker.done()) {
    auto reads = problem.haloFor(slaveVertexRect(slaveDag, blockRect, node));
    for (const CellRect& r : reads) {
      if (pool.tracker.blocked(r)) {
        pool.haloGated.push_back({node, std::move(reads)});
        return;
      }
    }
  }
  pool.policy->onReady(node);
}

/// Under pool.mutex: re-checks every gated node after new coverage and
/// releases the unblocked ones.  Returns true if anything fired.
bool releaseUngated(PoolState& pool) {
  bool fired = false;
  for (auto it = pool.haloGated.begin(); it != pool.haloGated.end();) {
    bool stillBlocked = false;
    for (const CellRect& r : it->reads) {
      if (pool.tracker.blocked(r)) {
        stillBlocked = true;
        break;
      }
    }
    if (stillBlocked) {
      ++it;
      continue;
    }
    pool.policy->onReady(it->node);
    it = pool.haloGated.erase(it);
    fired = true;
  }
  return fired;
}

/// Dispatch helper so the pool code is storage-agnostic while the problem
/// kernels stay devirtualized per storage type.
void computeOn(const DpProblem& p, Window& w, const CellRect& rect) {
  p.computeBlock(w, rect);
}
void computeOn(const DpProblem& p, SparseWindow& w, const CellRect& rect) {
  p.computeBlockSparse(w, rect);
}

/// Computing-thread work loop: pick → compute → finish, until the pool is
/// done.  Returns normally only when done.
template <typename WindowT>
void computingThreadLoop(int threadIdx, const DpProblem& problem,
                         const RuntimeConfig& cfg, fault::FaultPlan& plan,
                         int slaveRank, const wire::AssignPayload& assign,
                         const PartitionedDag& slaveDag, WindowT& local,
                         PoolState& pool) {
  for (;;) {
    VertexId sub = -1;
    {
      std::unique_lock<std::mutex> lock(pool.mutex);
      pool.cv.wait(lock, [&] {
        return pool.done || pool.policy->queuedCount() > 0;
      });
      if (pool.done) {
        return;
      }
      auto picked = pool.policy->pick(threadIdx);
      if (!picked) {
        // Static policy: tasks queued but none owned by this thread.
        // Wait for state to change rather than spinning.
        pool.cv.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      sub = *picked;
      pool.overtime.push(sub, threadIdx, 0, cfg.subTaskTimeout);
    }

    const CellRect subRect = slaveVertexRect(slaveDag, assign.rect, sub);
    try {
      if (plan.consumeThreadCrash(assign.vertex, slaveRank, sub)) {
        throw fault::InjectedThreadCrash();
      }
      computeOn(problem, local, subRect);
    } catch (const fault::InjectedThreadCrash&) {
      // Thread-level fault tolerance (paper §V-C step h): "restart" the
      // computing thread by re-entering the loop after re-queueing the
      // failed sub-sub-task.
      std::lock_guard<std::mutex> lock(pool.mutex);
      ++pool.threadRestarts;
      ++pool.subTaskRequeues;
      pool.policy->onReady(sub);
      pool.cv.notify_all();
      EASYHPS_LOG_WARN("computing thread " << threadIdx
                                           << " crashed on sub-task " << sub
                                           << "; restarting");
      continue;
    } catch (...) {
      // A genuine kernel failure (not injected): abort this pool cleanly
      // and surface the exception to the rank (→ cluster abort) instead
      // of terminating the process from a detached thread.
      std::lock_guard<std::mutex> lock(pool.mutex);
      if (!pool.error) {
        pool.error = std::current_exception();
      }
      pool.done = true;
      pool.cv.notify_all();
      return;
    }

    // Producer side of the streaming pipeline: the successor-facing
    // boundary cells this sub-block just produced leave *now*, not at
    // block completion.  Reading them back is race-free — this thread
    // wrote them, and sibling sub-blocks write disjoint cells.
    if (!assign.streamRects.empty() && pool.comm != nullptr) {
      for (const CellRect& out : assign.streamRects) {
        const CellRect inter = intersectRects(out, subRect);
        if (inter.cellCount() <= 0) {
          continue;
        }
        std::vector<Score> cells = local.extract(inter);
        const std::uint64_t sum =
            wire::blockChecksum(assign.vertex, inter, cells);
        pool.comm->send(0, wire::kTagData,
                        wire::encodeHaloPartial({assign.job, assign.vertex,
                                                 inter, sum,
                                                 std::move(cells)}));
        pool.fragmentsSent.fetch_add(1, std::memory_order_relaxed);
      }
    }

    {
      std::lock_guard<std::mutex> lock(pool.mutex);
      for (VertexId next : pool.parse->finish(sub)) {
        fireOrGate(pool, problem, slaveDag, assign.rect, next);
      }
      if (pool.parse->allDone()) {
        pool.done = true;
      }
    }
    pool.cv.notify_all();
  }
}

/// Copies sub-rectangle `sub` out of a row-major buffer covering `rect`.
std::vector<Score> extractSub(const CellRect& rect, std::span<const Score> data,
                              const CellRect& sub) {
  EASYHPS_EXPECTS(sub.row0 >= rect.row0 && sub.rowEnd() <= rect.rowEnd());
  EASYHPS_EXPECTS(sub.col0 >= rect.col0 && sub.colEnd() <= rect.colEnd());
  std::vector<Score> out(static_cast<std::size_t>(sub.cellCount()));
  for (std::int64_t r = 0; r < sub.rows; ++r) {
    const auto srcOff = static_cast<std::size_t>(
        (sub.row0 + r - rect.row0) * rect.cols + (sub.col0 - rect.col0));
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(srcOff),
              data.begin() + static_cast<std::ptrdiff_t>(srcOff + sub.cols),
              out.begin() + static_cast<std::ptrdiff_t>(r * sub.cols));
  }
  return out;
}

/// Marks the pool abandoned (fragment starvation / cluster shutdown) and
/// releases every worker.  The assignment's overtime deadline on the
/// master re-distributes the block.
void abandonPool(PoolState& pool) {
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    pool.abandoned = true;
    pool.done = true;
  }
  pool.cv.notify_all();
}

/// The consumer side of the streaming pipeline, run on the pool's calling
/// thread while the worker threads compute: drains kTagHaloPartial
/// forwards from the master, injects the not-yet-covered pieces into the
/// local window and releases gated sub-blocks.  Exits once the pending
/// halo is fully covered (recording the compute/stream overlap) or the
/// pool finished/aborted first.
///
/// Starvation recovery: no fragment progress for `cfg.dataFetchTimeout`
/// (dead producer, chaos-dropped forwards) sends the master a
/// FragmentResend asking for whatever coverage it can currently serve;
/// after cfg.maxRecoveryRefetches silent rounds the assignment is abandoned —
/// bounded wait, never a hang.
template <typename WindowT>
void fragmentPump(const RuntimeConfig& cfg, const wire::AssignPayload& assign,
                  WindowT& local, PoolState& pool,
                  wire::SlaveStatsPayload& stats,
                  std::chrono::steady_clock::time_point poolStart) {
  int stalledRounds = 0;
  auto lastProgress = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(pool.mutex);
      if (pool.tracker.done()) {
        pool.fullHaloMicros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - poolStart)
                .count();
        return;
      }
      if (pool.done) {
        return;
      }
    }
    auto m = pool.comm->recvFor(msg::kAnySource, wire::kTagHaloPartial,
                                std::chrono::milliseconds(2));
    if (!m) {
      if (pool.comm->mailboxClosed()) {
        abandonPool(pool);
        return;
      }
      if (std::chrono::steady_clock::now() - lastProgress >=
          cfg.dataFetchTimeout) {
        if (++stalledRounds > cfg.maxRecoveryRefetches) {
          EASYHPS_LOG_WARN("slave fragment pump starved on sub-task "
                           << assign.vertex << "; abandoning assignment");
          abandonPool(pool);
          return;
        }
        ++stats.fragmentResends;
        pool.comm->send(
            0, wire::kTagData,
            wire::encodeFragmentResend({assign.job, assign.vertex}));
        lastProgress = std::chrono::steady_clock::now();
      }
      continue;
    }
    wire::ScoreCells cells;
    wire::HaloPartialPayload frag;
    try {
      frag = wire::decodeHaloPartial(m->payload, cells);
    } catch (const DecodeError&) {
      ++stats.decodeErrors;  // corrupted length/kind field: drop, resend
      continue;              // machinery re-covers the loss
    }
    if (frag.job != assign.job) {
      continue;  // chaos-delayed fragment of an earlier job
    }
    if (wire::blockChecksum(frag.vertex, frag.rect, cells.cells()) !=
        frag.checksum) {
      // Corrupt fragment cells: injecting them would poison the local
      // window.  Drop; the stall-resend path re-fetches the coverage.
      ++stats.corruptPayloads;
      continue;
    }
    std::vector<CellRect> pieces;
    {
      std::lock_guard<std::mutex> lock(pool.mutex);
      pieces = pool.tracker.intersectOutstanding(frag.rect);
    }
    if (pieces.empty()) {
      continue;  // duplicate (resend/chaos): already covered, never rewrite
    }
    // Inject outside the mutex: the pump is the only writer of pending
    // cells, and no compute thread reads them until the tracker coverage
    // flips below.
    for (const CellRect& piece : pieces) {
      local.inject(piece, extractSub(frag.rect, cells.cells(), piece));
      ++stats.fragmentsApplied;
    }
    {
      std::lock_guard<std::mutex> lock(pool.mutex);
      pool.tracker.fill(frag.rect);
      releaseUngated(pool);
    }
    pool.cv.notify_all();
    lastProgress = std::chrono::steady_clock::now();
    stalledRounds = 0;
  }
}

/// Runs the slave worker pool over any window storage.
template <typename WindowT>
std::vector<Score> runPool(const DpProblem& problem, const RuntimeConfig& cfg,
                           fault::FaultPlan& plan, int slaveRank,
                           const wire::AssignPayload& assign, WindowT& local,
                           wire::SlaveStatsPayload& stats, msg::Comm* comm,
                           bool* abandoned) {
  // Slave DAG Data Driven Model initialization (paper §V-C steps c-d).
  const PartitionedDag slaveDag =
      buildSlaveDag(problem, assign.rect, cfg.threadPartitionRows,
                    cfg.threadPartitionCols);
  DagParseState parse(slaveDag.dag);
  auto policy = makePolicy(cfg.slavePolicy, slaveDag, cfg.threadsPerSlave);

  for (const wire::HaloBlock& h : assign.halos) {
    local.inject(h.rect, h.data);
  }

  PoolState pool;
  pool.parse = &parse;
  pool.policy = policy.get();
  pool.comm = comm;
  pool.streaming = !assign.pendingRects.empty();
  EASYHPS_CHECK(!pool.streaming || comm != nullptr,
                "streamed assignment requires a comm for the fragment pump");
  for (const CellRect& r : assign.pendingRects) {
    // Quarantine before any compute thread exists: DCHECK builds trip on
    // a read of a cell whose fragment has not landed yet.
    local.quarantine(r);
    pool.tracker.expect(r);
  }
  for (VertexId v : parse.initiallyComputable()) {
    fireOrGate(pool, problem, slaveDag, assign.rect, v);
  }
  if (parse.allDone()) {
    pool.done = true;  // degenerate: empty slave DAG
  }

  const auto poolStart = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.threadsPerSlave));
    for (int t = 0; t < cfg.threadsPerSlave; ++t) {
      threads.emplace_back([&, t] {
        log::setThreadName("slave-" + std::to_string(slaveRank) + "/worker-" +
                           std::to_string(t));
        computingThreadLoop(t, problem, cfg, plan, slaveRank, assign,
                            slaveDag, local, pool);
      });
    }
    if (pool.streaming) {
      // The calling thread pumps fragments while the ready corner of the
      // block already computes — the paper's cross-level overlap.
      fragmentPump(cfg, assign, local, pool, stats, poolStart);
    }
  }  // join: pool.done was set by the thread finishing the last sub-task

  if (pool.error) {
    std::rethrow_exception(pool.error);
  }
  stats.fragmentsSent += pool.fragmentsSent.load(std::memory_order_relaxed);
  if (pool.abandoned) {
    if (abandoned != nullptr) {
      *abandoned = true;
    }
    return {};
  }
  EASYHPS_ENSURES(parse.allDone());
  if (pool.fullHaloMicros >= 0) {
    stats.streamOverlapMicros += pool.fullHaloMicros;
  }
  stats.threadRestarts += pool.threadRestarts;
  stats.subTaskRequeues += pool.subTaskRequeues;
  ++stats.tasksExecuted;
  return local.extract(assign.rect);
}

}  // namespace

std::vector<Score> executeAssignment(const DpProblem& problem,
                                     const RuntimeConfig& cfg,
                                     fault::FaultPlan& plan, int slaveRank,
                                     const wire::AssignPayload& assign,
                                     wire::SlaveStatsPayload& stats,
                                     msg::Comm* comm, bool* abandoned) {
  const auto halos = problem.haloFor(assign.rect);
  if (cfg.sparseSlaveWindows) {
    // Memory-bounded path: store only the block + halo segments.
    std::vector<CellRect> segments{assign.rect};
    segments.insert(segments.end(), halos.begin(), halos.end());
    SparseWindow local(std::move(segments), problem.boundaryFn());
    return runPool(problem, cfg, plan, slaveRank, assign, local, stats, comm,
                   abandoned);
  }
  Window local(boundingBox(assign.rect, halos), problem.boundaryFn());
  return runPool(problem, cfg, plan, slaveRank, assign, local, stats, comm,
                 abandoned);
}

namespace {

/// Counters shared between a rank's data-plane thread and its job loop
/// (the job loop reports per-job deltas in the Stats payload).
struct DataPlaneCounters {
  std::atomic<std::int64_t> halosServed{0};
  std::atomic<std::int64_t> decodeErrors{0};  ///< malformed data payloads
};

/// The slave's data-plane thread: serves peer halo requests and master
/// block fetches straight from the rank's BlockStore, for the whole
/// lifetime of the service (a slave can be asked for a block of job J
/// while its main loop already computes job J's next assignment — or,
/// during job-end assembly, while it idles).  Compute never blocks on
/// serving and vice versa.
void dataPlaneLoop(msg::Comm& comm, store::BlockStore& store,
                   DataPlaneCounters& counters, const std::atomic<bool>& stop,
                   const std::atomic<bool>& dead) {
  log::setThreadName("slave-" + std::to_string(comm.rank()) + "/data");
  // Each reply allocates its own cell buffer: the encoder hands the vector
  // to the payload as a refcounted body that the receiver may still be
  // reading after this loop moves on, so the buffer cannot be reused.
  while (!stop.load(std::memory_order_acquire)) {
    auto m = comm.recvFor(msg::kAnySource, wire::kTagData,
                          std::chrono::milliseconds(2));
    if (!m) {
      if (comm.mailboxClosed()) {
        return;
      }
      continue;
    }
    if (dead.load(std::memory_order_acquire)) {
      continue;  // kSlaveDeath: swallow every request, answer nothing —
                 // peers time out, heartbeats go unanswered, the master
                 // quarantines this rank.
    }
    try {
      switch (wire::peekDataKind(m->payload)) {
        case wire::DataMsgKind::kHaloRequest: {
          const auto req = wire::decodeHaloRequest(m->payload);
          wire::HaloDataPayload reply;
          reply.job = req.job;
          reply.rect = req.rect;
          reply.found =
              store.extractInto(req.job, req.vertex, req.rect, reply.data);
          if (reply.found) {
            // End-to-end: the requester re-derives this from the received
            // bytes and treats a mismatch as a fetch failure.
            reply.checksum = wire::blockChecksum(-1, reply.rect, reply.data);
          }
          // A miss (evicted block) is answered found=false; the requester
          // falls back to the master, whose spill copy landed before this
          // reply could be sent.
          comm.send(m->source, wire::kTagHaloData,
                    wire::encodeHaloData(std::move(reply)));
          counters.halosServed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::DataMsgKind::kBlockFetch: {
          const auto req = wire::decodeBlockFetch(m->payload);
          wire::BlockDataPayload reply;
          reply.job = req.job;
          reply.vertex = req.vertex;
          reply.rect = req.rect;
          reply.found =
              store.extractInto(req.job, req.vertex, req.rect, reply.data);
          if (reply.found) {
            // The stored completion-time checksum, not a re-hash of what
            // the store returned: in-store corruption stays detectable.
            reply.checksum =
                store.checksumOf(req.job, req.vertex).value_or(0);
          }
          comm.send(m->source, wire::kTagBlockData,
                    wire::encodeBlockData(std::move(reply)));
          break;
        }
        case wire::DataMsgKind::kBlockSpill:
          // Spills only target the master; a misrouted one is dropped.
          EASYHPS_LOG_WARN("slave " << comm.rank()
                                    << " received a misrouted BlockSpill");
          break;
        case wire::DataMsgKind::kHaloPartial:
        case wire::DataMsgKind::kFragmentResend:
          // Pipeline traffic only targets the master's data loop (forwards
          // to consumers come back under kTagHaloPartial, not kTagData); a
          // misrouted one is dropped.
          EASYHPS_LOG_WARN("slave "
                           << comm.rank()
                           << " received a misrouted pipeline message");
          break;
        case wire::DataMsgKind::kPing:
          // Liveness probe: answered here so the reply reflects the data
          // plane actually servicing traffic, busy compute pool or not.
          comm.send(m->source, wire::kTagHealthAck,
                    wire::encodeHealthAck(
                        {wire::decodeHealthPing(m->payload).seq}));
          break;
      }
    } catch (const DecodeError& e) {
      // Malformed data payload (corruption in a length/kind field): count
      // and drop — the sender's bounded retry machinery covers the loss.
      counters.decodeErrors.fetch_add(1, std::memory_order_relaxed);
      EASYHPS_LOG_WARN("slave " << comm.rank()
                                << " dropped undecodable data message: "
                                << e.what());
    }
  }
}

/// Receives a halo reply from `owner` matching (job, rect), waiting at
/// most `timeout`.  Replies that do not match belong to an *earlier*
/// request of ours that timed out (the replier was slow or the traffic
/// chaos-delayed) — each request eventually draws at most one reply, so a
/// mismatch is discarded and the wait continues.  nullopt = timeout or
/// cluster shutdown.
std::optional<wire::HaloDataPayload> recvHaloFor(
    msg::Comm& comm, int owner, JobId job, const CellRect& rect,
    std::chrono::milliseconds timeout, wire::SlaveStatsPayload& stats) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return std::nullopt;
    }
    auto reply = comm.recvFor(
        owner, wire::kTagHaloData,
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!reply) {
      if (comm.mailboxClosed()) {
        return std::nullopt;
      }
      continue;
    }
    wire::HaloDataPayload halo;
    try {
      halo = wire::decodeHaloData(reply->payload);
    } catch (const DecodeError&) {
      ++stats.decodeErrors;
      continue;  // corrupted length field: wait out the deadline
    }
    if (halo.job != job || !(halo.rect == rect)) {
      continue;  // reply to an earlier, timed-out request of ours
    }
    if (halo.found &&
        wire::blockChecksum(-1, halo.rect, halo.data) != halo.checksum) {
      // Corrupt halo cells: treat like a fetch failure — the caller's
      // bounded retry/fallback ladder escalates.
      ++stats.corruptPayloads;
      return std::nullopt;
    }
    return halo;
  }
}

/// Resolves an assignment's halo fetch instructions into halo cell data:
/// own store first (zero wire bytes — the locality policy's win), then the
/// owning peer, then the master (unknown owner, suspect owner, or peer
/// miss after eviction).  Every wire fetch is bounded by
/// `cfg.dataFetchTimeout` so a dead peer costs a timeout, not a hang; if
/// even the master fallback stays silent for cfg.maxRecoveryRefetches rounds
/// (rank 0 unreachable — the cluster is aborting), returns false and the
/// caller abandons the assignment (its deadline re-distributes it).
bool fetchHalos(msg::Comm& comm, const RuntimeConfig& cfg,
                store::BlockStore& store, wire::AssignPayload& assign,
                wire::SlaveStatsPayload& stats) {
  for (const wire::HaloSource& src : assign.sources) {
    if (src.rect.cellCount() <= 0) {
      assign.halos.push_back(wire::HaloBlock{src.rect, {}});
      continue;
    }
    if (src.vertex >= 0) {
      if (auto cells = store.extract(assign.job, src.vertex, src.rect)) {
        ++stats.haloLocalHits;
        assign.halos.push_back(wire::HaloBlock{src.rect, std::move(*cells)});
        continue;
      }
    }
    bool got = false;
    if (src.owner != 0 && src.owner != comm.rank()) {
      const auto fetchStart = std::chrono::steady_clock::now();
      comm.send(src.owner, wire::kTagData,
                wire::encodeHaloRequest({assign.job, src.vertex, src.rect}));
      auto halo = recvHaloFor(comm, src.owner, assign.job, src.rect,
                              cfg.dataFetchTimeout, stats);
      if (halo && halo->found) {
        ++stats.haloPeerFetches;
        // Timed link sample for the master's bandwidth estimator (only
        // successful pulls: a timeout says "dead", not "slow link").
        stats.peerFetchBytes +=
            static_cast<std::uint64_t>(halo->data.size()) * sizeof(Score);
        stats.peerFetchMicros +=
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - fetchStart)
                .count();
        assign.halos.push_back(
            wire::HaloBlock{src.rect, std::move(halo->data)});
        got = true;
      }
      // Miss (evicted block, found=false) or a dead/silent peer: fall
      // back to the master either way.
    }
    for (int attempt = 0; !got && attempt < cfg.maxRecoveryRefetches;
         ++attempt) {
      // Master fallback: rank 0's matrix holds the boundary cells of
      // every acked block (and spilled blocks in full); anything thicker
      // the master pulls lazily from the owning rank, keyed by
      // src.vertex.  found is always true for the current job, so only a
      // dropped (or corrupt-dropped) request/reply leaves us retrying.
      comm.send(0, wire::kTagData,
                wire::encodeHaloRequest({assign.job, src.vertex, src.rect}));
      auto halo = recvHaloFor(comm, 0, assign.job, src.rect,
                              cfg.dataFetchTimeout, stats);
      if (halo && halo->found) {
        ++stats.haloMasterFetches;
        assign.halos.push_back(
            wire::HaloBlock{src.rect, std::move(halo->data)});
        got = true;
      }
      if (comm.mailboxClosed()) {
        return false;
      }
    }
    if (!got) {
      return false;
    }
  }
  return true;
}

/// Runs one job on this slave rank: idle-ack, then assignments until the
/// master brackets the job with JobEnd.  Sets `dead` and returns early if
/// the chaos plan kills this rank mid-job (no Stats, no further traffic).
void runSlaveJob(msg::Comm& comm, const RuntimeConfig& cfg, JobId job,
                 const DpProblem& problem, fault::FaultPlan& plan,
                 store::BlockStore& blockStore, DataPlaneCounters& counters,
                 std::atomic<bool>& dead) {
  const bool peer = cfg.dataPlane == DataPlaneMode::kPeerToPeer;

  // Fresh per-job counters: each job gets its own Stats report.
  wire::SlaveStatsPayload stats;
  stats.job = job;
  const std::int64_t servedBefore =
      counters.halosServed.load(std::memory_order_relaxed);
  const std::int64_t decodeBefore =
      counters.decodeErrors.load(std::memory_order_relaxed);
  const store::BlockStoreStats storeBefore = blockStore.stats();

  // Step a: announce readiness for this job.
  comm.send(0, wire::kTagIdle, wire::encodeJobControl({job}));

  for (;;) {
    // Step b: wait for an assignment or the job-end bracket.  Control
    // tags only — kTagData from the master (fallback serves, fetches)
    // belongs to this rank's data thread.
    msg::Message m =
        comm.recvTags(0, {wire::kTagAssign, wire::kTagJobEnd});
    if (m.tag == wire::kTagJobEnd) {
      EASYHPS_CHECK(wire::decodeJobControl(m.payload).job == job,
                    "slave received JobEnd for the wrong job");
      break;
    }
    wire::AssignPayload assign = wire::decodeAssign(m.payload);
    if (assign.job != job) {
      // A chaos-delayed (or duplicated) assignment of an *earlier* job.
      // Computing it would fetch halos under a stale job id; discard — its
      // own job already re-distributed or finished it.
      EASYHPS_LOG_WARN("slave " << comm.rank()
                                << " discarding stale assignment of job "
                                << assign.job);
      continue;
    }

    if (plan.consumeSlaveDeath(assign.vertex, comm.rank())) {
      // kSlaveDeath: this rank stops servicing *all* traffic mid-run —
      // no result, no Stats, no data-plane replies, no heartbeat acks.
      // The master's overtime queue re-distributes the in-flight work and
      // the liveness sweep quarantines the rank.
      dead.store(true, std::memory_order_release);
      EASYHPS_LOG_WARN("slave death fault: rank " << comm.rank()
                                                  << " going silent");
      return;
    }

    if (plan.consumeBlackhole(assign.vertex, comm.rank())) {
      EASYHPS_LOG_WARN("blackhole fault: dropping sub-task "
                       << assign.vertex);
      continue;  // simulate a node that lost the task
    }

    const auto delay = plan.consumeDelay(assign.vertex, comm.rank());

    if (peer) {
      if (!fetchHalos(comm, cfg, blockStore, assign, stats)) {
        // Halo sources unreachable (cluster aborting, or rank 0 silent
        // beyond every retry): abandon the assignment; its overtime
        // deadline re-distributes it.
        EASYHPS_LOG_WARN("slave " << comm.rank()
                                  << " abandoning sub-task " << assign.vertex
                                  << " (halo fetch failed)");
        continue;
      }
    }

    wire::ResultPayload result;
    result.job = job;
    result.vertex = assign.vertex;
    result.rect = assign.rect;
    bool abandoned = false;
    std::vector<Score> data = executeAssignment(
        problem, cfg, plan, comm.rank(), assign, stats, &comm, &abandoned);
    if (abandoned) {
      // Fragment starvation (dead producer, cluster aborting): drop the
      // assignment like a failed halo fetch — its overtime deadline on
      // the master re-distributes it against whoever is still alive.
      EASYHPS_LOG_WARN("slave " << comm.rank() << " abandoning sub-task "
                                << assign.vertex
                                << " (halo fragment stream starved)");
      continue;
    }
    result.checksum = wire::blockChecksum(assign.vertex, assign.rect, data);
    const bool corruptInjected =
        plan.consumeCorrupt(assign.vertex, comm.rank());

    if (peer) {
      // Ack carries only the boundary cells successors will read; the
      // full block stays here under this rank's ownership.
      for (const CellRect& edge : assign.ackRects) {
        result.edges.push_back(
            wire::HaloBlock{edge, extractSub(assign.rect, data, edge)});
      }
      auto evicted = blockStore.put(job, assign.vertex, assign.rect,
                                    std::move(data), result.checksum);
      for (store::StoredBlock& b : evicted) {
        // Spill-to-master: send *before* the ack so the master's copy is
        // in place before any peer can be told to ask us and miss.
        comm.send(0, wire::kTagData,
                  wire::encodeBlockSpill(
                      {b.job, b.vertex, b.rect, b.checksum,
                       std::move(b.data)}));
      }
    } else {
      result.data = std::move(data);
    }
    result.edgesChecksum = wire::resultChecksum(result);

    if (corruptInjected) {
      // kPayloadCorrupt at the source: flip one cell *after* the
      // checksums were computed, so the wire carries a payload whose
      // content no longer matches what it vouches for.  The master's
      // verify-at-inject tier must catch it (corruptBlocks) and recover
      // by requeue/overtime — never by trusting the cells.
      if (!result.data.empty()) {
        result.data[result.data.size() / 2] ^= 1;
      } else {
        bool flipped = false;
        for (wire::HaloBlock& edge : result.edges) {
          if (!edge.data.empty()) {
            edge.data[edge.data.size() / 2] ^= 1;
            flipped = true;
            break;
          }
        }
        if (!flipped) {
          result.checksum ^= 1;  // edge-less block: corrupt the header
        }
      }
      EASYHPS_LOG_WARN("payload-corrupt fault: flipping result of sub-task "
                       << assign.vertex << " on rank " << comm.rank());
    }

    if (delay.count() > 0) {
      EASYHPS_LOG_WARN("delay fault: holding result of sub-task "
                       << assign.vertex << " for " << delay.count() << "ms");
      std::this_thread::sleep_for(delay);
    }

    // Step: reply with the computed block (paper §V-B step e).  A result
    // held past its job's end still carries the job id, so the master
    // discards it instead of crediting it to a later job.
    comm.send(0, wire::kTagResult, wire::encodeResult(std::move(result)));
  }

  // JobEnd flush: vertex ids restart at 0 next job, so retained blocks
  // must not outlive the job (the store-level analogue of the stale-job
  // result discard).  The master pulled everything it needs before
  // sending JobEnd.  Stray halo-fragment forwards (sent while our pump
  // had already completed, or for an assignment we abandoned) would
  // otherwise sit in the mailbox and confuse next job's pump.
  while (comm.tryRecv(msg::kAnySource, wire::kTagHaloPartial)) {
  }
  blockStore.clear(job);
  const store::BlockStoreStats storeAfter = blockStore.stats();
  stats.halosServed =
      counters.halosServed.load(std::memory_order_relaxed) - servedBefore;
  stats.decodeErrors +=
      counters.decodeErrors.load(std::memory_order_relaxed) - decodeBefore;
  stats.storeEvictions = storeAfter.evictions - storeBefore.evictions;
  stats.storeSpilledBytes =
      storeAfter.spilledBytes - storeBefore.spilledBytes;
  stats.storePeakBytes = storeAfter.peakBytes;

  // Per-job slave-side counters for the master's RunStats.
  comm.send(0, wire::kTagStats, wire::encodeSlaveStats(stats));
}

}  // namespace

void runSlaveService(msg::Comm& comm, const RuntimeConfig& cfg,
                     const SlaveJobDirectory& directory) {
  log::setThreadName("slave-" + std::to_string(comm.rank()));

  // The rank's block store and data-plane thread live for the whole
  // service: requests can arrive whenever a peer still computes.  The
  // budget is this rank's profile budget when heterogeneity profiles are
  // configured — the same number the master's placement-time capacity
  // check enforces.
  store::BlockStore blockStore(cfg.storeBudgetForRank(comm.rank()));
  DataPlaneCounters counters;
  std::atomic<bool> stopData{false};
  std::atomic<bool> dead{false};  // kSlaveDeath: rank went silent
  std::jthread dataThread(
      [&] { dataPlaneLoop(comm, blockStore, counters, stopData, dead); });

  try {
    for (;;) {
      // Outer loop: a JobStart opens the next job; End retires the rank.
      msg::Message m = comm.recvTags(
          0, {wire::kTagJobStart, wire::kTagJobEnd, wire::kTagAssign,
              wire::kTagEnd});
      if (m.tag == wire::kTagEnd) {
        break;
      }
      if (dead.load(std::memory_order_acquire)) {
        continue;  // zombie: swallow every bracket and assignment, answer
                   // nothing, until the service's End retires the rank
      }
      if (m.tag != wire::kTagJobStart) {
        // JobEnd/Assign can surface here only for a job this rank never
        // joined — impossible while alive (each job's bracket is fully
        // consumed by runSlaveJob), kept for robustness.
        EASYHPS_LOG_WARN("slave " << comm.rank()
                                  << " ignoring stray control tag " << m.tag);
        continue;
      }
      const JobId job = wire::decodeJobControl(m.payload).job;
      const SlaveJobDirectory::Entry entry = directory.find(job);
      EASYHPS_CHECK(entry.problem != nullptr && entry.plan != nullptr,
                    "job directory returned a null entry");
      runSlaveJob(comm, cfg, job, *entry.problem, *entry.plan, blockStore,
                  counters, dead);
    }
  } catch (...) {
    // Release the data thread before the jthread destructor joins it —
    // the cluster only closes mailboxes after this rank function returns.
    stopData.store(true, std::memory_order_release);
    throw;
  }
  stopData.store(true, std::memory_order_release);
}

}  // namespace easyhps

#pragma once
/// \file health.hpp
/// Master-side slave liveness: heartbeats, per-slave health records, and
/// the quarantine circuit breaker.
///
/// The paper's §V fault tolerance detects failures *per task* (overtime
/// queues).  That recovers the work but keeps assigning new tasks to a
/// dead rank, burning a full task timeout on each.  The chaos layer adds a
/// rank-level failure domain: the master pings every slave on a fixed
/// cadence (wire kPing / kTagHealthAck) and tracks, per slave, consecutive
/// missed acks and an EWMA of ack round-trip latency.
///
/// State machine per slave:
///
///     healthy ──miss──▶ suspect ──misses ≥ threshold──▶ quarantined
///        ▲                 │                                 │
///        └────────ack──────┘          backoff elapsed + ack──┘
///
/// A quarantined slave receives no new assignments (`allowAssign` gates
/// the scheduling pick) and its ownership entries are invalidated so peers
/// stop fetching halos from it.  Pings keep flowing while quarantined;
/// once the backoff has elapsed, an ack re-admits the slave (timed
/// re-admission — a genuinely dead rank never acks and stays out).
///
/// All methods take an explicit `now` so unit tests can drive the clock;
/// the runtime just uses the default.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace easyhps {

enum class SlaveHealth { kHealthy, kSuspect, kQuarantined };

const char* slaveHealthName(SlaveHealth state);

struct HealthConfig {
  std::chrono::milliseconds heartbeatInterval{100};
  /// An outstanding ping unanswered for this long counts as a miss.
  std::chrono::milliseconds heartbeatTimeout{150};
  /// Consecutive misses that trip suspect → quarantined.
  int missThreshold = 3;
  /// Minimum time in quarantine before an ack can re-admit the slave.
  std::chrono::milliseconds quarantineBackoff{500};
};

class HealthRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  struct Ping {
    int rank = 0;
    std::uint64_t seq = 0;
  };

  /// One quarantine interval of one rank; `end` empty = still quarantined.
  struct QuarantineSpan {
    int rank = 0;
    Clock::time_point begin;
    std::optional<Clock::time_point> end;
  };

  struct Counters {
    std::int64_t pingsSent = 0;
    std::int64_t acks = 0;
    std::int64_t misses = 0;
    std::int64_t quarantines = 0;
    std::int64_t readmissions = 0;
  };

  /// Tracks slaves ranked 1..slaveCount.
  HealthRegistry(int slaveCount, HealthConfig config);

  /// True unless `rank` is quarantined — the scheduling gate.
  bool allowAssign(int rank) const;
  SlaveHealth stateOf(int rank) const;

  /// Ranks whose next heartbeat is due; each returned ping is recorded as
  /// outstanding (at most one in flight per rank) until acked or expired.
  std::vector<Ping> duePings(Clock::time_point now = Clock::now());

  /// Ack from `rank`.  A seq not matching the outstanding ping (stale or
  /// duplicated ack) is ignored.
  void onAck(int rank, std::uint64_t seq, Clock::time_point now = Clock::now());

  /// Expires outstanding pings and drives the state machine; returns the
  /// ranks that entered quarantine during this sweep.
  std::vector<int> sweep(Clock::time_point now = Clock::now());

  Counters counters() const;
  /// EWMA of ack round-trip latency, seconds (0 until the first ack).
  /// Doubles as the per-rank RTT seed for the ECT scheduler's estimator:
  /// the master copies it into `RankEstimator::setRttSeconds` at job start
  /// so placement scores reflect observed control-plane latency.
  double ewmaLatencySeconds(int rank) const;
  std::vector<QuarantineSpan> quarantineSpans() const;

 private:
  struct Record {
    SlaveHealth state = SlaveHealth::kHealthy;
    int consecutiveMisses = 0;
    double ewmaLatencySeconds = 0.0;
    bool sawAck = false;
    std::optional<std::uint64_t> outstandingSeq;
    Clock::time_point outstandingSince;
    std::optional<Clock::time_point> lastPing;
    Clock::time_point quarantinedAt;
  };

  Record& record(int rank);
  const Record& record(int rank) const;

  mutable std::mutex mutex_;
  HealthConfig config_;
  std::vector<Record> records_;  ///< index rank - 1
  std::uint64_t nextSeq_ = 1;
  Counters counters_;
  std::vector<QuarantineSpan> spans_;
};

}  // namespace easyhps

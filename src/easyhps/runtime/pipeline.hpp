#pragma once
/// \file pipeline.hpp
/// Process-wide cross-level pipelining toggle.
///
/// `kStreaming` (default) lets halo *fragments* flow between blocks while
/// their producers are still computing: the master fires a consumer
/// assignment once the first fragment of its halo has arrived, and the
/// slave thread pool starts the ready corner of the block while the rest
/// streams in (see dag/fragment.hpp and DESIGN.md).  `kBarrier` restores
/// the seed whole-block handoff semantics and serves as the bit-exactness
/// oracle, exactly like `EASYHPS_KERNEL_PATH=reference` and
/// `EASYHPS_MSG_PATH=copy` do for their layers.
///
/// Only the master consults the toggle: slaves derive their behaviour
/// entirely from the Assign contents (pending/stream rects), so a single
/// process-wide switch flipped between jobs cannot leave the two sides
/// disagreeing mid-job.
///
/// The env override `EASYHPS_PIPELINE=barrier` selects the oracle at
/// startup; anything else (or unset) keeps streaming.

namespace easyhps {

enum class PipelineMode {
  kStreaming,  ///< fragment-granular halo flow (default)
  kBarrier,    ///< whole-block handoffs (seed semantics, oracle)
};

PipelineMode pipelineMode();
void setPipelineMode(PipelineMode mode);

/// RAII pipeline-mode override for tests and benches.
class ScopedPipelineMode {
 public:
  explicit ScopedPipelineMode(PipelineMode mode) : saved_(pipelineMode()) {
    setPipelineMode(mode);
  }
  ~ScopedPipelineMode() { setPipelineMode(saved_); }
  ScopedPipelineMode(const ScopedPipelineMode&) = delete;
  ScopedPipelineMode& operator=(const ScopedPipelineMode&) = delete;

 private:
  PipelineMode saved_;
};

/// "streaming" / "barrier" (trace and bench output).
const char* pipelineModeName(PipelineMode mode);

}  // namespace easyhps

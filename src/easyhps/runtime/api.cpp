#include "easyhps/runtime/api.hpp"

#include <algorithm>

namespace easyhps::api {
namespace {

template <typename W>
Score getThunk(const void* window, std::int64_t r, std::int64_t c) {
  return static_cast<const W*>(window)->get(r, c);
}

bool supported(PatternKind kind) {
  return kind == PatternKind::kWavefront2D ||
         kind == PatternKind::kTriangular2D1D ||
         kind == PatternKind::kRowDependent2D;
}

}  // namespace

FunctionalDpProblem::FunctionalDpProblem(Spec spec) : spec_(std::move(spec)) {
  EASYHPS_EXPECTS(spec_.rows > 0 && spec_.cols > 0);
  EASYHPS_CHECK(spec_.cell != nullptr, "Spec::cell (process) is required");
  EASYHPS_CHECK(spec_.boundary != nullptr, "Spec::boundary is required");
  EASYHPS_CHECK(supported(spec_.pattern),
                "FunctionalDpProblem supports kWavefront2D, "
                "kTriangular2D1D and kRowDependent2D");
}

PatternKind FunctionalDpProblem::slavePatternKind() const {
  switch (spec_.pattern) {
    case PatternKind::kTriangular2D1D:
      return PatternKind::kFlippedWavefront2D;
    case PatternKind::kRowDependent2D:
      return PatternKind::kRowDependent2D;
    default:
      return PatternKind::kWavefront2D;
  }
}

PartitionedDag FunctionalDpProblem::masterDag(const BlockGrid& grid) const {
  if (spec_.pattern == PatternKind::kRowDependent2D) {
    // Stage DPs: full-width master blocks (see viterbi.hpp rationale).
    const BlockGrid full(grid.rows(), grid.cols(), grid.blockRows(),
                         grid.cols());
    return makeRowDependent2D(full);
  }
  return makeFromLibrary(spec_.pattern, grid);
}

PartitionedDag FunctionalDpProblem::slaveDagFor(
    const CellRect& blockRect, std::int64_t threadPartitionRows,
    std::int64_t threadPartitionCols) const {
  if (spec_.pattern == PatternKind::kRowDependent2D) {
    const BlockGrid grid(blockRect.rows, blockRect.cols, 1,
                         threadPartitionCols);
    return makeRowDependent2D(grid);
  }
  return DpProblem::slaveDagFor(blockRect, threadPartitionRows,
                                threadPartitionCols);
}

Score FunctionalDpProblem::boundary(std::int64_t r, std::int64_t c) const {
  return spec_.boundary(r, c);
}

bool FunctionalDpProblem::cellActive(std::int64_t r, std::int64_t c) const {
  if (spec_.pattern == PatternKind::kTriangular2D1D) {
    return r <= c;
  }
  return true;
}

bool FunctionalDpProblem::rectActive(const CellRect& rect) const {
  if (spec_.pattern == PatternKind::kTriangular2D1D) {
    return rect.row0 <= rect.colEnd() - 1;
  }
  return true;
}

std::vector<CellRect> FunctionalDpProblem::haloFor(
    const CellRect& rect) const {
  if (spec_.haloOverride) {
    return spec_.haloOverride(rect);
  }
  std::vector<CellRect> halos;
  switch (spec_.pattern) {
    case PatternKind::kWavefront2D:
      if (rect.row0 > 0) {
        halos.push_back(CellRect{rect.row0 - 1, rect.col0, 1, rect.cols});
      }
      if (rect.col0 > 0) {
        halos.push_back(CellRect{rect.row0, rect.col0 - 1, rect.rows, 1});
      }
      if (rect.row0 > 0 && rect.col0 > 0) {
        halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
      }
      break;
    case PatternKind::kTriangular2D1D:
      if (rect.col0 > rect.row0) {
        halos.push_back(
            CellRect{rect.row0, rect.row0, rect.rows, rect.col0 - rect.row0});
      }
      if (rect.colEnd() > rect.rowEnd() && rect.rowEnd() < rows()) {
        halos.push_back(
            CellRect{rect.rowEnd(), rect.col0,
                     std::min(rect.colEnd(), rows()) - rect.rowEnd(),
                     rect.cols});
      }
      if (rect.rowEnd() < rows() && rect.col0 > 0 &&
          rect.rowEnd() <= rect.col0 - 1) {
        halos.push_back(CellRect{rect.rowEnd(), rect.col0 - 1, 1, 1});
      }
      break;
    case PatternKind::kRowDependent2D:
      if (rect.row0 > 0) {
        halos.push_back(CellRect{rect.row0 - 1, 0, 1, cols()});
      }
      break;
    default:
      throw LogicError("unsupported pattern in FunctionalDpProblem");
  }
  return halos;
}

template <typename W>
void FunctionalDpProblem::kernel(W& w, const CellRect& rect) const {
  const CellCtx ctx(&w, &getThunk<W>);
  if (spec_.pattern == PatternKind::kTriangular2D1D) {
    // Bottom-up, left-to-right (triangular fill order).
    for (std::int64_t r = rect.rowEnd() - 1; r >= rect.row0; --r) {
      for (std::int64_t c = std::max(rect.col0, r); c < rect.colEnd(); ++c) {
        w.set(r, c, spec_.cell(ctx, r, c));
      }
    }
    return;
  }
  // Wavefront and stage DPs: row-major is dependency-correct.
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      w.set(r, c, spec_.cell(ctx, r, c));
    }
  }
}

void FunctionalDpProblem::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void FunctionalDpProblem::computeBlockSparse(SparseWindow& w,
                                             const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> FunctionalDpProblem::solveReference() const {
  // The adapter's reference solver runs the same cell lambda over a dense
  // whole-matrix window in pattern order — by construction equal to the
  // blocked solve, so tests of *user* specs compare against an independent
  // hand-written oracle instead (see tests/test_api.cpp).
  Window w(CellRect{0, 0, rows(), cols()}, boundaryFn());
  computeBlock(w, CellRect{0, 0, rows(), cols()});
  DenseMatrix<Score> out(rows(), cols());
  for (std::int64_t r = 0; r < rows(); ++r) {
    for (std::int64_t c = 0; c < cols(); ++c) {
      out.at(r, c) = cellActive(r, c) ? w.get(r, c) : Score{0};
    }
  }
  return out;
}

double FunctionalDpProblem::blockOps(const CellRect& rect) const {
  if (!spec_.cellOps) {
    return static_cast<double>(rect.cellCount());
  }
  double total = 0;
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      if (cellActive(r, c)) {
        total += spec_.cellOps(r, c);
      }
    }
  }
  return total;
}

}  // namespace easyhps::api

#pragma once
/// \file job.hpp
/// Job identity shared by the wire protocol, the multiplexed master/slave
/// loops and the serve layer.
///
/// The paper's runtime solves exactly one DP instance per cluster; this
/// repo multiplexes many instances ("jobs") over one persistent cluster
/// (see `src/easyhps/serve`).  Every protocol message that can outlive a
/// job boundary — assignments, results, per-job stats — carries the job id
/// so a reply delayed past its job's end is discarded instead of being
/// credited to the next job.

#include <cstdint>

namespace easyhps {

/// Identifies one submitted DP instance for the lifetime of a service.
/// Ids are assigned by the service starting at 1 and never reused.
using JobId = std::int64_t;

/// Sentinel for "no job" (unset payload fields, single-run bookkeeping).
inline constexpr JobId kNoJob = -1;

}  // namespace easyhps

#pragma once
/// \file wire.hpp
/// Wire protocol between the master part and slave parts, split into a
/// control plane and a data plane.
///
/// The paper's single-job work flow (§V-B/§V-C) used five message kinds;
/// the job-multiplexed service loop (see `src/easyhps/serve`) brackets
/// each job with two more, and the control/data-plane split (DESIGN.md)
/// adds the peer-to-peer data messages:
///
/// Control plane (master ↔ slave):
///   JobStart  master → slave  "job J begins; reset per-job state"
///   Idle      slave → master  "ready for job J's assignments"   (step a)
///   Assign    master → slave  sub-task id + block rect + halo   (step d)
///   Result    slave → master  sub-task id + computed block      (step e)
///   JobEnd    master → slave  all of job J's sub-tasks finished (step i)
///   Stats     slave → master  per-job slave counters, after JobEnd
///   End       master → slave  service shutdown; slave rank exits
///
/// Data plane (any rank → any rank, served by per-rank data threads):
///   Data      request envelope; first byte selects the kind:
///               HaloRequest  fetch halo cells of a completed block
///               BlockFetch   master pulls a full block at job end
///               BlockSpill   slave ships an evicted block to the master
///   HaloData  reply to HaloRequest (owner → requester)
///   BlockData reply to BlockFetch (owner → master)
///
/// Under `DataPlaneMode::kPeerToPeer`, Assign shrinks to metadata: the
/// halo arrives as a list of `HaloSource` fetch instructions ({rect, dep
/// block id, owner rank}) instead of inline cells, and Result shrinks to
/// an ack carrying only the boundary cells successors will read
/// (`edges`, prescribed by Assign's `ackRects`) plus the block checksum.
/// Under `kMasterRelay` the original all-through-master payloads are used
/// and the data-plane fields stay empty.
///
/// Assign, Result and Stats carry the owning job id: a Result delayed past
/// its job's end (kTaskDelay fault, slow node) reaches the master while a
/// *different* job runs and must be discarded, not credited to it.  Data
/// requests carry the job id for the same reason: the store keys blocks by
/// (job, vertex), so a stale request can only miss, never alias.
///
/// Payloads are flat byte buffers (logically — see msg::Payload for the
/// inline/refcounted split) via PayloadWriter/ByteReader, so the whole
/// protocol would map 1:1 onto MPI_Send/MPI_Recv buffers.
///
/// Zero-copy discipline: the cell-carrying payloads (Result, HaloData,
/// BlockData, BlockSpill) put their Score vector *last* on the wire, so
/// the encoder can alias it as the payload's refcounted body and the
/// decoder can hand out a borrowed `ScoreCells` view instead of copying.
/// Both degrade to plain copies under `MsgPath::kCopy`, byte-identically.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/fault/chaos.hpp"
#include "easyhps/matrix/geometry.hpp"
#include "easyhps/msg/payload.hpp"
#include "easyhps/runtime/job.hpp"

namespace easyhps::wire {

enum Tag : int {
  kTagIdle = 1,
  kTagAssign = 2,
  kTagResult = 3,
  kTagEnd = 4,
  kTagStats = 5,
  kTagJobStart = 6,
  kTagJobEnd = 7,
  // Data plane.  One request tag so a single data thread per rank serves
  // everything; replies get distinct tags so a requester's blocking recv
  // can never swallow someone else's request.
  kTagData = 8,
  kTagHaloData = 9,
  kTagBlockData = 10,
  // Liveness: heartbeat ack, slave → master.  The ping itself rides the
  // kTagData envelope (kind kPing) so the slave's existing data thread
  // answers it; the ack gets its own tag so the master's liveness thread
  // is the only consumer.
  kTagHealthAck = 11,
  // Streaming pipeline (PipelineMode::kStreaming): halo fragments
  // forwarded master → consumer slave.  Producer-emitted fragments ride
  // the kTagData envelope (kind kHaloPartial) into the master's data
  // thread; the forward leg gets its own tag so the consumer's fragment
  // pump can block on exactly this traffic without stealing data-plane
  // requests.  Both legs carry the identical payload (a forward is a
  // refcount bump, not a re-encode).
  kTagHaloPartial = 12,
};

/// Discriminates the kTagData request envelope (first payload byte).
enum class DataMsgKind : std::uint8_t {
  kHaloRequest = 1,
  kBlockFetch = 2,
  kBlockSpill = 3,
  kPing = 4,
  kHaloPartial = 5,     ///< streamed halo fragment (producer → master)
  kFragmentResend = 6,  ///< stalled consumer asks master to re-send
};

/// One halo rectangle and its cell data.
struct HaloBlock {
  CellRect rect;
  std::vector<Score> data;
};

/// Fetch instruction for one piece of a halo: which cells, which completed
/// block they belong to, and which rank's store holds that block.  Owner 0
/// (or vertex -1, cells outside every active block) routes the request to
/// the master's matrix.
struct HaloSource {
  CellRect rect;
  VertexId vertex = -1;
  int owner = 0;
};

struct AssignPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  /// kMasterRelay: halo cells inline (the paper's protocol).
  std::vector<HaloBlock> halos;
  /// kPeerToPeer: fetch instructions instead of cells.
  std::vector<HaloSource> sources;
  /// kPeerToPeer: sub-rects of `rect` the result ack must carry back —
  /// the boundary cells some successor's halo will read.  Computed by the
  /// master (it owns the block DAG); the slave just extracts them.
  std::vector<CellRect> ackRects;
  /// Streaming pipeline: halo sub-rects that were *not* available when
  /// this assignment fired and will arrive as kTagHaloPartial fragments.
  /// Empty under PipelineMode::kBarrier (and for fully-ready blocks), in
  /// which case the slave's behaviour is byte-for-byte the seed protocol.
  std::vector<CellRect> pendingRects;
  /// Streaming pipeline: sub-rects of `rect` the producer must emit as
  /// fragments to the master as soon as the covering sub-block finishes
  /// (successor-facing boundary cells).  Empty under kBarrier.
  std::vector<CellRect> streamRects;
};

struct ResultPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  /// kMasterRelay: the whole computed block; empty under kPeerToPeer.
  std::vector<Score> data;
  /// kPeerToPeer: the `ackRects` boundary cells (master fallback copy).
  std::vector<HaloBlock> edges;
  /// Order-independent per-block checksum (see blockChecksum); lets both
  /// modes assert bit-exact equality without shipping the cells.
  std::uint64_t checksum = 0;
  /// Checksum over the result *header* — vertex, rect, `checksum`, and
  /// every edge's rect + cells (see resultChecksum) — computed by the
  /// slave after filling those fields.  The master verifies it before
  /// trusting anything else in the payload: under kPeerToPeer `checksum`
  /// covers cells that never cross this wire, and a flipped vertex/rect
  /// byte would otherwise misroute an intact-looking result.
  std::uint64_t edgesChecksum = 0;
};

struct SlaveStatsPayload {
  JobId job = kNoJob;
  std::int64_t tasksExecuted = 0;
  std::int64_t threadRestarts = 0;
  std::int64_t subTaskRequeues = 0;
  // Data-plane counters (all zero under kMasterRelay).
  std::int64_t haloLocalHits = 0;      ///< halo pieces found in own store
  std::int64_t haloPeerFetches = 0;    ///< halo pieces fetched from a peer
  std::int64_t haloMasterFetches = 0;  ///< halo pieces fetched from rank 0
  std::int64_t halosServed = 0;        ///< peer requests this rank answered
  std::int64_t storeEvictions = 0;     ///< LRU evictions (spilled blocks)
  std::uint64_t storeSpilledBytes = 0;
  /// BlockStore high-water mark (service lifetime) — what memory-aware
  /// placement tries to keep under the rank's profile budget.
  std::uint64_t storePeakBytes = 0;
  /// Timed peer-to-peer halo pulls this job: payload bytes and wall time.
  /// The master's rank estimator turns them into a per-link bandwidth
  /// EWMA for the next job's ECT scores.
  std::uint64_t peerFetchBytes = 0;
  std::int64_t peerFetchMicros = 0;
  // Streaming-pipeline counters (all zero under PipelineMode::kBarrier).
  std::int64_t fragmentsSent = 0;     ///< halo fragments emitted to master
  std::int64_t fragmentsApplied = 0;  ///< fragment pieces injected locally
  std::int64_t fragmentResends = 0;   ///< stall-recovery resend requests
  /// Summed first-compute-to-full-halo overlap across this rank's
  /// streamed assignments, microseconds.
  std::int64_t streamOverlapMicros = 0;
  // Integrity counters (wire hardening).
  std::int64_t corruptPayloads = 0;  ///< checksum mismatches detected
  std::int64_t decodeErrors = 0;     ///< malformed payloads dropped
};

/// Payload of JobStart / JobEnd and of the per-job Idle ready-ack.
struct JobControlPayload {
  JobId job = kNoJob;
};

/// HaloRequest: "send me cells `rect` of block (job, vertex)".  To the
/// master, vertex may be -1: serve straight from the job matrix.
struct HaloRequestPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
};

/// HaloData: reply to a HaloRequest.  found=false = the owner evicted the
/// block (requester falls back to the master, whose spill copy is
/// guaranteed to have landed first — see DESIGN.md).
struct HaloDataPayload {
  JobId job = kNoJob;
  CellRect rect;
  bool found = false;
  /// End-to-end content checksum (blockChecksum over (-1, rect, data)),
  /// computed by the owner; the requester re-derives it from the received
  /// bytes and treats a mismatch as a fetch failure (retry/fallback).
  std::uint64_t checksum = 0;
  std::vector<Score> data;
};

/// BlockFetch: master pulls a full block from its owner at job end.
struct BlockFetchPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
};

/// BlockData: reply to a BlockFetch; found=false = evicted meanwhile (the
/// spill, already in flight, carries the cells instead).
struct BlockDataPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  bool found = false;
  /// blockChecksum over (vertex, rect, data); verified by the master at
  /// inject time, with a bounded re-fetch → recompute escalation on
  /// mismatch.
  std::uint64_t checksum = 0;
  std::vector<Score> data;
};

/// BlockSpill: an evicted block shipped to the master so its cells stay
/// reachable after leaving the owner's store.
struct BlockSpillPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  /// blockChecksum over (vertex, rect, data).  Spills are exempt from
  /// transport chaos (only copy), but the checksum still guards against
  /// source-side corruption and feeds the checkpoint journal.
  std::uint64_t checksum = 0;
  std::vector<Score> data;
};

/// Heartbeat ping (master → slave, kTagData envelope) and its ack (slave →
/// master, kTagHealthAck).  The ack echoes the sequence number so the
/// master's health registry can match it to the outstanding ping and
/// measure round-trip latency; a stale or duplicated ack simply mismatches
/// and is ignored.
/// HaloPartial: one streamed halo fragment — cells `rect` of producer
/// block (job, vertex), emitted the moment the covering sub-block
/// completes.  Producer → master as a kTagData envelope; master →
/// consumer as the same payload under kTagHaloPartial.  Fragments are
/// idempotent (global coordinates, bit-exact cells): receivers clip
/// against their outstanding-coverage tracker, so duplicates from chaos
/// or resends collapse to no-ops.
struct HaloPartialPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  /// blockChecksum over (vertex, rect, data); a corrupted fragment is
  /// dropped by the receiver and recovered by the stall-resend machinery.
  std::uint64_t checksum = 0;
  std::vector<Score> data;
};

/// FragmentResend: a consumer stalled mid-stream (dropped fragments, dead
/// producer) asks the master to re-send whatever of `vertex`'s pending
/// halo it can currently cover.  Consumer → master, kTagData envelope.
struct FragmentResendPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;  ///< the *consumer* block
};

struct HealthPingPayload {
  std::uint64_t seq = 0;
};

struct HealthAckPayload {
  std::uint64_t seq = 0;
};

/// Score cells of a decoded data payload, either *borrowed* — a view into
/// the payload's refcounted body, kept alive by `keepalive` (the fast
/// path: zero bytes copied) — or *owned* — copied out of the byte stream
/// (the kCopy oracle, or an unaligned/seam-straddling body).  Either way
/// `cells()` is valid for the lifetime of this object, independent of the
/// Message it was decoded from.
class ScoreCells {
 public:
  std::span<const Score> cells() const { return view_; }
  bool borrowed() const { return keepalive_ != nullptr; }

  void borrow(std::shared_ptr<const void> keepalive,
              std::span<const Score> view) {
    keepalive_ = std::move(keepalive);
    owned_.clear();
    view_ = view;
  }
  void own(std::vector<Score> cells) {
    keepalive_ = nullptr;
    owned_ = std::move(cells);
    view_ = owned_;
  }

 private:
  std::shared_ptr<const void> keepalive_;
  std::vector<Score> owned_;
  std::span<const Score> view_;
};

msg::Payload encodeAssign(const AssignPayload& p);
AssignPayload decodeAssign(const msg::Payload& payload);

/// The cell-carrying encoders take their struct by value and consume its
/// data vector: on the fast path the cells become the payload's
/// refcounted body without a copy.  Call sites move.
msg::Payload encodeResult(ResultPayload p);
ResultPayload decodeResult(const msg::Payload& payload);
/// Zero-copy variant: `data` receives the trailing cells (borrowed when
/// possible) and the returned struct's `data` member stays empty.
ResultPayload decodeResult(const msg::Payload& payload, ScoreCells& data);

msg::Payload encodeSlaveStats(const SlaveStatsPayload& p);
SlaveStatsPayload decodeSlaveStats(const msg::Payload& payload);

msg::Payload encodeJobControl(const JobControlPayload& p);
JobControlPayload decodeJobControl(const msg::Payload& payload);

/// Kind byte of a kTagData envelope (cheap peek; throws on empty buffer).
DataMsgKind peekDataKind(const msg::Payload& payload);

msg::Payload encodeHaloRequest(const HaloRequestPayload& p);
HaloRequestPayload decodeHaloRequest(const msg::Payload& payload);

msg::Payload encodeHaloData(HaloDataPayload p);
HaloDataPayload decodeHaloData(const msg::Payload& payload);
HaloDataPayload decodeHaloData(const msg::Payload& payload, ScoreCells& data);

msg::Payload encodeBlockFetch(const BlockFetchPayload& p);
BlockFetchPayload decodeBlockFetch(const msg::Payload& payload);

msg::Payload encodeBlockData(BlockDataPayload p);
BlockDataPayload decodeBlockData(const msg::Payload& payload);
BlockDataPayload decodeBlockData(const msg::Payload& payload,
                                 ScoreCells& data);

msg::Payload encodeBlockSpill(BlockSpillPayload p);
BlockSpillPayload decodeBlockSpill(const msg::Payload& payload);
BlockSpillPayload decodeBlockSpill(const msg::Payload& payload,
                                   ScoreCells& data);

msg::Payload encodeHaloPartial(HaloPartialPayload p);
HaloPartialPayload decodeHaloPartial(const msg::Payload& payload);
HaloPartialPayload decodeHaloPartial(const msg::Payload& payload,
                                     ScoreCells& data);

msg::Payload encodeFragmentResend(const FragmentResendPayload& p);
FragmentResendPayload decodeFragmentResend(const msg::Payload& payload);

msg::Payload encodeHealthPing(const HealthPingPayload& p);
HealthPingPayload decodeHealthPing(const msg::Payload& payload);
msg::Payload encodeHealthAck(const HealthAckPayload& p);
HealthAckPayload decodeHealthAck(const msg::Payload& payload);

/// Builds the msg::TransportFn that applies `chaos` to the wire protocol,
/// or nullptr when chaos is disabled.  Eligibility is runtime policy, not
/// part of the fault model:
///   * job-bracket control traffic (Idle, JobStart, JobEnd, Stats, End)
///     and internal collective tags stay reliable — they model the
///     launcher/control network, and losing them says nothing about the
///     recovery paths under test;
///   * BlockSpill envelopes are exempt because a spill is the *only* copy
///     of an evicted block — a real system would retry that transfer
///     forever, which a probabilistic drop cannot express;
///   * everything else (Assign, Result, halo/block request+reply traffic,
///     heartbeat pings and acks) is fair game;
///   * *corruption* (byte flips) is additionally restricted to the
///     cell-carrying data tags (Result, HaloData, BlockData, forwarded
///     HaloPartial) — the traffic whose end-to-end checksums make a flip
///     detectable.  Flipping a request or control header would model a
///     different fault (a byzantine sender), not data-path corruption.
msg::TransportFn makeChaosTransport(const fault::TransportChaos& chaos,
                                    int ranks);

/// FNV-1a over (vertex, rect, cells).  Summed over a job's blocks this
/// yields an order-independent table checksum, comparable bit-for-bit
/// between kMasterRelay (master hashes the full Result) and kPeerToPeer
/// (the owning slave hashes and the ack carries the value).
std::uint64_t blockChecksum(VertexId vertex, const CellRect& rect,
                            std::span<const Score> data);
inline std::uint64_t blockChecksum(VertexId vertex, const CellRect& rect,
                                   const std::vector<Score>& data) {
  return blockChecksum(vertex, rect, std::span<const Score>(data));
}

/// FNV-1a over a Result's trusted header: vertex, rect, the `checksum`
/// field, and every boundary edge (rect + cells, in ack order).  Sender
/// stores it in `edgesChecksum`; the receiver recomputes from the decoded
/// payload — `p.data` is deliberately excluded (it is covered by
/// `checksum` itself on the relay path, and empty on the peer path).
std::uint64_t resultChecksum(const ResultPayload& p);

}  // namespace easyhps::wire

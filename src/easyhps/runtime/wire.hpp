#pragma once
/// \file wire.hpp
/// Wire protocol between the master part and slave parts.
///
/// Five message kinds (paper §V-B/§V-C work flow):
///   Idle    slave → master   "I started and am ready"          (step a)
///   Assign  master → slave   sub-task id + block rect + halo   (step d)
///   Result  slave → master   sub-task id + computed block      (step e)
///   End     master → slave   all sub-tasks finished            (step i)
///   Stats   slave → master   slave-side counters, after End
///
/// Payloads are flat byte buffers via ByteWriter/ByteReader, so the whole
/// protocol would map 1:1 onto MPI_Send/MPI_Recv buffers.

#include <cstdint>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps::wire {

enum Tag : int {
  kTagIdle = 1,
  kTagAssign = 2,
  kTagResult = 3,
  kTagEnd = 4,
  kTagStats = 5,
};

/// One halo rectangle and its cell data.
struct HaloBlock {
  CellRect rect;
  std::vector<Score> data;
};

struct AssignPayload {
  VertexId vertex = -1;
  CellRect rect;
  std::vector<HaloBlock> halos;
};

struct ResultPayload {
  VertexId vertex = -1;
  CellRect rect;
  std::vector<Score> data;
};

struct SlaveStatsPayload {
  std::int64_t tasksExecuted = 0;
  std::int64_t threadRestarts = 0;
  std::int64_t subTaskRequeues = 0;
};

std::vector<std::byte> encodeAssign(const AssignPayload& p);
AssignPayload decodeAssign(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeResult(const ResultPayload& p);
ResultPayload decodeResult(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeSlaveStats(const SlaveStatsPayload& p);
SlaveStatsPayload decodeSlaveStats(const std::vector<std::byte>& bytes);

}  // namespace easyhps::wire

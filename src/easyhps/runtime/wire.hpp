#pragma once
/// \file wire.hpp
/// Wire protocol between the master part and slave parts.
///
/// The paper's single-job work flow (§V-B/§V-C) used five message kinds;
/// the job-multiplexed service loop (see `src/easyhps/serve`) brackets
/// each job with two more:
///
///   JobStart  master → slave  "job J begins; reset per-job state"
///   Idle      slave → master  "ready for job J's assignments"   (step a)
///   Assign    master → slave  sub-task id + block rect + halo   (step d)
///   Result    slave → master  sub-task id + computed block      (step e)
///   JobEnd    master → slave  all of job J's sub-tasks finished (step i)
///   Stats     slave → master  per-job slave counters, after JobEnd
///   End       master → slave  service shutdown; slave rank exits
///
/// Assign, Result and Stats carry the owning job id: a Result delayed past
/// its job's end (kTaskDelay fault, slow node) reaches the master while a
/// *different* job runs and must be discarded, not credited to it.
///
/// Payloads are flat byte buffers via ByteWriter/ByteReader, so the whole
/// protocol would map 1:1 onto MPI_Send/MPI_Recv buffers.

#include <cstdint>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"
#include "easyhps/runtime/job.hpp"

namespace easyhps::wire {

enum Tag : int {
  kTagIdle = 1,
  kTagAssign = 2,
  kTagResult = 3,
  kTagEnd = 4,
  kTagStats = 5,
  kTagJobStart = 6,
  kTagJobEnd = 7,
};

/// One halo rectangle and its cell data.
struct HaloBlock {
  CellRect rect;
  std::vector<Score> data;
};

struct AssignPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  std::vector<HaloBlock> halos;
};

struct ResultPayload {
  JobId job = kNoJob;
  VertexId vertex = -1;
  CellRect rect;
  std::vector<Score> data;
};

struct SlaveStatsPayload {
  JobId job = kNoJob;
  std::int64_t tasksExecuted = 0;
  std::int64_t threadRestarts = 0;
  std::int64_t subTaskRequeues = 0;
};

/// Payload of JobStart / JobEnd and of the per-job Idle ready-ack.
struct JobControlPayload {
  JobId job = kNoJob;
};

std::vector<std::byte> encodeAssign(const AssignPayload& p);
AssignPayload decodeAssign(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeResult(const ResultPayload& p);
ResultPayload decodeResult(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeSlaveStats(const SlaveStatsPayload& p);
SlaveStatsPayload decodeSlaveStats(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeJobControl(const JobControlPayload& p);
JobControlPayload decodeJobControl(const std::vector<std::byte>& bytes);

}  // namespace easyhps::wire

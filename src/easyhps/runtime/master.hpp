#pragma once
/// \file master.hpp
/// Master part of the EasyHPS runtime (paper §III, §V-B), multiplexed over
/// a stream of jobs.
///
/// The paper's master solves exactly one DP instance and exits; here the
/// master rank runs a *service loop*: it pulls jobs from a `JobFeed`, runs
/// each one with the paper's two-level schedule, reports the outcome back
/// and keeps the cluster alive for the next job.  A single-job run (the
/// `Runtime::run` API) is simply this loop over a feed of length one, so
/// the paper's work flow is the `n = 1` special case of the service
/// protocol (see DESIGN.md, "Job multiplexing").
///
/// Per job, the master worker pool creates one worker thread per slave
/// node (paper §V-B step b); each worker thread drives exactly one slave:
/// it picks a computable sub-task from the scheduler, ships it with the
/// halo data the data-communication level prescribes, waits for the result,
/// injects it into the job's matrix and advances the DAG parse state.  A
/// control thread watches the master overtime queue (fault tolerance) and
/// the job's cancellation flag.
///
/// The control plane (Idle/Assign/Result/JobEnd) is all the master worker
/// threads speak.  Under `DataPlaneMode::kPeerToPeer` block payloads move
/// on separate data tags: slaves fetch halos from the peer that owns the
/// dependency block (falling back to the master's data-plane thread), and
/// the master pulls full blocks lazily during an assembly phase after the
/// DAG parse completes.  Under `kMasterRelay` the legacy paper protocol is
/// used: halos ride inside Assign, whole blocks inside Result.  See
/// DESIGN.md, "Control plane vs. data plane".
///
/// Concurrency invariants (why the matrix needs no lock of its own in
/// relay mode — in peer mode all matrix access is under the mutex):
///  * Block injections happen under the scheduler mutex.
///  * Relay-mode halo extraction (outside the mutex) reads only rectangles
///    of *finished* sub-tasks: a task is picked only after its topological
///    predecessors finished, and every data predecessor is a topological
///    ancestor (`DagPattern::dataEdgesCoveredByPrecedence`).  The mutex
///    acquisitions while picking establish the happens-before edge to the
///    earlier injections.
///  * Results of an *earlier* job (kTaskDelay faults, slow slaves) carry
///    their job id and are discarded, never injected into the current
///    job's matrix (`RunStats::staleJobResults`).

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "easyhps/dp/problem.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/msg/comm.hpp"
#include "easyhps/runtime/config.hpp"
#include "easyhps/runtime/health.hpp"
#include "easyhps/runtime/job.hpp"

namespace easyhps {

namespace ckpt {
class JournalWriter;
struct RecoveredState;
}  // namespace ckpt

/// One job as seen by the master service loop.  All pointers stay valid
/// until the feed's `jobFinished` for this id returns.
struct ServiceJob {
  JobId id = kNoJob;
  const DpProblem* problem = nullptr;
  /// Whole-matrix window the master fills with results.
  Window* out = nullptr;
  /// Optional cancellation flag polled by the master control thread;
  /// nullptr = job is not cancellable.
  const std::atomic<bool>* cancelRequested = nullptr;
  /// Optional fault plan; the master consumes kJobAbort from it before
  /// dispatch (the serve layer's retry path).  May be nullptr.
  fault::FaultPlan* plan = nullptr;
};

/// What the master reports back per job.
struct MasterJobOutcome {
  RunStats stats;  ///< elapsedSeconds/messages/bytes are per-job deltas
  bool cancelled = false;
  /// The job failed before producing a table (injected abort, invalid
  /// state); `failureReason` says why.  The serve layer turns this into a
  /// retry or a terminal kFailed ticket.
  bool failed = false;
  std::string failureReason;
  /// Seconds from dispatch to the first block injected; -1 if none was.
  double timeToFirstBlockSeconds = -1.0;
  /// The master crashed mid-job (kMasterCrash chaos): the slaves are still
  /// inside the job (no JobEnd was sent, their stores are warm) and the
  /// service loop must re-run the job with a resume context.
  bool masterCrashed = false;
  /// Completions credited when the crash fired — the resumed incarnation's
  /// recovery-time target (RunStats::recoverySeconds).
  std::int64_t completedAtCrash = 0;
};

/// Checkpoint/restart context for one runMasterJob incarnation.  Passed by
/// runMasterService whenever journaling is on or a previous incarnation
/// (or process) left a journal to resume from; nullptr = neither.
struct MasterResume {
  /// Journal completed blocks here as results land; may be nullptr
  /// (recovery without further journaling, e.g. after a disk failure).
  ckpt::JournalWriter* journal = nullptr;
  /// Replayed journal to seed the completed frontier from; may be nullptr
  /// (fresh job with journaling on).
  const ckpt::RecoveredState* recovered = nullptr;
  /// True on an in-process crash resume: the slaves never saw JobEnd, so
  /// skip the JobStart broadcast and the per-slave ready-ack wait.
  bool skipBracket = false;
  /// True when the slave BlockStores survived the crash (in-process
  /// restart).  False on a cross-process restart: peer-owned blocks whose
  /// journal record carries only boundary cells did not survive and are
  /// recomputed like never-run tasks.
  bool storesWarm = false;
  /// Completions at the prior crash; < 0 when not resuming.  The resumed
  /// incarnation records RunStats::recoverySeconds when its completion
  /// count regains this level.
  std::int64_t completedAtCrash = -1;
};

/// Source of jobs for the master service loop.  Implemented by
/// `serve::Service` (persistent multi-job service) and by the one-shot
/// feed inside `Runtime::run`.  Called from the master rank's thread only.
class JobFeed {
 public:
  virtual ~JobFeed() = default;

  /// Blocks for the next job; nullopt = no more jobs, shut the cluster
  /// down.
  virtual std::optional<ServiceJob> nextJob() = 0;

  /// Delivers the outcome of a finished (or cancelled) job.
  virtual void jobFinished(JobId id, MasterJobOutcome outcome) = 0;
};

/// Runs one job on the already-booted cluster: brackets it with
/// JobStart/JobEnd, schedules all sub-tasks onto the slave ranks and fills
/// `job.out`.  `health` (may be nullptr) is the service-lifetime liveness
/// registry: quarantined ranks get no new assignments and their ownership
/// entries are invalidated.  `estimator` (may be null) is the
/// service-lifetime rank estimator the ECT policies score against — kept
/// outside the job so speeds learned in job N inform job N+1's placement;
/// when null and the policy needs one, a job-local estimator seeded from
/// `cfg.rankProfiles` is used.  Exposed for the service loop; most callers
/// want runMasterService.
/// `resume` (may be nullptr) carries the checkpoint journal to feed and/or
/// the recovered state to seed the completed frontier from; see
/// MasterResume.  An outcome with `masterCrashed` set means the job is
/// still live on the slaves — run it again with `skipBracket`.
MasterJobOutcome runMasterJob(
    msg::Comm& comm, const RuntimeConfig& cfg, const ServiceJob& job,
    HealthRegistry* health = nullptr,
    const std::shared_ptr<RankEstimator>& estimator = nullptr,
    const MasterResume* resume = nullptr);

/// Master service loop: runs every job the feed yields, then sends End to
/// all slaves.  With `cfg.enableLiveness` a service-lifetime heartbeat
/// thread feeds the quarantine state machine consulted by every job.
void runMasterService(msg::Comm& comm, const RuntimeConfig& cfg,
                      JobFeed& feed);

}  // namespace easyhps

#pragma once
/// \file master.hpp
/// Master part of the EasyHPS runtime (paper §III, §V-B).
///
/// The master worker pool creates one worker thread per slave node (paper
/// §V-B step b); each worker thread drives exactly one slave: it picks a
/// computable sub-task from the scheduler, ships it with the halo data the
/// data-communication level prescribes, waits for the result, injects it
/// into the master matrix and advances the DAG parse state.  A separate
/// fault-tolerance thread watches the master overtime queue and
/// re-distributes timed-out assignments.
///
/// Concurrency invariants (why the matrix needs no lock of its own):
///  * Block injections happen under the scheduler mutex.
///  * Halo extraction (outside the mutex) reads only rectangles of
///    *finished* sub-tasks: a task is picked only after its topological
///    predecessors finished, and every data predecessor is a topological
///    ancestor (`DagPattern::dataEdgesCoveredByPrecedence`).  The mutex
///    acquisitions while picking establish the happens-before edge to the
///    earlier injections.

#include "easyhps/dp/problem.hpp"
#include "easyhps/msg/comm.hpp"
#include "easyhps/runtime/config.hpp"

namespace easyhps {

/// Runs the master part: schedules all sub-tasks of `problem` onto the
/// cluster's slave ranks, filling `out` (a whole-matrix window).
/// Returns the master-side run statistics (slave-side counters merged in).
RunStats runMaster(msg::Comm& comm, const DpProblem& problem,
                   const RuntimeConfig& cfg, Window& out);

}  // namespace easyhps

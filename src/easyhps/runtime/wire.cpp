#include "easyhps/runtime/wire.hpp"

#include "easyhps/util/archive.hpp"

namespace easyhps::wire {
namespace {

void putRect(ByteWriter& w, const CellRect& r) {
  w.put<std::int64_t>(r.row0);
  w.put<std::int64_t>(r.col0);
  w.put<std::int64_t>(r.rows);
  w.put<std::int64_t>(r.cols);
}

CellRect getRect(ByteReader& r) {
  CellRect rect;
  rect.row0 = r.get<std::int64_t>();
  rect.col0 = r.get<std::int64_t>();
  rect.rows = r.get<std::int64_t>();
  rect.cols = r.get<std::int64_t>();
  return rect;
}

}  // namespace

std::vector<std::byte> encodeAssign(const AssignPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.halos.size()));
  for (const HaloBlock& h : p.halos) {
    putRect(w, h.rect);
    w.putVector(h.data);
  }
  return std::move(w).take();
}

AssignPayload decodeAssign(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  AssignPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  const auto n = r.get<std::uint32_t>();
  p.halos.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HaloBlock h;
    h.rect = getRect(r);
    h.data = r.getVector<Score>();
    p.halos.push_back(std::move(h));
  }
  return p;
}

std::vector<std::byte> encodeResult(const ResultPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.putVector(p.data);
  return std::move(w).take();
}

ResultPayload decodeResult(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  ResultPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.data = r.getVector<Score>();
  return p;
}

std::vector<std::byte> encodeSlaveStats(const SlaveStatsPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<std::int64_t>(p.tasksExecuted);
  w.put<std::int64_t>(p.threadRestarts);
  w.put<std::int64_t>(p.subTaskRequeues);
  return std::move(w).take();
}

SlaveStatsPayload decodeSlaveStats(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  SlaveStatsPayload p;
  p.job = r.get<JobId>();
  p.tasksExecuted = r.get<std::int64_t>();
  p.threadRestarts = r.get<std::int64_t>();
  p.subTaskRequeues = r.get<std::int64_t>();
  return p;
}

std::vector<std::byte> encodeJobControl(const JobControlPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  return std::move(w).take();
}

JobControlPayload decodeJobControl(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  JobControlPayload p;
  p.job = r.get<JobId>();
  return p;
}

}  // namespace easyhps::wire

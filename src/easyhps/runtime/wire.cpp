#include "easyhps/runtime/wire.hpp"

#include "easyhps/util/archive.hpp"

namespace easyhps::wire {
namespace {

void putRect(ByteWriter& w, const CellRect& r) {
  w.put<std::int64_t>(r.row0);
  w.put<std::int64_t>(r.col0);
  w.put<std::int64_t>(r.rows);
  w.put<std::int64_t>(r.cols);
}

CellRect getRect(ByteReader& r) {
  CellRect rect;
  rect.row0 = r.get<std::int64_t>();
  rect.col0 = r.get<std::int64_t>();
  rect.rows = r.get<std::int64_t>();
  rect.cols = r.get<std::int64_t>();
  return rect;
}

void putHaloBlocks(ByteWriter& w, const std::vector<HaloBlock>& halos) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(halos.size()));
  for (const HaloBlock& h : halos) {
    putRect(w, h.rect);
    w.putVector(h.data);
  }
}

std::vector<HaloBlock> getHaloBlocks(ByteReader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<HaloBlock> halos;
  halos.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HaloBlock h;
    h.rect = getRect(r);
    h.data = r.getVector<Score>();
    halos.push_back(std::move(h));
  }
  return halos;
}

}  // namespace

std::vector<std::byte> encodeAssign(const AssignPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  putHaloBlocks(w, p.halos);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.sources.size()));
  for (const HaloSource& s : p.sources) {
    putRect(w, s.rect);
    w.put<VertexId>(s.vertex);
    w.put<std::int32_t>(s.owner);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.ackRects.size()));
  for (const CellRect& r : p.ackRects) {
    putRect(w, r);
  }
  return std::move(w).take();
}

AssignPayload decodeAssign(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  AssignPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.halos = getHaloBlocks(r);
  const auto nSources = r.get<std::uint32_t>();
  p.sources.reserve(nSources);
  for (std::uint32_t i = 0; i < nSources; ++i) {
    HaloSource s;
    s.rect = getRect(r);
    s.vertex = r.get<VertexId>();
    s.owner = r.get<std::int32_t>();
    p.sources.push_back(s);
  }
  const auto nAcks = r.get<std::uint32_t>();
  p.ackRects.reserve(nAcks);
  for (std::uint32_t i = 0; i < nAcks; ++i) {
    p.ackRects.push_back(getRect(r));
  }
  return p;
}

std::vector<std::byte> encodeResult(const ResultPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.putVector(p.data);
  putHaloBlocks(w, p.edges);
  w.put<std::uint64_t>(p.checksum);
  return std::move(w).take();
}

ResultPayload decodeResult(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  ResultPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.data = r.getVector<Score>();
  p.edges = getHaloBlocks(r);
  p.checksum = r.get<std::uint64_t>();
  return p;
}

std::vector<std::byte> encodeSlaveStats(const SlaveStatsPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<std::int64_t>(p.tasksExecuted);
  w.put<std::int64_t>(p.threadRestarts);
  w.put<std::int64_t>(p.subTaskRequeues);
  w.put<std::int64_t>(p.haloLocalHits);
  w.put<std::int64_t>(p.haloPeerFetches);
  w.put<std::int64_t>(p.haloMasterFetches);
  w.put<std::int64_t>(p.halosServed);
  w.put<std::int64_t>(p.storeEvictions);
  w.put<std::uint64_t>(p.storeSpilledBytes);
  return std::move(w).take();
}

SlaveStatsPayload decodeSlaveStats(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  SlaveStatsPayload p;
  p.job = r.get<JobId>();
  p.tasksExecuted = r.get<std::int64_t>();
  p.threadRestarts = r.get<std::int64_t>();
  p.subTaskRequeues = r.get<std::int64_t>();
  p.haloLocalHits = r.get<std::int64_t>();
  p.haloPeerFetches = r.get<std::int64_t>();
  p.haloMasterFetches = r.get<std::int64_t>();
  p.halosServed = r.get<std::int64_t>();
  p.storeEvictions = r.get<std::int64_t>();
  p.storeSpilledBytes = r.get<std::uint64_t>();
  return p;
}

std::vector<std::byte> encodeJobControl(const JobControlPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  return std::move(w).take();
}

JobControlPayload decodeJobControl(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  JobControlPayload p;
  p.job = r.get<JobId>();
  return p;
}

DataMsgKind peekDataKind(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  return static_cast<DataMsgKind>(r.get<std::uint8_t>());
}

std::vector<std::byte> encodeHaloRequest(const HaloRequestPayload& p) {
  ByteWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kHaloRequest));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  return std::move(w).take();
}

HaloRequestPayload decodeHaloRequest(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  EASYHPS_CHECK(static_cast<DataMsgKind>(r.get<std::uint8_t>()) ==
                    DataMsgKind::kHaloRequest,
                "kind byte is not HaloRequest");
  HaloRequestPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  return p;
}

std::vector<std::byte> encodeHaloData(const HaloDataPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  putRect(w, p.rect);
  w.put<std::uint8_t>(p.found ? 1 : 0);
  w.putVector(p.data);
  return std::move(w).take();
}

HaloDataPayload decodeHaloData(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  HaloDataPayload p;
  p.job = r.get<JobId>();
  p.rect = getRect(r);
  p.found = r.get<std::uint8_t>() != 0;
  p.data = r.getVector<Score>();
  return p;
}

std::vector<std::byte> encodeBlockFetch(const BlockFetchPayload& p) {
  ByteWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kBlockFetch));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  return std::move(w).take();
}

BlockFetchPayload decodeBlockFetch(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  EASYHPS_CHECK(static_cast<DataMsgKind>(r.get<std::uint8_t>()) ==
                    DataMsgKind::kBlockFetch,
                "kind byte is not BlockFetch");
  BlockFetchPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  return p;
}

std::vector<std::byte> encodeBlockData(const BlockDataPayload& p) {
  ByteWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.put<std::uint8_t>(p.found ? 1 : 0);
  w.putVector(p.data);
  return std::move(w).take();
}

BlockDataPayload decodeBlockData(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  BlockDataPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.found = r.get<std::uint8_t>() != 0;
  p.data = r.getVector<Score>();
  return p;
}

std::vector<std::byte> encodeBlockSpill(const BlockSpillPayload& p) {
  ByteWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kBlockSpill));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.putVector(p.data);
  return std::move(w).take();
}

BlockSpillPayload decodeBlockSpill(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  EASYHPS_CHECK(static_cast<DataMsgKind>(r.get<std::uint8_t>()) ==
                    DataMsgKind::kBlockSpill,
                "kind byte is not BlockSpill");
  BlockSpillPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.data = r.getVector<Score>();
  return p;
}

std::uint64_t blockChecksum(VertexId vertex, const CellRect& rect,
                            const std::vector<Score>& data) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(vertex));
  mix(static_cast<std::uint64_t>(rect.row0));
  mix(static_cast<std::uint64_t>(rect.col0));
  mix(static_cast<std::uint64_t>(rect.rows));
  mix(static_cast<std::uint64_t>(rect.cols));
  for (Score s : data) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s)));
  }
  return h;
}

}  // namespace easyhps::wire

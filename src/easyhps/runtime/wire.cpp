#include "easyhps/runtime/wire.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "easyhps/util/archive.hpp"

namespace easyhps::wire {
namespace {

// Encode helpers are templated over the writer so the same code drives
// the Payload-producing fast path and any plain ByteWriter use.
template <typename Writer>
void putRect(Writer& w, const CellRect& r) {
  w.template put<std::int64_t>(r.row0);
  w.template put<std::int64_t>(r.col0);
  w.template put<std::int64_t>(r.rows);
  w.template put<std::int64_t>(r.cols);
}

CellRect getRect(ByteReader& r) {
  CellRect rect;
  rect.row0 = r.get<std::int64_t>();
  rect.col0 = r.get<std::int64_t>();
  rect.rows = r.get<std::int64_t>();
  rect.cols = r.get<std::int64_t>();
  return rect;
}

template <typename Writer>
void putHaloBlocks(Writer& w, const std::vector<HaloBlock>& halos) {
  w.template put<std::uint32_t>(static_cast<std::uint32_t>(halos.size()));
  for (const HaloBlock& h : halos) {
    putRect(w, h.rect);
    w.putVector(h.data);
  }
}

// Caps the speculative reserve() a decoded count is allowed to trigger.
// A corrupted count still fails (the element reads run out of bytes and
// throw DecodeError); this only prevents it from allocating gigabytes
// first.  Real payloads never carry this many variable-length entries.
constexpr std::uint32_t kMaxReserve = 4096;

std::vector<HaloBlock> getHaloBlocks(ByteReader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<HaloBlock> halos;
  halos.reserve(std::min(n, kMaxReserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    HaloBlock h;
    h.rect = getRect(r);
    h.data = r.getVector<Score>();
    halos.push_back(std::move(h));
  }
  return halos;
}

/// Reads the trailing Score vector into `out`, borrowing the payload's
/// refcounted body when the cells sit contiguous and aligned inside it
/// (the fast path — zero bytes copied); otherwise copies out of the byte
/// stream.  Same wire format either way: count prefix + raw elements.
void getScores(ByteReader& r, const msg::Payload& payload, ScoreCells& out) {
  const auto n = r.get<std::uint64_t>();
  // Validate before allocating: a corrupted count must surface as a
  // DecodeError, not a bad_alloc (and n * sizeof(Score) must not wrap).
  if (n > r.remaining() / sizeof(Score)) {
    throw DecodeError("wire: truncated cell vector (" + std::to_string(n) +
                      " scores exceed " + std::to_string(r.remaining()) +
                      " remaining bytes)");
  }
  const std::size_t bytes = n * sizeof(Score);
  const std::byte* ptr = bytes > 0 ? r.peekContiguous(bytes) : nullptr;
  if (ptr != nullptr && r.inBody() && payload.bodyOwner() != nullptr &&
      reinterpret_cast<std::uintptr_t>(ptr) % alignof(Score) == 0) {
    out.borrow(payload.bodyOwner(),
               {reinterpret_cast<const Score*>(ptr), n});
    r.skip(bytes);
    return;
  }
  std::vector<Score> cells(n);
  r.readBytes(cells.data(), bytes);
  out.own(std::move(cells));
}

}  // namespace

msg::Payload encodeAssign(const AssignPayload& p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  putHaloBlocks(w, p.halos);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.sources.size()));
  for (const HaloSource& s : p.sources) {
    putRect(w, s.rect);
    w.put<VertexId>(s.vertex);
    w.put<std::int32_t>(s.owner);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.ackRects.size()));
  for (const CellRect& r : p.ackRects) {
    putRect(w, r);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.pendingRects.size()));
  for (const CellRect& r : p.pendingRects) {
    putRect(w, r);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.streamRects.size()));
  for (const CellRect& r : p.streamRects) {
    putRect(w, r);
  }
  return std::move(w).take();
}

AssignPayload decodeAssign(const msg::Payload& payload) {
  ByteReader r(payload);
  AssignPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.halos = getHaloBlocks(r);
  const auto nSources = r.get<std::uint32_t>();
  p.sources.reserve(std::min(nSources, kMaxReserve));
  for (std::uint32_t i = 0; i < nSources; ++i) {
    HaloSource s;
    s.rect = getRect(r);
    s.vertex = r.get<VertexId>();
    s.owner = r.get<std::int32_t>();
    p.sources.push_back(s);
  }
  const auto nAcks = r.get<std::uint32_t>();
  p.ackRects.reserve(std::min(nAcks, kMaxReserve));
  for (std::uint32_t i = 0; i < nAcks; ++i) {
    p.ackRects.push_back(getRect(r));
  }
  const auto nPending = r.get<std::uint32_t>();
  p.pendingRects.reserve(std::min(nPending, kMaxReserve));
  for (std::uint32_t i = 0; i < nPending; ++i) {
    p.pendingRects.push_back(getRect(r));
  }
  const auto nStream = r.get<std::uint32_t>();
  p.streamRects.reserve(std::min(nStream, kMaxReserve));
  for (std::uint32_t i = 0; i < nStream; ++i) {
    p.streamRects.push_back(getRect(r));
  }
  return p;
}

// Result puts `data` last on the wire (after edges + checksum) so the
// block cells can ride as the payload's zero-copy body segment.
msg::Payload encodeResult(ResultPayload p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  putHaloBlocks(w, p.edges);
  w.put<std::uint64_t>(p.checksum);
  w.put<std::uint64_t>(p.edgesChecksum);
  w.putVectorZeroCopy(std::move(p.data));
  return std::move(w).take();
}

ResultPayload decodeResult(const msg::Payload& payload, ScoreCells& data) {
  ByteReader r(payload);
  ResultPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.edges = getHaloBlocks(r);
  p.checksum = r.get<std::uint64_t>();
  p.edgesChecksum = r.get<std::uint64_t>();
  getScores(r, payload, data);
  return p;
}

ResultPayload decodeResult(const msg::Payload& payload) {
  ScoreCells cells;
  ResultPayload p = decodeResult(payload, cells);
  p.data.assign(cells.cells().begin(), cells.cells().end());
  return p;
}

msg::Payload encodeSlaveStats(const SlaveStatsPayload& p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  w.put<std::int64_t>(p.tasksExecuted);
  w.put<std::int64_t>(p.threadRestarts);
  w.put<std::int64_t>(p.subTaskRequeues);
  w.put<std::int64_t>(p.haloLocalHits);
  w.put<std::int64_t>(p.haloPeerFetches);
  w.put<std::int64_t>(p.haloMasterFetches);
  w.put<std::int64_t>(p.halosServed);
  w.put<std::int64_t>(p.storeEvictions);
  w.put<std::uint64_t>(p.storeSpilledBytes);
  w.put<std::uint64_t>(p.storePeakBytes);
  w.put<std::uint64_t>(p.peerFetchBytes);
  w.put<std::int64_t>(p.peerFetchMicros);
  w.put<std::int64_t>(p.fragmentsSent);
  w.put<std::int64_t>(p.fragmentsApplied);
  w.put<std::int64_t>(p.fragmentResends);
  w.put<std::int64_t>(p.streamOverlapMicros);
  w.put<std::int64_t>(p.corruptPayloads);
  w.put<std::int64_t>(p.decodeErrors);
  return std::move(w).take();
}

SlaveStatsPayload decodeSlaveStats(const msg::Payload& payload) {
  ByteReader r(payload);
  SlaveStatsPayload p;
  p.job = r.get<JobId>();
  p.tasksExecuted = r.get<std::int64_t>();
  p.threadRestarts = r.get<std::int64_t>();
  p.subTaskRequeues = r.get<std::int64_t>();
  p.haloLocalHits = r.get<std::int64_t>();
  p.haloPeerFetches = r.get<std::int64_t>();
  p.haloMasterFetches = r.get<std::int64_t>();
  p.halosServed = r.get<std::int64_t>();
  p.storeEvictions = r.get<std::int64_t>();
  p.storeSpilledBytes = r.get<std::uint64_t>();
  p.storePeakBytes = r.get<std::uint64_t>();
  p.peerFetchBytes = r.get<std::uint64_t>();
  p.peerFetchMicros = r.get<std::int64_t>();
  p.fragmentsSent = r.get<std::int64_t>();
  p.fragmentsApplied = r.get<std::int64_t>();
  p.fragmentResends = r.get<std::int64_t>();
  p.streamOverlapMicros = r.get<std::int64_t>();
  p.corruptPayloads = r.get<std::int64_t>();
  p.decodeErrors = r.get<std::int64_t>();
  return p;
}

msg::Payload encodeJobControl(const JobControlPayload& p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  return std::move(w).take();
}

JobControlPayload decodeJobControl(const msg::Payload& payload) {
  ByteReader r(payload);
  JobControlPayload p;
  p.job = r.get<JobId>();
  return p;
}

DataMsgKind peekDataKind(const msg::Payload& payload) {
  ByteReader r(payload);
  return static_cast<DataMsgKind>(r.get<std::uint8_t>());
}

msg::Payload encodeHaloRequest(const HaloRequestPayload& p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kHaloRequest));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  return std::move(w).take();
}

HaloRequestPayload decodeHaloRequest(const msg::Payload& payload) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) !=
      DataMsgKind::kHaloRequest) {
    throw DecodeError("wire: kind byte is not HaloRequest");
  }
  HaloRequestPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  return p;
}

msg::Payload encodeHaloData(HaloDataPayload p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  putRect(w, p.rect);
  w.put<std::uint8_t>(p.found ? 1 : 0);
  w.put<std::uint64_t>(p.checksum);
  w.putVectorZeroCopy(std::move(p.data));
  return std::move(w).take();
}

HaloDataPayload decodeHaloData(const msg::Payload& payload,
                               ScoreCells& data) {
  ByteReader r(payload);
  HaloDataPayload p;
  p.job = r.get<JobId>();
  p.rect = getRect(r);
  p.found = r.get<std::uint8_t>() != 0;
  p.checksum = r.get<std::uint64_t>();
  getScores(r, payload, data);
  return p;
}

HaloDataPayload decodeHaloData(const msg::Payload& payload) {
  ScoreCells cells;
  HaloDataPayload p = decodeHaloData(payload, cells);
  p.data.assign(cells.cells().begin(), cells.cells().end());
  return p;
}

msg::Payload encodeBlockFetch(const BlockFetchPayload& p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kBlockFetch));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  return std::move(w).take();
}

BlockFetchPayload decodeBlockFetch(const msg::Payload& payload) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) !=
      DataMsgKind::kBlockFetch) {
    throw DecodeError("wire: kind byte is not BlockFetch");
  }
  BlockFetchPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  return p;
}

msg::Payload encodeBlockData(BlockDataPayload p) {
  msg::PayloadWriter w;
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.put<std::uint8_t>(p.found ? 1 : 0);
  w.put<std::uint64_t>(p.checksum);
  w.putVectorZeroCopy(std::move(p.data));
  return std::move(w).take();
}

BlockDataPayload decodeBlockData(const msg::Payload& payload,
                                 ScoreCells& data) {
  ByteReader r(payload);
  BlockDataPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.found = r.get<std::uint8_t>() != 0;
  p.checksum = r.get<std::uint64_t>();
  getScores(r, payload, data);
  return p;
}

BlockDataPayload decodeBlockData(const msg::Payload& payload) {
  ScoreCells cells;
  BlockDataPayload p = decodeBlockData(payload, cells);
  p.data.assign(cells.cells().begin(), cells.cells().end());
  return p;
}

msg::Payload encodeBlockSpill(BlockSpillPayload p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kBlockSpill));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.put<std::uint64_t>(p.checksum);
  w.putVectorZeroCopy(std::move(p.data));
  return std::move(w).take();
}

BlockSpillPayload decodeBlockSpill(const msg::Payload& payload,
                                   ScoreCells& data) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) !=
      DataMsgKind::kBlockSpill) {
    throw DecodeError("wire: kind byte is not BlockSpill");
  }
  BlockSpillPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.checksum = r.get<std::uint64_t>();
  getScores(r, payload, data);
  return p;
}

BlockSpillPayload decodeBlockSpill(const msg::Payload& payload) {
  ScoreCells cells;
  BlockSpillPayload p = decodeBlockSpill(payload, cells);
  p.data.assign(cells.cells().begin(), cells.cells().end());
  return p;
}

// HaloPartial puts `data` last so fragments ride the zero-copy body on
// both legs (producer → master → consumer; the forward is a refcount
// bump of the same payload, so the kind byte stays in place).
msg::Payload encodeHaloPartial(HaloPartialPayload p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kHaloPartial));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  putRect(w, p.rect);
  w.put<std::uint64_t>(p.checksum);
  w.putVectorZeroCopy(std::move(p.data));
  return std::move(w).take();
}

HaloPartialPayload decodeHaloPartial(const msg::Payload& payload,
                                     ScoreCells& data) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) !=
      DataMsgKind::kHaloPartial) {
    throw DecodeError("wire: kind byte is not HaloPartial");
  }
  HaloPartialPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  p.rect = getRect(r);
  p.checksum = r.get<std::uint64_t>();
  getScores(r, payload, data);
  return p;
}

HaloPartialPayload decodeHaloPartial(const msg::Payload& payload) {
  ScoreCells cells;
  HaloPartialPayload p = decodeHaloPartial(payload, cells);
  p.data.assign(cells.cells().begin(), cells.cells().end());
  return p;
}

msg::Payload encodeFragmentResend(const FragmentResendPayload& p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(
      static_cast<std::uint8_t>(DataMsgKind::kFragmentResend));
  w.put<JobId>(p.job);
  w.put<VertexId>(p.vertex);
  return std::move(w).take();
}

FragmentResendPayload decodeFragmentResend(const msg::Payload& payload) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) !=
      DataMsgKind::kFragmentResend) {
    throw DecodeError("wire: kind byte is not FragmentResend");
  }
  FragmentResendPayload p;
  p.job = r.get<JobId>();
  p.vertex = r.get<VertexId>();
  return p;
}

msg::Payload encodeHealthPing(const HealthPingPayload& p) {
  msg::PayloadWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(DataMsgKind::kPing));
  w.put<std::uint64_t>(p.seq);
  return std::move(w).take();
}

HealthPingPayload decodeHealthPing(const msg::Payload& payload) {
  ByteReader r(payload);
  if (static_cast<DataMsgKind>(r.get<std::uint8_t>()) != DataMsgKind::kPing) {
    throw DecodeError("wire: kind byte is not Ping");
  }
  HealthPingPayload p;
  p.seq = r.get<std::uint64_t>();
  return p;
}

msg::Payload encodeHealthAck(const HealthAckPayload& p) {
  msg::PayloadWriter w;
  w.put<std::uint64_t>(p.seq);
  return std::move(w).take();
}

HealthAckPayload decodeHealthAck(const msg::Payload& payload) {
  ByteReader r(payload);
  HealthAckPayload p;
  p.seq = r.get<std::uint64_t>();
  return p;
}

msg::TransportFn makeChaosTransport(const fault::TransportChaos& chaos,
                                    int ranks) {
  if (!chaos.enabled()) {
    return nullptr;
  }
  auto engine = std::make_shared<fault::TransportChaosEngine>(chaos, ranks);
  return [engine](const msg::Message& m) -> msg::TransportDecision {
    switch (m.tag) {
      case kTagAssign:
      case kTagResult:
      case kTagHaloData:
      case kTagBlockData:
      case kTagHealthAck:
      case kTagHaloPartial:  // forwarded fragments: fair game, fragments
        break;               // are idempotent and resend-recoverable
      case kTagData:
        if (peekDataKind(m.payload) == DataMsgKind::kBlockSpill) {
          return {};  // the only copy of an evicted block: never faulted
        }
        break;
      default:
        return {};  // control bracket + collectives stay reliable
    }
    msg::TransportDecision d = engine->decide(m.source, m.dest);
    // Corruption only targets the cell-carrying reply tags, whose
    // end-to-end checksums make every flip detectable.  Flipping a
    // request or an Assign could produce a self-consistent wrong
    // computation no receiver can distinguish from a correct one.
    switch (m.tag) {
      case kTagResult:
      case kTagHaloData:
      case kTagBlockData:
      case kTagHaloPartial:
        break;
      default:
        d.corrupt = false;
        break;
    }
    return d;
  };
}

std::uint64_t blockChecksum(VertexId vertex, const CellRect& rect,
                            std::span<const Score> data) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(vertex));
  mix(static_cast<std::uint64_t>(rect.row0));
  mix(static_cast<std::uint64_t>(rect.col0));
  mix(static_cast<std::uint64_t>(rect.rows));
  mix(static_cast<std::uint64_t>(rect.cols));
  for (Score s : data) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s)));
  }
  return h;
}

std::uint64_t resultChecksum(const ResultPayload& p) {
  // Same FNV-1a mix as blockChecksum, chained across the header fields
  // and every edge strip, so a flip in vertex, rect, the block checksum,
  // or any edge's rect/cells (or a dropped/reordered edge) changes the
  // digest.  `p.data` is excluded: `p.checksum` already covers it.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(p.vertex));
  mix(static_cast<std::uint64_t>(p.rect.row0));
  mix(static_cast<std::uint64_t>(p.rect.col0));
  mix(static_cast<std::uint64_t>(p.rect.rows));
  mix(static_cast<std::uint64_t>(p.rect.cols));
  mix(p.checksum);
  mix(static_cast<std::uint64_t>(p.edges.size()));
  for (const HaloBlock& e : p.edges) {
    mix(static_cast<std::uint64_t>(e.rect.row0));
    mix(static_cast<std::uint64_t>(e.rect.col0));
    mix(static_cast<std::uint64_t>(e.rect.rows));
    mix(static_cast<std::uint64_t>(e.rect.cols));
    for (Score s : e.data) {
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s)));
    }
  }
  return h;
}

}  // namespace easyhps::wire

#include "easyhps/runtime/health.hpp"

#include "easyhps/util/error.hpp"

namespace easyhps {
namespace {

constexpr double kEwmaWeight = 0.2;

}  // namespace

const char* slaveHealthName(SlaveHealth state) {
  switch (state) {
    case SlaveHealth::kHealthy:
      return "healthy";
    case SlaveHealth::kSuspect:
      return "suspect";
    case SlaveHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

HealthRegistry::HealthRegistry(int slaveCount, HealthConfig config)
    : config_(config), records_(static_cast<std::size_t>(slaveCount)) {
  EASYHPS_EXPECTS(slaveCount > 0);
  EASYHPS_EXPECTS(config.missThreshold > 0);
}

HealthRegistry::Record& HealthRegistry::record(int rank) {
  EASYHPS_EXPECTS(rank >= 1 &&
                  rank <= static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(rank - 1)];
}

const HealthRegistry::Record& HealthRegistry::record(int rank) const {
  EASYHPS_EXPECTS(rank >= 1 &&
                  rank <= static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(rank - 1)];
}

bool HealthRegistry::allowAssign(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record(rank).state != SlaveHealth::kQuarantined;
}

SlaveHealth HealthRegistry::stateOf(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record(rank).state;
}

std::vector<HealthRegistry::Ping> HealthRegistry::duePings(
    Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Ping> due;
  for (int rank = 1; rank <= static_cast<int>(records_.size()); ++rank) {
    Record& rec = record(rank);
    if (rec.outstandingSeq.has_value()) {
      continue;  // one in flight; sweep() expires it before the next ping
    }
    if (rec.lastPing.has_value() &&
        now - *rec.lastPing < config_.heartbeatInterval) {
      continue;
    }
    rec.outstandingSeq = nextSeq_++;
    rec.outstandingSince = now;
    rec.lastPing = now;
    ++counters_.pingsSent;
    due.push_back(Ping{rank, *rec.outstandingSeq});
  }
  return due;
}

void HealthRegistry::onAck(int rank, std::uint64_t seq,
                           Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Record& rec = record(rank);
  if (!rec.outstandingSeq.has_value() || *rec.outstandingSeq != seq) {
    return;  // stale or duplicated ack
  }
  rec.outstandingSeq.reset();
  rec.consecutiveMisses = 0;
  ++counters_.acks;
  const double latency =
      std::chrono::duration<double>(now - rec.outstandingSince).count();
  rec.ewmaLatencySeconds =
      rec.sawAck ? (1.0 - kEwmaWeight) * rec.ewmaLatencySeconds +
                       kEwmaWeight * latency
                 : latency;
  rec.sawAck = true;
  switch (rec.state) {
    case SlaveHealth::kHealthy:
      break;
    case SlaveHealth::kSuspect:
      rec.state = SlaveHealth::kHealthy;
      break;
    case SlaveHealth::kQuarantined:
      // Timed re-admission: an ack during the backoff window proves the
      // rank answers again but does not re-admit it yet.
      if (now - rec.quarantinedAt >= config_.quarantineBackoff) {
        rec.state = SlaveHealth::kHealthy;
        ++counters_.readmissions;
        for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
          if (it->rank == rank && !it->end.has_value()) {
            it->end = now;
            break;
          }
        }
      }
      break;
  }
}

std::vector<int> HealthRegistry::sweep(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> quarantined;
  for (int rank = 1; rank <= static_cast<int>(records_.size()); ++rank) {
    Record& rec = record(rank);
    if (!rec.outstandingSeq.has_value() ||
        now - rec.outstandingSince < config_.heartbeatTimeout) {
      continue;
    }
    rec.outstandingSeq.reset();  // expired: the next duePings re-pings
    ++counters_.misses;
    ++rec.consecutiveMisses;
    if (rec.state == SlaveHealth::kHealthy) {
      rec.state = SlaveHealth::kSuspect;
    }
    if (rec.state == SlaveHealth::kSuspect &&
        rec.consecutiveMisses >= config_.missThreshold) {
      rec.state = SlaveHealth::kQuarantined;
      rec.quarantinedAt = now;
      ++counters_.quarantines;
      spans_.push_back(QuarantineSpan{rank, now, std::nullopt});
      quarantined.push_back(rank);
    }
  }
  return quarantined;
}

HealthRegistry::Counters HealthRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

double HealthRegistry::ewmaLatencySeconds(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record(rank).ewmaLatencySeconds;
}

std::vector<HealthRegistry::QuarantineSpan> HealthRegistry::quarantineSpans()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

}  // namespace easyhps

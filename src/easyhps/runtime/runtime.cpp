#include "easyhps/runtime/runtime.hpp"

#include "easyhps/msg/cluster.hpp"
#include "easyhps/runtime/master.hpp"
#include "easyhps/runtime/slave.hpp"
#include "easyhps/util/clock.hpp"

namespace easyhps {
namespace {

/// Feed of exactly one job: `Runtime::run` is the n = 1 special case of
/// the master service loop (see master.hpp).
class OneShotFeed : public JobFeed {
 public:
  explicit OneShotFeed(ServiceJob job) : job_(job) {}

  std::optional<ServiceJob> nextJob() override {
    if (served_) {
      return std::nullopt;
    }
    served_ = true;
    return job_;
  }

  void jobFinished(JobId id, MasterJobOutcome outcome) override {
    EASYHPS_EXPECTS(id == job_.id);
    outcome_ = std::move(outcome);
  }

  const MasterJobOutcome& outcome() const { return outcome_; }

 private:
  ServiceJob job_;
  bool served_ = false;
  MasterJobOutcome outcome_;
};

/// Directory for the one-shot run: every JobStart resolves to the same
/// problem/plan.
class OneJobDirectory : public SlaveJobDirectory {
 public:
  OneJobDirectory(JobId id, const DpProblem& problem, fault::FaultPlan& plan)
      : id_(id), entry_{&problem, &plan} {}

  Entry find(JobId job) const override {
    EASYHPS_CHECK(job == id_, "unknown job id in one-shot run");
    return entry_;
  }

 private:
  JobId id_;
  Entry entry_;
};

}  // namespace

Runtime::Runtime(RuntimeConfig cfg) : cfg_(std::move(cfg)) {
  EASYHPS_EXPECTS(cfg_.slaveCount >= 1);
  EASYHPS_EXPECTS(cfg_.threadsPerSlave >= 1);
  EASYHPS_EXPECTS(cfg_.processPartitionRows >= 1 &&
                  cfg_.processPartitionCols >= 1);
  EASYHPS_EXPECTS(cfg_.threadPartitionRows >= 1 &&
                  cfg_.threadPartitionCols >= 1);
}

RunResult Runtime::run(const DpProblem& problem) const {
  RunResult result{
      Window(CellRect{0, 0, problem.rows(), problem.cols()},
             problem.boundaryFn()),
      RunStats{}};
  fault::FaultPlan plan(cfg_.faults);

  constexpr JobId kJobId = 1;
  OneShotFeed feed(ServiceJob{kJobId, &problem, &result.matrix, nullptr});
  OneJobDirectory directory(kJobId, problem, plan);

  Stopwatch watch;
  const msg::ClusterReport report = msg::Cluster::run(
      cfg_.slaveCount + 1, [&](msg::Comm& comm) {
        if (comm.rank() == 0) {
          runMasterService(comm, cfg_, feed);
        } else {
          runSlaveService(comm, cfg_, directory);
        }
      });

  result.stats = feed.outcome().stats;
  result.stats.elapsedSeconds = watch.elapsedSeconds();
  result.stats.messages = report.messages;
  result.stats.bytes = report.bytes;
  result.stats.faultsTriggered = plan.triggered();
  return result;
}

double RunStats::taskImbalance() const {
  if (tasksPerSlave.empty()) {
    return 0.0;
  }
  std::int64_t maxTasks = 0;
  std::int64_t total = 0;
  for (std::int64_t t : tasksPerSlave) {
    maxTasks = std::max(maxTasks, t);
    total += t;
  }
  if (total == 0) {
    return 0.0;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(tasksPerSlave.size());
  return static_cast<double>(maxTasks) / mean;
}

}  // namespace easyhps

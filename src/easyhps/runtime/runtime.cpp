#include "easyhps/runtime/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "easyhps/cache/result_cache.hpp"
#include "easyhps/msg/cluster.hpp"
#include "easyhps/runtime/master.hpp"
#include "easyhps/runtime/slave.hpp"
#include "easyhps/runtime/wire.hpp"
#include "easyhps/util/clock.hpp"

namespace easyhps {
namespace {

/// Feed of exactly one job: `Runtime::run` is the n = 1 special case of
/// the master service loop (see master.hpp).
class OneShotFeed : public JobFeed {
 public:
  explicit OneShotFeed(ServiceJob job) : job_(job) {}

  std::optional<ServiceJob> nextJob() override {
    if (served_) {
      return std::nullopt;
    }
    served_ = true;
    return job_;
  }

  void jobFinished(JobId id, MasterJobOutcome outcome) override {
    EASYHPS_EXPECTS(id == job_.id);
    outcome_ = std::move(outcome);
  }

  const MasterJobOutcome& outcome() const { return outcome_; }

 private:
  ServiceJob job_;
  bool served_ = false;
  MasterJobOutcome outcome_;
};

/// Directory for the one-shot run: every JobStart resolves to the same
/// problem/plan.
class OneJobDirectory : public SlaveJobDirectory {
 public:
  OneJobDirectory(JobId id, const DpProblem& problem, fault::FaultPlan& plan)
      : id_(id), entry_{&problem, &plan} {}

  Entry find(JobId job) const override {
    EASYHPS_CHECK(job == id_, "unknown job id in one-shot run");
    return entry_;
  }

 private:
  JobId id_;
  Entry entry_;
};

}  // namespace

void RuntimeConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw LogicError("invalid RuntimeConfig: " + what);
  };
  if (slaveCount < 1) {
    fail("slaveCount must be >= 1");
  }
  if (threadsPerSlave < 1) {
    fail("threadsPerSlave must be >= 1");
  }
  if (processPartitionRows < 1 || processPartitionCols < 1) {
    fail("processPartition rows/cols must be >= 1");
  }
  if (threadPartitionRows < 1 || threadPartitionCols < 1) {
    fail("threadPartition rows/cols must be >= 1");
  }
  if (taskTimeout.count() <= 0) {
    fail("taskTimeout must be positive");
  }
  if (subTaskTimeout.count() <= 0) {
    fail("subTaskTimeout must be positive");
  }
  if (dataFetchTimeout.count() <= 0) {
    fail("dataFetchTimeout must be positive");
  }
  if (!checkpointDir.empty() && checkpointInterval.count() <= 0) {
    // An interval of 0 would fsync on every record and a negative one
    // would never seal an epoch — both are sizing bugs, not intents.
    fail("checkpointIntervalMs must be positive when checkpointDir is set");
  }
  if (maxRecoveryRefetches < 1) {
    fail("maxRecoveryRefetches must be >= 1 (a block needs at least one "
         "fetch attempt before recompute escalation)");
  }
  if (storeByteBudget == 0) {
    // The raw BlockStore reads 0 as "unlimited", but a config reaching 0
    // is a sizing bug (e.g. a MiB→byte conversion that truncated), and
    // "unlimited" silently defeats the spill machinery under test.
    fail("storeByteBudget must be positive (no store would fit a block)");
  }
  if (enableLiveness) {
    if (!enableFaultTolerance) {
      fail("enableLiveness requires enableFaultTolerance (quarantined "
           "work is recovered by the overtime queue)");
    }
    if (heartbeatInterval.count() <= 0) {
      fail("heartbeatInterval must be positive");
    }
    if (heartbeatTimeout.count() <= 0) {
      fail("heartbeatTimeout must be positive");
    }
    if (heartbeatMissThreshold < 1) {
      fail("heartbeatMissThreshold must be >= 1");
    }
    if (quarantineBackoff.count() < 0) {
      fail("quarantineBackoff must be non-negative");
    }
  }
  const auto validProbability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!validProbability(transportChaos.dropProbability) ||
      !validProbability(transportChaos.duplicateProbability) ||
      !validProbability(transportChaos.delayProbability) ||
      !validProbability(transportChaos.corruptProbability)) {
    fail("transportChaos probabilities must lie in [0, 1]");
  }
  for (const fault::FaultSpec& spec : faults) {
    if (!validProbability(spec.probability)) {
      fail("fault spec probability must lie in [0, 1]");
    }
    if (spec.kind == fault::FaultKind::kSlaveDeath &&
        !(enableLiveness && enableFaultTolerance)) {
      // Without liveness the master waits forever for the dead rank's
      // per-job Stats; without FT its in-flight work is never recovered.
      fail("kSlaveDeath faults require enableLiveness and "
           "enableFaultTolerance");
    }
    if (spec.kind == fault::FaultKind::kMasterCrash) {
      if (!enableFaultTolerance) {
        // Recovery re-distributes the crashed frontier through the
        // overtime queue; without FT the resumed job would hang.
        fail("kMasterCrash faults require enableFaultTolerance");
      }
      if (spec.count < 0) {
        fail("kMasterCrash faults must have a finite count (an unlimited "
             "spec would crash every resumed incarnation forever)");
      }
    }
  }
  if (!rankProfiles.empty()) {
    if (static_cast<int>(rankProfiles.size()) != slaveCount) {
      fail("rankProfiles must have one entry per slave (got " +
           std::to_string(rankProfiles.size()) + " for " +
           std::to_string(slaveCount) + " slaves)");
    }
    for (std::size_t i = 0; i < rankProfiles.size(); ++i) {
      const std::string field = "rankProfiles[" + std::to_string(i) + "]";
      if (!(rankProfiles[i].speed > 0)) {
        fail(field + ".speed must be positive");
      }
      if (!(rankProfiles[i].linkBandwidth > 0)) {
        fail(field + ".linkBandwidth must be positive");
      }
      if (rankProfiles[i].memoryBudget == 0) {
        // Same reasoning as storeByteBudget: 0 would silently mean
        // "unlimited" at the store layer and defeat memory-aware
        // placement.
        fail(field + ".memoryBudget must be positive");
      }
    }
  }
}

std::vector<RankProfile> RuntimeConfig::resolvedRankProfiles() const {
  if (!rankProfiles.empty()) {
    return rankProfiles;
  }
  RankProfile uniform;
  uniform.memoryBudget = storeByteBudget;
  return std::vector<RankProfile>(static_cast<std::size_t>(slaveCount),
                                  uniform);
}

std::uint64_t RuntimeConfig::storeBudgetForRank(int rank) const {
  if (rankProfiles.empty() || rank < 1 ||
      rank > static_cast<int>(rankProfiles.size())) {
    return storeByteBudget;
  }
  return rankProfiles[static_cast<std::size_t>(rank - 1)].memoryBudget;
}

void applySchedulerEnv(RuntimeConfig& cfg) {
  if (const char* env = std::getenv("EASYHPS_SCHED")) {
    if (const auto kind = parsePolicyKind(env)) {
      cfg.masterPolicy = *kind;
    } else {
      std::fprintf(stderr,
                   "easyhps: ignoring EASYHPS_SCHED=%s (unknown policy)\n",
                   env);
    }
  }
  if (cfg.checkpointDir.empty()) {
    if (const char* env = std::getenv("EASYHPS_CKPT_DIR")) {
      if (env[0] != '\0') {
        cfg.checkpointDir = env;
      }
    }
  }
  if (cfg.rankProfiles.empty()) {
    if (const char* env = std::getenv("EASYHPS_RANK_SPEEDS")) {
      RankProfile base;
      base.memoryBudget = cfg.storeByteBudget;
      std::string error;
      auto profiles =
          parseRankSpeeds(env, cfg.slaveCount, base, &error);
      if (profiles.empty()) {
        std::fprintf(stderr,
                     "easyhps: ignoring EASYHPS_RANK_SPEEDS=%s (%s)\n", env,
                     error.c_str());
      } else {
        cfg.rankProfiles = std::move(profiles);
      }
    }
  }
}

Runtime::Runtime(RuntimeConfig cfg) : cfg_(std::move(cfg)) {
  applySchedulerEnv(cfg_);
  cfg_.validate();
}

RunResult Runtime::run(const DpProblem& problem) const {
  cfg_.validate();  // cfg_ is immutable, but run() is the documented gate

  // Cross-run result cache (attachCache).  Cacheable iff the problem has
  // a canonical fingerprint, the run is fault-free (fault configs exist
  // to exercise failure paths), and the full matrix is assembled (a
  // boundary-only matrix is not the product the cache promises).
  std::optional<cache::CacheKey> cacheKey;
  if (cache_ && cache::cacheEnabled() && cfg_.faults.empty() &&
      cfg_.chaosSeed == 0 && cfg_.assembleFullMatrix) {
    cacheKey = cache::jobKey(problem, cfg_);
    if (cacheKey) {
      if (auto hit = cache_->find(*cacheKey)) {
        RunResult cached{hit->matrix, RunStats{}};
        cached.stats.servedFromCache = true;
        cached.stats.tableChecksum = hit->tableChecksum;
        return cached;
      }
    }
  }

  RunResult result{
      Window(CellRect{0, 0, problem.rows(), problem.cols()},
             problem.boundaryFn()),
      RunStats{}};
  fault::FaultPlan plan(cfg_.faults, cfg_.chaosSeed);

  constexpr JobId kJobId = 1;
  OneShotFeed feed(
      ServiceJob{kJobId, &problem, &result.matrix, nullptr, &plan});
  OneJobDirectory directory(kJobId, problem, plan);

  Stopwatch watch;
  const msg::ClusterReport report = msg::Cluster::run(
      cfg_.slaveCount + 1,
      [&](msg::Comm& comm) {
        if (comm.rank() == 0) {
          runMasterService(comm, cfg_, feed);
        } else {
          runSlaveService(comm, cfg_, directory);
        }
      },
      wire::makeChaosTransport(cfg_.transportChaos, cfg_.slaveCount + 1));

  if (feed.outcome().failed) {
    throw Error("job failed: " + feed.outcome().failureReason);
  }
  result.stats = feed.outcome().stats;
  result.stats.elapsedSeconds = watch.elapsedSeconds();
  result.stats.messages = report.messages;
  result.stats.bytes = report.bytes;
  result.stats.faultsTriggered = plan.triggered();
  if (cacheKey) {
    cache_->insert(*cacheKey, result.matrix, result.stats.tableChecksum);
  }
  return result;
}

double RunStats::taskImbalance() const {
  if (tasksPerSlave.empty()) {
    return 0.0;
  }
  std::int64_t maxTasks = 0;
  std::int64_t total = 0;
  for (std::int64_t t : tasksPerSlave) {
    maxTasks = std::max(maxTasks, t);
    total += t;
  }
  if (total == 0) {
    return 0.0;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(tasksPerSlave.size());
  return static_cast<double>(maxTasks) / mean;
}

}  // namespace easyhps

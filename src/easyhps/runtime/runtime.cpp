#include "easyhps/runtime/runtime.hpp"

#include "easyhps/msg/cluster.hpp"
#include "easyhps/runtime/master.hpp"
#include "easyhps/runtime/slave.hpp"
#include "easyhps/util/clock.hpp"

namespace easyhps {

Runtime::Runtime(RuntimeConfig cfg) : cfg_(std::move(cfg)) {
  EASYHPS_EXPECTS(cfg_.slaveCount >= 1);
  EASYHPS_EXPECTS(cfg_.threadsPerSlave >= 1);
  EASYHPS_EXPECTS(cfg_.processPartitionRows >= 1 &&
                  cfg_.processPartitionCols >= 1);
  EASYHPS_EXPECTS(cfg_.threadPartitionRows >= 1 &&
                  cfg_.threadPartitionCols >= 1);
}

RunResult Runtime::run(const DpProblem& problem) const {
  RunResult result{
      Window(CellRect{0, 0, problem.rows(), problem.cols()},
             problem.boundaryFn()),
      RunStats{}};
  fault::FaultPlan plan(cfg_.faults);

  Stopwatch watch;
  const msg::ClusterReport report = msg::Cluster::run(
      cfg_.slaveCount + 1, [&](msg::Comm& comm) {
        if (comm.rank() == 0) {
          result.stats = runMaster(comm, problem, cfg_, result.matrix);
        } else {
          runSlave(comm, problem, cfg_, plan);
        }
      });

  result.stats.elapsedSeconds = watch.elapsedSeconds();
  result.stats.messages = report.messages;
  result.stats.bytes = report.bytes;
  result.stats.faultsTriggered = plan.triggered();
  return result;
}

double RunStats::taskImbalance() const {
  if (tasksPerSlave.empty()) {
    return 0.0;
  }
  std::int64_t maxTasks = 0;
  std::int64_t total = 0;
  for (std::int64_t t : tasksPerSlave) {
    maxTasks = std::max(maxTasks, t);
    total += t;
  }
  if (total == 0) {
    return 0.0;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(tasksPerSlave.size());
  return static_cast<double>(maxTasks) / mean;
}

}  // namespace easyhps

#pragma once
/// \file runtime.hpp
/// Public entry point of the EasyHPS runtime system.
///
/// Usage (see examples/quickstart.cpp):
///
///   easyhps::RuntimeConfig cfg;
///   cfg.slaveCount = 3;
///   cfg.threadsPerSlave = 4;
///   cfg.processPartitionRows = cfg.processPartitionCols = 64;
///   cfg.threadPartitionRows = cfg.threadPartitionCols = 16;
///
///   easyhps::EditDistance problem(a, b);
///   easyhps::Runtime runtime(cfg);
///   easyhps::RunResult result = runtime.run(problem);
///   Score d = result.matrix.get(problem.rows()-1, problem.cols()-1);
///
/// `run` spins up an in-process cluster of 1 master + slaveCount slave
/// ranks (the stand-in for `mpirun -np N`, see DESIGN.md), executes the
/// two-level master/slave schedule and returns the solved matrix plus run
/// statistics.

#include <memory>

#include "easyhps/dp/problem.hpp"
#include "easyhps/runtime/config.hpp"

namespace easyhps {

namespace cache {
class ResultCache;
}  // namespace cache

struct RunResult {
  Window matrix;   ///< whole-matrix window with every active cell computed
  RunStats stats;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);

  /// Solves `problem` on the in-process cluster.  Throws on configuration
  /// errors or unrecoverable rank failures; injected faults from
  /// cfg.faults are recovered, not thrown.
  RunResult run(const DpProblem& problem) const;

  /// Attaches a cross-run result cache: `run` answers from it when the
  /// problem is fingerprintable (DpProblem::fingerprint) and inserts the
  /// assembled matrix on success.  Only fault-free configs participate —
  /// a config with injected faults exists to exercise failure paths, so
  /// it always executes.  Pass nullptr to detach.  The serve layer keeps
  /// its own cache (service.hpp); this hook serves one-shot runs (soaks,
  /// examples, repeated CLI invocations within one process).
  void attachCache(std::shared_ptr<cache::ResultCache> cache) {
    cache_ = std::move(cache);
  }

  const RuntimeConfig& config() const { return cfg_; }

 private:
  RuntimeConfig cfg_;
  std::shared_ptr<cache::ResultCache> cache_;
};

}  // namespace easyhps

#pragma once
/// \file runtime.hpp
/// Public entry point of the EasyHPS runtime system.
///
/// Usage (see examples/quickstart.cpp):
///
///   easyhps::RuntimeConfig cfg;
///   cfg.slaveCount = 3;
///   cfg.threadsPerSlave = 4;
///   cfg.processPartitionRows = cfg.processPartitionCols = 64;
///   cfg.threadPartitionRows = cfg.threadPartitionCols = 16;
///
///   easyhps::EditDistance problem(a, b);
///   easyhps::Runtime runtime(cfg);
///   easyhps::RunResult result = runtime.run(problem);
///   Score d = result.matrix.get(problem.rows()-1, problem.cols()-1);
///
/// `run` spins up an in-process cluster of 1 master + slaveCount slave
/// ranks (the stand-in for `mpirun -np N`, see DESIGN.md), executes the
/// two-level master/slave schedule and returns the solved matrix plus run
/// statistics.

#include "easyhps/dp/problem.hpp"
#include "easyhps/runtime/config.hpp"

namespace easyhps {

struct RunResult {
  Window matrix;   ///< whole-matrix window with every active cell computed
  RunStats stats;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);

  /// Solves `problem` on the in-process cluster.  Throws on configuration
  /// errors or unrecoverable rank failures; injected faults from
  /// cfg.faults are recovered, not thrown.
  RunResult run(const DpProblem& problem) const;

  const RuntimeConfig& config() const { return cfg_; }

 private:
  RuntimeConfig cfg_;
};

}  // namespace easyhps

#pragma once
/// \file config.hpp
/// Runtime configuration and run statistics.
///
/// The fields mirror the paper's user-settable parameters (Table I):
/// `process_partition_size` and `thread_partition_size` control the two
/// levels of task partition; the policy kinds select between the EasyHPS
/// dynamic worker pool and the static baselines; the timeouts drive the
/// overtime queues of the fault-tolerance machinery.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "easyhps/fault/chaos.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/sched/policy.hpp"

namespace easyhps {

/// How DP cell data moves between ranks (DESIGN.md, "Control plane vs.
/// data plane").
enum class DataPlaneMode {
  /// The paper's protocol: every byte funnels through rank 0 — Assign
  /// carries halo cells, Result carries the whole block.  Kept for A/B
  /// benching (`bench_dataplane`) and as the reference behaviour.
  kMasterRelay,
  /// Slaves retain computed blocks in a per-rank BlockStore and fetch
  /// dependency halos from the owning peer; the master keeps only the
  /// ownership directory plus boundary cells, and pulls full blocks
  /// lazily at job end.
  kPeerToPeer,
};

struct RuntimeConfig {
  /// Computing (slave) nodes; the master is one additional rank.
  int slaveCount = 2;
  /// Computing threads per slave node (`ct` in the paper, 1..11 on
  /// Tianhe-1A; unbounded here).
  int threadsPerSlave = 2;

  /// process_partition_size — master-level block size.
  std::int64_t processPartitionRows = 64;
  std::int64_t processPartitionCols = 64;
  /// thread_partition_size — slave-level sub-block size.
  std::int64_t threadPartitionRows = 16;
  std::int64_t threadPartitionCols = 16;

  /// Scheduling policy at each level (EasyHPS = dynamic at both).
  PolicyKind masterPolicy = PolicyKind::kDynamic;
  PolicyKind slavePolicy = PolicyKind::kDynamic;

  /// Master overtime-queue deadline per sub-task assignment.
  std::chrono::milliseconds taskTimeout{5000};
  /// Slave overtime-queue deadline per sub-sub-task.
  std::chrono::milliseconds subTaskTimeout{2000};
  /// Master fault tolerance on/off (slave thread-crash recovery is always
  /// on — an uncaught exception would kill the pool anyway).
  bool enableFaultTolerance = true;

  /// Slaves store only the block + halo segments instead of their dense
  /// bounding box.  Addresses the paper's stated memory limitation (§VII):
  /// for strip-halo problems like SWGG the bounding box of a bottom-right
  /// block approaches the whole matrix.  Off = dense windows (useful for
  /// A/B testing the two paths).
  bool sparseSlaveWindows = true;

  /// Injected faults (empty plan = fault-free run).
  std::vector<fault::FaultSpec> faults;
  /// Seed for the fault plan's probabilistic specs (see ChaosPlan).
  std::uint64_t chaosSeed = 0;
  /// Randomized transport faults (drop/duplicate/delay) injected into the
  /// message substrate; disabled unless a probability is set.
  fault::TransportChaos transportChaos;

  /// Master-side liveness (heartbeats + quarantine; runtime/health.hpp).
  /// Off by default: heartbeat traffic would perturb the exact per-job
  /// message accounting the A/B benches rely on.  Chaos runs switch it on.
  bool enableLiveness = false;
  std::chrono::milliseconds heartbeatInterval{100};
  std::chrono::milliseconds heartbeatTimeout{150};
  int heartbeatMissThreshold = 3;
  std::chrono::milliseconds quarantineBackoff{500};

  /// How long a rank waits on one data-plane fetch (peer halo pull,
  /// master block pull) before retrying or falling back.  Bounded so a
  /// dead peer costs a timeout, not a hang.
  std::chrono::milliseconds dataFetchTimeout{250};

  /// Durable checkpoint/restart (easyhps::ckpt).  Empty = journaling off;
  /// non-empty = the master journals completed blocks to
  /// `<checkpointDir>/job-<key>.wal` and a crashed/restarted master
  /// resumes the wavefront from the journal's frontier.  The
  /// `EASYHPS_CKPT_DIR` env knob fills this when empty.
  std::string checkpointDir;
  /// Flush + fsync + epoch cadence of the journal: everything sealed by
  /// the last epoch survives a master crash, everything after it is
  /// recomputed.  Smaller = less recompute on recovery, more fsyncs.
  std::chrono::milliseconds checkpointInterval{200};
  /// Bounded escalation on data-plane integrity failures: after this many
  /// failed/corrupt fetch attempts for one block the master stops
  /// re-fetching, invalidates the owner and recomputes from dependencies
  /// (same path as PR 5's dead-owner recovery).
  int maxRecoveryRefetches = 4;

  /// Record every (time, slave, vertex) assignment in
  /// RunStats::scheduleTrace — the quarantine gate's audit trail (tests).
  bool recordScheduleTrace = false;

  /// Data-plane protocol; see DataPlaneMode.
  DataPlaneMode dataPlane = DataPlaneMode::kPeerToPeer;
  /// Byte budget of each slave's BlockStore (kPeerToPeer only); blocks
  /// evicted beyond it spill to the master.  Must be positive: validate()
  /// rejects 0 (the raw store::BlockStore treats 0 as unlimited, but at
  /// the config level that silent meaning flip has proven to be a
  /// misconfiguration, not an intent).
  std::uint64_t storeByteBudget = 256ULL << 20;
  /// kPeerToPeer: pull every non-resident block to the master matrix at
  /// job end.  Off = the result matrix holds only boundary cells; callers
  /// consume `RunStats::tableChecksum` (or re-fetch blocks themselves)
  /// instead of reading interior cells.
  bool assembleFullMatrix = true;

  /// Per-rank capability profiles for the heterogeneity-aware scheduler
  /// (PolicyKind::kEct / kEctSteal) — entry i describes slave rank i+1.
  /// Empty = homogeneous cluster (speed 1, `storeByteBudget`, default
  /// bandwidth).  When non-empty it must have exactly `slaveCount`
  /// entries with positive speed/bandwidth/memoryBudget (validate()),
  /// and each rank's BlockStore adopts its profile's `memoryBudget`
  /// instead of the global `storeByteBudget`.  The `EASYHPS_RANK_SPEEDS`
  /// env knob fills speeds here when the list is empty.
  std::vector<RankProfile> rankProfiles;

  /// Profiles with defaults filled in — always `slaveCount` entries, each
  /// carrying `storeByteBudget` when no explicit profile was configured.
  std::vector<RankProfile> resolvedRankProfiles() const;

  /// BlockStore byte budget for slave `rank` (1-based, as in msg::Comm).
  std::uint64_t storeBudgetForRank(int rank) const;

  /// Rejects configurations that would hang or spin instead of failing
  /// (non-positive counts, partitions, timeouts; liveness without fault
  /// tolerance; degenerate rank profiles).  Throws util LogicError with
  /// the offending field named.
  /// Called by Runtime (construction + run) and serve::Service.
  void validate() const;
};

/// Applies the process-wide scheduler env knobs to `cfg`:
///  * `EASYHPS_SCHED=dynamic|bcw|cw|locality|ect|ect-steal` overrides
///    `masterPolicy`;
///  * `EASYHPS_RANK_SPEEDS=4,1,...` (one entry per slave) fills
///    `rankProfiles` speeds when none are configured.
/// Unknown names / malformed lists are ignored with a note on stderr, so
/// a stale env var can never turn into a crash.  Called by the Runtime
/// constructor and serve::Service.
void applySchedulerEnv(RuntimeConfig& cfg);

struct RunStats {
  double elapsedSeconds = 0.0;

  /// True when Runtime::run answered from an attached ResultCache instead
  /// of executing the cluster; all message/task counters are then zero.
  bool servedFromCache = false;

  std::uint64_t messages = 0;  ///< substrate messages (incl. collectives)
  std::uint64_t bytes = 0;

  /// Zero-copy transport counters (per-job deltas; see msg::TrafficStats).
  /// `bytes` above stays the logical payload size on both message paths —
  /// these record how many deliveries skipped the buffered-send copy and
  /// how many bytes moved by reference count.  Both zero under
  /// MsgPath::kCopy.
  std::uint64_t copiesAvoided = 0;
  std::uint64_t zeroCopyBytes = 0;

  /// Byte-level split of `bytes` (per-job deltas): links touching rank 0
  /// vs slave↔slave links — the number the data-plane refactor moves.
  std::uint64_t bytesViaMaster = 0;
  std::uint64_t bytesPeerToPeer = 0;
  /// Per-link byte totals for this job, indexed source * ranks + dest
  /// (ranks = slaveCount + 1); see trace::linkMatrixTable.
  std::vector<std::uint64_t> linkBytes;

  /// Sum of wire::blockChecksum over the job's distinct completed blocks;
  /// identical across data-plane modes for the same problem.
  std::uint64_t tableChecksum = 0;

  /// Kernel tier the job's blocks actually dispatched to ("simd", "span",
  /// "reference" — after the runtime ISA demotion, so a simd-requesting
  /// run on a non-simd CPU reports "span"), and the autotuner's memoized
  /// tile picks ("lcs/dense/simd=512x2 ..."; empty when no tuned kernel
  /// ran).  Makes mixed-tier runs diagnosable from stats alone.
  std::string kernelPathName;
  std::string kernelTiles;

  std::int64_t tasks = 0;            ///< master-level assignments sent
  std::int64_t completedTasks = 0;   ///< distinct sub-tasks finished
  std::int64_t retries = 0;          ///< master FT re-distributions
  std::int64_t lateResults = 0;      ///< results after cancellation
  std::int64_t staleJobResults = 0;  ///< results of an *earlier* job
                                     ///< discarded by the multiplexed master
  std::int64_t masterStalledPicks = 0;

  std::int64_t threadRestarts = 0;   ///< slave FT thread restarts
  std::int64_t subTaskRequeues = 0;  ///< slave overtime re-queues
  std::int64_t faultsTriggered = 0;

  // Liveness / chaos counters (all zero with liveness and chaos off).
  std::int64_t heartbeatsSent = 0;
  std::int64_t heartbeatMisses = 0;
  std::int64_t quarantines = 0;     ///< suspect → quarantined transitions
  std::int64_t readmissions = 0;    ///< quarantined → healthy transitions
  std::int64_t statsSkipped = 0;    ///< per-job slave stats never collected
                                    ///< (rank quarantined at job end)
  std::int64_t blocksRecomputed = 0;  ///< master recomputed a block whose
                                      ///< owner died with the only copy
  /// Transport-chaos outcomes observed during the job (per-job deltas of
  /// the substrate counters; includes DropFn drops).
  std::uint64_t transportDropped = 0;
  std::uint64_t transportDuplicated = 0;
  std::uint64_t transportDelayed = 0;
  std::uint64_t transportCorrupted = 0;

  // End-to-end integrity + checkpoint/restart counters (easyhps::ckpt).
  /// Payloads whose carried content checksum failed verification at
  /// inject time (master and slaves combined) — each one was discarded
  /// and recovered by re-fetch / re-distribution, never injected.
  std::int64_t corruptBlocks = 0;
  /// Malformed/truncated payloads rejected by the hardened wire decoders
  /// (master and slaves combined) instead of aborting the rank.
  std::int64_t decodeErrors = 0;
  /// Blocks restored from the checkpoint journal on a resumed run
  /// instead of being recomputed.
  std::int64_t blocksRecovered = 0;
  /// Master crash/restart cycles this job survived (kMasterCrash chaos
  /// or a real process restart over the same checkpointDir).
  std::int64_t masterRestarts = 0;
  /// Wall-clock a resumed master spent getting back to the crash-point
  /// frontier (journal replay + recomputing unjournaled blocks); 0 on a
  /// clean run.  Scales with checkpointInterval, not job size.
  double recoverySeconds = 0.0;

  // Data-plane counters (all zero under kMasterRelay).
  std::int64_t haloLocalHits = 0;      ///< halo pieces served by own store
  std::int64_t haloPeerFetches = 0;    ///< halo pieces fetched peer-to-peer
  std::int64_t haloMasterFetches = 0;  ///< halo pieces fetched from rank 0
  std::int64_t halosServedToPeers = 0;
  std::int64_t storeEvictions = 0;
  std::uint64_t storeSpilledBytes = 0;
  std::int64_t blocksAssembled = 0;  ///< blocks pulled at job end
  /// Ownership entries invalidated after a timeout re-distribution (the
  /// peers-must-not-fetch-from-a-dead-rank fix).
  std::int64_t ownershipInvalidations = 0;

  // Heterogeneity-aware placement counters (zero unless masterPolicy is
  // kEct / kEctSteal).
  /// Placements where no healthy rank's store budget could fit the output
  /// block — the block will spill reactively at the slave; surfaced here
  /// instead of hiding inside storeEvictions.
  std::int64_t placementSpills = 0;
  /// Steal grants: unstarted assignments revoked from the most-loaded
  /// rank's plan and re-issued to an idle one.
  std::int64_t tasksStolen = 0;
  /// Largest BlockStore high-water mark across slave ranks (peer data
  /// plane only) — the number the memory-aware placement bounds.
  std::uint64_t storePeakBytes = 0;

  // Streaming-pipeline counters (all zero under PipelineMode::kBarrier).
  std::int64_t fragmentsSent = 0;       ///< producer → master halo fragments
  std::int64_t fragmentsApplied = 0;    ///< fragment pieces injected into
                                        ///< consumer windows
  std::int64_t fragmentsForwarded = 0;  ///< master → consumer forwards
  std::int64_t fragmentsCoalesced = 0;  ///< fragments adding no new coverage
                                        ///< (duplicates, resend overlap)
  std::int64_t fragmentResends = 0;     ///< stalled-consumer resend requests
                                        ///< the master served
  std::int64_t blocksStartedEarly = 0;  ///< assignments fired before every
                                        ///< producer block finished
  /// Summed per-block overlap between first sub-block compute and the
  /// arrival of the last pending halo fragment ("first-compute-to-full-
  /// halo"): the wall-clock the pipeline reclaimed from the barrier.
  double streamOverlapSeconds = 0.0;

  std::vector<std::int64_t> tasksPerSlave;

  /// One master-level assignment, on the job's own clock (seconds since
  /// dispatch).  Populated only with `recordScheduleTrace`.
  struct ScheduleEvent {
    double seconds = 0.0;
    int slave = 0;
    std::int64_t vertex = -1;
  };
  std::vector<ScheduleEvent> scheduleTrace;

  /// Quarantine intervals on the same clock; `endSeconds < 0` = the rank
  /// was still quarantined when the job finished.  Populated only with
  /// `recordScheduleTrace` + liveness.
  struct QuarantineEvent {
    int slave = 0;
    double beginSeconds = 0.0;
    double endSeconds = -1.0;
  };
  std::vector<QuarantineEvent> quarantineTrace;

  /// max/mean of tasksPerSlave (1.0 = perfectly balanced).
  double taskImbalance() const;
};

}  // namespace easyhps

#pragma once
/// \file config.hpp
/// Runtime configuration and run statistics.
///
/// The fields mirror the paper's user-settable parameters (Table I):
/// `process_partition_size` and `thread_partition_size` control the two
/// levels of task partition; the policy kinds select between the EasyHPS
/// dynamic worker pool and the static baselines; the timeouts drive the
/// overtime queues of the fault-tolerance machinery.

#include <chrono>
#include <cstdint>
#include <vector>

#include "easyhps/fault/plan.hpp"
#include "easyhps/sched/policy.hpp"

namespace easyhps {

struct RuntimeConfig {
  /// Computing (slave) nodes; the master is one additional rank.
  int slaveCount = 2;
  /// Computing threads per slave node (`ct` in the paper, 1..11 on
  /// Tianhe-1A; unbounded here).
  int threadsPerSlave = 2;

  /// process_partition_size — master-level block size.
  std::int64_t processPartitionRows = 64;
  std::int64_t processPartitionCols = 64;
  /// thread_partition_size — slave-level sub-block size.
  std::int64_t threadPartitionRows = 16;
  std::int64_t threadPartitionCols = 16;

  /// Scheduling policy at each level (EasyHPS = dynamic at both).
  PolicyKind masterPolicy = PolicyKind::kDynamic;
  PolicyKind slavePolicy = PolicyKind::kDynamic;

  /// Master overtime-queue deadline per sub-task assignment.
  std::chrono::milliseconds taskTimeout{5000};
  /// Slave overtime-queue deadline per sub-sub-task.
  std::chrono::milliseconds subTaskTimeout{2000};
  /// Master fault tolerance on/off (slave thread-crash recovery is always
  /// on — an uncaught exception would kill the pool anyway).
  bool enableFaultTolerance = true;

  /// Slaves store only the block + halo segments instead of their dense
  /// bounding box.  Addresses the paper's stated memory limitation (§VII):
  /// for strip-halo problems like SWGG the bounding box of a bottom-right
  /// block approaches the whole matrix.  Off = dense windows (useful for
  /// A/B testing the two paths).
  bool sparseSlaveWindows = true;

  /// Injected faults (empty plan = fault-free run).
  std::vector<fault::FaultSpec> faults;
};

struct RunStats {
  double elapsedSeconds = 0.0;
  std::uint64_t messages = 0;  ///< substrate messages (incl. collectives)
  std::uint64_t bytes = 0;

  std::int64_t tasks = 0;            ///< master-level assignments sent
  std::int64_t completedTasks = 0;   ///< distinct sub-tasks finished
  std::int64_t retries = 0;          ///< master FT re-distributions
  std::int64_t lateResults = 0;      ///< results after cancellation
  std::int64_t staleJobResults = 0;  ///< results of an *earlier* job
                                     ///< discarded by the multiplexed master
  std::int64_t masterStalledPicks = 0;

  std::int64_t threadRestarts = 0;   ///< slave FT thread restarts
  std::int64_t subTaskRequeues = 0;  ///< slave overtime re-queues
  std::int64_t faultsTriggered = 0;

  std::vector<std::int64_t> tasksPerSlave;

  /// max/mean of tasksPerSlave (1.0 = perfectly balanced).
  double taskImbalance() const;
};

}  // namespace easyhps

#pragma once
/// \file key.hpp
/// Content-addressed cache keys for completed DP jobs.
///
/// A key identifies *what table a job produces*: the problem's canonical
/// fingerprint (kind tag + full input payload; DpProblem::fingerprint)
/// plus the configuration fields that shape the result matrix.  Two
/// submissions with equal keys are promised bit-identical tables, so a
/// cached Window can stand in for a fresh solve.
///
/// Deliberately excluded from the key: scheduling policies, timeouts,
/// liveness knobs, fault plans, message path, kernel path.  All of those
/// change *how* the table is computed, never its cells — that invariance
/// is exactly what the correctness suite (test_correctness, test_chaos)
/// pins down, and the cache leans on it.  Fault-injecting submissions are
/// kept out of the cache by the serve layer instead (they are about
/// exercising failure paths, not producing tables).

#include <optional>

#include "easyhps/dp/problem.hpp"
#include "easyhps/runtime/config.hpp"
#include "easyhps/util/hash.hpp"

namespace easyhps::cache {

using CacheKey = util::HashDigest;
using CacheKeyHasher = util::HashDigestHasher;

/// Canonical key for running `problem` under `cfg`, or nullopt when the
/// problem has no canonical form (DpProblem::fingerprint returned false)
/// and is therefore uncacheable.
std::optional<CacheKey> jobKey(const DpProblem& problem,
                               const RuntimeConfig& cfg);

}  // namespace easyhps::cache

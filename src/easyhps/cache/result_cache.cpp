#include "easyhps/cache/result_cache.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace easyhps::cache {

namespace {

// EASYHPS_CACHE=off|0|false disables the result cache process-wide — the
// acceptance escape hatch ("reproduces today's behavior exactly") and the
// same idiom as EASYHPS_KERNEL_PATH / EASYHPS_MSG_PATH.
bool initialCacheEnabled() {
  const char* env = std::getenv("EASYHPS_CACHE");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
       std::strcmp(env, "false") == 0)) {
    return false;
  }
  return true;
}

std::atomic<bool> g_cache_enabled{initialCacheEnabled()};

// Fixed per-entry bookkeeping charge (map node, list node, control block)
// so a budget of N small entries cannot balloon the index unbounded.
constexpr std::int64_t kEntryOverheadBytes = 256;

}  // namespace

bool cacheEnabled() {
  return g_cache_enabled.load(std::memory_order_relaxed);
}

void setCacheEnabled(bool enabled) {
  g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedCacheEnabled::ScopedCacheEnabled(bool enabled)
    : previous_(cacheEnabled()) {
  setCacheEnabled(enabled);
}

ScopedCacheEnabled::~ScopedCacheEnabled() { setCacheEnabled(previous_); }

CachedResult::CachedResult(Window m, std::uint64_t checksum)
    : matrix(std::move(m)),
      tableChecksum(checksum),
      bytes(matrix.box().cellCount() *
                static_cast<std::int64_t>(sizeof(Score)) +
            kEntryOverheadBytes) {}

ResultCache::ResultCache(std::int64_t byteBudget)
    : byteBudget_(byteBudget < 1 ? 1 : byteBudget) {}

std::shared_ptr<const CachedResult> ResultCache::find(const CacheKey& key) {
  if (!cacheEnabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump recency
  ++stats_.hits;
  return it->second->result;
}

std::shared_ptr<const CachedResult> ResultCache::insert(
    const CacheKey& key, Window matrix, std::uint64_t tableChecksum) {
  if (!cacheEnabled()) {
    return nullptr;
  }
  auto result =
      std::make_shared<const CachedResult>(std::move(matrix), tableChecksum);
  if (result->bytes > byteBudget_) {
    return nullptr;  // would evict everything and still not fit
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: identical key ⇒ identical table, but replacing keeps the
    // accounting simple and tolerates a checksum-bearing re-run.
    stats_.bytes -= it->second->result->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    --stats_.entries;
  }
  lru_.push_front(Entry{key, result});
  index_[key] = lru_.begin();
  ++stats_.entries;
  ++stats_.inserts;
  stats_.bytes += result->bytes;
  evictToBudgetLocked();
  return result;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::evictToBudgetLocked() {
  while (stats_.bytes > byteBudget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.result->bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
  }
}

}  // namespace easyhps::cache

#pragma once
/// \file result_cache.hpp
/// Content-addressed LRU cache of completed DP tables.
///
/// Maps a CacheKey (cache/key.hpp) to the finished whole-matrix Window of
/// an earlier run.  Entries are immutable and shared by pointer: a hit
/// hands back `shared_ptr<const CachedResult>` and callers copy the
/// Window into their own outcome, so a hit never aliases mutable state
/// across jobs.  Eviction is plain LRU over a byte budget — the cache
/// holds *results* (one Window per distinct job), so recency is the right
/// signal and per-entry cost is easy to account exactly.
///
/// Thread-safe; every public method takes the one internal mutex.  The
/// serve layer calls it from the submit path and the master-loop
/// completion path concurrently.
///
/// Global kill switch: `EASYHPS_CACHE=off` (or `0`/`false`) disables
/// every lookup and insert process-wide without touching configs, the
/// same escape-hatch idiom as EASYHPS_KERNEL_PATH / EASYHPS_MSG_PATH.
/// `find`/`insert` honour it internally; `cacheEnabled()` exposes it so
/// callers can skip key derivation too.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "easyhps/cache/key.hpp"
#include "easyhps/dp/window.hpp"

namespace easyhps::cache {

/// Process-wide cache toggle: EASYHPS_CACHE env (read once) overridden by
/// setCacheEnabled.  Defaults to enabled.
bool cacheEnabled();
/// Test/tooling override of the env toggle (mirrors setKernelPath).
void setCacheEnabled(bool enabled);

/// RAII scope for setCacheEnabled (tests).
class ScopedCacheEnabled {
 public:
  explicit ScopedCacheEnabled(bool enabled);
  ~ScopedCacheEnabled();
  ScopedCacheEnabled(const ScopedCacheEnabled&) = delete;
  ScopedCacheEnabled& operator=(const ScopedCacheEnabled&) = delete;

 private:
  bool previous_;
};

/// One completed table.  Immutable after construction.
struct CachedResult {
  Window matrix;
  /// RunStats::tableChecksum of the producing run; propagated into
  /// cache-hit stats so checksum consumers see the same value as a fresh
  /// solve.
  std::uint64_t tableChecksum = 0;
  /// Bytes this entry charges against the budget (cells + bookkeeping).
  std::int64_t bytes = 0;

  CachedResult(Window m, std::uint64_t checksum);
};

class ResultCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;
    std::int64_t bytes = 0;
  };

  /// `byteBudget` must be >= 1 (validate() upstream enforces it; the
  /// constructor clamps defensively).  An entry larger than the whole
  /// budget is never admitted.
  explicit ResultCache(std::int64_t byteBudget);

  /// Hit: bumps recency and returns the shared entry.  Miss (or cache
  /// disabled): nullptr.
  std::shared_ptr<const CachedResult> find(const CacheKey& key);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the
  /// budget holds.  Returns the stored entry, or nullptr when the cache
  /// is disabled or the entry alone exceeds the budget.
  std::shared_ptr<const CachedResult> insert(const CacheKey& key,
                                             Window matrix,
                                             std::uint64_t tableChecksum);

  Stats stats() const;
  std::int64_t byteBudget() const { return byteBudget_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const CachedResult> result;
  };
  using LruList = std::list<Entry>;

  void evictToBudgetLocked();

  const std::int64_t byteBudget_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHasher> index_;
  Stats stats_;
};

}  // namespace easyhps::cache

#include "easyhps/cache/key.hpp"

namespace easyhps::cache {

std::optional<CacheKey> jobKey(const DpProblem& problem,
                               const RuntimeConfig& cfg) {
  util::Hasher h;
  h.tag("easyhps.cache.v1");
  if (!problem.fingerprint(h)) {
    return std::nullopt;
  }
  // Partition-relevant config.  Partition sizes do not change cell values
  // (the oracle suite proves that), but they do change which cells a
  // sparse run materializes and how the assembled matrix is tiled, so two
  // partitionings are kept as distinct cache entries rather than promised
  // interchangeable.
  h.tag("cfg");
  h.value(cfg.processPartitionRows);
  h.value(cfg.processPartitionCols);
  h.value(cfg.threadPartitionRows);
  h.value(cfg.threadPartitionCols);
  h.value(cfg.sparseSlaveWindows);
  h.value(cfg.dataPlane);
  return h.digest();
}

}  // namespace easyhps::cache

#include "easyhps/ckpt/journal.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "easyhps/util/error.hpp"

namespace easyhps::ckpt {
namespace {

constexpr std::uint32_t kRecordMagic = 0x48435045u;  // "EPCH"
constexpr std::uint8_t kRecJobMeta = 1;
constexpr std::uint8_t kRecBlock = 2;
constexpr std::uint8_t kRecEpoch = 3;
constexpr std::uint8_t kRecCommit = 4;

std::uint64_t fnv1a(const std::byte* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Flat little-endian serializer for journal payloads.  Deliberately
/// self-contained: the journal is a durable on-disk format and must not
/// drift with the in-memory wire archive.
struct RecWriter {
  std::vector<std::byte> out;

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto offset = out.size();
    out.resize(offset + sizeof(T));
    std::memcpy(out.data() + offset, &value, sizeof(T));
  }
  void putString(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto offset = out.size();
    out.resize(offset + s.size());
    std::memcpy(out.data() + offset, s.data(), s.size());
  }
  void putRect(const CellRect& r) {
    put<std::int64_t>(r.row0);
    put<std::int64_t>(r.col0);
    put<std::int64_t>(r.rows);
    put<std::int64_t>(r.cols);
  }
  void putCells(const std::vector<Score>& cells) {
    put<std::uint64_t>(cells.size());
    const std::size_t bytes = cells.size() * sizeof(Score);
    const auto offset = out.size();
    out.resize(offset + bytes);
    if (bytes > 0) {
      std::memcpy(out.data() + offset, cells.data(), bytes);
    }
  }
};

/// Bounds-checked reader; `ok` goes false (sticky) instead of throwing so
/// a torn tail degrades to "stop replaying here".
struct RecReader {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;
  bool ok = true;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (!ok || size - pos < sizeof(T)) {
      ok = false;
      return value;
    }
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
  std::string getString() {
    const auto n = get<std::uint64_t>();
    if (!ok || size - pos < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
  CellRect getRect() {
    CellRect r;
    r.row0 = get<std::int64_t>();
    r.col0 = get<std::int64_t>();
    r.rows = get<std::int64_t>();
    r.cols = get<std::int64_t>();
    return r;
  }
  std::vector<Score> getCells() {
    const auto n = get<std::uint64_t>();
    std::vector<Score> cells;
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(Score);
    if (!ok || size - pos < bytes) {
      ok = false;
      return cells;
    }
    cells.resize(static_cast<std::size_t>(n));
    if (bytes > 0) {
      std::memcpy(cells.data(), data + pos, bytes);
    }
    pos += bytes;
    return cells;
  }
};

std::vector<std::byte> encodeMeta(const JobMetaRecord& meta) {
  RecWriter w;
  w.putString(meta.key);
  w.put<std::int64_t>(meta.partitionRows);
  w.put<std::int64_t>(meta.partitionCols);
  w.put<std::int64_t>(meta.vertexCount);
  w.put<std::uint8_t>(meta.dataPlane);
  return std::move(w.out);
}

std::vector<std::byte> encodeBlock(const BlockRecord& rec) {
  RecWriter w;
  w.put<std::int64_t>(static_cast<std::int64_t>(rec.vertex));
  w.put<std::int32_t>(rec.owner);
  w.put<std::uint8_t>(rec.spilled ? 1 : 0);
  w.put<std::uint64_t>(rec.checksum);
  w.putRect(rec.rect);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(rec.pieces.size()));
  for (const BlockPiece& piece : rec.pieces) {
    w.putRect(piece.rect);
    w.putCells(piece.cells);
  }
  return std::move(w.out);
}

/// Frames one record: magic | type | len | payload | fnv1a(payload).
void appendFrame(std::vector<std::byte>& out, std::uint8_t type,
                 const std::vector<std::byte>& payload) {
  RecWriter w;
  w.put<std::uint32_t>(kRecordMagic);
  w.put<std::uint8_t>(type);
  w.put<std::uint64_t>(payload.size());
  out.insert(out.end(), w.out.begin(), w.out.end());
  out.insert(out.end(), payload.begin(), payload.end());
  RecWriter tail;
  tail.put<std::uint64_t>(fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), tail.out.begin(), tail.out.end());
}

std::string journalPath(const std::string& dir, const std::string& key,
                        const char* ext) {
  return dir + "/job-" + key + ext;
}

bool readFile(const std::string& path, std::vector<std::byte>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  std::size_t got = 0;
  if (!out.empty()) {
    got = std::fread(out.data(), 1, out.size(), f);
  }
  std::fclose(f);
  out.resize(got);
  return true;
}

/// Replays one file's frames into `state`; returns false on a torn or
/// corrupt record (replay of this file stops there).
bool replayFile(const std::vector<std::byte>& bytes, RecoveredState& state,
                std::unordered_map<VertexId, std::size_t>& slot) {
  std::size_t pos = 0;
  constexpr std::size_t kHeader = 4 + 1 + 8;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kHeader) {
      return false;  // torn frame header
    }
    RecReader head{bytes.data() + pos, kHeader, 0};
    const auto magic = head.get<std::uint32_t>();
    const auto type = head.get<std::uint8_t>();
    const auto len = head.get<std::uint64_t>();
    if (magic != kRecordMagic || bytes.size() - pos - kHeader < len + 8) {
      return false;  // corrupt magic or torn payload/trailer
    }
    const std::byte* payload = bytes.data() + pos + kHeader;
    RecReader tail{payload + len, 8, 0};
    if (tail.get<std::uint64_t>() !=
        fnv1a(payload, static_cast<std::size_t>(len))) {
      return false;  // bit-flipped record
    }
    RecReader r{payload, static_cast<std::size_t>(len), 0};
    switch (type) {
      case kRecJobMeta: {
        JobMetaRecord meta;
        meta.key = r.getString();
        meta.partitionRows = r.get<std::int64_t>();
        meta.partitionCols = r.get<std::int64_t>();
        meta.vertexCount = r.get<std::int64_t>();
        meta.dataPlane = r.get<std::uint8_t>();
        if (r.ok) {
          state.meta = std::move(meta);
          state.hasMeta = true;
        }
        break;
      }
      case kRecBlock: {
        BlockRecord rec;
        rec.vertex = static_cast<VertexId>(r.get<std::int64_t>());
        rec.owner = r.get<std::int32_t>();
        rec.spilled = r.get<std::uint8_t>() != 0;
        rec.checksum = r.get<std::uint64_t>();
        rec.rect = r.getRect();
        const auto pieces = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; r.ok && i < pieces; ++i) {
          BlockPiece piece;
          piece.rect = r.getRect();
          piece.cells = r.getCells();
          rec.pieces.push_back(std::move(piece));
        }
        if (r.ok) {
          // Latest record per vertex wins (a spill supersedes the
          // original completion record).
          auto it = slot.find(rec.vertex);
          if (it == slot.end()) {
            slot.emplace(rec.vertex, state.blocks.size());
            state.blocks.push_back(std::move(rec));
          } else {
            state.blocks[it->second] = std::move(rec);
          }
        }
        break;
      }
      case kRecEpoch:
        ++state.epochs;
        break;
      case kRecCommit:
        state.committed = true;
        break;
      default:
        return false;  // unknown record type: treat as corruption
    }
    pos += kHeader + static_cast<std::size_t>(len) + 8;
  }
  return true;
}

}  // namespace

std::optional<RecoveredState> loadJournal(const std::string& dir,
                                          const std::string& key) {
  std::vector<std::byte> snap;
  std::vector<std::byte> wal;
  const bool haveSnap = readFile(journalPath(dir, key, ".snap"), snap);
  const bool haveWal = readFile(journalPath(dir, key, ".wal"), wal);
  if (!haveSnap && !haveWal) {
    return std::nullopt;
  }
  RecoveredState state;
  std::unordered_map<VertexId, std::size_t> slot;
  // A torn snapshot poisons everything after it; a torn WAL tail only
  // loses the records past the tear — both degrade, neither throws.
  if (!replayFile(snap, state, slot)) {
    state.tornTail = true;
    return state;
  }
  if (!replayFile(wal, state, slot)) {
    state.tornTail = true;
  }
  return state;
}

void discardJournal(const std::string& dir, const std::string& key) {
  std::error_code ec;
  std::filesystem::remove(journalPath(dir, key, ".wal"), ec);
  std::filesystem::remove(journalPath(dir, key, ".snap"), ec);
}

JournalWriter::JournalWriter(Options options, const JobMetaRecord& meta)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  metaBytes_ = encodeMeta(meta);
  const std::string path = walPath();
  std::error_code sizeEc;
  const auto existing = std::filesystem::file_size(path, sizeEc);
  const bool walEmpty = sizeEc || existing == 0;
  const bool fresh = walEmpty && !std::filesystem::exists(snapPath());
  wal_ = std::fopen(path.c_str(), "ab");
  if (wal_ == nullptr) {
    throw Error("ckpt: cannot open journal " + path);
  }
  walBytes_ = sizeEc ? 0 : static_cast<std::uint64_t>(existing);
  lastFlush_ = std::chrono::steady_clock::now();
  if (fresh) {
    std::lock_guard<std::mutex> lock(mutex_);
    appendFrameLocked(kRecJobMeta, metaBytes_);
    flushLocked(/*withEpoch=*/true);
  }
}

JournalWriter::~JournalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ != nullptr) {
    if (!crashed_ && !committed_) {
      flushLocked(/*withEpoch=*/true);
    }
    std::fclose(wal_);
    wal_ = nullptr;
  }
}

void JournalWriter::appendFrameLocked(std::uint8_t type,
                                      const std::vector<std::byte>& payload) {
  appendFrame(buffer_, type, payload);
}

void JournalWriter::appendBlock(BlockRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || committed_ || wal_ == nullptr) {
    return;
  }
  appendFrameLocked(kRecBlock, encodeBlock(record));
  bool found = false;
  for (BlockRecord& live : live_) {
    if (live.vertex == record.vertex) {
      live = std::move(record);
      found = true;
      break;
    }
  }
  if (!found) {
    live_.push_back(std::move(record));
  }
}

void JournalWriter::flushLocked(bool withEpoch) {
  if (wal_ == nullptr) {
    return;
  }
  if (withEpoch) {
    RecWriter epoch;
    epoch.put<std::uint64_t>(epochs_ + 1);
    appendFrameLocked(kRecEpoch, epoch.out);
  }
  if (!buffer_.empty()) {
    std::fwrite(buffer_.data(), 1, buffer_.size(), wal_);
    walBytes_ += buffer_.size();
    bytesWritten_ += buffer_.size();
    buffer_.clear();
  }
  std::fflush(wal_);
  ::fsync(fileno(wal_));
  if (withEpoch) {
    ++epochs_;
  }
  lastFlush_ = std::chrono::steady_clock::now();
}

void JournalWriter::compactLocked() {
  // Rewrite the deduped live state as a fresh snapshot (tmp + rename so a
  // crash mid-compaction leaves the previous snapshot intact), then
  // truncate the WAL.
  const std::string tmp = snapPath() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return;  // disk trouble: keep journaling into the (long) WAL
  }
  std::vector<std::byte> bytes;
  appendFrame(bytes, kRecJobMeta, metaBytes_);
  for (const BlockRecord& rec : live_) {
    appendFrame(bytes, kRecBlock, encodeBlock(rec));
  }
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, snapPath(), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::fclose(wal_);
  wal_ = std::fopen(walPath().c_str(), "wb");
  walBytes_ = 0;
  bytesWritten_ += bytes.size();
  ++compactions_;
}

void JournalWriter::maybeFlush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || committed_ || wal_ == nullptr) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now - lastFlush_ < options_.flushInterval) {
    return;
  }
  flushLocked(/*withEpoch=*/true);
  if (walBytes_ > options_.compactThresholdBytes) {
    compactLocked();
  }
}

void JournalWriter::flushEpoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || committed_ || wal_ == nullptr) {
    return;
  }
  flushLocked(/*withEpoch=*/true);
  if (walBytes_ > options_.compactThresholdBytes) {
    compactLocked();
  }
}

void JournalWriter::commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || committed_ || wal_ == nullptr) {
    return;
  }
  appendFrameLocked(kRecCommit, {});
  flushLocked(/*withEpoch=*/false);
  std::fclose(wal_);
  wal_ = nullptr;
  committed_ = true;
  std::error_code ec;
  std::filesystem::remove(walPath(), ec);
  std::filesystem::remove(snapPath(), ec);
}

void JournalWriter::simulateCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) {
    return;
  }
  buffer_.clear();  // unflushed records die with the process
  std::fclose(wal_);
  wal_ = nullptr;
  crashed_ = true;
}

std::uint64_t JournalWriter::epochsSealed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epochs_;
}

std::uint64_t JournalWriter::bytesWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytesWritten_;
}

std::uint64_t JournalWriter::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

bool JournalWriter::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

std::string JournalWriter::walPath() const {
  return journalPath(options_.dir, options_.key, ".wal");
}

std::string JournalWriter::snapPath() const {
  return journalPath(options_.dir, options_.key, ".snap");
}

}  // namespace easyhps::ckpt

#pragma once
/// \file journal.hpp
/// Durable checkpoint/restart journal for master-side job progress.
///
/// The master is the single point of failure of the paper's protocol: it
/// alone knows which blocks of a job have completed, who owns their cells,
/// and what the completed frontier of the wavefront is.  `easyhps::ckpt`
/// makes that knowledge durable with the classic write-ahead-log shape:
///
///  * an append-only WAL (`<dir>/job-<key>.wal`) of framed records —
///    JobMeta once at open, then one Block record per completed block
///    (owner rank, content checksum, and the cells the master would need
///    to rebuild successor halos: the full block under kMasterRelay, the
///    ack-edge boundary cells under kPeerToPeer) and one Spill record per
///    block evicted out of a slave store (full cells — the spill copy is
///    the only one left);
///  * buffered appends flushed on a configurable interval; every flush is
///    `fsync`ed and sealed with an Epoch marker, so everything before the
///    last epoch survives process death and everything after it is
///    discarded by `simulateCrash()` — the crash model the kMasterCrash
///    chaos kind exercises;
///  * periodic compaction: when the WAL outgrows a threshold the deduped
///    latest-record-per-vertex state is rewritten into a snapshot file
///    (`.snap`, tmp + rename) and the WAL truncated, bounding replay cost
///    by live state, not job length;
///  * `commit()` on clean job completion deletes both files — a finished
///    job needs no restart.
///
/// Every record is framed as
///   magic u32 | type u8 | payloadLen u64 | payload | fnv1a(payload) u64
/// so `loadJournal` detects a torn or bit-flipped tail record, stops
/// there, and reports `tornTail` instead of replaying garbage — replaying
/// the same journal twice yields the same recovered state (idempotence).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "easyhps/dag/pattern.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps::ckpt {

/// One rectangle of cells persisted with a block record: the full block
/// under kMasterRelay / for spills, the ack-edge boundary rects under
/// kPeerToPeer (all a successor's halo can ever read).
struct BlockPiece {
  CellRect rect;
  std::vector<Score> cells;
};

/// Journal image of one completed block.
struct BlockRecord {
  VertexId vertex = -1;
  /// Rank whose BlockStore held the block when the record was written
  /// (0 = the master's matrix holds everything the record carries).
  int owner = 0;
  /// True when this record is a spill: the owner evicted the block and
  /// `pieces` holds the full cells (the only surviving copy).
  bool spilled = false;
  /// Content checksum (wire::blockChecksum over the full block) — what a
  /// reloaded copy from a slave store is verified against.
  std::uint64_t checksum = 0;
  CellRect rect;
  std::vector<BlockPiece> pieces;
};

/// Written once when a journal is created; replay refuses to resume a job
/// whose identity or partitioning no longer matches.
struct JobMetaRecord {
  std::string key;  ///< hex job fingerprint (cache::jobKey)
  std::int64_t partitionRows = 0;
  std::int64_t partitionCols = 0;
  std::int64_t vertexCount = 0;
  std::uint8_t dataPlane = 0;  ///< static_cast of DataPlaneMode
};

/// Result of replaying snapshot + WAL.
struct RecoveredState {
  JobMetaRecord meta;
  bool hasMeta = false;
  /// Deduped, latest record per vertex, in first-seen order.
  std::vector<BlockRecord> blocks;
  std::uint64_t epochs = 0;  ///< fsync'd epoch markers replayed
  bool committed = false;    ///< clean-completion marker present
  bool tornTail = false;     ///< replay stopped at a torn/corrupt record
};

/// Replays `<dir>/job-<key>.snap` then `.wal`.  nullopt = no journal on
/// disk (nothing to recover); a present-but-mismatched or empty journal
/// comes back with `hasMeta == false` and no blocks.
std::optional<RecoveredState> loadJournal(const std::string& dir,
                                          const std::string& key);

/// Deletes `<dir>/job-<key>.{wal,snap}` if present — used when a journal
/// on disk turns out to be incompatible with the job about to run (e.g.
/// the partition config changed) and must not seed its recovery.
void discardJournal(const std::string& dir, const std::string& key);

/// Append-side of the journal.  Thread-safe: the master's scheduler thread
/// and its data-plane thread (spills) both append.
class JournalWriter {
 public:
  struct Options {
    std::string dir;
    std::string key;
    std::chrono::milliseconds flushInterval{200};
    std::uint64_t compactThresholdBytes = 4ull << 20;
  };

  /// Opens (creating `dir` if needed) and appends; writes `meta` + an
  /// epoch marker when the journal is fresh.  Throws util::Error on I/O
  /// failure.
  JournalWriter(Options options, const JobMetaRecord& meta);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one block (or spill) record; durable only after the next
  /// interval flush / flushEpoch().
  void appendBlock(BlockRecord record);

  /// Flushes + fsyncs + seals an epoch if `flushInterval` has elapsed
  /// since the last one (and compacts if the WAL outgrew the threshold).
  void maybeFlush();

  /// Unconditional flush + fsync + epoch marker.
  void flushEpoch();

  /// Clean completion: flush, append a Commit record, delete both files.
  void commit();

  /// Crash model: everything buffered since the last flush is lost; the
  /// file is closed as-is (no flush, no epoch).  The writer is dead
  /// afterwards — reopen a new one to resume.
  void simulateCrash();

  std::uint64_t epochsSealed() const;
  std::uint64_t bytesWritten() const;
  std::uint64_t compactions() const;
  bool crashed() const;

  std::string walPath() const;
  std::string snapPath() const;

 private:
  void flushLocked(bool withEpoch);
  void compactLocked();
  void appendFrameLocked(std::uint8_t type,
                         const std::vector<std::byte>& payload);

  mutable std::mutex mutex_;
  Options options_;
  std::FILE* wal_ = nullptr;
  std::vector<std::byte> buffer_;  ///< records not yet fwritten
  std::chrono::steady_clock::time_point lastFlush_;
  /// Mirror of the deduped live state, for compaction.
  std::vector<BlockRecord> live_;
  std::vector<std::byte> metaBytes_;  ///< re-emitted into snapshots
  std::uint64_t walBytes_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t compactions_ = 0;
  bool crashed_ = false;
  bool committed_ = false;
};

}  // namespace easyhps::ckpt

#pragma once
/// \file sequence.hpp
/// Synthetic biological sequences and deterministic weight functions.
///
/// The paper evaluates on Smith-Waterman General Gap and Nussinov with
/// random sequences of length 10000; real traces are not published, so the
/// workload generator here produces seeded pseudo-random DNA/RNA sequences
/// (the same substitution recorded in DESIGN.md).  Determinism matters:
/// every experiment names a seed, so paper-figure benches are reproducible
/// bit-for-bit.

#include <cstdint>
#include <string>

namespace easyhps {

/// Random sequence over `alphabet` (defaults to DNA).
std::string randomSequence(std::int64_t length, std::uint64_t seed,
                           const std::string& alphabet = "ACGT");

/// Random RNA sequence (AUCG).
std::string randomRna(std::int64_t length, std::uint64_t seed);

/// True for Watson-Crick (A-U, G-C) and wobble (G-U) pairs.
bool rnaPairs(char a, char b);

/// Deterministic pseudo-random weight in [0, bound) for an (i, j) index
/// pair; a stand-in for application weight tables (OBST frequencies,
/// 2D/2D composition weights).  Pure function of (i, j, seed).
std::int32_t hashWeight(std::int64_t i, std::int64_t j, std::uint64_t seed,
                        std::int32_t bound);

}  // namespace easyhps

#pragma once
/// \file viterbi.hpp
/// Viterbi decoding of a hidden Markov model — the library's staged
/// (kRowDependent2D) DP: every cell of stage t reads the *entire* previous
/// stage.
///
///   V[t][s] = emit(t, s) + max_{s'} ( V[t-1][s'] + trans(s', s) )
///
/// in log space (all scores are non-positive integers), with
/// V[-1][s] = prior(s).  Matrix rows are time steps, columns are states.
///
/// Staged DPs constrain partitioning: a block spanning several stages and a
/// *subset* of states would both need and feed its same-stage siblings —
/// a cycle at block level.  Master blocks therefore span all states
/// (masterDag overrides the grid to full width) and the slave DAG forces
/// single-stage sub-blocks (slaveDagFor override) — the library's
/// kRowDependent2D pattern keeps each stage's sub-blocks fully parallel.
///
/// The HMM (transition/emission/prior tables) is seeded pseudo-random, the
/// synthetic stand-in for application models per DESIGN.md.

#include <cstdint>
#include <vector>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class Viterbi final : public DpProblem {
 public:
  /// `steps` observations over `states` hidden states; tables from `seed`.
  Viterbi(std::int64_t steps, std::int64_t states, std::uint64_t seed);

  std::string name() const override { return "viterbi"; }
  std::int64_t rows() const override { return steps_; }
  std::int64_t cols() const override { return states_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kRowDependent2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kRowDependent2D;
  }

  /// Master blocks must span the full state axis (see file comment).
  PartitionedDag masterDag(const BlockGrid& grid) const override;

  /// Sub-blocks must be single-stage (1 row of cells).
  PartitionedDag slaveDagFor(const CellRect& blockRect,
                             std::int64_t threadPartitionRows,
                             std::int64_t threadPartitionCols) const override;

  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Per-cell work is Θ(states).
  double blockOps(const CellRect& rect) const override;

  /// Log-probability of the best path.
  Score bestScore(const Window& solved) const;

  /// The most likely state sequence, via traceback.
  std::vector<std::int64_t> bestPath(const Window& solved) const;

  Score trans(std::int64_t from, std::int64_t to) const;
  Score emit(std::int64_t t, std::int64_t s) const;
  Score prior(std::int64_t s) const;

 private:
  /// Dispatches on effectiveKernelPath(): simd / span / reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void simdKernel(W& w, const CellRect& rect) const;

  std::int64_t steps_;
  std::int64_t states_;
  std::uint64_t seed_;
};

}  // namespace easyhps

#pragma once
/// \file twod2d.hpp
/// Generic 2D/2D recurrence — the paper's Algorithm 4.3:
///
///   D[i][j] = min_{0<=i'<i, 0<=j'<j} ( D[i'][j'] + w(i'+j', i+j) )
///
/// for 1 <= i, j <= n, with the first row D[0][j] and first column D[i][0]
/// given.  Every cell depends on the entire dominated rectangle, so this is
/// the heaviest data-dependency class (O(n^2) cells each reading O(n^2)
/// cells); the library keeps it for pattern coverage and tests at small n.
///
/// Matrix cell (r, c) stores D[r+1][c+1]; the given first row/column are
/// boundary cells: boundary(r, -1) = D[r+1][0], boundary(-1, c) = D[0][c+1],
/// boundary(-1, -1) = D[0][0].  Inits and w are seeded pseudo-random.

#include <cstdint>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class TwoDTwoD final : public DpProblem {
 public:
  /// n×n interior; inits and weights derived deterministically from seed.
  TwoDTwoD(std::int64_t n, std::uint64_t seed, std::int32_t maxWeight = 16);

  std::string name() const override { return "2d2d"; }
  std::int64_t rows() const override { return n_; }
  std::int64_t cols() const override { return n_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kFull2D2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Per-cell work is Θ(i·j): the whole dominated rectangle is scanned.
  double blockOps(const CellRect& rect) const override;

  /// w(a, b) for anti-diagonal indices a < b.
  Score w(std::int64_t a, std::int64_t b) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;

  std::int64_t n_;
  std::uint64_t seed_;
  std::int32_t max_weight_;
};

}  // namespace easyhps

#include "easyhps/dp/viterbi.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/dp/sequence.hpp"

namespace easyhps {

Viterbi::Viterbi(std::int64_t steps, std::int64_t states, std::uint64_t seed)
    : steps_(steps), states_(states), seed_(seed) {
  EASYHPS_EXPECTS(steps > 0);
  EASYHPS_EXPECTS(states > 0);
}

Score Viterbi::trans(std::int64_t from, std::int64_t to) const {
  // Non-positive log-probabilities in [-8, 0].
  return static_cast<Score>(-hashWeight(from, to, seed_ ^ 0x7117ULL, 9));
}

Score Viterbi::emit(std::int64_t t, std::int64_t s) const {
  return static_cast<Score>(-hashWeight(t, s, seed_ ^ 0xE317ULL, 9));
}

Score Viterbi::prior(std::int64_t s) const {
  return static_cast<Score>(-hashWeight(s, s, seed_ ^ 0x9121ULL, 9));
}

PartitionedDag Viterbi::masterDag(const BlockGrid& grid) const {
  // Force full-width blocks: keep the requested row granularity, span all
  // states.  Column-split blocks would cycle (see header).
  const BlockGrid full(grid.rows(), grid.cols(), grid.blockRows(),
                       grid.cols());
  return makeRowDependent2D(full);
}

PartitionedDag Viterbi::slaveDagFor(const CellRect& blockRect,
                                    std::int64_t threadPartitionRows,
                                    std::int64_t threadPartitionCols) const {
  (void)threadPartitionRows;  // stage sub-blocks are forced to 1 row
  const BlockGrid grid(blockRect.rows, blockRect.cols, 1,
                       threadPartitionCols);
  return makeRowDependent2D(grid);
}

Score Viterbi::boundary(std::int64_t r, std::int64_t c) const {
  if (r < 0 && c >= 0 && c < states_) {
    return prior(c);
  }
  throw LogicError("Viterbi::boundary: unexpected read at (" +
                   std::to_string(r) + "," + std::to_string(c) + ")");
}

std::vector<CellRect> Viterbi::haloFor(const CellRect& rect) const {
  // Every cell (t, s) maxes over ALL states of stage t-1, so any rect —
  // a full-width process block or a partial-width thread sub-block (the
  // streaming gate asks per sub-block) — reads the full previous row.
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, 0, 1, states_});
  }
  return halos;
}

template <typename W>
void Viterbi::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t t = rect.row0; t < rect.rowEnd(); ++t) {
    for (std::int64_t s = rect.col0; s < rect.colEnd(); ++s) {
      Score best = std::numeric_limits<Score>::min();
      for (std::int64_t p = 0; p < states_; ++p) {
        best = std::max(best,
                        static_cast<Score>(v.get(t - 1, p) + trans(p, s)));
      }
      v.set(t, s, static_cast<Score>(best + emit(t, s)));
    }
  }
}

template <typename W>
void Viterbi::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  // trans() hashes per (p, s) pair and the reference path recomputes it
  // for every stage row; tabulating the [all p] × [rect's s range] slice
  // costs exactly one row's worth of hashes and is reused by every stage
  // of the rect.
  std::vector<Score> tr(
      static_cast<std::size_t>(states_ * rect.cols));
  for (std::int64_t p = 0; p < states_; ++p) {
    for (std::int64_t s = rect.col0; s < rect.colEnd(); ++s) {
      tr[static_cast<std::size_t>(p * rect.cols + (s - rect.col0))] =
          trans(p, s);
    }
  }
  for (std::int64_t t = rect.row0; t < rect.rowEnd(); ++t) {
    // The previous stage spans the full state axis in one store (block
    // row or the single full-width halo row); t = 0 falls back to the
    // per-cell prior() boundary.
    const Score* prev = t > 0 ? v.rowIn(t - 1, 0, states_) : nullptr;
    Score* out = v.rowOut(t, rect.col0, rect.cols);
    if (out == nullptr || (t > 0 && prev == nullptr)) {
      referenceKernel(w, CellRect{t, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t s = rect.col0; s < rect.colEnd(); ++s) {
      const Score* col = tr.data() + (s - rect.col0);
      Score best = std::numeric_limits<Score>::min();
      if (prev != nullptr) {
        for (std::int64_t p = 0; p < states_; ++p) {
          best = std::max(best,
                          static_cast<Score>(prev[p] + col[p * rect.cols]));
        }
      } else {
        for (std::int64_t p = 0; p < states_; ++p) {
          best = std::max(best, static_cast<Score>(v.get(t - 1, p) +
                                                   col[p * rect.cols]));
        }
      }
      out[s - rect.col0] = static_cast<Score>(best + emit(t, s));
    }
  }
}

template <typename W>
void Viterbi::simdKernel(W& w, const CellRect& rect) const {
  using simd::VecScore;
  constexpr std::int64_t kVW = simd::kVecWidth;
  typename W::View v(w);
  // Same tabulation as the span path, but transposed — s-major so that the
  // max-over-predecessors inner loop reads trans(·, s) contiguously and
  // vectorizes along the state axis.  Integer max is exactly associative,
  // so lanewise max + horizontal reduce keeps bit-exactness.
  std::vector<Score> tr(static_cast<std::size_t>(states_ * rect.cols));
  for (std::int64_t p = 0; p < states_; ++p) {
    for (std::int64_t s = rect.col0; s < rect.colEnd(); ++s) {
      tr[static_cast<std::size_t>((s - rect.col0) * states_ + p)] =
          trans(p, s);
    }
  }
  for (std::int64_t t = rect.row0; t < rect.rowEnd(); ++t) {
    const Score* prev = t > 0 ? v.rowIn(t - 1, 0, states_) : nullptr;
    Score* out = v.rowOut(t, rect.col0, rect.cols);
    if (out == nullptr || prev == nullptr) {
      referenceKernel(w, CellRect{t, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t s = rect.col0; s < rect.colEnd(); ++s) {
      const Score* col =
          tr.data() + static_cast<std::size_t>((s - rect.col0) * states_);
      VecScore acc = VecScore::splat(std::numeric_limits<Score>::min());
      std::int64_t p = 0;
      for (; p + kVW <= states_; p += kVW) {
        acc = VecScore::max(acc,
                            VecScore::load(prev + p) + VecScore::load(col + p));
      }
      Score best = acc.reduceMax();
      for (; p < states_; ++p) {
        best = std::max(best, static_cast<Score>(prev[p] + col[p]));
      }
      out[s - rect.col0] = static_cast<Score>(best + emit(t, s));
    }
  }
}

template <typename W>
void Viterbi::kernel(W& w, const CellRect& rect) const {
  switch (effectiveKernelPath()) {
    case KernelPath::kReference:
      referenceKernel(w, rect);
      break;
    case KernelPath::kSpan:
      spanKernel(w, rect);
      break;
    case KernelPath::kSimd:
      simdKernel(w, rect);
      break;
  }
}

void Viterbi::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void Viterbi::computeBlockSparse(SparseWindow& w, const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> Viterbi::solveReference() const {
  DenseMatrix<Score> m(steps_, states_);
  for (std::int64_t t = 0; t < steps_; ++t) {
    for (std::int64_t s = 0; s < states_; ++s) {
      Score best = std::numeric_limits<Score>::min();
      for (std::int64_t p = 0; p < states_; ++p) {
        const Score prev = t > 0 ? m.at(t - 1, p) : prior(p);
        best = std::max(best, static_cast<Score>(prev + trans(p, s)));
      }
      m.at(t, s) = static_cast<Score>(best + emit(t, s));
    }
  }
  return m;
}

double Viterbi::blockOps(const CellRect& rect) const {
  return static_cast<double>(rect.cellCount()) *
         static_cast<double>(states_);
}

Score Viterbi::bestScore(const Window& solved) const {
  Score best = std::numeric_limits<Score>::min();
  for (std::int64_t s = 0; s < states_; ++s) {
    best = std::max(best, solved.get(steps_ - 1, s));
  }
  return best;
}

std::vector<std::int64_t> Viterbi::bestPath(const Window& solved) const {
  std::vector<std::int64_t> path(static_cast<std::size_t>(steps_), 0);
  // Final state: argmax of the last stage.
  Score best = std::numeric_limits<Score>::min();
  for (std::int64_t s = 0; s < states_; ++s) {
    if (solved.get(steps_ - 1, s) > best) {
      best = solved.get(steps_ - 1, s);
      path[static_cast<std::size_t>(steps_ - 1)] = s;
    }
  }
  // Walk backwards choosing a consistent predecessor.
  for (std::int64_t t = steps_ - 1; t > 0; --t) {
    const std::int64_t s = path[static_cast<std::size_t>(t)];
    const Score target =
        static_cast<Score>(solved.get(t, s) - emit(t, s));
    bool found = false;
    for (std::int64_t p = 0; p < states_ && !found; ++p) {
      if (static_cast<Score>(solved.get(t - 1, p) + trans(p, s)) == target) {
        path[static_cast<std::size_t>(t - 1)] = p;
        found = true;
      }
    }
    EASYHPS_CHECK(found, "Viterbi traceback: inconsistent matrix");
  }
  return path;
}

bool Viterbi::fingerprint(util::Hasher& h) const {
  h.tag("viterbi");
  h.value(steps_);
  h.value(states_);
  h.value(seed_);
  return true;
}

}  // namespace easyhps

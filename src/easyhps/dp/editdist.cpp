#include "easyhps/dp/editdist.hpp"

#include <algorithm>

#include "easyhps/dp/autotune.hpp"
#include "easyhps/dp/kernel_common.hpp"

namespace easyhps {

EditDistance::EditDistance(std::string a, std::string b)
    : a_(std::move(a)), b_(std::move(b)) {
  EASYHPS_EXPECTS(!a_.empty() && !b_.empty());
}

std::int64_t EditDistance::rows() const {
  return static_cast<std::int64_t>(a_.size());
}

std::int64_t EditDistance::cols() const {
  return static_cast<std::int64_t>(b_.size());
}

Score EditDistance::boundary(std::int64_t r, std::int64_t c) const {
  // D[-1][c] is the cost of building b's prefix from nothing and vice versa.
  if (r < 0 && c < 0) {
    return 0;
  }
  if (r < 0) {
    return static_cast<Score>(c + 1);
  }
  if (c < 0) {
    return static_cast<Score>(r + 1);
  }
  throw LogicError("EditDistance::boundary: in-matrix read of " +
                   std::to_string(r) + "," + std::to_string(c) +
                   " — halo missing");
}

std::vector<CellRect> EditDistance::haloFor(const CellRect& rect) const {
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0, 1, rect.cols});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, rect.col0 - 1, rect.rows, 1});
  }
  if (rect.row0 > 0 && rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void EditDistance::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      const Score sub = v.get(r - 1, c - 1) +
                        (a_[static_cast<std::size_t>(r)] ==
                                 b_[static_cast<std::size_t>(c)]
                             ? 0
                             : 1);
      const Score del = v.get(r - 1, c) + 1;
      const Score ins = v.get(r, c - 1) + 1;
      v.set(r, c, std::min({sub, del, ins}));
    }
  }
}

template <typename W>
void EditDistance::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  const auto tile = autotune::tileFor("editdist", autotune::storageOf<W>(),
                                      KernelPath::kSpan);
  wavefrontSpanKernel(
      v, rect,
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        const Score sub = diag + (a_[static_cast<std::size_t>(r)] ==
                                          b_[static_cast<std::size_t>(c)]
                                      ? 0
                                      : 1);
        return std::min({sub, static_cast<Score>(up + 1),
                         static_cast<Score>(left + 1)});
      },
      tile.tileCols);
}

template <typename W>
void EditDistance::simdKernel(W& w, const CellRect& rect) const {
  using simd::VecScore;
  typename W::View v(w);
  const auto tile = autotune::tileFor("editdist", autotune::storageOf<W>(),
                                      KernelPath::kSimd);
  const VecScore one = VecScore::splat(1);
  WavefrontSimdScratch scratch;
  wavefrontSimdKernel(
      v, rect, a_.data(), b_.data(), cols(),
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        const Score sub = diag + (a_[static_cast<std::size_t>(r)] ==
                                          b_[static_cast<std::size_t>(c)]
                                      ? 0
                                      : 1);
        return std::min({sub, static_cast<Score>(up + 1),
                         static_cast<Score>(left + 1)});
      },
      [one](VecScore diag, VecScore up, VecScore left, VecScore eq) {
        const VecScore sub = VecScore::blend(eq, diag, diag + one);
        return VecScore::min(sub, VecScore::min(up + one, left + one));
      },
      tile.tileCols, tile.stripBands, scratch);
}

template <typename W>
void EditDistance::kernel(W& w, const CellRect& rect) const {
  switch (effectiveKernelPath()) {
    case KernelPath::kReference:
      referenceKernel(w, rect);
      break;
    case KernelPath::kSpan:
      spanKernel(w, rect);
      break;
    case KernelPath::kSimd:
      simdKernel(w, rect);
      break;
  }
}

void EditDistance::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void EditDistance::computeBlockSparse(SparseWindow& w,
                                      const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> EditDistance::solveReference() const {
  const std::int64_t n = rows();
  const std::int64_t m = cols();
  DenseMatrix<Score> d(n, m);
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < m; ++c) {
      const Score up = r > 0 ? d.at(r - 1, c) : static_cast<Score>(c + 1);
      const Score left = c > 0 ? d.at(r, c - 1) : static_cast<Score>(r + 1);
      const Score diag =
          (r > 0 && c > 0)
              ? d.at(r - 1, c - 1)
              : static_cast<Score>(r > 0 ? r : (c > 0 ? c : 0));
      const Score sub = diag + (a_[static_cast<std::size_t>(r)] ==
                                        b_[static_cast<std::size_t>(c)]
                                    ? 0
                                    : 1);
      d.at(r, c) = std::min({sub, up + 1, left + 1});
    }
  }
  return d;
}

Score EditDistance::distanceFrom(const Window& solved) const {
  return solved.get(rows() - 1, cols() - 1);
}

bool EditDistance::fingerprint(util::Hasher& h) const {
  h.tag("edit-distance");
  h.str(a_);
  h.str(b_);
  return true;
}

}  // namespace easyhps

#pragma once
/// \file nussinov.hpp
/// Nussinov RNA secondary-structure prediction — the paper's second
/// evaluation workload and its running example for the DAG Pattern Model
/// (Fig 5).  A 2D/1D algorithm on the upper triangle:
///
///   N[i][j] = max( N[i+1][j],
///                  N[i][j-1],
///                  N[i+1][j-1] + pair(s_i, s_j)      (if j - i > minLoop),
///                  max_{i<k<j} N[i][k] + N[k+1][j] )
///
/// with N[i][i] = 0 and N[i][j] = 0 for j < i.  Cells fill from the main
/// diagonal toward the upper-right corner; inside a rectangular block the
/// dependency wavefront is *flipped* (cell (i,j) needs (i+1,j) below it),
/// which is why `slavePatternKind` is kFlippedWavefront2D.
///
/// The traceback (`structure`) recovers one optimal set of base pairs so
/// examples can print an actual secondary structure, not just the score.

#include <string>
#include <utility>
#include <vector>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class Nussinov final : public DpProblem {
 public:
  /// `minLoop`: minimum unpaired bases between a pair (j - i > minLoop).
  explicit Nussinov(std::string rna, std::int64_t minLoop = 1);

  std::string name() const override { return "nussinov"; }
  std::int64_t rows() const override { return n_; }
  std::int64_t cols() const override { return n_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kTriangular2D1D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kFlippedWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  bool cellActive(std::int64_t r, std::int64_t c) const override {
    return r <= c;
  }
  bool rectActive(const CellRect& rect) const override {
    return rect.row0 <= rect.colEnd() - 1;
  }
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Per-cell work is Θ(j - i) (the split scan); summed over active cells.
  double blockOps(const CellRect& rect) const override;

  /// Optimal number of pairs for the whole sequence.
  Score bestScore(const Window& solved) const;

  /// One optimal pairing, as (i, j) index pairs, via traceback.
  std::vector<std::pair<std::int64_t, std::int64_t>> structure(
      const Window& solved) const;

  /// Dot-bracket rendering of a pairing.
  std::string dotBracket(
      const std::vector<std::pair<std::int64_t, std::int64_t>>& pairs) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;

  Score pairScore(std::int64_t i, std::int64_t j) const;

  std::string rna_;
  std::int64_t n_;
  std::int64_t min_loop_;
};

}  // namespace easyhps

#pragma once
/// \file window.hpp
/// Global-indexed score window backing block computation.
///
/// A slave computes one block of the DP matrix but its kernel reads cells
/// outside the block (the halo shipped by the master, paper Fig 7b) and —
/// at the matrix edges — virtual boundary cells (e.g. H[-1][j] = 0 for
/// Smith-Waterman, D[i][-1] = i+1 for edit distance).  `Window` hides all
/// three cases behind global matrix coordinates: storage covers a bounding
/// box (the block plus injected halo rectangles); reads outside the box are
/// answered by the problem's boundary function.  The master's full matrix
/// is simply a Window whose box is the whole matrix, so the exact same
/// kernels run serially, in the slave thread pool, and in tests.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "easyhps/dp/valid_mask.hpp"
#include "easyhps/matrix/geometry.hpp"
#include "easyhps/util/error.hpp"

namespace easyhps {

/// DP cell value.  32-bit is ample for the library's problems (scores are
/// bounded by matrix size × max weight) and halves wire traffic vs 64-bit.
using Score = std::int32_t;

/// Answers reads outside the stored box (virtual boundary cells).
using BoundaryFn = std::function<Score(std::int64_t r, std::int64_t c)>;

class Window {
 public:
  /// Creates a zero-initialized window over `box`.
  Window(CellRect box, BoundaryFn boundary)
      : box_(box), boundary_(std::move(boundary)),
        stride_(paddedStride(box.cols)),
        data_(static_cast<std::size_t>(box.rows * stride_), Score{0}) {
    EASYHPS_EXPECTS(box.rows >= 0 && box.cols >= 0);
    EASYHPS_EXPECTS(boundary_ != nullptr);
  }

  const CellRect& box() const { return box_; }

  bool inBox(std::int64_t r, std::int64_t c) const {
    return box_.contains(r, c);
  }

  /// Read cell (r, c) in global coordinates.
  Score get(std::int64_t r, std::int64_t c) const {
    if (inBox(r, c)) {
      EASYHPS_DCHECK(valid_.cellValid(r, c));
      return data_[index(r, c)];
    }
    return boundary_(r, c);
  }

  /// Write cell (r, c); must be inside the box (debug-checked — the
  /// per-cell precondition is hot-path, see EASYHPS_DCHECK).
  void set(std::int64_t r, std::int64_t c, Score v) {
    EASYHPS_DCHECK(inBox(r, c));
    data_[index(r, c)] = v;
  }

  /// Pointer to cells (r, [c0, c0+len)) when the whole span is stored;
  /// nullptr otherwise (boundary rows, len <= 0).  The kernel fast path
  /// resolves one span per row instead of one bounds check per cell.
  const Score* rowIn(std::int64_t r, std::int64_t c0, std::int64_t len) const {
    if (len <= 0 || !inBox(r, c0) || !inBox(r, c0 + len - 1)) {
      return nullptr;
    }
    EASYHPS_DCHECK(valid_.rectValid(r, c0, 1, len));
    return data_.data() + index(r, c0);
  }

  /// Writable span over cells (r, [c0, c0+len)); nullptr when not stored.
  Score* rowOut(std::int64_t r, std::int64_t c0, std::int64_t len) {
    if (len <= 0 || !inBox(r, c0) || !inBox(r, c0 + len - 1)) {
      return nullptr;
    }
    return data_.data() + index(r, c0);
  }

  /// Pointer to cells ([r0, r0+len), c) when the whole column span is
  /// stored; consecutive rows are `*stride` elements apart.
  const Score* colIn(std::int64_t r0, std::int64_t c, std::int64_t len,
                     std::int64_t* stride) const {
    if (len <= 0 || !inBox(r0, c) || !inBox(r0 + len - 1, c)) {
      return nullptr;
    }
    EASYHPS_DCHECK(valid_.rectValid(r0, c, len, 1));
    *stride = stride_;
    return data_.data() + index(r0, c);
  }

  /// Streamed-halo support: cells of `rect` are storage-backed but have
  /// not arrived yet; reads trip an EASYHPS_DCHECK until an inject()
  /// covers them.  No-op in release builds' hot paths (the mask is only
  /// consulted from DCHECKed reads).
  void quarantine(const CellRect& rect) {
    EASYHPS_DCHECK(rect.row0 >= box_.row0 && rect.rowEnd() <= box_.rowEnd());
    EASYHPS_DCHECK(rect.col0 >= box_.col0 && rect.colEnd() <= box_.colEnd());
    valid_.quarantine(rect);
  }

  /// Uniform accessor facade over a Window, mirroring SparseWindow::View
  /// so kernel templates instantiate per storage type and stay
  /// devirtualized.  For the dense window the view is a thin pass-through
  /// (the box lookup is already O(1)).
  class View {
   public:
    explicit View(Window& w) : w_(&w) {}
    Score get(std::int64_t r, std::int64_t c) const { return w_->get(r, c); }
    void set(std::int64_t r, std::int64_t c, Score v) { w_->set(r, c, v); }
    const Score* rowIn(std::int64_t r, std::int64_t c0,
                       std::int64_t len) const {
      return w_->rowIn(r, c0, len);
    }
    Score* rowOut(std::int64_t r, std::int64_t c0, std::int64_t len) {
      return w_->rowOut(r, c0, len);
    }
    const Score* colIn(std::int64_t r0, std::int64_t c, std::int64_t len,
                       std::int64_t* stride) const {
      return w_->colIn(r0, c, len, stride);
    }

   private:
    Window* w_;
  };

  /// Copies a rectangle (must be fully inside the box) to a flat buffer.
  std::vector<Score> extract(const CellRect& rect) const {
    EASYHPS_DCHECK(rect.row0 >= box_.row0 && rect.rowEnd() <= box_.rowEnd());
    EASYHPS_DCHECK(rect.col0 >= box_.col0 && rect.colEnd() <= box_.colEnd());
    EASYHPS_DCHECK(valid_.rectValid(rect.row0, rect.col0, rect.rows,
                                    rect.cols));
    std::vector<Score> out(static_cast<std::size_t>(rect.cellCount()));
    for (std::int64_t r = 0; r < rect.rows; ++r) {
      const Score* src = data_.data() + index(rect.row0 + r, rect.col0);
      std::copy(src, src + rect.cols,
                out.begin() + static_cast<std::ptrdiff_t>(r * rect.cols));
    }
    return out;
  }

  /// Writes a flat buffer into a rectangle fully inside the box.  The
  /// size check stays always-on (it validates wire payloads at block
  /// granularity); the containment checks are debug-only.  Takes a span
  /// so zero-copy decoded cells (wire::ScoreCells) inject without an
  /// intermediate vector.
  void inject(const CellRect& rect, std::span<const Score> values) {
    EASYHPS_DCHECK(rect.row0 >= box_.row0 && rect.rowEnd() <= box_.rowEnd());
    EASYHPS_DCHECK(rect.col0 >= box_.col0 && rect.colEnd() <= box_.colEnd());
    EASYHPS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                    rect.cellCount());
    for (std::int64_t r = 0; r < rect.rows; ++r) {
      std::copy(values.begin() + static_cast<std::ptrdiff_t>(r * rect.cols),
                values.begin() +
                    static_cast<std::ptrdiff_t>((r + 1) * rect.cols),
                data_.begin() +
                    static_cast<std::ptrdiff_t>(index(rect.row0 + r,
                                                      rect.col0)));
    }
    valid_.fill(rect);  // after the copy: release pairs with reader acquire
  }

 private:
  // Row stride in elements, padded so the byte distance between adjacent
  // rows stays well clear of 4 KiB multiples.  The SIMD tier keeps up to
  // kMaxSimdBands × vector-width output rows open per strip; at a
  // near-4 KiB stride (any power-of-two block width) they all map to the
  // same L1 sets and evict each other (~2× kernel slowdown measured on
  // 1024-wide blocks).  Cost: at most ~140 padding elements per row.
  static std::int64_t paddedStride(std::int64_t cols) {
    if (cols < 64) {
      return cols;  // small windows cannot alias across a 4 KiB page
    }
    std::int64_t stride = (cols + 15) & ~std::int64_t{15};
    for (int i = 0; i < 16; ++i) {
      const std::int64_t mod =
          (stride * static_cast<std::int64_t>(sizeof(Score))) % 4096;
      if (mod >= 256 && mod <= 4096 - 256) {
        break;
      }
      stride += 16;  // one cache line; escapes the ±256 B zone in ≤ 8 steps
    }
    return stride;
  }

  std::size_t index(std::int64_t r, std::int64_t c) const {
    return static_cast<std::size_t>((r - box_.row0) * stride_ +
                                    (c - box_.col0));
  }

  CellRect box_;
  BoundaryFn boundary_;
  std::int64_t stride_;
  std::vector<Score> data_;
  ValidityMask valid_;
};

/// Bounding box of a block rectangle and its halo rectangles.
CellRect boundingBox(const CellRect& block,
                     const std::vector<CellRect>& halos);

}  // namespace easyhps

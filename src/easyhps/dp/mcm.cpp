#include "easyhps/dp/mcm.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps {

MatrixChain::MatrixChain(std::int64_t n, std::uint64_t seed,
                         std::int32_t maxDim) {
  EASYHPS_EXPECTS(n > 0);
  EASYHPS_EXPECTS(maxDim >= 1);
  Rng rng(seed);
  dims_.reserve(static_cast<std::size_t>(n) + 1);
  for (std::int64_t i = 0; i <= n; ++i) {
    dims_.push_back(static_cast<std::int32_t>(rng.nextInRange(1, maxDim)));
  }
  n_ = n;
}

MatrixChain::MatrixChain(std::vector<std::int32_t> dims)
    : dims_(std::move(dims)) {
  EASYHPS_EXPECTS(dims_.size() >= 2);
  n_ = static_cast<std::int64_t>(dims_.size()) - 1;
}

Score MatrixChain::boundary(std::int64_t r, std::int64_t c) const {
  (void)r;
  (void)c;
  return 0;
}

std::vector<CellRect> MatrixChain::haloFor(const CellRect& rect) const {
  // M[i][k] (row segment left of the block) and M[k+1][j] (column segment
  // below) — identical trapezoid to the other triangular 2D/1D problems.
  std::vector<CellRect> halos;
  if (rect.col0 > rect.row0) {
    halos.push_back(
        CellRect{rect.row0, rect.row0, rect.rows, rect.col0 - rect.row0});
  }
  if (rect.colEnd() > rect.rowEnd() && rect.rowEnd() < n_) {
    halos.push_back(CellRect{rect.rowEnd(), rect.col0,
                             std::min(rect.colEnd(), n_) - rect.rowEnd(),
                             rect.cols});
  }
  return halos;
}

template <typename W>
void MatrixChain::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        v.set(i, j, 0);
        continue;
      }
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i; k < j; ++k) {
        best = std::min(best,
                        static_cast<Score>(v.get(i, k) + v.get(k + 1, j) +
                                           mulCost(i, k, j)));
      }
      v.set(i, j, best);
    }
  }
}

template <typename W>
void MatrixChain::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    // Row pieces M[i][k]: left-halo trapezoid columns [row0, col0), then
    // the row being written (computed for k < j).
    Score* out = v.rowOut(i, rect.col0, rect.cols);
    const Score* rowLeft =
        rect.col0 > rect.row0
            ? v.rowIn(i, rect.row0, rect.col0 - rect.row0)
            : nullptr;
    if (out == nullptr) {
      referenceKernel(w, CellRect{i, rect.col0, 1, rect.cols});
      continue;
    }
    const std::int64_t di =
        static_cast<std::int64_t>(dims_[static_cast<std::size_t>(i)]);
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        out[j - rect.col0] = 0;
        continue;
      }
      // Column pieces M[k+1][j]: block rows below i, then the below-halo
      // trapezoid; resolved once per cell, amortized over the k-scan.
      const std::int64_t blkLo = i + 1;
      const std::int64_t blkHi = std::min(j + 1, rect.rowEnd());
      std::int64_t blkStride = 0;
      const Score* blkCol =
          blkHi > blkLo ? v.colIn(blkLo, j, blkHi - blkLo, &blkStride)
                        : nullptr;
      const std::int64_t belLo = std::max(blkLo, rect.rowEnd());
      std::int64_t belStride = 0;
      const Score* belCol =
          j + 1 > belLo ? v.colIn(belLo, j, j + 1 - belLo, &belStride)
                        : nullptr;
      const std::int64_t dj =
          static_cast<std::int64_t>(dims_[static_cast<std::size_t>(j + 1)]);
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i; k < j; ++k) {
        const Score left =
            k < rect.col0
                ? (rowLeft != nullptr ? rowLeft[k - rect.row0]
                                      : v.get(i, k))
                : out[k - rect.col0];
        const std::int64_t kr = k + 1;
        const Score down =
            kr < rect.rowEnd()
                ? (blkCol != nullptr ? blkCol[(kr - blkLo) * blkStride]
                                     : v.get(kr, j))
                : (belCol != nullptr ? belCol[(kr - belLo) * belStride]
                                     : v.get(kr, j));
        const Score cost = static_cast<Score>(
            di * dims_[static_cast<std::size_t>(k + 1)] * dj);
        best = std::min(best, static_cast<Score>(left + down + cost));
      }
      out[j - rect.col0] = best;
    }
  }
}

template <typename W>
void MatrixChain::kernel(W& w, const CellRect& rect) const {
  if (kernelPath() == KernelPath::kReference) {
    referenceKernel(w, rect);
  } else {
    spanKernel(w, rect);
  }
}

void MatrixChain::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void MatrixChain::computeBlockSparse(SparseWindow& w,
                                     const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> MatrixChain::solveReference() const {
  DenseMatrix<Score> m(n_, n_, 0);
  for (std::int64_t span = 1; span < n_; ++span) {
    for (std::int64_t i = 0; i + span < n_; ++i) {
      const std::int64_t j = i + span;
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i; k < j; ++k) {
        best = std::min(best, static_cast<Score>(m.at(i, k) + m.at(k + 1, j) +
                                                 mulCost(i, k, j)));
      }
      m.at(i, j) = best;
    }
  }
  return m;
}

double MatrixChain::blockOps(const CellRect& rect) const {
  double total = 0;
  for (std::int64_t i = rect.row0; i < rect.rowEnd(); ++i) {
    const std::int64_t jLo = std::max(rect.col0, i);
    const std::int64_t jHi = rect.colEnd() - 1;
    for (std::int64_t j = jLo; j <= jHi; ++j) {
      total += static_cast<double>(std::max<std::int64_t>(j - i, 1));
    }
  }
  return total;
}

Score MatrixChain::bestCost(const Window& solved) const {
  return solved.get(0, n_ - 1);
}

std::string MatrixChain::parenthesization(const Window& solved) const {
  auto get = [&](std::int64_t i, std::int64_t j) -> Score {
    return i >= j ? 0 : solved.get(i, j);
  };
  // Recursive reconstruction via an explicit stack of (i, j, out slot)
  // would obscure the logic; chain lengths are modest, so plain recursion.
  std::function<std::string(std::int64_t, std::int64_t)> build =
      [&](std::int64_t i, std::int64_t j) -> std::string {
    if (i == j) {
      return "A" + std::to_string(i);
    }
    for (std::int64_t k = i; k < j; ++k) {
      if (get(i, j) == get(i, k) + get(k + 1, j) + mulCost(i, k, j)) {
        return "(" + build(i, k) + " " + build(k + 1, j) + ")";
      }
    }
    throw LogicError("MatrixChain traceback: inconsistent matrix");
  };
  return build(0, n_ - 1);
}

bool MatrixChain::fingerprint(util::Hasher& h) const {
  h.tag("matrix-chain");
  h.vec(dims_);
  return true;
}

}  // namespace easyhps

#pragma once
/// \file obst.hpp
/// Optimal Binary Search Tree — the paper's Algorithm 4.2 (2D/1D):
///
///   D[i][j] = w(i, j) + min_{i<k<=j} ( D[i][k-1] + D[k][j] ),  D[i][i] = 0
///
/// where w(i, j) is the total access frequency of keys i..j.  Structurally
/// identical to Nussinov (triangular, split scan) but a *min* recurrence
/// with weights, so it exercises a second 2D/1D instance through every
/// layer of the system; keys' frequencies are seeded pseudo-random.

#include <cstdint>
#include <vector>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class OptimalBst final : public DpProblem {
 public:
  /// `n` keys with frequencies drawn uniformly from [1, maxFreq] at `seed`.
  OptimalBst(std::int64_t n, std::uint64_t seed, std::int32_t maxFreq = 10);

  /// Explicit frequencies (must be non-empty).
  explicit OptimalBst(std::vector<std::int32_t> freqs);

  std::string name() const override { return "optimal-bst"; }
  std::int64_t rows() const override { return n_; }
  std::int64_t cols() const override { return n_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kTriangular2D1D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kFlippedWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  bool cellActive(std::int64_t r, std::int64_t c) const override {
    return r <= c;
  }
  bool rectActive(const CellRect& rect) const override {
    return rect.row0 <= rect.colEnd() - 1;
  }
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;
  double blockOps(const CellRect& rect) const override;

  /// Total weighted search cost of the optimal tree over all keys.
  Score bestCost(const Window& solved) const;

  /// w(i, j): total frequency of keys i..j.
  Score weight(std::int64_t i, std::int64_t j) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;

  void buildPrefix();

  std::vector<std::int32_t> freqs_;
  std::vector<std::int64_t> prefix_;  // prefix_[k] = sum of freqs_[0..k)
  std::int64_t n_ = 0;
};

}  // namespace easyhps

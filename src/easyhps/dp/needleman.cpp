#include "easyhps/dp/needleman.hpp"

#include <algorithm>

#include "easyhps/dp/autotune.hpp"
#include "easyhps/dp/kernel_common.hpp"

namespace easyhps {

NeedlemanWunsch::NeedlemanWunsch(std::string a, std::string b)
    : NeedlemanWunsch(std::move(a), std::move(b), Params{}) {}

NeedlemanWunsch::NeedlemanWunsch(std::string a, std::string b, Params params)
    : a_(std::move(a)), b_(std::move(b)), params_(params) {
  EASYHPS_EXPECTS(!a_.empty() && !b_.empty());
  EASYHPS_EXPECTS(params_.gap >= 0);
}

std::int64_t NeedlemanWunsch::rows() const {
  return static_cast<std::int64_t>(a_.size());
}

std::int64_t NeedlemanWunsch::cols() const {
  return static_cast<std::int64_t>(b_.size());
}

Score NeedlemanWunsch::boundary(std::int64_t r, std::int64_t c) const {
  if (r < 0 && c < 0) {
    return 0;
  }
  if (r < 0) {
    return static_cast<Score>(-(c + 1) * params_.gap);
  }
  if (c < 0) {
    return static_cast<Score>(-(r + 1) * params_.gap);
  }
  throw LogicError("NW::boundary: in-matrix read — halo missing");
}

std::vector<CellRect> NeedlemanWunsch::haloFor(const CellRect& rect) const {
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0, 1, rect.cols});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, rect.col0 - 1, rect.rows, 1});
  }
  if (rect.row0 > 0 && rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void NeedlemanWunsch::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      const Score diag =
          static_cast<Score>(v.get(r - 1, c - 1) + substitution(r, c));
      const Score up = static_cast<Score>(v.get(r - 1, c) - params_.gap);
      const Score left = static_cast<Score>(v.get(r, c - 1) - params_.gap);
      v.set(r, c, std::max({diag, up, left}));
    }
  }
}

template <typename W>
void NeedlemanWunsch::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  const auto tile = autotune::tileFor("needleman", autotune::storageOf<W>(),
                                      KernelPath::kSpan);
  wavefrontSpanKernel(
      v, rect,
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        return std::max(
            {static_cast<Score>(diag + substitution(r, c)),
             static_cast<Score>(up - params_.gap),
             static_cast<Score>(left - params_.gap)});
      },
      tile.tileCols);
}

template <typename W>
void NeedlemanWunsch::simdKernel(W& w, const CellRect& rect) const {
  using simd::VecScore;
  typename W::View v(w);
  const auto tile = autotune::tileFor("needleman", autotune::storageOf<W>(),
                                      KernelPath::kSimd);
  const VecScore match = VecScore::splat(params_.match);
  const VecScore mismatch = VecScore::splat(params_.mismatch);
  const VecScore gap = VecScore::splat(params_.gap);
  WavefrontSimdScratch scratch;
  wavefrontSimdKernel(
      v, rect, a_.data(), b_.data(), cols(),
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        return std::max(
            {static_cast<Score>(diag + substitution(r, c)),
             static_cast<Score>(up - params_.gap),
             static_cast<Score>(left - params_.gap)});
      },
      [match, mismatch, gap](VecScore diag, VecScore up, VecScore left,
                             VecScore eq) {
        const VecScore sub = diag + VecScore::blend(eq, match, mismatch);
        return VecScore::max(sub, VecScore::max(up - gap, left - gap));
      },
      tile.tileCols, tile.stripBands, scratch);
}

template <typename W>
void NeedlemanWunsch::kernel(W& w, const CellRect& rect) const {
  switch (effectiveKernelPath()) {
    case KernelPath::kReference:
      referenceKernel(w, rect);
      break;
    case KernelPath::kSpan:
      spanKernel(w, rect);
      break;
    case KernelPath::kSimd:
      simdKernel(w, rect);
      break;
  }
}

void NeedlemanWunsch::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void NeedlemanWunsch::computeBlockSparse(SparseWindow& w,
                                         const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> NeedlemanWunsch::solveReference() const {
  DenseMatrix<Score> m(rows(), cols());
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r >= 0 && c >= 0) ? m.at(r, c) : boundary(r, c);
  };
  for (std::int64_t r = 0; r < rows(); ++r) {
    for (std::int64_t c = 0; c < cols(); ++c) {
      m.at(r, c) = std::max(
          {static_cast<Score>(get(r - 1, c - 1) + substitution(r, c)),
           static_cast<Score>(get(r - 1, c) - params_.gap),
           static_cast<Score>(get(r, c - 1) - params_.gap)});
    }
  }
  return m;
}

Score NeedlemanWunsch::score(const Window& solved) const {
  return solved.get(rows() - 1, cols() - 1);
}

std::pair<std::string, std::string> NeedlemanWunsch::alignment(
    const Window& solved) const {
  std::string top;
  std::string bottom;
  std::int64_t r = rows() - 1;
  std::int64_t c = cols() - 1;
  auto get = [&](std::int64_t rr, std::int64_t cc) -> Score {
    return (rr >= 0 && cc >= 0) ? solved.get(rr, cc) : boundary(rr, cc);
  };
  while (r >= 0 || c >= 0) {
    if (r >= 0 && c >= 0 &&
        get(r, c) == get(r - 1, c - 1) + substitution(r, c)) {
      top.push_back(a_[static_cast<std::size_t>(r)]);
      bottom.push_back(b_[static_cast<std::size_t>(c)]);
      --r;
      --c;
    } else if (r >= 0 && get(r, c) == get(r - 1, c) - params_.gap) {
      top.push_back(a_[static_cast<std::size_t>(r)]);
      bottom.push_back('-');
      --r;
    } else {
      EASYHPS_CHECK(c >= 0, "NW traceback: inconsistent matrix");
      top.push_back('-');
      bottom.push_back(b_[static_cast<std::size_t>(c)]);
      --c;
    }
  }
  std::reverse(top.begin(), top.end());
  std::reverse(bottom.begin(), bottom.end());
  return {top, bottom};
}

bool NeedlemanWunsch::fingerprint(util::Hasher& h) const {
  h.tag("needleman-wunsch");
  h.str(a_);
  h.str(b_);
  h.value(params_.match);
  h.value(params_.mismatch);
  h.value(params_.gap);
  return true;
}

}  // namespace easyhps

#include "easyhps/dp/autotune.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "easyhps/dp/editdist.hpp"
#include "easyhps/dp/knapsack.hpp"
#include "easyhps/dp/lcs.hpp"
#include "easyhps/dp/needleman.hpp"
#include "easyhps/dp/problem.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/simd.hpp"
#include "easyhps/dp/sparse_window.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/util/clock.hpp"

namespace easyhps::autotune {
namespace {

// The sweep pins candidates through this thread-local so its own probe
// computeBlock calls never re-enter the sweep (tileFor checks it before
// touching the mutex).  Also the hook for ScopedForcedTile in tests.
thread_local std::optional<TileChoice> t_forced;

TileChoice clampChoice(TileChoice c) {
  c.tileCols = std::clamp<std::int64_t>(c.tileCols, 16, 1 << 20);
  c.stripBands = std::clamp(c.stripBands, 1, kMaxSimdBands);
  return c;
}

// EASYHPS_TILE_COLS="512" or "256,2" (tileCols[,stripBands]) forces one
// choice for every (family, storage, tier) key — parsed once per process.
std::optional<TileChoice> envOverride() {
  static const std::optional<TileChoice> parsed = [] {
    std::optional<TileChoice> out;
    const char* env = std::getenv("EASYHPS_TILE_COLS");
    if (env == nullptr || *env == '\0') {
      return out;
    }
    TileChoice c;
    char* end = nullptr;
    const long long cols = std::strtoll(env, &end, 10);
    if (end == env || cols <= 0) {
      return out;  // malformed: ignore, fall through to the sweep
    }
    c.tileCols = static_cast<std::int64_t>(cols);
    if (*end == ',') {
      const long long bands = std::strtoll(end + 1, nullptr, 10);
      if (bands > 0) {
        c.stripBands = static_cast<int>(bands);
      }
    }
    out = clampChoice(c);
    return out;
  }();
  return parsed;
}

struct Key {
  std::string family;
  Storage storage;
  KernelPath tier;
  bool operator<(const Key& o) const {
    if (family != o.family) {
      return family < o.family;
    }
    if (storage != o.storage) {
      return storage < o.storage;
    }
    return tier < o.tier;
  }
};

std::mutex g_mutex;
std::map<Key, TileChoice>& memo() {
  static std::map<Key, TileChoice> m;
  return m;
}

// Probe blocks are sized to finish in ~a hundred microseconds per
// candidate rep while still spanning several column tiles and vector
// strips; rows are a multiple of kMaxSimdBands × kVecWidth so every strip
// height runs its vector path rather than the tail fallback.
struct Probe {
  std::unique_ptr<DpProblem> problem;
  CellRect rect;
};

std::optional<Probe> makeProbe(const std::string& family) {
  const std::int64_t rows = 6 * kMaxSimdBands * simd::kVecWidth;
  if (family == "lcs") {
    return Probe{std::make_unique<LongestCommonSubsequence>(
                     randomSequence(rows + 16, 0xA1), randomSequence(1536, 0xA2)),
                 CellRect{8, 64, rows, 1408}};
  }
  if (family == "needleman") {
    return Probe{std::make_unique<NeedlemanWunsch>(
                     randomSequence(rows + 16, 0xB1), randomSequence(1536, 0xB2)),
                 CellRect{8, 64, rows, 1408}};
  }
  if (family == "editdist") {
    return Probe{std::make_unique<EditDistance>(randomSequence(rows + 16, 0xC1),
                                                randomSequence(1536, 0xC2)),
                 CellRect{8, 64, rows, 1408}};
  }
  return std::nullopt;
}

// Deterministic small halo values, same idea as bench_kernels: the probe
// recomputes one block in place, which is idempotent given fixed halos.
std::vector<Score> haloData(const CellRect& h) {
  std::vector<Score> d(static_cast<std::size_t>(h.cellCount()));
  std::size_t k = 0;
  for (std::int64_t r = h.row0; r < h.rowEnd(); ++r) {
    for (std::int64_t c = h.col0; c < h.colEnd(); ++c) {
      d[k++] = hashWeight(r, c, 0x7E57, 8);
    }
  }
  return d;
}

// Times every candidate on one shared window (the probe recomputes its
// block in place, which is idempotent given fixed halos).  Reps are
// interleaved round-robin across candidates — pass 1 times every
// candidate, then pass 2, ... — with the per-candidate minimum kept, so
// clock-frequency drift or a scheduling hiccup during one pass cannot
// systematically favour the candidates that happened to run after it.
template <typename WindowT>
TileChoice sweepOn(const Probe& probe, WindowT& window,
                   const std::vector<TileChoice>& candidates) {
  const auto runOnce = [&](const TileChoice& c) {
    ScopedForcedTile forced(c);
    Stopwatch sw;
    if constexpr (std::is_same_v<WindowT, Window>) {
      probe.problem->computeBlock(window, probe.rect);
    } else {
      probe.problem->computeBlockSparse(window, probe.rect);
    }
    return sw.elapsedSeconds();
  };
  runOnce(candidates.front());  // untimed warm-up: page faults, caches
  std::vector<double> best(candidates.size(), 1e18);
  constexpr int kPasses = 4;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      best[i] = std::min(best[i], runOnce(candidates[i]));
    }
  }
  const std::size_t winner = static_cast<std::size_t>(
      std::min_element(best.begin(), best.end()) - best.begin());
  return candidates[winner];
}

TileChoice sweep(const Key& key) {
  const auto probe = makeProbe(key.family);
  if (!probe.has_value() || key.tier == KernelPath::kReference) {
    return TileChoice{};  // no probe registered: memoize the defaults
  }
  std::vector<TileChoice> candidates;
  for (const std::int64_t cols : {128, 256, 512, 1024}) {
    for (const int bands : {1, kMaxSimdBands}) {
      if (key.tier != KernelPath::kSimd && bands != 1) {
        continue;  // strip height only exists on the simd tier
      }
      candidates.push_back(TileChoice{cols, bands});
    }
  }
  ScopedKernelPath path(key.tier);
  const auto halos = probe->problem->haloFor(probe->rect);
  if (key.storage == Storage::kDense) {
    Window local(boundingBox(probe->rect, halos),
                 probe->problem->boundaryFn());
    for (const CellRect& h : halos) {
      local.inject(h, haloData(h));
    }
    return sweepOn(*probe, local, candidates);
  }
  std::vector<CellRect> segments{probe->rect};
  segments.insert(segments.end(), halos.begin(), halos.end());
  SparseWindow local(std::move(segments), probe->problem->boundaryFn());
  for (const CellRect& h : halos) {
    local.inject(h, haloData(h));
  }
  return sweepOn(*probe, local, candidates);
}

}  // namespace

TileChoice tileFor(const char* family, Storage storage, KernelPath tier) {
  if (t_forced.has_value()) {
    return *t_forced;
  }
  if (const auto env = envOverride(); env.has_value()) {
    return *env;
  }
  const Key key{family, storage, tier};
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = memo().find(key);
  if (it != memo().end()) {
    return it->second;
  }
  const TileChoice choice = clampChoice(sweep(key));
  memo().emplace(key, choice);
  return choice;
}

ScopedForcedTile::ScopedForcedTile(TileChoice choice) {
  t_forced = clampChoice(choice);
}

ScopedForcedTile::~ScopedForcedTile() { t_forced.reset(); }

std::string summary() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, choice] : memo()) {
    if (!first) {
      out << " ";
    }
    first = false;
    out << key.family << "/"
        << (key.storage == Storage::kDense ? "dense" : "sparse") << "/"
        << kernelPathName(key.tier) << "=" << choice.tileCols << "x"
        << choice.stripBands;
  }
  return out.str();
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  memo().clear();
}

}  // namespace easyhps::autotune

#include "easyhps/dp/nussinov.hpp"

#include <algorithm>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/dp/sequence.hpp"

namespace easyhps {

Nussinov::Nussinov(std::string rna, std::int64_t minLoop)
    : rna_(std::move(rna)), n_(static_cast<std::int64_t>(rna_.size())),
      min_loop_(minLoop) {
  EASYHPS_EXPECTS(n_ > 0);
  EASYHPS_EXPECTS(minLoop >= 0);
}

Score Nussinov::pairScore(std::int64_t i, std::int64_t j) const {
  if (j - i <= min_loop_) {
    return -1;  // pairing disallowed: hairpin too tight
  }
  return rnaPairs(rna_[static_cast<std::size_t>(i)],
                  rna_[static_cast<std::size_t>(j)])
             ? 1
             : -1;
}

Score Nussinov::boundary(std::int64_t r, std::int64_t c) const {
  (void)r;
  (void)c;
  return 0;  // N[i][j] = 0 whenever j <= i or outside the matrix
}

std::vector<CellRect> Nussinov::haloFor(const CellRect& rect) const {
  // Split term N[i][k] + N[k+1][j]: row segments to the LEFT of the block
  // (columns [row0, col0)) and column segments BELOW it (rows
  // [rowEnd, colEnd)), plus the single below-left corner reached by the
  // pair term N[i+1][j-1] at the block's bottom-left cell.
  std::vector<CellRect> halos;
  if (rect.col0 > rect.row0) {
    halos.push_back(
        CellRect{rect.row0, rect.row0, rect.rows, rect.col0 - rect.row0});
  }
  if (rect.colEnd() > rect.rowEnd() && rect.rowEnd() < n_) {
    halos.push_back(CellRect{rect.rowEnd(), rect.col0,
                             std::min(rect.colEnd(), n_) - rect.rowEnd(),
                             rect.cols});
  }
  if (rect.rowEnd() < n_ && rect.col0 > 0 && rect.rowEnd() <= rect.col0 - 1) {
    halos.push_back(CellRect{rect.rowEnd(), rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void Nussinov::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  // Rows bottom-up, columns left-to-right: inside a block, (i,j) needs
  // (i+1,j) and (i,j-1).
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        v.set(i, j, 0);
        continue;
      }
      Score best = std::max(v.get(i + 1, j), v.get(i, j - 1));
      const Score p = pairScore(i, j);
      if (p > 0) {
        best = std::max(best, static_cast<Score>(v.get(i + 1, j - 1) + p));
      }
      for (std::int64_t k = i + 1; k < j; ++k) {
        best = std::max(best,
                        static_cast<Score>(v.get(i, k) + v.get(k + 1, j)));
      }
      v.set(i, j, best);
    }
  }
}

template <typename W>
void Nussinov::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    // Row pieces N[i][k] of the split term: columns left of the block sit
    // in the left-halo trapezoid, columns inside it in the row being
    // written (already computed for k < j).
    Score* out = v.rowOut(i, rect.col0, rect.cols);
    const Score* rowLeft =
        rect.col0 > rect.row0
            ? v.rowIn(i, rect.row0, rect.col0 - rect.row0)
            : nullptr;
    if (out == nullptr) {
      referenceKernel(w, CellRect{i, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        out[j - rect.col0] = 0;
        continue;
      }
      const Score adjLeft =
          j > rect.col0 ? out[j - 1 - rect.col0] : v.get(i, j - 1);
      Score best = std::max(v.get(i + 1, j), adjLeft);
      const Score p = pairScore(i, j);
      if (p > 0) {
        best = std::max(best, static_cast<Score>(v.get(i + 1, j - 1) + p));
      }
      // Column pieces N[k+1][j]: rows below i inside the block, then the
      // below-halo trapezoid.  One containing-segment resolution per
      // piece per cell amortizes over the O(j - i) scan.
      const std::int64_t blkLo = i + 2;
      const std::int64_t blkHi = std::min(j + 1, rect.rowEnd());
      std::int64_t blkStride = 0;
      const Score* blkCol =
          blkHi > blkLo ? v.colIn(blkLo, j, blkHi - blkLo, &blkStride)
                        : nullptr;
      const std::int64_t belLo = std::max(blkLo, rect.rowEnd());
      std::int64_t belStride = 0;
      const Score* belCol =
          j + 1 > belLo ? v.colIn(belLo, j, j + 1 - belLo, &belStride)
                        : nullptr;
      for (std::int64_t k = i + 1; k < j; ++k) {
        const Score left =
            k < rect.col0
                ? (rowLeft != nullptr ? rowLeft[k - rect.row0]
                                      : v.get(i, k))
                : out[k - rect.col0];
        const std::int64_t kr = k + 1;
        const Score down =
            kr < rect.rowEnd()
                ? (blkCol != nullptr ? blkCol[(kr - blkLo) * blkStride]
                                     : v.get(kr, j))
                : (belCol != nullptr ? belCol[(kr - belLo) * belStride]
                                     : v.get(kr, j));
        best = std::max(best, static_cast<Score>(left + down));
      }
      out[j - rect.col0] = best;
    }
  }
}

template <typename W>
void Nussinov::kernel(W& w, const CellRect& rect) const {
  if (kernelPath() == KernelPath::kReference) {
    referenceKernel(w, rect);
  } else {
    spanKernel(w, rect);
  }
}

void Nussinov::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void Nussinov::computeBlockSparse(SparseWindow& w,
                                  const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> Nussinov::solveReference() const {
  DenseMatrix<Score> m(n_, n_, 0);
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0 || r >= n_ || c >= n_ || r > c) ? 0 : m.at(r, c);
  };
  for (std::int64_t span = 1; span < n_; ++span) {
    for (std::int64_t i = 0; i + span < n_; ++i) {
      const std::int64_t j = i + span;
      Score best = std::max(get(i + 1, j), get(i, j - 1));
      const Score p = pairScore(i, j);
      if (p > 0) {
        best = std::max(best, static_cast<Score>(get(i + 1, j - 1) + p));
      }
      for (std::int64_t k = i + 1; k < j; ++k) {
        best = std::max(best, static_cast<Score>(get(i, k) + get(k + 1, j)));
      }
      m.at(i, j) = best;
    }
  }
  return m;
}

double Nussinov::blockOps(const CellRect& rect) const {
  // Sum of max(1, j - i) over active cells (i <= j) of the rect.
  double total = 0;
  for (std::int64_t i = rect.row0; i < rect.rowEnd(); ++i) {
    const std::int64_t jLo = std::max(rect.col0, i);
    const std::int64_t jHi = rect.colEnd() - 1;
    if (jLo > jHi) {
      continue;
    }
    // sum over j of max(1, j-i): j==i contributes 1, else j-i.
    const std::int64_t lo = std::max<std::int64_t>(jLo - i, 1);
    const std::int64_t hi = jHi - i;
    const auto count = static_cast<double>(hi - std::max<std::int64_t>(
                                                    jLo - i, 1) +
                                           1);
    total += count * static_cast<double>(lo + hi) / 2.0;
    if (jLo == i) {
      total += 1.0;  // the diagonal cell itself
    }
  }
  return total;
}

Score Nussinov::bestScore(const Window& solved) const {
  return solved.get(0, n_ - 1);
}

std::vector<std::pair<std::int64_t, std::int64_t>> Nussinov::structure(
    const Window& solved) const {
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  std::vector<std::pair<std::int64_t, std::int64_t>> stack{{0, n_ - 1}};
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r > c) ? 0 : solved.get(r, c);
  };
  while (!stack.empty()) {
    const auto [i, j] = stack.back();
    stack.pop_back();
    if (i >= j) {
      continue;
    }
    const Score v = get(i, j);
    if (v == get(i + 1, j)) {
      stack.push_back({i + 1, j});
      continue;
    }
    if (v == get(i, j - 1)) {
      stack.push_back({i, j - 1});
      continue;
    }
    const Score p = pairScore(i, j);
    if (p > 0 && v == get(i + 1, j - 1) + p) {
      pairs.push_back({i, j});
      stack.push_back({i + 1, j - 1});
      continue;
    }
    bool split = false;
    for (std::int64_t k = i + 1; k < j && !split; ++k) {
      if (v == get(i, k) + get(k + 1, j)) {
        stack.push_back({i, k});
        stack.push_back({k + 1, j});
        split = true;
      }
    }
    EASYHPS_CHECK(split, "Nussinov traceback: inconsistent matrix");
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string Nussinov::dotBracket(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& pairs) const {
  std::string s(static_cast<std::size_t>(n_), '.');
  for (const auto& [i, j] : pairs) {
    s[static_cast<std::size_t>(i)] = '(';
    s[static_cast<std::size_t>(j)] = ')';
  }
  return s;
}

bool Nussinov::fingerprint(util::Hasher& h) const {
  h.tag("nussinov");
  h.str(rna_);
  return true;
}

}  // namespace easyhps

#include "easyhps/dp/sparse_window.hpp"

#include <algorithm>

namespace easyhps {

SparseWindow::SparseWindow(std::vector<CellRect> segments,
                           BoundaryFn boundary)
    : boundary_(std::move(boundary)) {
  EASYHPS_EXPECTS(boundary_ != nullptr);
  segments_.reserve(segments.size());
  for (const CellRect& r : segments) {
    if (r.cellCount() == 0) {
      continue;
    }
    for (const Segment& existing : segments_) {
      const bool disjoint = r.rowEnd() <= existing.rect.row0 ||
                            existing.rect.rowEnd() <= r.row0 ||
                            r.colEnd() <= existing.rect.col0 ||
                            existing.rect.colEnd() <= r.col0;
      EASYHPS_CHECK(disjoint, "SparseWindow segments overlap");
    }
    segments_.push_back(
        Segment{r, std::vector<Score>(static_cast<std::size_t>(r.cellCount()),
                                      Score{0})});
  }
  EASYHPS_CHECK(!segments_.empty(), "SparseWindow needs >= 1 segment");
}

const Score* SparseWindow::rowIn(std::int64_t r, std::int64_t c0,
                                 std::int64_t len) const {
  return View(*const_cast<SparseWindow*>(this)).rowIn(r, c0, len);
}

Score* SparseWindow::rowOut(std::int64_t r, std::int64_t c0,
                            std::int64_t len) {
  return View(*this).rowOut(r, c0, len);
}

const Score* SparseWindow::colIn(std::int64_t r0, std::int64_t c,
                                 std::int64_t len,
                                 std::int64_t* stride) const {
  return View(*const_cast<SparseWindow*>(this)).colIn(r0, c, len, stride);
}

const SparseWindow::Segment* SparseWindow::segmentContaining(
    const CellRect& rect) const {
  for (const Segment& s : segments_) {
    if (rect.row0 >= s.rect.row0 && rect.rowEnd() <= s.rect.rowEnd() &&
        rect.col0 >= s.rect.col0 && rect.colEnd() <= s.rect.colEnd()) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<Score> SparseWindow::extract(const CellRect& rect) const {
  const Segment* s = segmentContaining(rect);
  EASYHPS_CHECK(s != nullptr,
                "SparseWindow::extract rect spans no single segment");
  EASYHPS_DCHECK(valid_.rectValid(rect.row0, rect.col0, rect.rows,
                                  rect.cols));
  std::vector<Score> out(static_cast<std::size_t>(rect.cellCount()));
  for (std::int64_t r = 0; r < rect.rows; ++r) {
    const Score* src = s->data.data() + s->index(rect.row0 + r, rect.col0);
    std::copy(src, src + rect.cols,
              out.begin() + static_cast<std::ptrdiff_t>(r * rect.cols));
  }
  return out;
}

void SparseWindow::inject(const CellRect& rect,
                          std::span<const Score> values) {
  EASYHPS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                  rect.cellCount());
  Segment* s = const_cast<Segment*>(segmentContaining(rect));
  EASYHPS_CHECK(s != nullptr,
                "SparseWindow::inject rect spans no single segment");
  for (std::int64_t r = 0; r < rect.rows; ++r) {
    std::copy(values.begin() + static_cast<std::ptrdiff_t>(r * rect.cols),
              values.begin() + static_cast<std::ptrdiff_t>((r + 1) *
                                                           rect.cols),
              s->data.begin() + static_cast<std::ptrdiff_t>(
                                    s->index(rect.row0 + r, rect.col0)));
  }
  valid_.fill(rect);  // after the copy: release pairs with reader acquire
}

std::int64_t SparseWindow::storedCells() const {
  std::int64_t total = 0;
  for (const Segment& s : segments_) {
    total += s.rect.cellCount();
  }
  return total;
}

}  // namespace easyhps

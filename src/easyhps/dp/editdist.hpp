#pragma once
/// \file editdist.hpp
/// Levenshtein edit distance — the canonical 2D/0D algorithm
/// (paper Algorithm 4.1: each cell depends on O(1) neighbours).
///
///   D[i][j] = min( D[i-1][j] + 1,
///                  D[i][j-1] + 1,
///                  D[i-1][j-1] + (a_i != b_j) )
///
/// Matrix cell (r, c) holds D for prefixes a[0..r] / b[0..c] (lengths
/// r+1, c+1); the classical first row/column are virtual boundary cells:
/// D[r][-1] = r+1, D[-1][c] = c+1, D[-1][-1] = 0.

#include <string>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class EditDistance final : public DpProblem {
 public:
  EditDistance(std::string a, std::string b);

  std::string name() const override { return "edit-distance"; }
  std::int64_t rows() const override;
  std::int64_t cols() const override;
  PatternKind masterPatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// The answer: distance between the two full strings.
  Score distanceFrom(const Window& solved) const;

 private:
  /// Dispatches on effectiveKernelPath(): simd / span / reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void simdKernel(W& w, const CellRect& rect) const;

  std::string a_;
  std::string b_;
};

}  // namespace easyhps

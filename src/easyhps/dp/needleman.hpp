#pragma once
/// \file needleman.hpp
/// Needleman-Wunsch global alignment (linear gap) — 2D/0D, with a full
/// alignment traceback.
///
///   D[i][j] = max( D[i-1][j-1] + s(a_i, b_j),
///                  D[i-1][j]   - gap,
///                  D[i][j-1]   - gap )
///
/// boundary: D[-1][j] = -(j+1)·gap, D[i][-1] = -(i+1)·gap, D[-1][-1] = 0 —
/// the classical first row/column of a global alignment matrix expressed
/// as virtual cells.

#include <string>
#include <utility>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class NeedlemanWunsch final : public DpProblem {
 public:
  struct Params {
    Score match = 1;
    Score mismatch = -1;
    Score gap = 2;
  };

  NeedlemanWunsch(std::string a, std::string b);
  NeedlemanWunsch(std::string a, std::string b, Params params);

  std::string name() const override { return "needleman-wunsch"; }
  std::int64_t rows() const override;
  std::int64_t cols() const override;
  PatternKind masterPatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Global alignment score of the full strings.
  Score score(const Window& solved) const;

  /// The aligned strings with '-' gaps, via traceback.
  std::pair<std::string, std::string> alignment(const Window& solved) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void simdKernel(W& w, const CellRect& rect) const;

  Score substitution(std::int64_t r, std::int64_t c) const {
    return a_[static_cast<std::size_t>(r)] == b_[static_cast<std::size_t>(c)]
               ? params_.match
               : params_.mismatch;
  }

  std::string a_;
  std::string b_;
  Params params_;
};

}  // namespace easyhps

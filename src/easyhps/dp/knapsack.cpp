#include "easyhps/dp/knapsack.hpp"

#include <algorithm>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps {

Knapsack::Knapsack(std::int64_t n, std::int64_t capacity, std::uint64_t seed,
                   std::int32_t maxWeight, std::int32_t maxValue)
    : capacity_(capacity) {
  EASYHPS_EXPECTS(n > 0 && capacity > 0);
  EASYHPS_EXPECTS(maxWeight >= 1 && maxValue >= 1);
  Rng rng(seed);
  items_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Item item;
    item.weight = static_cast<std::int32_t>(rng.nextInRange(1, maxWeight));
    item.value = static_cast<std::int32_t>(rng.nextInRange(1, maxValue));
    items_.push_back(item);
  }
}

Knapsack::Knapsack(std::vector<Item> items, std::int64_t capacity)
    : items_(std::move(items)), capacity_(capacity) {
  EASYHPS_EXPECTS(!items_.empty() && capacity > 0);
  for (const Item& item : items_) {
    EASYHPS_EXPECTS(item.weight >= 1);
  }
}

Score Knapsack::boundary(std::int64_t r, std::int64_t c) const {
  if (r < 0 || c < 0) {
    return 0;  // no items considered, or capacity 0
  }
  throw LogicError("Knapsack::boundary: in-matrix read — halo missing");
}

std::vector<CellRect> Knapsack::haloFor(const CellRect& rect) const {
  std::vector<CellRect> halos;
  // The jump dependency (r-1, c - weight) reaches arbitrarily far left:
  // full prefix of the row above, left strip of own rows.
  if (rect.row0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, 0, 1, rect.colEnd()});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, 0, rect.rows, rect.col0});
  }
  return halos;
}

template <typename W>
void Knapsack::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    const Item& item = items_[static_cast<std::size_t>(r)];
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      Score best = v.get(r - 1, c);  // skip the item
      if (item.weight <= c + 1) {    // capacity c+1 fits the item
        best = std::max(best,
                        static_cast<Score>(item.value +
                                           v.get(r - 1, c - item.weight)));
      }
      v.set(r, c, best);
    }
  }
}

template <typename W>
void Knapsack::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    const Item& item = items_[static_cast<std::size_t>(r)];
    // The jump dependency (r-1, c - weight) lands in one of three stores:
    // the previous row under the block, the left strip of the previous
    // row (halo), or — for c - weight = -1 — the zero boundary.  Both
    // spans resolve once per row; matrix row 0 has no stored previous
    // row and keeps the per-cell path.
    Score* out = v.rowOut(r, rect.col0, rect.cols);
    const Score* prevBlk =
        r > 0 ? v.rowIn(r - 1, rect.col0, rect.cols) : nullptr;
    const Score* prevLeft =
        (r > 0 && rect.col0 > 0) ? v.rowIn(r - 1, 0, rect.col0) : nullptr;
    if (out == nullptr || prevBlk == nullptr ||
        (rect.col0 > 0 && prevLeft == nullptr)) {
      referenceKernel(w, CellRect{r, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      Score best = prevBlk[c - rect.col0];  // skip the item
      if (item.weight <= c + 1) {           // capacity c+1 fits the item
        const std::int64_t cc = c - item.weight;
        const Score prev = cc >= rect.col0 ? prevBlk[cc - rect.col0]
                           : cc >= 0       ? prevLeft[cc]
                                           : Score{0};
        best = std::max(best, static_cast<Score>(item.value + prev));
      }
      out[c - rect.col0] = best;
    }
  }
}

template <typename W>
void Knapsack::simdKernel(W& w, const CellRect& rect) const {
  using simd::VecScore;
  constexpr std::int64_t kVW = simd::kVecWidth;
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    const Item& item = items_[static_cast<std::size_t>(r)];
    Score* out = v.rowOut(r, rect.col0, rect.cols);
    const Score* prevBlk =
        r > 0 ? v.rowIn(r - 1, rect.col0, rect.cols) : nullptr;
    const Score* prevLeft =
        (r > 0 && rect.col0 > 0) ? v.rowIn(r - 1, 0, rect.col0) : nullptr;
    if (out == nullptr || prevBlk == nullptr ||
        (rect.col0 > 0 && prevLeft == nullptr)) {
      referenceKernel(w, CellRect{r, rect.col0, 1, rect.cols});
      continue;
    }
    const std::int64_t weight = item.weight;
    const VecScore value = VecScore::splat(item.value);
    // Column ranges by where the jump dependency (r-1, c - weight) lands:
    // nowhere (the item does not fit), the zero boundary (c == weight-1),
    // the previous row's left-strip halo, or the previous row under the
    // block.  Each contiguous range takes unaligned vector loads directly
    // from its source span; take-vs-leave is a branchless lanewise max.
    const std::int64_t skipEnd = std::min(rect.colEnd(), weight - 1);
    for (std::int64_t c = rect.col0; c < skipEnd; ++c) {
      out[c - rect.col0] = prevBlk[c - rect.col0];
    }
    if (weight - 1 >= rect.col0 && weight - 1 < rect.colEnd()) {
      const std::int64_t c = weight - 1;
      out[c - rect.col0] = std::max(prevBlk[c - rect.col0],
                                    static_cast<Score>(item.value));
    }
    const auto vectorRange = [&](std::int64_t lo, std::int64_t hi,
                                 const Score* src, std::int64_t srcBase) {
      // src[c - srcBase] holds cell (r-1, c - weight) for c in [lo, hi).
      std::int64_t c = lo;
      for (; c + kVW <= hi; c += kVW) {
        const VecScore skip = VecScore::load(prevBlk + (c - rect.col0));
        const VecScore take = value + VecScore::load(src + (c - srcBase));
        VecScore::max(skip, take).store(out + (c - rect.col0));
      }
      for (; c < hi; ++c) {
        const Score skip = prevBlk[c - rect.col0];
        const Score take =
            static_cast<Score>(item.value + src[c - srcBase]);
        out[c - rect.col0] = std::max(skip, take);
      }
    };
    const std::int64_t leftLo = std::max(rect.col0, weight);
    const std::int64_t leftHi = std::min(rect.colEnd(), weight + rect.col0);
    if (leftLo < leftHi) {
      vectorRange(leftLo, leftHi, prevLeft, weight);
    }
    const std::int64_t blkLo = std::max(rect.col0, weight + rect.col0);
    if (blkLo < rect.colEnd()) {
      vectorRange(blkLo, rect.colEnd(), prevBlk, weight + rect.col0);
    }
  }
}

template <typename W>
void Knapsack::kernel(W& w, const CellRect& rect) const {
  switch (effectiveKernelPath()) {
    case KernelPath::kReference:
      referenceKernel(w, rect);
      break;
    case KernelPath::kSpan:
      spanKernel(w, rect);
      break;
    case KernelPath::kSimd:
      simdKernel(w, rect);
      break;
  }
}

void Knapsack::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void Knapsack::computeBlockSparse(SparseWindow& w,
                                  const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> Knapsack::solveReference() const {
  DenseMatrix<Score> m(rows(), cols());
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0) ? 0 : m.at(r, c);
  };
  for (std::int64_t r = 0; r < rows(); ++r) {
    const Item& item = items_[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < cols(); ++c) {
      Score best = get(r - 1, c);
      if (item.weight <= c + 1) {
        best = std::max(best, static_cast<Score>(item.value +
                                                 get(r - 1, c - item.weight)));
      }
      m.at(r, c) = best;
    }
  }
  return m;
}

Score Knapsack::bestValue(const Window& solved) const {
  return solved.get(rows() - 1, cols() - 1);
}

std::vector<std::int64_t> Knapsack::chosenItems(const Window& solved) const {
  std::vector<std::int64_t> chosen;
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0) ? 0 : solved.get(r, c);
  };
  std::int64_t c = cols() - 1;
  for (std::int64_t r = rows() - 1; r >= 0; --r) {
    if (get(r, c) != get(r - 1, c)) {  // the item was taken
      chosen.push_back(r);
      c -= items_[static_cast<std::size_t>(r)].weight;
      if (c < 0) {
        break;
      }
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return chosen;
}

bool Knapsack::fingerprint(util::Hasher& h) const {
  h.tag("knapsack");
  h.value<std::uint64_t>(items_.size());
  for (const Item& it : items_) {
    h.value(it.weight);
    h.value(it.value);
  }
  h.value(capacity_);
  return true;
}

}  // namespace easyhps

#pragma once
/// \file lcs.hpp
/// Longest Common Subsequence — a 2D/0D algorithm with traceback.
///
///   L[i][j] = L[i-1][j-1] + 1                  if a_i == b_j
///           = max(L[i-1][j], L[i][j-1])        otherwise
///
/// boundary: L[-1][*] = L[*][-1] = 0.  `subsequence()` recovers one LCS
/// string from the solved matrix, so examples get an actual answer rather
/// than just a length.

#include <string>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class LongestCommonSubsequence final : public DpProblem {
 public:
  LongestCommonSubsequence(std::string a, std::string b);

  std::string name() const override { return "lcs"; }
  std::int64_t rows() const override;
  std::int64_t cols() const override;
  PatternKind masterPatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// LCS length of the full strings.
  Score length(const Window& solved) const;

  /// One longest common subsequence, via traceback.
  std::string subsequence(const Window& solved) const;

 private:
  /// Dispatches on effectiveKernelPath(): simd / span / reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void simdKernel(W& w, const CellRect& rect) const;

  std::string a_;
  std::string b_;
};

}  // namespace easyhps

#pragma once
/// \file mcm.hpp
/// Matrix-Chain Multiplication — the classic 2D/1D triangular DP
/// (Bradford's parallel-DP example, paper §II):
///
///   M[i][j] = min_{i<=k<j} ( M[i][k] + M[k+1][j] + d_i · d_{k+1} · d_{j+1} )
///
/// with M[i][i] = 0, over matrices A_i of shape d_i × d_{i+1}.
/// `parenthesization()` rebuilds one optimal bracketing string.

#include <cstdint>
#include <string>
#include <vector>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class MatrixChain final : public DpProblem {
 public:
  /// `n` matrices with dimensions drawn uniformly from [1, maxDim].
  MatrixChain(std::int64_t n, std::uint64_t seed, std::int32_t maxDim = 20);

  /// Explicit dimension vector d_0..d_n (n matrices).
  explicit MatrixChain(std::vector<std::int32_t> dims);

  std::string name() const override { return "matrix-chain"; }
  std::int64_t rows() const override { return n_; }
  std::int64_t cols() const override { return n_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kTriangular2D1D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kFlippedWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  bool cellActive(std::int64_t r, std::int64_t c) const override {
    return r <= c;
  }
  bool rectActive(const CellRect& rect) const override {
    return rect.row0 <= rect.colEnd() - 1;
  }
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;
  double blockOps(const CellRect& rect) const override;

  /// Minimum scalar multiplications for the whole chain.
  Score bestCost(const Window& solved) const;

  /// One optimal bracketing, e.g. "((A0 A1) (A2 A3))".
  std::string parenthesization(const Window& solved) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;

  Score mulCost(std::int64_t i, std::int64_t k, std::int64_t j) const {
    return static_cast<Score>(
        static_cast<std::int64_t>(dims_[static_cast<std::size_t>(i)]) *
        dims_[static_cast<std::size_t>(k + 1)] *
        dims_[static_cast<std::size_t>(j + 1)]);
  }

  std::vector<std::int32_t> dims_;  // n_ + 1 entries
  std::int64_t n_ = 0;
};

}  // namespace easyhps

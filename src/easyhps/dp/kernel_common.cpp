#include "easyhps/dp/kernel_common.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "easyhps/dp/simd.hpp"

namespace easyhps {
namespace {

// EASYHPS_KERNEL_PATH=simd|span|reference selects the kernel tier process-
// wide without a rebuild — used to A/B the figure benches and to bisect a
// suspected fast-path miscompute in the field.  Unset (or anything
// unrecognised) selects the simd default; a CPU without the compiled ISA
// is handled later by effectiveKernelPath(), not here, so the *requested*
// tier stays observable in stats.
KernelPath initialKernelPath() {
  const char* env = std::getenv("EASYHPS_KERNEL_PATH");
  if (env != nullptr) {
    if (std::strcmp(env, "reference") == 0) {
      return KernelPath::kReference;
    }
    if (std::strcmp(env, "span") == 0) {
      return KernelPath::kSpan;
    }
  }
  return KernelPath::kSimd;
}

// Relaxed is enough: the toggle is set before a run and read by kernel
// dispatch; it is a mode switch, not a synchronization point.
std::atomic<KernelPath> g_kernel_path{initialKernelPath()};

}  // namespace

KernelPath kernelPath() {
  return g_kernel_path.load(std::memory_order_relaxed);
}

void setKernelPath(KernelPath path) {
  g_kernel_path.store(path, std::memory_order_relaxed);
}

KernelPath effectiveKernelPath() {
  const KernelPath requested = kernelPath();
  if (requested == KernelPath::kSimd && !simd::runtimeSupported()) {
    return KernelPath::kSpan;
  }
  return requested;
}

const char* kernelPathName(KernelPath path) {
  switch (path) {
    case KernelPath::kSimd:
      return "simd";
    case KernelPath::kSpan:
      return "span";
    case KernelPath::kReference:
      return "reference";
  }
  return "unknown";
}

}  // namespace easyhps

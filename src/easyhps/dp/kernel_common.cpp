#include "easyhps/dp/kernel_common.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace easyhps {
namespace {

// EASYHPS_KERNEL_PATH=reference forces the per-cell oracle path process-
// wide without a rebuild — used to A/B the figure benches and to bisect a
// suspected span-path miscompute in the field.  Anything else (including
// unset) selects the span default.
KernelPath initialKernelPath() {
  const char* env = std::getenv("EASYHPS_KERNEL_PATH");
  if (env != nullptr && std::strcmp(env, "reference") == 0) {
    return KernelPath::kReference;
  }
  return KernelPath::kSpan;
}

// Relaxed is enough: the toggle is set before a run and read by kernel
// dispatch; it is a mode switch, not a synchronization point.
std::atomic<KernelPath> g_kernel_path{initialKernelPath()};

}  // namespace

KernelPath kernelPath() {
  return g_kernel_path.load(std::memory_order_relaxed);
}

void setKernelPath(KernelPath path) {
  g_kernel_path.store(path, std::memory_order_relaxed);
}

}  // namespace easyhps

#pragma once
/// \file knapsack.hpp
/// 0/1 knapsack — a 2D/0D DP whose second dependency *jumps*:
///
///   D[i][w] = max( D[i-1][w],
///                  value_i + D[i-1][w - weight_i] )   if weight_i <= w
///
/// Matrix cell (r, c) holds D for the first r+1 items at capacity c+1.
/// Unlike the unit-step wavefront DPs, the jump (w − weight_i) can cross
/// many block columns, so a block's halo is the *full prefix* of the row
/// above plus the left strip of its own rows — precedence still reduces to
/// the wavefront (up/left), which covers those strips transitively.
/// `chosenItems()` tracebacks the optimal item set.

#include <cstdint>
#include <vector>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

class Knapsack final : public DpProblem {
 public:
  struct Item {
    std::int32_t weight = 1;
    std::int32_t value = 0;
  };

  /// `n` items with weights in [1, maxWeight], values in [1, maxValue],
  /// capacity `capacity`, all derived from `seed`.
  Knapsack(std::int64_t n, std::int64_t capacity, std::uint64_t seed,
           std::int32_t maxWeight = 12, std::int32_t maxValue = 20);

  Knapsack(std::vector<Item> items, std::int64_t capacity);

  std::string name() const override { return "knapsack"; }
  std::int64_t rows() const override {
    return static_cast<std::int64_t>(items_.size());
  }
  std::int64_t cols() const override { return capacity_; }
  PatternKind masterPatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Optimal total value at full capacity.
  Score bestValue(const Window& solved) const;

  /// Indices of one optimal item set, via traceback.
  std::vector<std::int64_t> chosenItems(const Window& solved) const;

  const std::vector<Item>& items() const { return items_; }

 private:
  /// Dispatches on effectiveKernelPath(): simd / span / reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void simdKernel(W& w, const CellRect& rect) const;

  std::vector<Item> items_;
  std::int64_t capacity_ = 0;
};

}  // namespace easyhps

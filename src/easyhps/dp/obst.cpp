#include "easyhps/dp/obst.hpp"

#include <algorithm>
#include <limits>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps {

OptimalBst::OptimalBst(std::int64_t n, std::uint64_t seed,
                       std::int32_t maxFreq) {
  EASYHPS_EXPECTS(n > 0);
  EASYHPS_EXPECTS(maxFreq >= 1);
  Rng rng(seed);
  freqs_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    freqs_.push_back(static_cast<std::int32_t>(
        rng.nextInRange(1, maxFreq)));
  }
  buildPrefix();
}

OptimalBst::OptimalBst(std::vector<std::int32_t> freqs)
    : freqs_(std::move(freqs)) {
  EASYHPS_EXPECTS(!freqs_.empty());
  buildPrefix();
}

void OptimalBst::buildPrefix() {
  n_ = static_cast<std::int64_t>(freqs_.size());
  prefix_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (std::int64_t i = 0; i < n_; ++i) {
    prefix_[static_cast<std::size_t>(i) + 1] =
        prefix_[static_cast<std::size_t>(i)] +
        freqs_[static_cast<std::size_t>(i)];
  }
}

Score OptimalBst::weight(std::int64_t i, std::int64_t j) const {
  EASYHPS_EXPECTS(i >= 0 && j < n_ && i <= j);
  return static_cast<Score>(prefix_[static_cast<std::size_t>(j) + 1] -
                            prefix_[static_cast<std::size_t>(i)]);
}

Score OptimalBst::boundary(std::int64_t r, std::int64_t c) const {
  (void)r;
  (void)c;
  return 0;  // below-diagonal / out-of-matrix reads are empty ranges
}

std::vector<CellRect> OptimalBst::haloFor(const CellRect& rect) const {
  // Same trapezoid as every triangular 2D/1D DP: row segments left of the
  // block, column segments below it (D[i][k-1] / D[k][j]).
  std::vector<CellRect> halos;
  if (rect.col0 > rect.row0) {
    halos.push_back(
        CellRect{rect.row0, rect.row0, rect.rows, rect.col0 - rect.row0});
  }
  if (rect.colEnd() > rect.rowEnd() && rect.rowEnd() < n_) {
    halos.push_back(CellRect{rect.rowEnd(), rect.col0,
                             std::min(rect.colEnd(), n_) - rect.rowEnd(),
                             rect.cols});
  }
  return halos;
}

template <typename W>
void OptimalBst::referenceKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        v.set(i, j, 0);
        continue;
      }
      // min over i < k <= j of D[i][k-1] + D[k][j] (paper Algorithm 4.2).
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i + 1; k <= j; ++k) {
        best = std::min(best,
                        static_cast<Score>(v.get(i, k - 1) + v.get(k, j)));
      }
      v.set(i, j, static_cast<Score>(best + weight(i, j)));
    }
  }
}

template <typename W>
void OptimalBst::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t i = rect.rowEnd() - 1; i >= rect.row0; --i) {
    // Row pieces D[i][k-1]: left-halo trapezoid columns [row0, col0),
    // then the row being written (computed for k-1 < j).
    Score* out = v.rowOut(i, rect.col0, rect.cols);
    const Score* rowLeft =
        rect.col0 > rect.row0
            ? v.rowIn(i, rect.row0, rect.col0 - rect.row0)
            : nullptr;
    if (out == nullptr) {
      referenceKernel(w, CellRect{i, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t j = std::max(rect.col0, i); j < rect.colEnd(); ++j) {
      if (i == j) {
        out[j - rect.col0] = 0;
        continue;
      }
      // Column pieces D[k][j]: block rows below i, then the below-halo
      // trapezoid; resolved once per cell, amortized over the k-scan.
      const std::int64_t blkLo = i + 1;
      const std::int64_t blkHi = std::min(j + 1, rect.rowEnd());
      std::int64_t blkStride = 0;
      const Score* blkCol =
          blkHi > blkLo ? v.colIn(blkLo, j, blkHi - blkLo, &blkStride)
                        : nullptr;
      const std::int64_t belLo = std::max(blkLo, rect.rowEnd());
      std::int64_t belStride = 0;
      const Score* belCol =
          j + 1 > belLo ? v.colIn(belLo, j, j + 1 - belLo, &belStride)
                        : nullptr;
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i + 1; k <= j; ++k) {
        const std::int64_t kc = k - 1;
        const Score left =
            kc < rect.col0
                ? (rowLeft != nullptr ? rowLeft[kc - rect.row0]
                                      : v.get(i, kc))
                : out[kc - rect.col0];
        const Score down =
            k < rect.rowEnd()
                ? (blkCol != nullptr ? blkCol[(k - blkLo) * blkStride]
                                     : v.get(k, j))
                : (belCol != nullptr ? belCol[(k - belLo) * belStride]
                                     : v.get(k, j));
        best = std::min(best, static_cast<Score>(left + down));
      }
      out[j - rect.col0] = static_cast<Score>(best + weight(i, j));
    }
  }
}

template <typename W>
void OptimalBst::kernel(W& w, const CellRect& rect) const {
  if (kernelPath() == KernelPath::kReference) {
    referenceKernel(w, rect);
  } else {
    spanKernel(w, rect);
  }
}

void OptimalBst::computeBlock(Window& w, const CellRect& rect) const {
  kernel(w, rect);
}

void OptimalBst::computeBlockSparse(SparseWindow& w,
                                    const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> OptimalBst::solveReference() const {
  DenseMatrix<Score> m(n_, n_, 0);
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r > c || r < 0 || c >= n_) ? 0 : m.at(r, c);
  };
  for (std::int64_t span = 1; span < n_; ++span) {
    for (std::int64_t i = 0; i + span < n_; ++i) {
      const std::int64_t j = i + span;
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t k = i + 1; k <= j; ++k) {
        best = std::min(best,
                        static_cast<Score>(get(i, k - 1) + get(k, j)));
      }
      m.at(i, j) = static_cast<Score>(best + weight(i, j));
    }
  }
  return m;
}

double OptimalBst::blockOps(const CellRect& rect) const {
  double total = 0;
  for (std::int64_t i = rect.row0; i < rect.rowEnd(); ++i) {
    const std::int64_t jLo = std::max(rect.col0, i);
    const std::int64_t jHi = rect.colEnd() - 1;
    if (jLo > jHi) {
      continue;
    }
    for (std::int64_t j = jLo; j <= jHi; ++j) {
      total += static_cast<double>(std::max<std::int64_t>(j - i, 1));
    }
  }
  return total;
}

Score OptimalBst::bestCost(const Window& solved) const {
  return solved.get(0, n_ - 1);
}

bool OptimalBst::fingerprint(util::Hasher& h) const {
  h.tag("optimal-bst");
  h.vec(freqs_);
  return true;
}

}  // namespace easyhps

#pragma once
/// \file problem.hpp
/// The user-facing DP problem abstraction.
///
/// To run a dynamic program under EasyHPS, a user implements `DpProblem`
/// (or uses one of the shipped algorithms in this directory).  The
/// interface mirrors the paper's Table I user API:
///
///  * `masterPatternKind` / `slavePatternKind` — the `dag_pattern_type`
///    selected from the DAG Pattern Model library (§IV-C),
///  * `haloFor`          — the `data_mapping_function` (which earlier data
///    a sub-task's block needs),
///  * `computeBlock`     — the `process` task function for a DAG vertex,
///  * `boundary`         — virtual matrix edge cells (H[-1][j] etc.),
///  * `blockOps`         — abstract work, consumed by the simulator's cost
///    model (not part of the paper API; needed because our evaluation
///    substrate is a simulator, see DESIGN.md).

#include <memory>
#include <string>
#include <vector>

#include "easyhps/dag/library.hpp"
#include "easyhps/dp/sparse_window.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/dense.hpp"
#include "easyhps/util/hash.hpp"

namespace easyhps {

class DpProblem {
 public:
  virtual ~DpProblem() = default;

  virtual std::string name() const = 0;

  /// Matrix dimensions (cells actually indexed by kernels).
  virtual std::int64_t rows() const = 0;
  virtual std::int64_t cols() const = 0;

  /// Block-level precedence pattern at the master (process) level.
  virtual PatternKind masterPatternKind() const = 0;

  /// Sub-block precedence inside one master block (thread level).
  /// Down-right wavefront problems keep the wavefront; triangular problems
  /// flip it (cell (i,j) ← (i+1,j), (i,j-1)).
  virtual PatternKind slavePatternKind() const = 0;

  /// Boundary value for reads outside the matrix.
  virtual Score boundary(std::int64_t r, std::int64_t c) const = 0;

  /// Whether a cell inside the matrix is actually computed (triangular
  /// problems leave the lower-left half untouched; such cells read as 0).
  virtual bool cellActive(std::int64_t r, std::int64_t c) const {
    (void)r;
    (void)c;
    return true;
  }

  /// True iff `rect` contains at least one active cell.
  virtual bool rectActive(const CellRect& rect) const {
    (void)rect;
    return true;
  }

  /// Block-level DAG over `grid`.  The default dispatches into the DAG
  /// Pattern Model library by masterPatternKind(); problems with
  /// user-defined patterns (kUserDefined) override this with makeCustom —
  /// the paper's "programmers should define and implement the DAG Pattern
  /// Model by themselves" path (see examples/custom_pattern.cpp).
  virtual PartitionedDag masterDag(const BlockGrid& grid) const {
    return makeFromLibrary(masterPatternKind(), grid);
  }

  /// Thread-level DAG over one master block.  The default partitions the
  /// block by slavePatternKind() (wavefront or flipped wavefront with the
  /// problem's activity mask); stage DPs like Viterbi override it, e.g. to
  /// force single-row sub-blocks (cells of one stage may not be split
  /// across dependent sub-blocks).
  virtual PartitionedDag slaveDagFor(const CellRect& blockRect,
                                     std::int64_t threadPartitionRows,
                                     std::int64_t threadPartitionCols) const;

  /// Rectangles outside `rect` the kernel reads while computing `rect`
  /// (the data-communication level of the DAG Data Driven Model).  Every
  /// returned rect lies inside the matrix and is disjoint from `rect`.
  virtual std::vector<CellRect> haloFor(const CellRect& rect) const = 0;

  /// Computes every active cell of `rect` in a dependency-correct order.
  /// All halo cells are readable through `w` when called.
  virtual void computeBlock(Window& w, const CellRect& rect) const = 0;

  /// Same kernel over a SparseWindow — the memory-bounded execution path
  /// slaves use by default (RuntimeConfig::sparseSlaveWindows).  Problems
  /// implement both by instantiating one kernel template twice, so the hot
  /// loops stay devirtualized for either storage.
  virtual void computeBlockSparse(SparseWindow& w,
                                  const CellRect& rect) const = 0;

  /// Straightforward textbook solution; the ground truth in tests.
  virtual DenseMatrix<Score> solveReference() const = 0;

  /// Abstract operation count for `rect` (simulator cost model).
  virtual double blockOps(const CellRect& rect) const {
    return static_cast<double>(rect.cellCount());
  }

  /// Folds a canonical description of this *instance* — a problem-kind tag
  /// plus the full input payload — into `h`, and returns true.  Two
  /// instances that fold the same stream are promised to solve to
  /// bit-identical tables; that promise is what the result cache
  /// (easyhps::cache) is addressed by.  Returns false when the instance
  /// has no canonical form (closures, user-defined problems): such
  /// problems are simply uncacheable, never mis-cached.  The default is
  /// uncacheable, so custom DpProblems opt *in* to caching.
  virtual bool fingerprint(util::Hasher& h) const {
    (void)h;
    return false;
  }

  /// Boundary function bound to this problem (for constructing Windows).
  BoundaryFn boundaryFn() const {
    return [this](std::int64_t r, std::int64_t c) { return boundary(r, c); };
  }
};

/// Builds the master-level (process) DAG for a problem.
PartitionedDag buildMasterDag(const DpProblem& problem,
                              std::int64_t processPartitionRows,
                              std::int64_t processPartitionCols);

/// Builds the slave-level (thread) DAG for one master block.  Vertices are
/// sub-blocks of `blockRect` in *global* coordinates; inactive sub-blocks
/// (entirely outside the problem's active region) are excluded.
PartitionedDag buildSlaveDag(const DpProblem& problem,
                             const CellRect& blockRect,
                             std::int64_t threadPartitionRows,
                             std::int64_t threadPartitionCols);

/// Rectangle of the slave-DAG vertex `v` in global matrix coordinates.
CellRect slaveVertexRect(const PartitionedDag& slaveDag,
                         const CellRect& blockRect, VertexId v);

/// Solves the problem serially through the *block* kernels, walking the
/// master DAG in topological order over a whole-matrix window.  Exercises
/// the exact code path the runtime distributes; used as a mid-level oracle
/// between solveReference() and the full runtime.
Window solveBlocked(const DpProblem& problem, std::int64_t partitionRows,
                    std::int64_t partitionCols);

/// Like solveBlocked but additionally partitions every master block with
/// the slave DAG, mimicking the two-level decomposition end to end.
Window solveBlockedTwoLevel(const DpProblem& problem,
                            std::int64_t processPartitionRows,
                            std::int64_t processPartitionCols,
                            std::int64_t threadPartitionRows,
                            std::int64_t threadPartitionCols);

/// Total bytes of halo data shipped for a block (simulator + stats).
std::int64_t haloBytes(const DpProblem& problem, const CellRect& rect);

}  // namespace easyhps

#pragma once
/// \file swgg.hpp
/// Smith-Waterman with General Gap penalty (SWGG) — the paper's primary
/// evaluation workload (§VI).
///
/// With an arbitrary gap penalty g(k) the local-alignment recurrence is
///
///   H[i][j] = max( 0,
///                  H[i-1][j-1] + s(a_i, b_j),
///                  max_{1<=k<=i} H[i-k][j] - g(k),
///                  max_{1<=l<=j} H[i][j-l] - g(l) )
///
/// i.e. each cell scans its whole column above and row to the left — a
/// 2D/1D algorithm in the paper's classification (Galil/Park).  The block
/// kernel therefore needs the *full* strip of rows above and columns left
/// of the block as halo, not just one row/column; that is what makes SWGG
/// communication-heavy at the process level and why partition size matters
/// (ablation A).
///
/// The default g is affine, g(k) = open + extend·(k-1), but any
/// non-negative penalty function can be supplied — the kernel never
/// exploits affine structure (that is the point of "general gap").

#include <functional>
#include <string>

#include "easyhps/dp/problem.hpp"

namespace easyhps {

/// Gap penalty as a function of gap length k >= 1.
using GapFn = std::function<Score(std::int64_t k)>;

/// Affine gap penalty g(k) = open + extend*(k-1).
GapFn affineGap(Score open, Score extend);

class SmithWatermanGeneralGap final : public DpProblem {
 public:
  struct Params {
    Score match = 2;
    Score mismatch = -1;
    GapFn gap;  ///< defaults to affineGap(2, 1) when null
  };

  SmithWatermanGeneralGap(std::string a, std::string b);
  SmithWatermanGeneralGap(std::string a, std::string b, Params params);

  std::string name() const override { return "swgg"; }
  std::int64_t rows() const override;
  std::int64_t cols() const override;
  PatternKind masterPatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  PatternKind slavePatternKind() const override {
    return PatternKind::kWavefront2D;
  }
  Score boundary(std::int64_t r, std::int64_t c) const override;
  std::vector<CellRect> haloFor(const CellRect& rect) const override;
  void computeBlock(Window& w, const CellRect& rect) const override;
  void computeBlockSparse(SparseWindow& w, const CellRect& rect) const
      override;
  DenseMatrix<Score> solveReference() const override;
  bool fingerprint(util::Hasher& h) const override;

  /// Per-cell work is Θ(i + j) (two linear scans), so block cost is the
  /// sum of (i + j + 2) over the rectangle — closed form.
  double blockOps(const CellRect& rect) const override;

  /// Best local alignment score in the solved matrix.
  Score bestScore(const Window& solved) const;

 private:
  /// Dispatches on kernelPath(): span fast path vs per-cell reference.
  template <typename W>
  void kernel(W& w, const CellRect& rect) const;
  template <typename W>
  void referenceKernel(W& w, const CellRect& rect) const;
  template <typename W>
  void spanKernel(W& w, const CellRect& rect) const;

  Score substitution(std::int64_t r, std::int64_t c) const {
    return a_[static_cast<std::size_t>(r)] == b_[static_cast<std::size_t>(c)]
               ? params_.match
               : params_.mismatch;
  }

  std::string a_;
  std::string b_;
  Params params_;
  /// True iff the gap function was left null and defaulted to affineGap(2,
  /// 1).  A user-supplied GapFn is an opaque closure with no canonical
  /// form, so only default-gap instances are fingerprintable (cacheable).
  bool defaultGap_ = false;
};

}  // namespace easyhps

#include "easyhps/dp/lcs.hpp"

#include <algorithm>

#include "easyhps/dp/autotune.hpp"
#include "easyhps/dp/kernel_common.hpp"

namespace easyhps {

LongestCommonSubsequence::LongestCommonSubsequence(std::string a,
                                                   std::string b)
    : a_(std::move(a)), b_(std::move(b)) {
  EASYHPS_EXPECTS(!a_.empty() && !b_.empty());
}

std::int64_t LongestCommonSubsequence::rows() const {
  return static_cast<std::int64_t>(a_.size());
}

std::int64_t LongestCommonSubsequence::cols() const {
  return static_cast<std::int64_t>(b_.size());
}

Score LongestCommonSubsequence::boundary(std::int64_t r,
                                         std::int64_t c) const {
  if (r < 0 || c < 0) {
    return 0;
  }
  throw LogicError("LCS::boundary: in-matrix read — halo missing");
}

std::vector<CellRect> LongestCommonSubsequence::haloFor(
    const CellRect& rect) const {
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0, 1, rect.cols});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, rect.col0 - 1, rect.rows, 1});
  }
  if (rect.row0 > 0 && rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void LongestCommonSubsequence::referenceKernel(W& w,
                                               const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      if (a_[static_cast<std::size_t>(r)] == b_[static_cast<std::size_t>(c)]) {
        v.set(r, c, static_cast<Score>(v.get(r - 1, c - 1) + 1));
      } else {
        v.set(r, c, std::max(v.get(r - 1, c), v.get(r, c - 1)));
      }
    }
  }
}

template <typename W>
void LongestCommonSubsequence::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  const auto tile = autotune::tileFor("lcs", autotune::storageOf<W>(), KernelPath::kSpan);
  wavefrontSpanKernel(
      v, rect,
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        if (a_[static_cast<std::size_t>(r)] ==
            b_[static_cast<std::size_t>(c)]) {
          return static_cast<Score>(diag + 1);
        }
        return std::max(up, left);
      },
      tile.tileCols);
}

template <typename W>
void LongestCommonSubsequence::simdKernel(W& w, const CellRect& rect) const {
  using simd::VecScore;
  typename W::View v(w);
  const auto tile = autotune::tileFor("lcs", autotune::storageOf<W>(), KernelPath::kSimd);
  const VecScore one = VecScore::splat(1);
  WavefrontSimdScratch scratch;
  wavefrontSimdKernel(
      v, rect, a_.data(), b_.data(), cols(),
      [this](std::int64_t r, std::int64_t c, Score diag, Score up,
             Score left) -> Score {
        if (a_[static_cast<std::size_t>(r)] ==
            b_[static_cast<std::size_t>(c)]) {
          return static_cast<Score>(diag + 1);
        }
        return std::max(up, left);
      },
      [one](VecScore diag, VecScore up, VecScore left, VecScore eq) {
        return VecScore::blend(eq, diag + one, VecScore::max(up, left));
      },
      tile.tileCols, tile.stripBands, scratch);
}

template <typename W>
void LongestCommonSubsequence::kernel(W& w, const CellRect& rect) const {
  switch (effectiveKernelPath()) {
    case KernelPath::kReference:
      referenceKernel(w, rect);
      break;
    case KernelPath::kSpan:
      spanKernel(w, rect);
      break;
    case KernelPath::kSimd:
      simdKernel(w, rect);
      break;
  }
}

void LongestCommonSubsequence::computeBlock(Window& w,
                                            const CellRect& rect) const {
  kernel(w, rect);
}

void LongestCommonSubsequence::computeBlockSparse(SparseWindow& w,
                                                  const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> LongestCommonSubsequence::solveReference() const {
  DenseMatrix<Score> m(rows(), cols());
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0) ? 0 : m.at(r, c);
  };
  for (std::int64_t r = 0; r < rows(); ++r) {
    for (std::int64_t c = 0; c < cols(); ++c) {
      if (a_[static_cast<std::size_t>(r)] == b_[static_cast<std::size_t>(c)]) {
        m.at(r, c) = static_cast<Score>(get(r - 1, c - 1) + 1);
      } else {
        m.at(r, c) = std::max(get(r - 1, c), get(r, c - 1));
      }
    }
  }
  return m;
}

Score LongestCommonSubsequence::length(const Window& solved) const {
  return solved.get(rows() - 1, cols() - 1);
}

std::string LongestCommonSubsequence::subsequence(const Window& solved) const {
  std::string out;
  std::int64_t r = rows() - 1;
  std::int64_t c = cols() - 1;
  auto get = [&](std::int64_t rr, std::int64_t cc) -> Score {
    return (rr < 0 || cc < 0) ? 0 : solved.get(rr, cc);
  };
  while (r >= 0 && c >= 0) {
    if (a_[static_cast<std::size_t>(r)] == b_[static_cast<std::size_t>(c)] &&
        get(r, c) == get(r - 1, c - 1) + 1) {
      out.push_back(a_[static_cast<std::size_t>(r)]);
      --r;
      --c;
    } else if (get(r - 1, c) >= get(r, c - 1)) {
      --r;
    } else {
      --c;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool LongestCommonSubsequence::fingerprint(util::Hasher& h) const {
  h.tag("lcs");
  h.str(a_);
  h.str(b_);
  return true;
}

}  // namespace easyhps

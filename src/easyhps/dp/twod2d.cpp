#include "easyhps/dp/twod2d.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/dp/sequence.hpp"

namespace easyhps {

TwoDTwoD::TwoDTwoD(std::int64_t n, std::uint64_t seed, std::int32_t maxWeight)
    : n_(n), seed_(seed), max_weight_(maxWeight) {
  EASYHPS_EXPECTS(n > 0);
  EASYHPS_EXPECTS(maxWeight >= 1);
}

Score TwoDTwoD::w(std::int64_t a, std::int64_t b) const {
  // Salted differently from the boundary inits so the two tables are
  // independent pseudo-random functions of the same seed.
  return hashWeight(a, b, seed_ ^ 0x2D2DULL, max_weight_);
}

Score TwoDTwoD::boundary(std::int64_t r, std::int64_t c) const {
  // Given first row / column of the (n+1)×(n+1) paper matrix.
  if (r < 0 && c < 0) {
    return hashWeight(0, 0, seed_, max_weight_);
  }
  if (r < 0) {
    return hashWeight(0, c + 1, seed_, max_weight_);
  }
  if (c < 0) {
    return hashWeight(r + 1, 0, seed_, max_weight_);
  }
  throw LogicError("TwoDTwoD::boundary: in-matrix read — halo missing");
}

std::vector<CellRect> TwoDTwoD::haloFor(const CellRect& rect) const {
  // Cell (r, c) reads every cell (r', c') with r' < r and c' < c, so the
  // block needs everything above it (all columns < colEnd-1 suffice; we
  // ship the full-width strip for regular shape) and everything to its
  // left in its own row range.
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{0, 0, rect.row0,
                             std::min(rect.colEnd(), n_)});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, 0, rect.rows, rect.col0});
  }
  return halos;
}

template <typename W>
void TwoDTwoD::referenceKernel(W& win, const CellRect& rect) const {
  typename W::View v(win);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      // D[i][j] with i = r+1, j = c+1: min over i' in [0, i), j' in [0, j).
      Score best = std::numeric_limits<Score>::max();
      const std::int64_t i = r + 1;
      const std::int64_t j = c + 1;
      for (std::int64_t ip = 0; ip < i; ++ip) {
        for (std::int64_t jp = 0; jp < j; ++jp) {
          const Score prev = v.get(ip - 1, jp - 1);
          best = std::min(best,
                          static_cast<Score>(prev + w(ip + jp, i + j)));
        }
      }
      v.set(r, c, best);
    }
  }
}

template <typename W>
void TwoDTwoD::spanKernel(W& win, const CellRect& rect) const {
  typename W::View v(win);
  // Cell (r, c) scans every cell above-left of it plus the virtual first
  // row/column of the paper's (n+1)×(n+1) matrix.  Three hoists take the
  // hash and the per-cell window lookups out of the O(i·j) scan:
  //  * boundary values (pure hashes) tabulated once per block,
  //  * each scanned row resolved to (halo, block) span pointers once per
  //    block — rows above the block live in the full-width top strip,
  //    own rows split at col0 between the left strip and the block,
  //  * w(a, i+j) depends only on the anti-diagonal a = i'+j', tabulated
  //    once per cell (O(i+j) hashes vs O(i·j) in the reference).
  struct RowPtrs {
    const Score* lo;  // columns [0, col0), or the full row for halo rows
    const Score* hi;  // columns [col0, ...)
  };
  const std::int64_t scanRows = rect.rowEnd() - 1;  // rows rr < r needed
  std::vector<RowPtrs> rowp(
      static_cast<std::size_t>(scanRows > 0 ? scanRows : 0));
  for (std::int64_t rr = 0; rr < scanRows; ++rr) {
    RowPtrs p{nullptr, nullptr};
    if (rr < rect.row0) {
      p.lo = v.rowIn(rr, 0, std::min(rect.colEnd(), n_));
      if (p.lo == nullptr) {
        referenceKernel(win, rect);
        return;
      }
      p.hi = p.lo + rect.col0;
    } else {
      if (rect.col0 > 0) {
        p.lo = v.rowIn(rr, 0, rect.col0);
        if (p.lo == nullptr) {
          referenceKernel(win, rect);
          return;
        }
      }
      p.hi = v.rowIn(rr, rect.col0, rect.cols);
      if (p.hi == nullptr) {
        referenceKernel(win, rect);
        return;
      }
    }
    rowp[static_cast<std::size_t>(rr)] = p;
  }
  // bTop[x] = given cell (-1, x-1); bLeft[y] = given cell (y-1, -1).
  std::vector<Score> bTop(static_cast<std::size_t>(rect.colEnd()));
  bTop[0] = boundary(-1, -1);
  for (std::int64_t x = 1; x < rect.colEnd(); ++x) {
    bTop[static_cast<std::size_t>(x)] = boundary(-1, x - 1);
  }
  std::vector<Score> bLeft(static_cast<std::size_t>(rect.rowEnd()));
  bLeft[0] = boundary(-1, -1);
  for (std::int64_t y = 1; y < rect.rowEnd(); ++y) {
    bLeft[static_cast<std::size_t>(y)] = boundary(y - 1, -1);
  }
  std::vector<Score> wTab(
      static_cast<std::size_t>(rect.rowEnd() + rect.colEnd()));
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    Score* out = v.rowOut(r, rect.col0, rect.cols);
    if (out == nullptr) {
      referenceKernel(win, CellRect{r, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      for (std::int64_t a = 0; a <= r + c; ++a) {
        wTab[static_cast<std::size_t>(a)] = w(a, r + c + 2);
      }
      Score best = std::numeric_limits<Score>::max();
      for (std::int64_t cc = -1; cc < c; ++cc) {  // virtual row i' = 0
        best = std::min(
            best, static_cast<Score>(bTop[static_cast<std::size_t>(cc + 1)] +
                                     wTab[static_cast<std::size_t>(cc + 1)]));
      }
      for (std::int64_t rr = 0; rr < r; ++rr) {
        const RowPtrs& p = rowp[static_cast<std::size_t>(rr)];
        const Score* wrow = wTab.data() + (rr + 1);
        best = std::min(
            best,
            static_cast<Score>(bLeft[static_cast<std::size_t>(rr + 1)] +
                               wrow[0]));  // virtual column j' = 0
        for (std::int64_t cc = 0; cc < c; ++cc) {
          const Score pv =
              cc < rect.col0 ? p.lo[cc] : p.hi[cc - rect.col0];
          best = std::min(best, static_cast<Score>(pv + wrow[cc + 1]));
        }
      }
      out[c - rect.col0] = best;
    }
  }
}

template <typename W>
void TwoDTwoD::kernel(W& win, const CellRect& rect) const {
  if (kernelPath() == KernelPath::kReference) {
    referenceKernel(win, rect);
  } else {
    spanKernel(win, rect);
  }
}

void TwoDTwoD::computeBlock(Window& win, const CellRect& rect) const {
  kernel(win, rect);
}

void TwoDTwoD::computeBlockSparse(SparseWindow& win,
                                  const CellRect& rect) const {
  kernel(win, rect);
}

DenseMatrix<Score> TwoDTwoD::solveReference() const {
  DenseMatrix<Score> m(n_, n_, 0);
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r >= 0 && c >= 0) ? m.at(r, c) : boundary(r, c);
  };
  for (std::int64_t r = 0; r < n_; ++r) {
    for (std::int64_t c = 0; c < n_; ++c) {
      Score best = std::numeric_limits<Score>::max();
      const std::int64_t i = r + 1;
      const std::int64_t j = c + 1;
      for (std::int64_t ip = 0; ip < i; ++ip) {
        for (std::int64_t jp = 0; jp < j; ++jp) {
          best = std::min(best, static_cast<Score>(get(ip - 1, jp - 1) +
                                                   w(ip + jp, i + j)));
        }
      }
      m.at(r, c) = best;
    }
  }
  return m;
}

double TwoDTwoD::blockOps(const CellRect& rect) const {
  // sum over rect of (r+1)(c+1).
  const auto sumRange = [](std::int64_t lo, std::int64_t count) {
    return static_cast<double>(count) *
           (static_cast<double>(lo) + static_cast<double>(lo + count - 1)) /
           2.0;
  };
  return sumRange(rect.row0 + 1, rect.rows) * sumRange(rect.col0 + 1,
                                                       rect.cols);
}

bool TwoDTwoD::fingerprint(util::Hasher& h) const {
  h.tag("2d2d");
  h.value(n_);
  h.value(seed_);
  h.value(max_weight_);
  return true;
}

}  // namespace easyhps

#include "easyhps/dp/twod2d.hpp"

#include <algorithm>
#include <limits>

#include "easyhps/dp/sequence.hpp"

namespace easyhps {

TwoDTwoD::TwoDTwoD(std::int64_t n, std::uint64_t seed, std::int32_t maxWeight)
    : n_(n), seed_(seed), max_weight_(maxWeight) {
  EASYHPS_EXPECTS(n > 0);
  EASYHPS_EXPECTS(maxWeight >= 1);
}

Score TwoDTwoD::w(std::int64_t a, std::int64_t b) const {
  // Salted differently from the boundary inits so the two tables are
  // independent pseudo-random functions of the same seed.
  return hashWeight(a, b, seed_ ^ 0x2D2DULL, max_weight_);
}

Score TwoDTwoD::boundary(std::int64_t r, std::int64_t c) const {
  // Given first row / column of the (n+1)×(n+1) paper matrix.
  if (r < 0 && c < 0) {
    return hashWeight(0, 0, seed_, max_weight_);
  }
  if (r < 0) {
    return hashWeight(0, c + 1, seed_, max_weight_);
  }
  if (c < 0) {
    return hashWeight(r + 1, 0, seed_, max_weight_);
  }
  throw LogicError("TwoDTwoD::boundary: in-matrix read — halo missing");
}

std::vector<CellRect> TwoDTwoD::haloFor(const CellRect& rect) const {
  // Cell (r, c) reads every cell (r', c') with r' < r and c' < c, so the
  // block needs everything above it (all columns < colEnd-1 suffice; we
  // ship the full-width strip for regular shape) and everything to its
  // left in its own row range.
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{0, 0, rect.row0,
                             std::min(rect.colEnd(), n_)});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, 0, rect.rows, rect.col0});
  }
  return halos;
}

template <typename W>
void TwoDTwoD::kernel(W& win, const CellRect& rect) const {
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      // D[i][j] with i = r+1, j = c+1: min over i' in [0, i), j' in [0, j).
      Score best = std::numeric_limits<Score>::max();
      const std::int64_t i = r + 1;
      const std::int64_t j = c + 1;
      for (std::int64_t ip = 0; ip < i; ++ip) {
        for (std::int64_t jp = 0; jp < j; ++jp) {
          const Score prev = win.get(ip - 1, jp - 1);
          best = std::min(best,
                          static_cast<Score>(prev + w(ip + jp, i + j)));
        }
      }
      win.set(r, c, best);
    }
  }
}

void TwoDTwoD::computeBlock(Window& win, const CellRect& rect) const {
  kernel(win, rect);
}

void TwoDTwoD::computeBlockSparse(SparseWindow& win,
                                  const CellRect& rect) const {
  kernel(win, rect);
}

DenseMatrix<Score> TwoDTwoD::solveReference() const {
  DenseMatrix<Score> m(n_, n_, 0);
  auto get = [&](std::int64_t r, std::int64_t c) -> Score {
    return (r >= 0 && c >= 0) ? m.at(r, c) : boundary(r, c);
  };
  for (std::int64_t r = 0; r < n_; ++r) {
    for (std::int64_t c = 0; c < n_; ++c) {
      Score best = std::numeric_limits<Score>::max();
      const std::int64_t i = r + 1;
      const std::int64_t j = c + 1;
      for (std::int64_t ip = 0; ip < i; ++ip) {
        for (std::int64_t jp = 0; jp < j; ++jp) {
          best = std::min(best, static_cast<Score>(get(ip - 1, jp - 1) +
                                                   w(ip + jp, i + j)));
        }
      }
      m.at(r, c) = best;
    }
  }
  return m;
}

double TwoDTwoD::blockOps(const CellRect& rect) const {
  // sum over rect of (r+1)(c+1).
  const auto sumRange = [](std::int64_t lo, std::int64_t count) {
    return static_cast<double>(count) *
           (static_cast<double>(lo) + static_cast<double>(lo + count - 1)) /
           2.0;
  };
  return sumRange(rect.row0 + 1, rect.rows) * sumRange(rect.col0 + 1,
                                                       rect.cols);
}

}  // namespace easyhps

#include "easyhps/dp/simd.hpp"

namespace easyhps::simd {
namespace {

// One CPUID probe per process: the answer cannot change while we run.
bool probeRuntimeSupport() {
#if defined(EASYHPS_SIMD_AVX2)
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return true;  // compiled for AVX2 by a compiler we cannot query: trust it
#endif
#elif defined(EASYHPS_SIMD_SSE)
#if (defined(__GNUC__) || defined(__clang__)) && defined(__SSE4_1__)
  return __builtin_cpu_supports("sse4.1") != 0;
#else
  return true;  // SSE2 is x86-64 baseline
#endif
#else
  return true;  // scalar backend runs anywhere
#endif
}

}  // namespace

bool runtimeSupported() {
  static const bool supported = probeRuntimeSupport();
  return supported;
}

const char* backendName() {
#if defined(EASYHPS_SIMD_AVX2)
  return "avx2";
#elif defined(EASYHPS_SIMD_SSE)
#if defined(__SSE4_1__)
  return "sse4.1";
#else
  return "sse2";
#endif
#else
  return "scalar";
#endif
}

}  // namespace easyhps::simd

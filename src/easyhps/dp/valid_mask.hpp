#pragma once
/// \file valid_mask.hpp
/// Per-segment cell-validity tracking for streamed halo injection.
///
/// Under PipelineMode::kStreaming a slave window starts with *holes*: the
/// pending halo rects of its assignment have storage but no data yet, and
/// fragments fill them in while sibling sub-blocks already compute.  The
/// fragment tracker (dag/fragment.hpp) guarantees no fired node reads an
/// unarrived cell — this mask is the tripwire that *verifies* it.  Window
/// and SparseWindow reads go through an `EASYHPS_DCHECK` against the
/// mask, so debug and sanitizer builds abort on a read of a quarantined,
/// not-yet-filled cell while release builds pay nothing in the per-cell
/// hot loops (the checks compile out with EASYHPS_DCHECK).
///
/// The mask tracks only explicitly quarantined rects (the pending halo
/// segments): everything else — block cells, arrived halos, boundary
/// fallbacks — is valid by default, so barrier-mode windows and the
/// master matrix never pay a false positive.
///
/// Concurrency contract: all `quarantine` calls happen before the
/// computing threads start (assignment setup), so the entry list is
/// immutable while threads run; `fill` only flips per-cell flags, which
/// are accessed through std::atomic_ref so the single-writer fragment
/// pump and the DCHECKing reader threads race cleanly.  Entries are never
/// erased — the mask lives for one assignment.

#include <atomic>
#include <cstdint>
#include <vector>

#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

class ValidityMask {
 public:
  /// Marks `rect` as not-yet-arrived.  Cells stay invalid until covered
  /// by `fill`.  Must not run concurrently with readers (setup phase).
  void quarantine(const CellRect& rect);

  /// Marks `rect` arrived (an injection landed).
  void fill(const CellRect& rect);

  /// True when any rect was ever quarantined (cheap inactive check).
  bool active() const { return !pending_.empty(); }

  /// True when cell (r, c) is readable (not quarantined, or filled).
  bool cellValid(std::int64_t r, std::int64_t c) const;

  /// True when every cell of [r0, r0+rows) × [c0, c0+cols) is readable.
  bool rectValid(std::int64_t r0, std::int64_t c0, std::int64_t rows,
                 std::int64_t cols) const;

 private:
  struct Pending {
    CellRect rect;
    std::vector<char> arrived;  // one flag per cell, atomic_ref access
  };
  std::vector<Pending> pending_;
};

}  // namespace easyhps

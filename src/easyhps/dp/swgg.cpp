#include "easyhps/dp/swgg.hpp"

#include <algorithm>
#include <vector>

#include "easyhps/dp/kernel_common.hpp"

namespace easyhps {

GapFn affineGap(Score open, Score extend) {
  return [open, extend](std::int64_t k) {
    return static_cast<Score>(open + extend * (k - 1));
  };
}

SmithWatermanGeneralGap::SmithWatermanGeneralGap(std::string a, std::string b)
    : SmithWatermanGeneralGap(std::move(a), std::move(b), Params{}) {}

SmithWatermanGeneralGap::SmithWatermanGeneralGap(std::string a, std::string b,
                                                 Params params)
    : a_(std::move(a)), b_(std::move(b)), params_(std::move(params)) {
  EASYHPS_EXPECTS(!a_.empty() && !b_.empty());
  if (!params_.gap) {
    params_.gap = affineGap(2, 1);
    defaultGap_ = true;
  }
}

std::int64_t SmithWatermanGeneralGap::rows() const {
  return static_cast<std::int64_t>(a_.size());
}

std::int64_t SmithWatermanGeneralGap::cols() const {
  return static_cast<std::int64_t>(b_.size());
}

Score SmithWatermanGeneralGap::boundary(std::int64_t r, std::int64_t c) const {
  if (r < 0 || c < 0) {
    return 0;  // H[0][*] = H[*][0] = 0 for local alignment
  }
  throw LogicError("SWGG::boundary: in-matrix read of " + std::to_string(r) +
                   "," + std::to_string(c) + " — halo missing");
}

std::vector<CellRect> SmithWatermanGeneralGap::haloFor(
    const CellRect& rect) const {
  // General gap: the vertical scan of any cell reaches every row above the
  // block (same columns), the horizontal scan every column to its left
  // (same rows); the diagonal term additionally needs the single corner.
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{0, rect.col0, rect.row0, rect.cols});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, 0, rect.rows, rect.col0});
  }
  if (rect.row0 > 0 && rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void SmithWatermanGeneralGap::referenceKernel(W& w,
                                              const CellRect& rect) const {
  typename W::View v(w);
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      Score best = 0;
      best = std::max(best,
                      static_cast<Score>(v.get(r - 1, c - 1) +
                                         substitution(r, c)));
      for (std::int64_t k = 1; k <= r + 1; ++k) {
        best = std::max(best,
                        static_cast<Score>(v.get(r - k, c) - params_.gap(k)));
      }
      for (std::int64_t l = 1; l <= c + 1; ++l) {
        best = std::max(best,
                        static_cast<Score>(v.get(r, c - l) - params_.gap(l)));
      }
      v.set(r, c, best);
    }
  }
}

template <typename W>
void SmithWatermanGeneralGap::spanKernel(W& w, const CellRect& rect) const {
  typename W::View v(w);
  // Every scan step of every cell pays the gap penalty for its length;
  // tabulating gap(1..max) turns a std::function call in the innermost
  // loops into a load.  Gap functions must be pure (they are penalty
  // schedules); an impure one would already make block results
  // partition-dependent.
  const std::int64_t maxLen = std::max(rect.rowEnd(), rect.colEnd());
  std::vector<Score> gap(static_cast<std::size_t>(maxLen) + 1, 0);
  for (std::int64_t k = 1; k <= maxLen; ++k) {
    gap[static_cast<std::size_t>(k)] = params_.gap(k);
  }

  // The vertical scan of cell (r, c) walks column c upward through two
  // contiguous stores: block rows [row0, r) and — off the block's top edge
  // — the full-height halo strip rows [0, row0).  Both column bases are
  // resolved once per block; element (rr, c) then sits at
  // base[(rr - baseRow0) * stride + (c - col0)].
  std::int64_t haloStride = 0;
  const Score* haloCol = nullptr;
  if (rect.row0 > 0) {
    haloCol = v.colIn(0, rect.col0, rect.row0, &haloStride);
    if (haloCol == nullptr) {
      referenceKernel(w, rect);
      return;
    }
  }
  std::int64_t blkStride = 0;
  const Score* blkCol = v.colIn(rect.row0, rect.col0, rect.rows, &blkStride);
  if (blkCol == nullptr) {
    referenceKernel(w, rect);
    return;
  }

  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    Score* out = v.rowOut(r, rect.col0, rect.cols);
    const Score* prev =
        r > 0 ? v.rowIn(r - 1, rect.col0, rect.cols) : nullptr;
    const Score* rowHalo =
        rect.col0 > 0 ? v.rowIn(r, 0, rect.col0) : nullptr;
    if (out == nullptr || (r > 0 && prev == nullptr) ||
        (rect.col0 > 0 && rowHalo == nullptr)) {
      referenceKernel(w, CellRect{r, rect.col0, 1, rect.cols});
      continue;
    }
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      const std::int64_t cOff = c - rect.col0;
      Score best = 0;
      const Score diag = (prev != nullptr && c > rect.col0)
                             ? prev[cOff - 1]
                             : v.get(r - 1, c - 1);
      best = std::max(best, static_cast<Score>(diag + substitution(r, c)));
      for (std::int64_t rr = rect.row0; rr < r; ++rr) {
        const Score val = blkCol[(rr - rect.row0) * blkStride + cOff];
        best = std::max(
            best, static_cast<Score>(val - gap[static_cast<std::size_t>(
                                               r - rr)]));
      }
      for (std::int64_t rr = 0; rr < rect.row0; ++rr) {
        const Score val = haloCol[rr * haloStride + cOff];
        best = std::max(
            best, static_cast<Score>(val - gap[static_cast<std::size_t>(
                                               r - rr)]));
      }
      best = std::max(best, static_cast<Score>(
                                0 - gap[static_cast<std::size_t>(r + 1)]));
      for (std::int64_t cc = rect.col0; cc < c; ++cc) {
        best = std::max(
            best, static_cast<Score>(out[cc - rect.col0] -
                                     gap[static_cast<std::size_t>(c - cc)]));
      }
      for (std::int64_t cc = 0; cc < rect.col0; ++cc) {
        best = std::max(
            best, static_cast<Score>(rowHalo[cc] -
                                     gap[static_cast<std::size_t>(c - cc)]));
      }
      best = std::max(best, static_cast<Score>(
                                0 - gap[static_cast<std::size_t>(c + 1)]));
      out[cOff] = best;
    }
  }
}

template <typename W>
void SmithWatermanGeneralGap::kernel(W& w, const CellRect& rect) const {
  if (kernelPath() == KernelPath::kReference) {
    referenceKernel(w, rect);
  } else {
    spanKernel(w, rect);
  }
}

void SmithWatermanGeneralGap::computeBlock(Window& w,
                                           const CellRect& rect) const {
  kernel(w, rect);
}

void SmithWatermanGeneralGap::computeBlockSparse(SparseWindow& w,
                                                 const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> SmithWatermanGeneralGap::solveReference() const {
  const std::int64_t n = rows();
  const std::int64_t m = cols();
  DenseMatrix<Score> h(n, m);
  auto get = [&h](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0) ? 0 : h.at(r, c);
  };
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < m; ++c) {
      Score best = 0;
      best = std::max(best,
                      static_cast<Score>(get(r - 1, c - 1) +
                                         substitution(r, c)));
      for (std::int64_t k = 1; k <= r + 1; ++k) {
        best =
            std::max(best, static_cast<Score>(get(r - k, c) - params_.gap(k)));
      }
      for (std::int64_t l = 1; l <= c + 1; ++l) {
        best =
            std::max(best, static_cast<Score>(get(r, c - l) - params_.gap(l)));
      }
      h.at(r, c) = best;
    }
  }
  return h;
}

double SmithWatermanGeneralGap::blockOps(const CellRect& rect) const {
  // sum over the rect of (i + j + 2): two scans of combined length i+j+2.
  const auto sumRange = [](std::int64_t lo, std::int64_t count) {
    // lo + (lo+1) + ... + (lo+count-1)
    return static_cast<double>(count) *
           (static_cast<double>(lo) + static_cast<double>(lo + count - 1)) /
           2.0;
  };
  const double sumI = sumRange(rect.row0, rect.rows);
  const double sumJ = sumRange(rect.col0, rect.cols);
  return sumI * static_cast<double>(rect.cols) +
         sumJ * static_cast<double>(rect.rows) +
         2.0 * static_cast<double>(rect.cellCount());
}

Score SmithWatermanGeneralGap::bestScore(const Window& solved) const {
  Score best = 0;
  for (std::int64_t r = 0; r < rows(); ++r) {
    for (std::int64_t c = 0; c < cols(); ++c) {
      best = std::max(best, solved.get(r, c));
    }
  }
  return best;
}

bool SmithWatermanGeneralGap::fingerprint(util::Hasher& h) const {
  if (!defaultGap_) {
    return false;  // user-supplied GapFn: opaque closure, uncacheable
  }
  h.tag("swgg.affine-2-1");
  h.str(a_);
  h.str(b_);
  h.value(params_.match);
  h.value(params_.mismatch);
  return true;
}

}  // namespace easyhps

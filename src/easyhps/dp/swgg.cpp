#include "easyhps/dp/swgg.hpp"

#include <algorithm>

namespace easyhps {

GapFn affineGap(Score open, Score extend) {
  return [open, extend](std::int64_t k) {
    return static_cast<Score>(open + extend * (k - 1));
  };
}

SmithWatermanGeneralGap::SmithWatermanGeneralGap(std::string a, std::string b)
    : SmithWatermanGeneralGap(std::move(a), std::move(b), Params{}) {}

SmithWatermanGeneralGap::SmithWatermanGeneralGap(std::string a, std::string b,
                                                 Params params)
    : a_(std::move(a)), b_(std::move(b)), params_(std::move(params)) {
  EASYHPS_EXPECTS(!a_.empty() && !b_.empty());
  if (!params_.gap) {
    params_.gap = affineGap(2, 1);
  }
}

std::int64_t SmithWatermanGeneralGap::rows() const {
  return static_cast<std::int64_t>(a_.size());
}

std::int64_t SmithWatermanGeneralGap::cols() const {
  return static_cast<std::int64_t>(b_.size());
}

Score SmithWatermanGeneralGap::boundary(std::int64_t r, std::int64_t c) const {
  if (r < 0 || c < 0) {
    return 0;  // H[0][*] = H[*][0] = 0 for local alignment
  }
  throw LogicError("SWGG::boundary: in-matrix read of " + std::to_string(r) +
                   "," + std::to_string(c) + " — halo missing");
}

std::vector<CellRect> SmithWatermanGeneralGap::haloFor(
    const CellRect& rect) const {
  // General gap: the vertical scan of any cell reaches every row above the
  // block (same columns), the horizontal scan every column to its left
  // (same rows); the diagonal term additionally needs the single corner.
  std::vector<CellRect> halos;
  if (rect.row0 > 0) {
    halos.push_back(CellRect{0, rect.col0, rect.row0, rect.cols});
  }
  if (rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0, 0, rect.rows, rect.col0});
  }
  if (rect.row0 > 0 && rect.col0 > 0) {
    halos.push_back(CellRect{rect.row0 - 1, rect.col0 - 1, 1, 1});
  }
  return halos;
}

template <typename W>
void SmithWatermanGeneralGap::kernel(W& w, const CellRect& rect) const {
  for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
    for (std::int64_t c = rect.col0; c < rect.colEnd(); ++c) {
      Score best = 0;
      best = std::max(best,
                      static_cast<Score>(w.get(r - 1, c - 1) +
                                         substitution(r, c)));
      for (std::int64_t k = 1; k <= r + 1; ++k) {
        best = std::max(best,
                        static_cast<Score>(w.get(r - k, c) - params_.gap(k)));
      }
      for (std::int64_t l = 1; l <= c + 1; ++l) {
        best = std::max(best,
                        static_cast<Score>(w.get(r, c - l) - params_.gap(l)));
      }
      w.set(r, c, best);
    }
  }
}

void SmithWatermanGeneralGap::computeBlock(Window& w,
                                           const CellRect& rect) const {
  kernel(w, rect);
}

void SmithWatermanGeneralGap::computeBlockSparse(SparseWindow& w,
                                                 const CellRect& rect) const {
  kernel(w, rect);
}

DenseMatrix<Score> SmithWatermanGeneralGap::solveReference() const {
  const std::int64_t n = rows();
  const std::int64_t m = cols();
  DenseMatrix<Score> h(n, m);
  auto get = [&h](std::int64_t r, std::int64_t c) -> Score {
    return (r < 0 || c < 0) ? 0 : h.at(r, c);
  };
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < m; ++c) {
      Score best = 0;
      best = std::max(best,
                      static_cast<Score>(get(r - 1, c - 1) +
                                         substitution(r, c)));
      for (std::int64_t k = 1; k <= r + 1; ++k) {
        best =
            std::max(best, static_cast<Score>(get(r - k, c) - params_.gap(k)));
      }
      for (std::int64_t l = 1; l <= c + 1; ++l) {
        best =
            std::max(best, static_cast<Score>(get(r, c - l) - params_.gap(l)));
      }
      h.at(r, c) = best;
    }
  }
  return h;
}

double SmithWatermanGeneralGap::blockOps(const CellRect& rect) const {
  // sum over the rect of (i + j + 2): two scans of combined length i+j+2.
  const auto sumRange = [](std::int64_t lo, std::int64_t count) {
    // lo + (lo+1) + ... + (lo+count-1)
    return static_cast<double>(count) *
           (static_cast<double>(lo) + static_cast<double>(lo + count - 1)) /
           2.0;
  };
  const double sumI = sumRange(rect.row0, rect.rows);
  const double sumJ = sumRange(rect.col0, rect.cols);
  return sumI * static_cast<double>(rect.cols) +
         sumJ * static_cast<double>(rect.rows) +
         2.0 * static_cast<double>(rect.cellCount());
}

Score SmithWatermanGeneralGap::bestScore(const Window& solved) const {
  Score best = 0;
  for (std::int64_t r = 0; r < rows(); ++r) {
    for (std::int64_t c = 0; c < cols(); ++c) {
      best = std::max(best, solved.get(r, c));
    }
  }
  return best;
}

}  // namespace easyhps

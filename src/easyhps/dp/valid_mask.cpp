#include "easyhps/dp/valid_mask.hpp"

#include <algorithm>

namespace easyhps {

void ValidityMask::quarantine(const CellRect& rect) {
  if (rect.cellCount() <= 0) return;
  Pending p;
  p.rect = rect;
  p.arrived.assign(static_cast<std::size_t>(rect.cellCount()), 0);
  pending_.push_back(std::move(p));
}

void ValidityMask::fill(const CellRect& rect) {
  if (pending_.empty() || rect.cellCount() <= 0) return;
  for (Pending& p : pending_) {
    const std::int64_t r0 = std::max(rect.row0, p.rect.row0);
    const std::int64_t c0 = std::max(rect.col0, p.rect.col0);
    const std::int64_t r1 = std::min(rect.rowEnd(), p.rect.rowEnd());
    const std::int64_t c1 = std::min(rect.colEnd(), p.rect.colEnd());
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int64_t c = c0; c < c1; ++c) {
        const auto idx = static_cast<std::size_t>(
            (r - p.rect.row0) * p.rect.cols + (c - p.rect.col0));
        // Release pairs with the acquire in cellValid: a reader that sees
        // the flag also sees the injected cell bytes.
        std::atomic_ref<char>(p.arrived[idx])
            .store(1, std::memory_order_release);
      }
    }
  }
}

bool ValidityMask::cellValid(std::int64_t r, std::int64_t c) const {
  for (const Pending& p : pending_) {
    if (!p.rect.contains(r, c)) continue;
    const auto idx = static_cast<std::size_t>(
        (r - p.rect.row0) * p.rect.cols + (c - p.rect.col0));
    // atomic_ref needs a mutable lvalue; flags are logically const here.
    auto& flag = const_cast<char&>(p.arrived[idx]);
    if (std::atomic_ref<char>(flag).load(std::memory_order_acquire) == 0) {
      return false;
    }
  }
  return true;
}

bool ValidityMask::rectValid(std::int64_t r0, std::int64_t c0,
                             std::int64_t rows, std::int64_t cols) const {
  if (pending_.empty()) return true;
  for (std::int64_t r = r0; r < r0 + rows; ++r) {
    for (std::int64_t c = c0; c < c0 + cols; ++c) {
      if (!cellValid(r, c)) return false;
    }
  }
  return true;
}

}  // namespace easyhps

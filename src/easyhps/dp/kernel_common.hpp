#pragma once
/// \file kernel_common.hpp
/// Shared helpers for the span-based kernel fast path.
///
/// Every shipped kernel exists in two bit-identical flavours:
///
///  * the *reference* path — the original per-cell `get`/`set` loop, kept
///    as the oracle for the bit-exactness suite and as the A/B baseline of
///    `bench_kernels`;
///  * the *span* path (default) — an interior/border split where border
///    rows and columns keep the safe per-cell accessors (boundary
///    functions, triangular masks, halo corners) while the interior runs
///    over raw row pointers obtained once per row via
///    `Window::View::rowIn/rowOut/colIn`.
///
/// The split is what takes the per-cell abstraction (bounds check, segment
/// scan, `std::function` boundary fallback) out of the O(cells) and
/// O(cells·scan) inner loops; see DESIGN.md, "Kernel fast path".
///
/// Which path runs is a process-wide toggle so the whole runtime — master,
/// slave pools, tests — can be flipped for A/B without threading a flag
/// through every call chain.

#include <algorithm>
#include <cstdint>

#include "easyhps/dp/sparse_window.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

/// Which kernel implementation computeBlock/computeBlockSparse dispatch to.
enum class KernelPath {
  kSpan,       ///< interior/border split over row spans (default)
  kReference,  ///< original per-cell get/set loops (oracle / A-B baseline)
};

/// Process-wide kernel path; defaults to kSpan, or kReference when the
/// process started with EASYHPS_KERNEL_PATH=reference in the environment
/// (no-rebuild A/B switch for the figure benches and field bisection).
KernelPath kernelPath();
void setKernelPath(KernelPath path);

/// RAII path override for benches and the bit-exactness suite.
class ScopedKernelPath {
 public:
  explicit ScopedKernelPath(KernelPath path) : prev_(kernelPath()) {
    setKernelPath(path);
  }
  ~ScopedKernelPath() { setKernelPath(prev_); }
  ScopedKernelPath(const ScopedKernelPath&) = delete;
  ScopedKernelPath& operator=(const ScopedKernelPath&) = delete;

 private:
  KernelPath prev_;
};

/// Column tile width of the interior loops.  Three Score rows of a tile
/// (previous row, output row, and the write-allocated lines) stay resident
/// in L1/L2 while a tall block walks down its rows, instead of streaming
/// whole matrix rows per iteration.
inline constexpr std::int64_t kKernelTileCols = 512;

/// The classic three-neighbour wavefront recurrence over `rect`, column
/// tiled:  out(r, c) = cell(r, c, diag, up, left) with diag = (r-1, c-1),
/// up = (r-1, c), left = (r, c-1).  Shared by LCS / Needleman-Wunsch /
/// edit distance, whose kernels differ only in `cell`.
///
/// Interior rows read the previous row through one span resolved per tile
/// row and carry `left`/`diag` in registers; rows whose previous row is
/// not materialized (matrix row -1, i.e. the boundary function) fall back
/// to the safe per-cell path.  Tiling is dependency-legal for this
/// recurrence: a tile only reads its own columns and the fully-computed
/// tile to its left.
template <typename View, typename CellFn>
void wavefrontSpanKernel(View& v, const CellRect& rect, CellFn cell) {
  for (std::int64_t t0 = rect.col0; t0 < rect.colEnd();
       t0 += kKernelTileCols) {
    const std::int64_t t1 = std::min(t0 + kKernelTileCols, rect.colEnd());
    const std::int64_t len = t1 - t0;
    for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
      const Score* prev = v.rowIn(r - 1, t0, len);
      Score* out = v.rowOut(r, t0, len);
      if (prev == nullptr || out == nullptr) {
        for (std::int64_t c = t0; c < t1; ++c) {
          v.set(r, c,
                cell(r, c, v.get(r - 1, c - 1), v.get(r - 1, c),
                     v.get(r, c - 1)));
        }
        continue;
      }
      Score diag = v.get(r - 1, t0 - 1);
      Score left = v.get(r, t0 - 1);
      for (std::int64_t i = 0; i < len; ++i) {
        const Score up = prev[i];
        const Score val = cell(r, t0 + i, diag, up, left);
        out[i] = val;
        left = val;
        diag = up;
      }
    }
  }
}

}  // namespace easyhps

#pragma once
/// \file kernel_common.hpp
/// Shared helpers for the span and SIMD kernel fast paths.
///
/// Every shipped kernel exists in bit-identical flavours:
///
///  * the *reference* path — the original per-cell `get`/`set` loop, kept
///    as the oracle for the bit-exactness suite and as the A/B baseline of
///    `bench_kernels`;
///  * the *span* path — an interior/border split where border rows and
///    columns keep the safe per-cell accessors (boundary functions,
///    triangular masks, halo corners) while the interior runs over raw row
///    pointers obtained once per row via `Window::View::rowIn/rowOut/colIn`;
///  * the *simd* path (default) — the span structure with the innermost
///    loops rewritten over `simd::VecScore` lanes: branchless compare+blend
///    instead of per-cell `if`, anti-diagonal lane pipelines where row-order
///    dependencies block row vectors (the wavefront trio), and row/state
///    vectors where the recurrence already permits them (knapsack, viterbi).
///    Kernels without a vector flavour fall through to the span path, so
///    dispatch stays total.
///
/// The span split is what takes the per-cell abstraction (bounds check,
/// segment scan, `std::function` boundary fallback) out of the O(cells)
/// inner loops; the SIMD tier then recovers the 4-8× of data-parallel width
/// those scalar loops leave on the table.  See DESIGN.md, "Kernel fast
/// path" and "SIMD kernel tier & autotuning".
///
/// Which path runs is a process-wide toggle so the whole runtime — master,
/// slave pools, tests — can be flipped for A/B without threading a flag
/// through every call chain.  `effectiveKernelPath()` additionally demotes
/// kSimd to kSpan when the executing CPU lacks the compiled-in ISA
/// (simd::runtimeSupported), so one binary degrades instead of faulting.

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "easyhps/dp/simd.hpp"
#include "easyhps/dp/sparse_window.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

/// Which kernel implementation computeBlock/computeBlockSparse dispatch to.
enum class KernelPath {
  kSpan,       ///< interior/border split over row spans
  kReference,  ///< original per-cell get/set loops (oracle / A-B baseline)
  kSimd,       ///< vector lanes over the span structure (default)
};

/// Process-wide kernel path; defaults to kSimd, or the tier named by
/// EASYHPS_KERNEL_PATH=simd|span|reference in the environment (no-rebuild
/// A/B switch for the figure benches and field bisection).
KernelPath kernelPath();
void setKernelPath(KernelPath path);

/// The path dispatch actually takes: kSimd demotes to kSpan when the CPU
/// executing the process lacks the ISA the library was compiled for.
KernelPath effectiveKernelPath();

/// "simd" | "span" | "reference" (for stats, metrics and env parsing).
const char* kernelPathName(KernelPath path);

/// RAII path override for benches and the bit-exactness suite.
class ScopedKernelPath {
 public:
  explicit ScopedKernelPath(KernelPath path) : prev_(kernelPath()) {
    setKernelPath(path);
  }
  ~ScopedKernelPath() { setKernelPath(prev_); }
  ScopedKernelPath(const ScopedKernelPath&) = delete;
  ScopedKernelPath& operator=(const ScopedKernelPath&) = delete;

 private:
  KernelPath prev_;
};

/// Default column tile width of the interior loops.  Three Score rows of a
/// tile (previous row, output row, and the write-allocated lines) stay
/// resident in L1/L2 while a tall block walks down its rows, instead of
/// streaming whole matrix rows per iteration.  The per-kernel autotuner
/// (dp/autotune.hpp) sweeps alternatives around this value at startup.
inline constexpr std::int64_t kKernelTileCols = 512;

/// Maximum vector strips a single anti-diagonal pass may carry (strip
/// height = bands × simd::kVecWidth rows).
inline constexpr int kMaxSimdBands = 2;

/// The classic three-neighbour wavefront recurrence over `rect`, column
/// tiled:  out(r, c) = cell(r, c, diag, up, left) with diag = (r-1, c-1),
/// up = (r-1, c), left = (r, c-1).  Shared by LCS / Needleman-Wunsch /
/// edit distance, whose kernels differ only in `cell`.
///
/// Interior rows read the previous row through one span resolved per tile
/// row and carry `left`/`diag` in registers; rows whose previous row is
/// not materialized (matrix row -1, i.e. the boundary function) fall back
/// to the safe per-cell path.  Tiling is dependency-legal for this
/// recurrence: a tile only reads its own columns and the fully-computed
/// tile to its left.
template <typename View, typename CellFn>
void wavefrontSpanKernel(View& v, const CellRect& rect, CellFn cell,
                         std::int64_t tileCols = kKernelTileCols) {
  for (std::int64_t t0 = rect.col0; t0 < rect.colEnd(); t0 += tileCols) {
    const std::int64_t t1 = std::min(t0 + tileCols, rect.colEnd());
    const std::int64_t len = t1 - t0;
    for (std::int64_t r = rect.row0; r < rect.rowEnd(); ++r) {
      const Score* prev = v.rowIn(r - 1, t0, len);
      Score* out = v.rowOut(r, t0, len);
      if (prev == nullptr || out == nullptr) {
        for (std::int64_t c = t0; c < t1; ++c) {
          v.set(r, c,
                cell(r, c, v.get(r - 1, c - 1), v.get(r - 1, c),
                     v.get(r, c - 1)));
        }
        continue;
      }
      Score diag = v.get(r - 1, t0 - 1);
      Score left = v.get(r, t0 - 1);
      for (std::int64_t i = 0; i < len; ++i) {
        const Score up = prev[i];
        const Score val = cell(r, t0 + i, diag, up, left);
        out[i] = val;
        left = val;
        diag = up;
      }
    }
  }
}

/// Anti-diagonal SIMD flavour of the wavefront recurrence.  The row-order
/// dependency out(r, c-1) → out(r, c) blocks row vectors, but cells on one
/// anti-diagonal are independent, so a strip of `bands × kVecWidth` rows is
/// computed as a lane pipeline: lane g holds cell (r0+g, t0-1+j-g) at step
/// j, its `left` neighbour is the lane's own previous step, and `up`/`diag`
/// arrive from lane g-1 via shiftUpInsert (band boundaries hand over
/// through topLane).  Results come back to row-major storage through an
/// in-register W×W transpose: kVecWidth consecutive step vectors form, per
/// lane, a contiguous run of that lane's row.
///
/// The per-cell recurrence is supplied twice: `cell` (scalar, for the span
/// fallback that handles short strips, tail rows and unresolvable spans)
/// and `vcell(diag, up, left, eq) -> VecScore`, the branchless vector
/// version, where `eq` is the lanewise a[r] == b[c] compare mask.
///
/// `scratch` carries the per-call buffers (previous-row values, reversed
/// b characters) so the hot loop never allocates.
struct WavefrontSimdScratch {
  std::vector<Score> prevRow;  ///< v.get(r0-1, t0-1+m), m ∈ [0, W]; 0-pad
  std::vector<Score> bRev;     ///< reversed b chars, padded for lane loads
};

namespace detail {

/// Register-resident step loop for one strip of `kBands × kVecWidth` rows
/// by `w` columns.  The band count is a template parameter so the
/// loop-carried vectors (`d1`, and the previous step's `up`) are scalars
/// to the compiler and live in vector registers: with a runtime band
/// array they spill to the stack and every step pays a store-to-load
/// forward on the critical dependency chain, which is enough to lose to
/// the scalar span path.
///
/// One lane shift per band per step: the `diag` operand of step j equals
/// the `up` operand of step j-1 — both are res(j-2) shifted up one lane
/// with prevBuf[j-1] (or the band-handoff top lane) inserted, and both
/// fall back to 0 outside [1, w+1] — so it is carried in `upPrev` instead
/// of being re-derived with a second shiftUpInsert + topLane chain.
template <int kBands, typename VecCellFn>
inline void wavefrontSimdStrip(Score* const* out, const Score* prevBuf,
                               const Score* leftCol, const Score* revBuf,
                               const simd::VecScore* aVecIn,
                               const Score* maskBuf, std::int64_t w,
                               VecCellFn vcell) {
  using simd::VecScore;
  constexpr int kVW = simd::kVecWidth;
  constexpr int stripH = kBands * kVW;

  VecScore aVec[kBands];
  VecScore d1[kBands];
  VecScore upPrev[kBands];
  for (int bi = 0; bi < kBands; ++bi) {
    aVec[bi] = aVecIn[bi];
    d1[bi] = VecScore::zero();  // ramp garbage, overwritten lane by lane
    upPrev[bi] = VecScore::zero();
  }
  VecScore pend[kBands][kVW];
  int pcount = 0;
  std::int64_t pendStart = 0;

  const auto flush = [&](std::int64_t j0, int count) {
    for (int bi = 0; bi < kBands; ++bi) {
      const std::int64_t gLo = bi * kVW;
      const bool full =
          count == kVW && j0 >= gLo + kVW && j0 + kVW - 1 <= w + gLo;
      if (full) {
        VecScore tr[kVW];
        for (int l = 0; l < kVW; ++l) {
          tr[l] = pend[bi][l];
        }
        simd::transpose(tr);
        for (int l = 0; l < kVW; ++l) {
          const std::int64_t g = gLo + l;
          tr[l].store(out[g] + (j0 - g - 1));
        }
      } else {
        for (int t = 0; t < count; ++t) {
          for (int l = 0; l < kVW; ++l) {
            const std::int64_t g = gLo + l;
            const std::int64_t col = j0 + t - g - 1;
            if (col >= 0 && col < w) {
              out[g][col] = pend[bi][t].lane(l);
            }
          }
        }
      }
    }
  };

  for (std::int64_t j = 0; j < w + stripH; ++j) {
    // prevBuf is zero-padded past index w, so no per-step bounds branch.
    const Score up0 = prevBuf[j];
    // Band handoff: band bi's up comes from band bi-1's top lane, using
    // the values every band held before any band updates this step.
    VecScore d1Prev[kBands];
    for (int bi = 0; bi < kBands; ++bi) {
      d1Prev[bi] = d1[bi];
    }
    for (int bi = 0; bi < kBands; ++bi) {
      const VecScore up =
          bi == 0 ? d1[bi].shiftUpInsert(up0)
                  : VecScore::shiftUpConcat(d1[bi], d1Prev[bi - 1]);
      const VecScore diag = upPrev[bi];
      const VecScore left = d1[bi];
      const VecScore bv =
          VecScore::load(revBuf + (w - j + stripH - 1) + bi * kVW);
      const VecScore eq = VecScore::cmpeq(aVec[bi], bv);
      VecScore res = vcell(diag, up, left, eq);
      if (j < stripH && j / kVW == bi) {
        const VecScore mask =
            VecScore::load(maskBuf + kVW - static_cast<int>(j) % kVW);
        res = VecScore::blend(
            mask, VecScore::splat(leftCol[static_cast<int>(j)]), res);
      }
      upPrev[bi] = up;
      d1[bi] = res;
      pend[bi][pcount] = res;
    }
    ++pcount;
    if (pcount == kVW) {
      flush(pendStart, pcount);
      pcount = 0;
      pendStart = j + 1;
    }
  }
  if (pcount > 0) {
    flush(pendStart, pcount);
  }
}

}  // namespace detail

template <typename View, typename CellFn, typename VecCellFn>
void wavefrontSimdKernel(View& v, const CellRect& rect, const char* a,
                         const char* b, std::int64_t bCols, CellFn cell,
                         VecCellFn vcell, std::int64_t tileCols, int bands,
                         WavefrontSimdScratch& scratch) {
  using simd::VecScore;
  constexpr int kVW = simd::kVecWidth;
  bands = std::clamp(bands, 1, kMaxSimdBands);
  const int stripH = bands * kVW;
  const std::int64_t stripRows = (rect.rows / stripH) * stripH;
  if (tileCols < stripH) {
    tileCols = kKernelTileCols;  // degenerate tile: fall back to default
  }

  // Single-lane blend masks: lane l of load(maskBuf + kVW - l) is -1, all
  // other lanes 0 — used to insert the left-halo seed at a lane's entry
  // step without a runtime-indexed insert.
  alignas(64) Score maskBuf[2 * kVW + 1] = {};
  maskBuf[kVW] = static_cast<Score>(-1);

  const std::int64_t maxW = std::min<std::int64_t>(tileCols, rect.cols);
  // +stripH: zero pad past index w so the step loop's up0 read is
  // branchless (steps j in (w, w + stripH) read 0, the inactive value).
  scratch.prevRow.resize(static_cast<std::size_t>(maxW + stripH));
  scratch.bRev.resize(static_cast<std::size_t>(maxW + 2 * stripH));
  Score* prevBuf = scratch.prevRow.data();
  Score* revBuf = scratch.bRev.data();

  for (std::int64_t t0 = rect.col0; t0 < rect.colEnd(); t0 += tileCols) {
    const std::int64_t t1 = std::min(t0 + tileCols, rect.colEnd());
    const std::int64_t w = t1 - t0;
    // revBuf[p] = b char of column t0 + w + stripH - 2 - p (0 outside
    // the string: those lanes are inactive).  Lane g of the load at
    // revBuf + (w - j + stripH - 1) is then b[t0 - 1 + j - g], exactly
    // the character the lane's cell compares against.  Tile-invariant,
    // so it is built once per tile, not per strip.
    for (std::int64_t p = 0; p < w + 2 * stripH - 1; ++p) {
      const std::int64_t col = t0 + w + stripH - 2 - p;
      revBuf[p] = (col >= 0 && col < bCols)
                      ? static_cast<Score>(static_cast<unsigned char>(
                            b[static_cast<std::size_t>(col)]))
                      : Score{0};
    }
    for (std::int64_t r0 = rect.row0; r0 < rect.row0 + stripRows;
         r0 += stripH) {
      Score* out[kMaxSimdBands * kVW];
      bool spansOk = true;
      for (int g = 0; g < stripH; ++g) {
        out[g] = v.rowOut(r0 + g, t0, w);
        spansOk = spansOk && out[g] != nullptr;
      }
      if (!spansOk) {
        wavefrontSpanKernel(v, CellRect{r0, t0, stripH, w}, cell, tileCols);
        continue;
      }
      // Previous-row seed: the corner and any unresolvable row go through
      // the safe accessor (it uniformly answers stored cells, injected
      // halos and virtual boundary cells), but the common case — the row
      // above is stored contiguously, e.g. just computed by the previous
      // strip — is one span resolve + memcpy instead of w bounds-checked
      // gets, which would otherwise cost more than the strip's compute.
      prevBuf[0] = v.get(r0 - 1, t0 - 1);
      if (const Score* prev = v.rowIn(r0 - 1, t0, w)) {
        std::memcpy(prevBuf + 1, prev,
                    static_cast<std::size_t>(w) * sizeof(Score));
      } else {
        for (std::int64_t m = 1; m <= w; ++m) {
          prevBuf[m] = v.get(r0 - 1, t0 - 1 + m);
        }
      }
      for (std::int64_t m = w + 1; m < w + stripH; ++m) {
        prevBuf[m] = 0;  // pad: read by drain steps, never used
      }
      Score leftCol[kMaxSimdBands * kVW];
      for (int g = 0; g < stripH; ++g) {
        leftCol[g] = v.get(r0 + g, t0 - 1);
      }
      VecScore aVec[kMaxSimdBands];
      for (int bi = 0; bi < bands; ++bi) {
        Score abuf[kVW];
        for (int l = 0; l < kVW; ++l) {
          abuf[l] = static_cast<Score>(static_cast<unsigned char>(
              a[static_cast<std::size_t>(r0 + bi * kVW + l)]));
        }
        aVec[bi] = VecScore::load(abuf);
      }

      static_assert(kMaxSimdBands == 2,
                    "band dispatch below enumerates the template arity");
      if (bands == 1) {
        detail::wavefrontSimdStrip<1>(out, prevBuf, leftCol, revBuf, aVec,
                                      maskBuf, w, vcell);
      } else {
        detail::wavefrontSimdStrip<2>(out, prevBuf, leftCol, revBuf, aVec,
                                      maskBuf, w, vcell);
      }
    }
    // Tail rows shorter than a strip keep the scalar span path; they run
    // after the strips of this tile but before the next tile needs their
    // columns — except the left-neighbour cells the *next* tile's strips
    // seed from, which is why the tail runs inside the tile loop.
    if (stripRows < rect.rows) {
      wavefrontSpanKernel(
          v,
          CellRect{rect.row0 + stripRows, t0, rect.rows - stripRows, w},
          cell, tileCols);
    }
  }
}

}  // namespace easyhps

#pragma once
/// \file simd.hpp
/// Portable fixed-width integer vector wrapper for the SIMD kernel tier.
///
/// One backend is selected at *compile time* from the ISA the translation
/// units were built with:
///
///   * AVX2   — `VecScore` is 8 × int32 (`__m256i`)
///   * SSE    — 4 × int32 (`__m128i`; min/max/blend emulated via compare
///              when SSE4.1 is not available, so plain x86-64 SSE2 works)
///   * scalar — 4 × int32 in a plain array; the loops compile to portable
///              C++ on any architecture, and doubles as the reference
///              backend for the `generic` CMake preset
///              (-DEASYHPS_SIMD_SCALAR=ON forces it on any hardware)
///
/// A *runtime* CPUID guard (`runtimeSupported()`) answers whether the
/// executing CPU implements the compiled-in ISA; kernel dispatch demotes
/// `KernelPath::kSimd` to the span tier when it does not, so a binary
/// built on an AVX2 box degrades instead of faulting on an older node
/// (see kernel_common.hpp, `effectiveKernelPath`).
///
/// The operation set is exactly what branchless DP recurrences need:
/// load/store (unaligned), splat, add/sub, min/max, compare-equal,
/// blend (mask select), the lane-pipeline helpers `shiftUpInsert` /
/// `lane` / `topLane` used by the anti-diagonal wavefront kernel, and an
/// in-register W×W transpose used to turn anti-diagonal result vectors
/// back into row-major stores.  All lanes are int32 (`Score`); every
/// operation is bit-exact with its scalar equivalent — integer min/max
/// and wrap-around add have no reassociation or rounding freedom — which
/// is what keeps the SIMD tier inside the PR 3 bit-exactness gate.

#include <cstdint>

#include "easyhps/dp/window.hpp"

#if !defined(EASYHPS_SIMD_SCALAR)
#if defined(__AVX2__)
#define EASYHPS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__)
#define EASYHPS_SIMD_SSE 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#endif
#endif

namespace easyhps::simd {

/// True when the CPU executing this process implements the ISA the
/// library was compiled for (CPUID check, cached).  Always true for the
/// scalar backend.
bool runtimeSupported();

/// Compile-time backend name: "avx2", "sse4.1", "sse2", or "scalar".
const char* backendName();

#if defined(EASYHPS_SIMD_AVX2)

inline constexpr int kVecWidth = 8;

struct VecScore {
  __m256i v;

  static VecScore load(const Score* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(Score* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VecScore splat(Score x) { return {_mm256_set1_epi32(x)}; }
  static VecScore zero() { return {_mm256_setzero_si256()}; }

  friend VecScore operator+(VecScore a, VecScore b) {
    return {_mm256_add_epi32(a.v, b.v)};
  }
  friend VecScore operator-(VecScore a, VecScore b) {
    return {_mm256_sub_epi32(a.v, b.v)};
  }
  static VecScore min(VecScore a, VecScore b) {
    return {_mm256_min_epi32(a.v, b.v)};
  }
  static VecScore max(VecScore a, VecScore b) {
    return {_mm256_max_epi32(a.v, b.v)};
  }
  /// Lanewise a == b, as an all-ones/all-zeros int32 mask.
  static VecScore cmpeq(VecScore a, VecScore b) {
    return {_mm256_cmpeq_epi32(a.v, b.v)};
  }
  /// mask ? a : b, per lane (mask lanes all-ones or all-zeros).
  static VecScore blend(VecScore mask, VecScore a, VecScore b) {
    return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
  }

  /// result[0] = x, result[k] = this[k-1] — the anti-diagonal pipeline
  /// step (lane k's `up` neighbour lives in lane k-1 of the previous
  /// step's vector).
  VecScore shiftUpInsert(Score x) const {
    // broadcast + immediate blend, not insert_epi32: the broadcast of x
    // has no dependence on v, so only the 1-cycle blend lands on the
    // loop-carried rotate chain of the wavefront lane pipeline.
    const __m256i idx = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    const __m256i rot = _mm256_permutevar8x32_epi32(v, idx);
    return {_mm256_blend_epi32(rot, _mm256_set1_epi32(x), 1)};
  }
  /// result[0] = lo[kVecWidth-1], result[k] = hi[k-1] — the cross-band
  /// flavour of shiftUpInsert, kept entirely in the vector domain (a
  /// scalar topLane round trip would serialize the band pipeline).
  static VecScore shiftUpConcat(VecScore hi, VecScore lo) {
    const __m256i t = _mm256_permute2x128_si256(lo.v, hi.v, 0x21);
    return {_mm256_alignr_epi8(hi.v, t, 12)};
  }
  Score lane(int i) const {
    alignas(32) Score tmp[kVecWidth];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  Score topLane() const { return _mm256_extract_epi32(v, 7); }

  /// Horizontal max over all lanes.
  Score reduceMax() const {
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i m = _mm_max_epi32(lo, hi);
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(m);
  }
};

/// In-register 8×8 int32 transpose: t[k] = {m[0].lane(k), ..., m[7].lane(k)}.
inline void transpose(VecScore (&m)[kVecWidth]) {
  __m256i a0 = _mm256_unpacklo_epi32(m[0].v, m[1].v);
  __m256i a1 = _mm256_unpackhi_epi32(m[0].v, m[1].v);
  __m256i a2 = _mm256_unpacklo_epi32(m[2].v, m[3].v);
  __m256i a3 = _mm256_unpackhi_epi32(m[2].v, m[3].v);
  __m256i a4 = _mm256_unpacklo_epi32(m[4].v, m[5].v);
  __m256i a5 = _mm256_unpackhi_epi32(m[4].v, m[5].v);
  __m256i a6 = _mm256_unpacklo_epi32(m[6].v, m[7].v);
  __m256i a7 = _mm256_unpackhi_epi32(m[6].v, m[7].v);
  __m256i b0 = _mm256_unpacklo_epi64(a0, a2);
  __m256i b1 = _mm256_unpackhi_epi64(a0, a2);
  __m256i b2 = _mm256_unpacklo_epi64(a1, a3);
  __m256i b3 = _mm256_unpackhi_epi64(a1, a3);
  __m256i b4 = _mm256_unpacklo_epi64(a4, a6);
  __m256i b5 = _mm256_unpackhi_epi64(a4, a6);
  __m256i b6 = _mm256_unpacklo_epi64(a5, a7);
  __m256i b7 = _mm256_unpackhi_epi64(a5, a7);
  m[0].v = _mm256_permute2x128_si256(b0, b4, 0x20);
  m[1].v = _mm256_permute2x128_si256(b1, b5, 0x20);
  m[2].v = _mm256_permute2x128_si256(b2, b6, 0x20);
  m[3].v = _mm256_permute2x128_si256(b3, b7, 0x20);
  m[4].v = _mm256_permute2x128_si256(b0, b4, 0x31);
  m[5].v = _mm256_permute2x128_si256(b1, b5, 0x31);
  m[6].v = _mm256_permute2x128_si256(b2, b6, 0x31);
  m[7].v = _mm256_permute2x128_si256(b3, b7, 0x31);
}

#elif defined(EASYHPS_SIMD_SSE)

inline constexpr int kVecWidth = 4;

struct VecScore {
  __m128i v;

  static VecScore load(const Score* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(Score* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static VecScore splat(Score x) { return {_mm_set1_epi32(x)}; }
  static VecScore zero() { return {_mm_setzero_si128()}; }

  friend VecScore operator+(VecScore a, VecScore b) {
    return {_mm_add_epi32(a.v, b.v)};
  }
  friend VecScore operator-(VecScore a, VecScore b) {
    return {_mm_sub_epi32(a.v, b.v)};
  }
  static VecScore cmpeq(VecScore a, VecScore b) {
    return {_mm_cmpeq_epi32(a.v, b.v)};
  }
  static VecScore blend(VecScore mask, VecScore a, VecScore b) {
#if defined(__SSE4_1__)
    return {_mm_blendv_epi8(b.v, a.v, mask.v)};
#else
    return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                         _mm_andnot_si128(mask.v, b.v))};
#endif
  }
  static VecScore min(VecScore a, VecScore b) {
#if defined(__SSE4_1__)
    return {_mm_min_epi32(a.v, b.v)};
#else
    return blend({_mm_cmpgt_epi32(b.v, a.v)}, a, b);
#endif
  }
  static VecScore max(VecScore a, VecScore b) {
#if defined(__SSE4_1__)
    return {_mm_max_epi32(a.v, b.v)};
#else
    return blend({_mm_cmpgt_epi32(a.v, b.v)}, a, b);
#endif
  }

  VecScore shiftUpInsert(Score x) const {
    return {_mm_or_si128(_mm_slli_si128(v, 4),
                         _mm_cvtsi32_si128(static_cast<int>(x)))};
  }
  /// result[0] = lo[kVecWidth-1], result[k] = hi[k-1] (SSE2-safe: two
  /// byte shifts + or, no SSSE3 palignr required).
  static VecScore shiftUpConcat(VecScore hi, VecScore lo) {
    return {_mm_or_si128(_mm_slli_si128(hi.v, 4),
                         _mm_srli_si128(lo.v, 12))};
  }
  Score lane(int i) const {
    alignas(16) Score tmp[kVecWidth];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  Score topLane() const { return lane(kVecWidth - 1); }

  Score reduceMax() const {
    __m128i m = max({v}, {_mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2))}).v;
    m = max({m}, {_mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1))}).v;
    return _mm_cvtsi128_si32(m);
  }
};

inline void transpose(VecScore (&m)[kVecWidth]) {
  __m128i a0 = _mm_unpacklo_epi32(m[0].v, m[1].v);
  __m128i a1 = _mm_unpackhi_epi32(m[0].v, m[1].v);
  __m128i a2 = _mm_unpacklo_epi32(m[2].v, m[3].v);
  __m128i a3 = _mm_unpackhi_epi32(m[2].v, m[3].v);
  m[0].v = _mm_unpacklo_epi64(a0, a2);
  m[1].v = _mm_unpackhi_epi64(a0, a2);
  m[2].v = _mm_unpacklo_epi64(a1, a3);
  m[3].v = _mm_unpackhi_epi64(a1, a3);
}

#else  // scalar fallback backend

inline constexpr int kVecWidth = 4;

struct VecScore {
  Score v[kVecWidth];

  static VecScore load(const Score* p) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = p[i];
    }
    return r;
  }
  void store(Score* p) const {
    for (int i = 0; i < kVecWidth; ++i) {
      p[i] = v[i];
    }
  }
  static VecScore splat(Score x) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = x;
    }
    return r;
  }
  static VecScore zero() { return splat(0); }

  friend VecScore operator+(VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = static_cast<Score>(
          static_cast<std::uint32_t>(a.v[i]) +
          static_cast<std::uint32_t>(b.v[i]));  // wrap like the hardware
    }
    return r;
  }
  friend VecScore operator-(VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = static_cast<Score>(static_cast<std::uint32_t>(a.v[i]) -
                                  static_cast<std::uint32_t>(b.v[i]));
    }
    return r;
  }
  static VecScore min(VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    }
    return r;
  }
  static VecScore max(VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    }
    return r;
  }
  static VecScore cmpeq(VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = a.v[i] == b.v[i] ? static_cast<Score>(-1) : 0;
    }
    return r;
  }
  static VecScore blend(VecScore mask, VecScore a, VecScore b) {
    VecScore r;
    for (int i = 0; i < kVecWidth; ++i) {
      r.v[i] = mask.v[i] != 0 ? a.v[i] : b.v[i];
    }
    return r;
  }

  VecScore shiftUpInsert(Score x) const {
    VecScore r;
    r.v[0] = x;
    for (int i = 1; i < kVecWidth; ++i) {
      r.v[i] = v[i - 1];
    }
    return r;
  }
  /// result[0] = lo[kVecWidth-1], result[k] = hi[k-1].
  static VecScore shiftUpConcat(VecScore hi, VecScore lo) {
    VecScore r;
    r.v[0] = lo.v[kVecWidth - 1];
    for (int i = 1; i < kVecWidth; ++i) {
      r.v[i] = hi.v[i - 1];
    }
    return r;
  }
  Score lane(int i) const { return v[i]; }
  Score topLane() const { return v[kVecWidth - 1]; }

  Score reduceMax() const {
    Score m = v[0];
    for (int i = 1; i < kVecWidth; ++i) {
      m = v[i] > m ? v[i] : m;
    }
    return m;
  }
};

inline void transpose(VecScore (&m)[kVecWidth]) {
  for (int i = 0; i < kVecWidth; ++i) {
    for (int j = i + 1; j < kVecWidth; ++j) {
      const Score t = m[i].v[j];
      m[i].v[j] = m[j].v[i];
      m[j].v[i] = t;
    }
  }
}

#endif  // backend selection

}  // namespace easyhps::simd

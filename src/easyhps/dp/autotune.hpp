#pragma once
/// \file autotune.hpp
/// Per-kernel tile autotuner for the span/SIMD fast paths.
///
/// The interior loops of the fast-path kernels are column tiled
/// (kKernelTileCols) and the anti-diagonal SIMD kernels additionally pick a
/// vector-strip height (bands × simd::kVecWidth rows per pass).  The best
/// choice depends on the cache hierarchy, the vector width and the storage
/// flavour, so instead of hard-coding one constant the first time a kernel
/// family runs on a given (storage, tier) combination we sweep a handful of
/// candidates over a small probe block (~a millisecond, once per process)
/// and memoize the winner.
///
/// Order of precedence inside tileFor():
///   1. a thread-local forced choice (ScopedForcedTile — also how the sweep
///      itself pins candidates without recursing);
///   2. the EASYHPS_TILE_COLS env override ("512" or "256,2" for
///      tileCols[,stripBands]), applied to every key;
///   3. the memo;
///   4. a fresh sweep (kernel families without a registered probe memoize
///      the defaults).
///
/// The memo is process-wide and thread-safe; concurrent first calls race
/// benignly (one sweep wins, both produce bit-identical kernels either
/// way).  autotune::summary() renders the memo for RunStats / metrics.

#include <cstdint>
#include <string>
#include <type_traits>

#include "easyhps/dp/kernel_common.hpp"

namespace easyhps::autotune {

enum class Storage {
  kDense,
  kSparse,
};

/// Storage flavour of a window type (Window → kDense, else kSparse) — lets
/// the kernel templates key the memo without spelling the distinction out.
template <typename W>
constexpr Storage storageOf() {
  return std::is_same_v<W, Window> ? Storage::kDense : Storage::kSparse;
}

struct TileChoice {
  std::int64_t tileCols = kKernelTileCols;
  int stripBands = 1;
};

/// The tile choice kernel `family` ("lcs", "needleman", ...) should use on
/// this (storage, tier) combination.  First call per key may run the sweep.
TileChoice tileFor(const char* family, Storage storage, KernelPath tier);

/// Pin the choice for the current thread (tests, and the sweep itself).
class ScopedForcedTile {
 public:
  explicit ScopedForcedTile(TileChoice choice);
  ~ScopedForcedTile();
  ScopedForcedTile(const ScopedForcedTile&) = delete;
  ScopedForcedTile& operator=(const ScopedForcedTile&) = delete;
};

/// Compact memo dump, e.g. "lcs/dense/simd=512x2 lcs/sparse/simd=256x1";
/// empty string until the first tuned kernel has run.
std::string summary();

/// Drop the memo (tests); the next tileFor() per key sweeps again.
void reset();

}  // namespace easyhps::autotune

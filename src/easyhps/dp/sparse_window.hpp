#pragma once
/// \file sparse_window.hpp
/// Segment-backed score window — the memory fix for the paper's stated
/// limitation ("EasyHPS consumes a lot of memories", §VII future work).
///
/// A slave computing block (bi, bj) of SWGG needs halo strips reaching all
/// the way to the matrix edges; the *bounding box* of block + halo is
/// nearly the whole upper-left quadrant, so a dense `Window` over it costs
/// O(i·j) cells even though only O(block + strips) are ever touched.  For
/// seq_len = 10000 with 200-cell blocks that is ~400 MB dense vs ~16 MB
/// sparse for the worst block.
///
/// `SparseWindow` stores exactly the declared segments (the block itself
/// plus each halo rectangle) and answers reads by locating the containing
/// segment — a linear scan over a handful of rects.  Reads outside every
/// segment fall back to the boundary function, preserving `Window`
/// semantics for triangular problems whose inactive cells read as 0.
///
/// Hot kernels do not call the raw `get`/`set`: they construct a `View`,
/// which caches the most recently hit segment in a *per-view* (and hence
/// per-thread) hint — DP kernels read in runs within one segment, so the
/// cached segment almost always answers the containment check directly.
/// An earlier revision shared an atomic hint across a slave's computing
/// threads, which ping-ponged the hint's cache line between cores; the
/// per-view hint removes both the traffic and the atomics.

#include <cstdint>
#include <vector>

#include "easyhps/dp/valid_mask.hpp"
#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

class SparseWindow {
 private:
  struct Segment {
    CellRect rect;
    std::vector<Score> data;

    std::size_t index(std::int64_t r, std::int64_t c) const {
      return static_cast<std::size_t>((r - rect.row0) * rect.cols +
                                      (c - rect.col0));
    }
  };

 public:
  /// Creates a window with one zero-initialized segment per rect.
  /// Segments must be pairwise disjoint (checked).
  SparseWindow(std::vector<CellRect> segments, BoundaryFn boundary);

  /// Read cell (r, c); boundary fallback outside all segments.  Cold-path
  /// accessor (tests, tracebacks): kernels go through a View.
  Score get(std::int64_t r, std::int64_t c) const {
    for (const Segment& s : segments_) {
      if (s.rect.contains(r, c)) {
        EASYHPS_DCHECK(valid_.cellValid(r, c));
        return s.data[s.index(r, c)];
      }
    }
    return boundary_(r, c);
  }

  /// Write cell (r, c); must fall into some segment.
  void set(std::int64_t r, std::int64_t c, Score v) {
    for (Segment& s : segments_) {
      if (s.rect.contains(r, c)) {
        s.data[s.index(r, c)] = v;
        return;
      }
    }
    throw LogicError("SparseWindow::set outside every segment: (" +
                     std::to_string(r) + "," + std::to_string(c) + ")");
  }

  /// Pointer to cells (r, [c0, c0+len)) when one segment stores the whole
  /// span; nullptr otherwise.
  const Score* rowIn(std::int64_t r, std::int64_t c0, std::int64_t len) const;

  /// Writable span over cells (r, [c0, c0+len)); nullptr when not stored.
  Score* rowOut(std::int64_t r, std::int64_t c0, std::int64_t len);

  /// Pointer to cells ([r0, r0+len), c) within one segment; consecutive
  /// rows are `*stride` elements apart.
  const Score* colIn(std::int64_t r0, std::int64_t c, std::int64_t len,
                     std::int64_t* stride) const;

  /// Copies `rect` (must lie within a single segment) to a flat buffer.
  std::vector<Score> extract(const CellRect& rect) const;

  /// Writes a flat buffer into `rect` (must lie within a single segment).
  void inject(const CellRect& rect, std::span<const Score> values);

  /// Streamed-halo support: marks `rect` as storage-backed but unarrived;
  /// reads trip an EASYHPS_DCHECK until an inject() covers it.  Must be
  /// called before computing threads start (see ValidityMask contract).
  void quarantine(const CellRect& rect) { valid_.quarantine(rect); }

  /// Cells actually stored (the memory footprint).
  std::int64_t storedCells() const;

  std::size_t segmentCount() const { return segments_.size(); }

  /// Per-view cached-segment accessor for hot kernels.  Each computing
  /// thread constructs its own View (cheap: a pointer and an index), so
  /// the hint is thread-local by construction — no shared mutable state.
  class View {
   public:
    explicit View(SparseWindow& w) : w_(&w) {}

    Score get(std::int64_t r, std::int64_t c) const {
      const Segment* s = find(r, c, r + 1, c + 1);
      if (s == nullptr) {
        return w_->boundary_(r, c);
      }
      EASYHPS_DCHECK(w_->valid_.cellValid(r, c));
      return s->data[s->index(r, c)];
    }

    void set(std::int64_t r, std::int64_t c, Score v) {
      const Segment* s = find(r, c, r + 1, c + 1);
      if (s == nullptr) {
        throw LogicError("SparseWindow::View::set outside every segment: (" +
                         std::to_string(r) + "," + std::to_string(c) + ")");
      }
      const_cast<Segment*>(s)->data[s->index(r, c)] = v;
    }

    const Score* rowIn(std::int64_t r, std::int64_t c0,
                       std::int64_t len) const {
      if (len <= 0) {
        return nullptr;
      }
      const Segment* s = find(r, c0, r + 1, c0 + len);
      if (s == nullptr) {
        return nullptr;
      }
      EASYHPS_DCHECK(w_->valid_.rectValid(r, c0, 1, len));
      return s->data.data() + s->index(r, c0);
    }

    Score* rowOut(std::int64_t r, std::int64_t c0, std::int64_t len) {
      if (len <= 0) {
        return nullptr;
      }
      const Segment* s = find(r, c0, r + 1, c0 + len);
      return s == nullptr
                 ? nullptr
                 : const_cast<Segment*>(s)->data.data() + s->index(r, c0);
    }

    const Score* colIn(std::int64_t r0, std::int64_t c, std::int64_t len,
                       std::int64_t* stride) const {
      if (len <= 0) {
        return nullptr;
      }
      const Segment* s = find(r0, c, r0 + len, c + 1);
      if (s == nullptr) {
        return nullptr;
      }
      EASYHPS_DCHECK(w_->valid_.rectValid(r0, c, len, 1));
      *stride = s->rect.cols;
      return s->data.data() + s->index(r0, c);
    }

   private:
    /// Segment containing [r0, r1) × [c0, c1), hinted; nullptr if none.
    const Segment* find(std::int64_t r0, std::int64_t c0, std::int64_t r1,
                        std::int64_t c1) const {
      const auto n = w_->segments_.size();
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (hint_ + k) % n;
        const CellRect& rect = w_->segments_[idx].rect;
        if (r0 >= rect.row0 && r1 <= rect.rowEnd() && c0 >= rect.col0 &&
            c1 <= rect.colEnd()) {
          hint_ = idx;
          return &w_->segments_[idx];
        }
      }
      return nullptr;
    }

    SparseWindow* w_;
    mutable std::size_t hint_ = 0;
  };

 private:
  const Segment* segmentContaining(const CellRect& rect) const;

  std::vector<Segment> segments_;
  BoundaryFn boundary_;
  ValidityMask valid_;
};

}  // namespace easyhps

#pragma once
/// \file sparse_window.hpp
/// Segment-backed score window — the memory fix for the paper's stated
/// limitation ("EasyHPS consumes a lot of memories", §VII future work).
///
/// A slave computing block (bi, bj) of SWGG needs halo strips reaching all
/// the way to the matrix edges; the *bounding box* of block + halo is
/// nearly the whole upper-left quadrant, so a dense `Window` over it costs
/// O(i·j) cells even though only O(block + strips) are ever touched.  For
/// seq_len = 10000 with 200-cell blocks that is ~400 MB dense vs ~16 MB
/// sparse for the worst block.
///
/// `SparseWindow` stores exactly the declared segments (the block itself
/// plus each halo rectangle) and answers reads by locating the containing
/// segment — a linear scan over a handful of rects, branch-predicted in
/// hot kernels.  Reads outside every segment fall back to the boundary
/// function, preserving `Window` semantics for triangular problems whose
/// inactive cells read as 0.

#include <atomic>
#include <cstdint>
#include <vector>

#include "easyhps/dp/window.hpp"
#include "easyhps/matrix/geometry.hpp"

namespace easyhps {

class SparseWindow {
 public:
  /// Creates a window with one zero-initialized segment per rect.
  /// Segments must be pairwise disjoint (checked).
  SparseWindow(std::vector<CellRect> segments, BoundaryFn boundary);

  /// Read cell (r, c); boundary fallback outside all segments.
  Score get(std::int64_t r, std::int64_t c) const {
    // The most recently touched segment is checked first: DP kernels read
    // in runs within one segment (own block, then one halo strip).  The
    // hint is shared by a slave's computing threads — relaxed atomics keep
    // it a pure performance hint without a data race.
    const auto n = segments_.size();
    const std::size_t hint = last_hit_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (hint + k) % n;
      const Segment& s = segments_[idx];
      if (s.rect.contains(r, c)) {
        last_hit_.store(idx, std::memory_order_relaxed);
        return s.data[s.index(r, c)];
      }
    }
    return boundary_(r, c);
  }

  /// Write cell (r, c); must fall into some segment.
  void set(std::int64_t r, std::int64_t c, Score v) {
    const auto n = segments_.size();
    const std::size_t hint = last_hit_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (hint + k) % n;
      Segment& s = segments_[idx];
      if (s.rect.contains(r, c)) {
        last_hit_.store(idx, std::memory_order_relaxed);
        s.data[s.index(r, c)] = v;
        return;
      }
    }
    throw LogicError("SparseWindow::set outside every segment: (" +
                     std::to_string(r) + "," + std::to_string(c) + ")");
  }

  /// Copies `rect` (must lie within a single segment) to a flat buffer.
  std::vector<Score> extract(const CellRect& rect) const;

  /// Writes a flat buffer into `rect` (must lie within a single segment).
  void inject(const CellRect& rect, const std::vector<Score>& values);

  /// Cells actually stored (the memory footprint).
  std::int64_t storedCells() const;

  std::size_t segmentCount() const { return segments_.size(); }

 private:
  struct Segment {
    CellRect rect;
    std::vector<Score> data;

    std::size_t index(std::int64_t r, std::int64_t c) const {
      return static_cast<std::size_t>((r - rect.row0) * rect.cols +
                                      (c - rect.col0));
    }
  };

  const Segment* segmentContaining(const CellRect& rect) const;

  std::vector<Segment> segments_;
  BoundaryFn boundary_;
  mutable std::atomic<std::size_t> last_hit_{0};
};

}  // namespace easyhps

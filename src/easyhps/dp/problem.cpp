#include "easyhps/dp/problem.hpp"

#include <algorithm>

namespace easyhps {

CellRect boundingBox(const CellRect& block,
                     const std::vector<CellRect>& halos) {
  std::int64_t r0 = block.row0;
  std::int64_t c0 = block.col0;
  std::int64_t r1 = block.rowEnd();
  std::int64_t c1 = block.colEnd();
  for (const CellRect& h : halos) {
    if (h.cellCount() == 0) {
      continue;
    }
    r0 = std::min(r0, h.row0);
    c0 = std::min(c0, h.col0);
    r1 = std::max(r1, h.rowEnd());
    c1 = std::max(c1, h.colEnd());
  }
  return CellRect{r0, c0, r1 - r0, c1 - c0};
}

PartitionedDag buildMasterDag(const DpProblem& problem,
                              std::int64_t processPartitionRows,
                              std::int64_t processPartitionCols) {
  const BlockGrid grid(problem.rows(), problem.cols(), processPartitionRows,
                       processPartitionCols);
  return problem.masterDag(grid);
}

PartitionedDag buildSlaveDag(const DpProblem& problem,
                             const CellRect& blockRect,
                             std::int64_t threadPartitionRows,
                             std::int64_t threadPartitionCols) {
  return problem.slaveDagFor(blockRect, threadPartitionRows,
                             threadPartitionCols);
}

PartitionedDag DpProblem::slaveDagFor(const CellRect& blockRect,
                                      std::int64_t threadPartitionRows,
                                      std::int64_t threadPartitionCols) const {
  const DpProblem& problem = *this;
  const BlockGrid grid(blockRect.rows, blockRect.cols, threadPartitionRows,
                       threadPartitionCols);
  const PatternKind kind = problem.slavePatternKind();
  EASYHPS_CHECK(kind == PatternKind::kWavefront2D ||
                    kind == PatternKind::kFlippedWavefront2D,
                "slave-level pattern must be a wavefront variant");

  auto active = [&](std::int64_t bi, std::int64_t bj) {
    CellRect local = grid.blockRect(bi, bj);
    local.row0 += blockRect.row0;
    local.col0 += blockRect.col0;
    return problem.rectActive(local);
  };
  PredsFn topo;
  PredsFn data;
  if (kind == PatternKind::kWavefront2D) {
    topo = [](std::int64_t bi, std::int64_t bj) {
      return std::vector<BlockCoord>{{bi - 1, bj}, {bi, bj - 1}};
    };
    data = [](std::int64_t bi, std::int64_t bj) {
      return std::vector<BlockCoord>{
          {bi - 1, bj}, {bi, bj - 1}, {bi - 1, bj - 1}};
    };
  } else {
    topo = [](std::int64_t bi, std::int64_t bj) {
      return std::vector<BlockCoord>{{bi + 1, bj}, {bi, bj - 1}};
    };
    data = [](std::int64_t bi, std::int64_t bj) {
      return std::vector<BlockCoord>{
          {bi + 1, bj}, {bi, bj - 1}, {bi + 1, bj - 1}};
    };
  }
  PartitionedDag dag = makeCustom(grid, topo, data, active);
  dag.kind = kind;
  return dag;
}

CellRect slaveVertexRect(const PartitionedDag& slaveDag,
                         const CellRect& blockRect, VertexId v) {
  CellRect local = slaveDag.rectOf(v);
  local.row0 += blockRect.row0;
  local.col0 += blockRect.col0;
  EASYHPS_ENSURES(local.rowEnd() <= blockRect.rowEnd());
  EASYHPS_ENSURES(local.colEnd() <= blockRect.colEnd());
  return local;
}

Window solveBlocked(const DpProblem& problem, std::int64_t partitionRows,
                    std::int64_t partitionCols) {
  const PartitionedDag dag =
      buildMasterDag(problem, partitionRows, partitionCols);
  Window w(CellRect{0, 0, problem.rows(), problem.cols()},
           problem.boundaryFn());
  for (VertexId v : dag.dag.topologicalOrder()) {
    problem.computeBlock(w, dag.rectOf(v));
  }
  return w;
}

Window solveBlockedTwoLevel(const DpProblem& problem,
                            std::int64_t processPartitionRows,
                            std::int64_t processPartitionCols,
                            std::int64_t threadPartitionRows,
                            std::int64_t threadPartitionCols) {
  const PartitionedDag master =
      buildMasterDag(problem, processPartitionRows, processPartitionCols);
  Window w(CellRect{0, 0, problem.rows(), problem.cols()},
           problem.boundaryFn());
  for (VertexId v : master.dag.topologicalOrder()) {
    const CellRect blockRect = master.rectOf(v);
    const PartitionedDag slave = buildSlaveDag(
        problem, blockRect, threadPartitionRows, threadPartitionCols);
    for (VertexId sv : slave.dag.topologicalOrder()) {
      problem.computeBlock(w, slaveVertexRect(slave, blockRect, sv));
    }
  }
  return w;
}

std::int64_t haloBytes(const DpProblem& problem, const CellRect& rect) {
  std::int64_t cells = 0;
  for (const CellRect& h : problem.haloFor(rect)) {
    cells += h.cellCount();
  }
  return cells * static_cast<std::int64_t>(sizeof(Score));
}

}  // namespace easyhps

#include "easyhps/dp/sequence.hpp"

#include "easyhps/util/error.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps {

std::string randomSequence(std::int64_t length, std::uint64_t seed,
                           const std::string& alphabet) {
  EASYHPS_EXPECTS(length >= 0);
  EASYHPS_EXPECTS(!alphabet.empty());
  Rng rng(seed);
  std::string s;
  s.reserve(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    s.push_back(alphabet[rng.nextBelow(alphabet.size())]);
  }
  return s;
}

std::string randomRna(std::int64_t length, std::uint64_t seed) {
  return randomSequence(length, seed, "AUCG");
}

bool rnaPairs(char a, char b) {
  return (a == 'A' && b == 'U') || (a == 'U' && b == 'A') ||
         (a == 'G' && b == 'C') || (a == 'C' && b == 'G') ||
         (a == 'G' && b == 'U') || (a == 'U' && b == 'G');
}

std::int32_t hashWeight(std::int64_t i, std::int64_t j, std::uint64_t seed,
                        std::int32_t bound) {
  EASYHPS_EXPECTS(bound > 0);
  SplitMix64 mixer(seed ^ (static_cast<std::uint64_t>(i) * 0x100000001B3ULL) ^
                   (static_cast<std::uint64_t>(j) + 0x9E3779B97F4A7C15ULL));
  return static_cast<std::int32_t>(mixer.next() %
                                   static_cast<std::uint64_t>(bound));
}

}  // namespace easyhps

file(REMOVE_RECURSE
  "CMakeFiles/example_hmm_decode.dir/hmm_decode.cpp.o"
  "CMakeFiles/example_hmm_decode.dir/hmm_decode.cpp.o.d"
  "example_hmm_decode"
  "example_hmm_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hmm_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_hmm_decode.
# This may be replaced when dependencies are built.

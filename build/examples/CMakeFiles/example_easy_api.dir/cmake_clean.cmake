file(REMOVE_RECURSE
  "CMakeFiles/example_easy_api.dir/easy_api.cpp.o"
  "CMakeFiles/example_easy_api.dir/easy_api.cpp.o.d"
  "example_easy_api"
  "example_easy_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_easy_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

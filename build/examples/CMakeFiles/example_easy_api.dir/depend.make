# Empty dependencies file for example_easy_api.
# This may be replaced when dependencies are built.

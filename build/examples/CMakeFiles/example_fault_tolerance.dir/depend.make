# Empty dependencies file for example_fault_tolerance.
# This may be replaced when dependencies are built.

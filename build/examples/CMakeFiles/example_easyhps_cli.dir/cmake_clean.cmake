file(REMOVE_RECURSE
  "CMakeFiles/example_easyhps_cli.dir/easyhps_cli.cpp.o"
  "CMakeFiles/example_easyhps_cli.dir/easyhps_cli.cpp.o.d"
  "example_easyhps_cli"
  "example_easyhps_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_easyhps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

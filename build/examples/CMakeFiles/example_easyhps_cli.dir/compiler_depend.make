# Empty compiler generated dependencies file for example_easyhps_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_custom_pattern.dir/custom_pattern.cpp.o"
  "CMakeFiles/example_custom_pattern.dir/custom_pattern.cpp.o.d"
  "example_custom_pattern"
  "example_custom_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

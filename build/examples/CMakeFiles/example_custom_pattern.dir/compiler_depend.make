# Empty compiler generated dependencies file for example_custom_pattern.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for example_swgg_align.
# This may be replaced when dependencies are built.

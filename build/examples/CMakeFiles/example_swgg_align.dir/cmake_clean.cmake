file(REMOVE_RECURSE
  "CMakeFiles/example_swgg_align.dir/swgg_align.cpp.o"
  "CMakeFiles/example_swgg_align.dir/swgg_align.cpp.o.d"
  "example_swgg_align"
  "example_swgg_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_swgg_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

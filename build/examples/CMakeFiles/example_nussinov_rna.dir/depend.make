# Empty dependencies file for example_nussinov_rna.
# This may be replaced when dependencies are built.

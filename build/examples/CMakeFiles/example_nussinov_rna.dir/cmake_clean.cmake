file(REMOVE_RECURSE
  "CMakeFiles/example_nussinov_rna.dir/nussinov_rna.cpp.o"
  "CMakeFiles/example_nussinov_rna.dir/nussinov_rna.cpp.o.d"
  "example_nussinov_rna"
  "example_nussinov_rna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nussinov_rna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_dp[1]_include.cmake")
include("/root/repo/build/tests/test_dp_extra[1]_include.cmake")
include("/root/repo/build/tests/test_error_paths[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_knapsack[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_fault[1]_include.cmake")
include("/root/repo/build/tests/test_sim_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_window[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_window.dir/test_sparse_window.cpp.o"
  "CMakeFiles/test_sparse_window.dir/test_sparse_window.cpp.o.d"
  "test_sparse_window"
  "test_sparse_window.pdb"
  "test_sparse_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dp_extra.dir/test_dp_extra.cpp.o"
  "CMakeFiles/test_dp_extra.dir/test_dp_extra.cpp.o.d"
  "test_dp_extra"
  "test_dp_extra.pdb"
  "test_dp_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_dp_extra.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/easyhps/dag/library.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dag/library.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dag/library.cpp.o.d"
  "/root/repo/src/easyhps/dag/parse_state.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dag/parse_state.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dag/parse_state.cpp.o.d"
  "/root/repo/src/easyhps/dag/pattern.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dag/pattern.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dag/pattern.cpp.o.d"
  "/root/repo/src/easyhps/dp/editdist.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/editdist.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/editdist.cpp.o.d"
  "/root/repo/src/easyhps/dp/knapsack.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/knapsack.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/knapsack.cpp.o.d"
  "/root/repo/src/easyhps/dp/lcs.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/lcs.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/lcs.cpp.o.d"
  "/root/repo/src/easyhps/dp/mcm.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/mcm.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/mcm.cpp.o.d"
  "/root/repo/src/easyhps/dp/needleman.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/needleman.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/needleman.cpp.o.d"
  "/root/repo/src/easyhps/dp/nussinov.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/nussinov.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/nussinov.cpp.o.d"
  "/root/repo/src/easyhps/dp/obst.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/obst.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/obst.cpp.o.d"
  "/root/repo/src/easyhps/dp/problem.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/problem.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/problem.cpp.o.d"
  "/root/repo/src/easyhps/dp/sequence.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/sequence.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/sequence.cpp.o.d"
  "/root/repo/src/easyhps/dp/sparse_window.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/sparse_window.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/sparse_window.cpp.o.d"
  "/root/repo/src/easyhps/dp/swgg.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/swgg.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/swgg.cpp.o.d"
  "/root/repo/src/easyhps/dp/twod2d.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/twod2d.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/twod2d.cpp.o.d"
  "/root/repo/src/easyhps/dp/viterbi.cpp" "src/CMakeFiles/easyhps.dir/easyhps/dp/viterbi.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/dp/viterbi.cpp.o.d"
  "/root/repo/src/easyhps/fault/plan.cpp" "src/CMakeFiles/easyhps.dir/easyhps/fault/plan.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/fault/plan.cpp.o.d"
  "/root/repo/src/easyhps/msg/cluster.cpp" "src/CMakeFiles/easyhps.dir/easyhps/msg/cluster.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/msg/cluster.cpp.o.d"
  "/root/repo/src/easyhps/msg/comm.cpp" "src/CMakeFiles/easyhps.dir/easyhps/msg/comm.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/msg/comm.cpp.o.d"
  "/root/repo/src/easyhps/msg/mailbox.cpp" "src/CMakeFiles/easyhps.dir/easyhps/msg/mailbox.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/msg/mailbox.cpp.o.d"
  "/root/repo/src/easyhps/runtime/api.cpp" "src/CMakeFiles/easyhps.dir/easyhps/runtime/api.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/runtime/api.cpp.o.d"
  "/root/repo/src/easyhps/runtime/master.cpp" "src/CMakeFiles/easyhps.dir/easyhps/runtime/master.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/runtime/master.cpp.o.d"
  "/root/repo/src/easyhps/runtime/runtime.cpp" "src/CMakeFiles/easyhps.dir/easyhps/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/runtime/runtime.cpp.o.d"
  "/root/repo/src/easyhps/runtime/slave.cpp" "src/CMakeFiles/easyhps.dir/easyhps/runtime/slave.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/runtime/slave.cpp.o.d"
  "/root/repo/src/easyhps/runtime/wire.cpp" "src/CMakeFiles/easyhps.dir/easyhps/runtime/wire.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/runtime/wire.cpp.o.d"
  "/root/repo/src/easyhps/sched/policy.cpp" "src/CMakeFiles/easyhps.dir/easyhps/sched/policy.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/sched/policy.cpp.o.d"
  "/root/repo/src/easyhps/sched/worker_pool.cpp" "src/CMakeFiles/easyhps.dir/easyhps/sched/worker_pool.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/sched/worker_pool.cpp.o.d"
  "/root/repo/src/easyhps/sim/intra.cpp" "src/CMakeFiles/easyhps.dir/easyhps/sim/intra.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/sim/intra.cpp.o.d"
  "/root/repo/src/easyhps/sim/simulator.cpp" "src/CMakeFiles/easyhps.dir/easyhps/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/sim/simulator.cpp.o.d"
  "/root/repo/src/easyhps/trace/gantt.cpp" "src/CMakeFiles/easyhps.dir/easyhps/trace/gantt.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/trace/gantt.cpp.o.d"
  "/root/repo/src/easyhps/trace/report.cpp" "src/CMakeFiles/easyhps.dir/easyhps/trace/report.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/trace/report.cpp.o.d"
  "/root/repo/src/easyhps/util/error.cpp" "src/CMakeFiles/easyhps.dir/easyhps/util/error.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/util/error.cpp.o.d"
  "/root/repo/src/easyhps/util/log.cpp" "src/CMakeFiles/easyhps.dir/easyhps/util/log.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/util/log.cpp.o.d"
  "/root/repo/src/easyhps/util/stats.cpp" "src/CMakeFiles/easyhps.dir/easyhps/util/stats.cpp.o" "gcc" "src/CMakeFiles/easyhps.dir/easyhps/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

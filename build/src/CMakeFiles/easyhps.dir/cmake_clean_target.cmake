file(REMOVE_RECURSE
  "libeasyhps.a"
)

# Empty compiler generated dependencies file for easyhps.
# This may be replaced when dependencies are built.

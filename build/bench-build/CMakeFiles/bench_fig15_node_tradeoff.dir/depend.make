# Empty dependencies file for bench_fig15_node_tradeoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig15_node_tradeoff"
  "../bench/bench_fig15_node_tradeoff.pdb"
  "CMakeFiles/bench_fig15_node_tradeoff.dir/bench_fig15_node_tradeoff.cpp.o"
  "CMakeFiles/bench_fig15_node_tradeoff.dir/bench_fig15_node_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_node_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

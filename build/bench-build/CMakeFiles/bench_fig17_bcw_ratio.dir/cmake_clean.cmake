file(REMOVE_RECURSE
  "../bench/bench_fig17_bcw_ratio"
  "../bench/bench_fig17_bcw_ratio.pdb"
  "CMakeFiles/bench_fig17_bcw_ratio.dir/bench_fig17_bcw_ratio.cpp.o"
  "CMakeFiles/bench_fig17_bcw_ratio.dir/bench_fig17_bcw_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_bcw_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_bcw_ratio.
# This may be replaced when dependencies are built.

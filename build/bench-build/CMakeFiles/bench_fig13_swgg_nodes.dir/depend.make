# Empty dependencies file for bench_fig13_swgg_nodes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ablate_fault.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ablate_fault"
  "../bench/bench_ablate_fault.pdb"
  "CMakeFiles/bench_ablate_fault.dir/bench_ablate_fault.cpp.o"
  "CMakeFiles/bench_ablate_fault.dir/bench_ablate_fault.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

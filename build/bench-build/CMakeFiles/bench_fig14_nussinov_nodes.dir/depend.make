# Empty dependencies file for bench_fig14_nussinov_nodes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig14_nussinov_nodes"
  "../bench/bench_fig14_nussinov_nodes.pdb"
  "CMakeFiles/bench_fig14_nussinov_nodes.dir/bench_fig14_nussinov_nodes.cpp.o"
  "CMakeFiles/bench_fig14_nussinov_nodes.dir/bench_fig14_nussinov_nodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nussinov_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

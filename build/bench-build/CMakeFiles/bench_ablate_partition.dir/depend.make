# Empty dependencies file for bench_ablate_partition.
# This may be replaced when dependencies are built.

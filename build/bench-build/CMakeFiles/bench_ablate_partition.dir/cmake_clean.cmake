file(REMOVE_RECURSE
  "../bench/bench_ablate_partition"
  "../bench/bench_ablate_partition.pdb"
  "CMakeFiles/bench_ablate_partition.dir/bench_ablate_partition.cpp.o"
  "CMakeFiles/bench_ablate_partition.dir/bench_ablate_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_runtime_real.
# This may be replaced when dependencies are built.

// Cross-module integration tests: the real runtime and the simulator must
// agree on schedule-structure invariants (task counts, message accounting,
// policy behaviour), and full pipelines (generate → solve → traceback)
// must hold together across problems.
#include <gtest/gtest.h>

#include "easyhps/dp/knapsack.hpp"
#include "easyhps/dp/lcs.hpp"
#include "easyhps/dp/needleman.hpp"
#include "easyhps/dp/nussinov.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/runtime/pipeline.hpp"
#include "easyhps/runtime/runtime.hpp"
#include "easyhps/sim/simulator.hpp"

namespace easyhps {
namespace {

// The real runtime and the simulator partition identically, so their task
// counts must match exactly for the same problem + partition size.
TEST(Integration, RuntimeAndSimulatorAgreeOnTaskCount) {
  // The exact message formulas below count the barrier protocol's
  // Assign/Result pairs; streamed halo fragments would add traffic.
  ScopedPipelineMode barrier(PipelineMode::kBarrier);
  SmithWatermanGeneralGap p(randomSequence(120, 301),
                            randomSequence(120, 302));

  RuntimeConfig rcfg;
  rcfg.slaveCount = 3;
  rcfg.threadsPerSlave = 2;
  rcfg.processPartitionRows = rcfg.processPartitionCols = 30;
  rcfg.threadPartitionRows = rcfg.threadPartitionCols = 10;
  // The simulator models the paper's master-relayed data plane, so the
  // exact message formula below only holds in that mode.
  rcfg.dataPlane = DataPlaneMode::kMasterRelay;
  const RunResult real = Runtime(rcfg).run(p);

  sim::SimConfig scfg;
  scfg.deployment = sim::Deployment::forThreads(4, 2);  // 3 computing nodes
  scfg.processPartitionRows = scfg.processPartitionCols = 30;
  scfg.threadPartitionRows = scfg.threadPartitionCols = 10;
  const sim::SimResult simulated = sim::simulate(p, scfg);

  EXPECT_EQ(real.stats.completedTasks, simulated.tasks);
  EXPECT_EQ(real.stats.tasksPerSlave.size(),
            simulated.tasksPerNode.size());
  // Message accounting: both engines count Assign + Result per task plus
  // per-slave control traffic (the real runtime's job-multiplexed bracket
  // is JobStart + Idle + JobEnd + Stats + End per slave; the simulator
  // Idle + End).
  EXPECT_EQ(simulated.messages,
            2 * static_cast<std::uint64_t>(simulated.tasks) + 2 * 3);
  EXPECT_EQ(real.stats.messages,
            2 * static_cast<std::uint64_t>(real.stats.completedTasks) +
                5 * 3);

  // Peer-to-peer mode swaps block payloads for extra (smaller) data-plane
  // messages: same tasks, at least the same control traffic, and the same
  // final table (order-independent checksum).
  rcfg.dataPlane = DataPlaneMode::kPeerToPeer;
  const RunResult peer = Runtime(rcfg).run(p);
  EXPECT_EQ(peer.stats.completedTasks, real.stats.completedTasks);
  EXPECT_GE(peer.stats.messages, real.stats.messages);
  EXPECT_EQ(peer.stats.tableChecksum, real.stats.tableChecksum);
}

// Triangular problems: both engines must agree on the number of *active*
// blocks (inactive below-diagonal blocks never scheduled).
TEST(Integration, TriangularActiveBlockCountsAgree) {
  Nussinov p(randomRna(100, 303));

  RuntimeConfig rcfg;
  rcfg.slaveCount = 2;
  rcfg.threadsPerSlave = 2;
  rcfg.processPartitionRows = rcfg.processPartitionCols = 25;
  rcfg.threadPartitionRows = rcfg.threadPartitionCols = 5;
  const RunResult real = Runtime(rcfg).run(p);

  sim::SimConfig scfg;
  scfg.deployment = sim::Deployment::forThreads(3, 2);
  scfg.processPartitionRows = scfg.processPartitionCols = 25;
  scfg.threadPartitionRows = scfg.threadPartitionCols = 5;
  const sim::SimResult simulated = sim::simulate(p, scfg);

  EXPECT_EQ(real.stats.completedTasks, simulated.tasks);
  EXPECT_EQ(real.stats.completedTasks, 10);  // 4×4 grid upper triangle
}

// Full pipeline: mutate a reference, align with both SWGG and NW, and
// check the tracebacks tell a consistent story.
TEST(Integration, AlignmentPipelineConsistency) {
  const std::string reference = randomSequence(120, 304);
  std::string query = reference.substr(30, 60);
  query[10] = query[10] == 'A' ? 'C' : 'A';  // one guaranteed mutation

  RuntimeConfig cfg;
  cfg.slaveCount = 2;
  cfg.threadsPerSlave = 2;
  cfg.processPartitionRows = cfg.processPartitionCols = 40;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 10;

  SmithWatermanGeneralGap local(reference, query);
  const RunResult lres = Runtime(cfg).run(local);
  // Local alignment of a 60-base fragment with 1 mismatch: at least
  // 2×(region around the mutation) — the exact floor: 2*49 (right of the
  // mutation) but realistically the full 59 matches score 2*59 - penalty.
  EXPECT_GE(local.bestScore(lres.matrix), 2 * 40);

  NeedlemanWunsch global(query, query);
  const RunResult gres = Runtime(cfg).run(global);
  EXPECT_EQ(global.score(gres.matrix), static_cast<Score>(query.size()));
  const auto [top, bottom] = global.alignment(gres.matrix);
  EXPECT_EQ(top, query);  // self-alignment has no gaps
  EXPECT_EQ(bottom, query);
}

// LCS of a string with itself through the runtime is the string itself.
TEST(Integration, LcsSelfIdentity) {
  const std::string s = randomSequence(50, 305);
  LongestCommonSubsequence p(s, s);
  RuntimeConfig cfg;
  cfg.slaveCount = 2;
  cfg.threadsPerSlave = 2;
  cfg.processPartitionRows = cfg.processPartitionCols = 16;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 4;
  const RunResult r = Runtime(cfg).run(p);
  EXPECT_EQ(p.subsequence(r.matrix), s);
}

// Knapsack optimum through the runtime equals a brute-force check on a
// small instance (exhaustive over 2^12 subsets).
TEST(Integration, KnapsackMatchesBruteForce) {
  Knapsack p(12, 20, 306);
  RuntimeConfig cfg;
  cfg.slaveCount = 2;
  cfg.threadsPerSlave = 2;
  cfg.processPartitionRows = cfg.processPartitionCols = 6;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 3;
  const RunResult r = Runtime(cfg).run(p);

  Score best = 0;
  for (unsigned mask = 0; mask < (1u << 12); ++mask) {
    std::int64_t w = 0;
    Score v = 0;
    for (int i = 0; i < 12; ++i) {
      if (mask & (1u << i)) {
        w += p.items()[static_cast<std::size_t>(i)].weight;
        v += p.items()[static_cast<std::size_t>(i)].value;
      }
    }
    if (w <= 20) {
      best = std::max(best, v);
    }
  }
  EXPECT_EQ(p.bestValue(r.matrix), best);
}

// The simulator's dynamic policy must never stall, for any problem shape.
TEST(Integration, DynamicPolicyNeverStallsAcrossProblems) {
  SmithWatermanGeneralGap swgg(randomSequence(200, 307),
                               randomSequence(200, 308));
  Nussinov nus(randomRna(200, 309));
  const DpProblem* problems[] = {&swgg, &nus};
  for (const DpProblem* p : problems) {
    sim::SimConfig cfg;
    cfg.deployment = sim::Deployment::forThreads(5, 3);
    cfg.processPartitionRows = cfg.processPartitionCols = 50;
    cfg.threadPartitionRows = cfg.threadPartitionCols = 10;
    const sim::SimResult r = sim::simulate(*p, cfg);
    EXPECT_EQ(r.masterStalledPicks, 0) << p->name();
    EXPECT_EQ(r.threadStalledPicks, 0) << p->name();
  }
}

}  // namespace
}  // namespace easyhps

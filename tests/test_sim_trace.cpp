// Schedule-validity tests on the simulator's task traces: every simulated
// schedule must respect the DAG's precedence constraints, node exclusivity
// (one block at a time per slave) and causal message ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "easyhps/dp/nussinov.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/sim/simulator.hpp"

namespace easyhps::sim {
namespace {

SimConfig tracedConfig(int nodes, int ct, PolicyKind policy) {
  SimConfig cfg;
  cfg.deployment = Deployment::forThreads(nodes, ct);
  cfg.processPartitionRows = cfg.processPartitionCols = 80;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 10;
  cfg.masterPolicy = policy;
  cfg.slavePolicy = policy;
  cfg.collectTrace = true;
  return cfg;
}

struct TracedRun {
  PartitionedDag dag;
  SimResult result;
};

TracedRun runTraced(const DpProblem& p, const SimConfig& cfg) {
  return TracedRun{buildMasterDag(p, cfg.processPartitionRows,
                                  cfg.processPartitionCols),
                   simulate(p, cfg)};
}

void expectValidSchedule(const TracedRun& run) {
  const auto& trace = run.result.trace;
  ASSERT_EQ(static_cast<std::int64_t>(trace.size()), run.result.tasks);

  std::map<VertexId, const TaskTrace*> byVertex;
  for (const TaskTrace& t : trace) {
    byVertex[t.vertex] = &t;
    // Causal ordering within one task.
    EXPECT_LE(t.dispatched, t.arrived);
    EXPECT_LE(t.arrived, t.computeDone);
    EXPECT_LT(t.computeDone, t.resultProcessed);
    EXPECT_GE(t.node, 0);
  }

  // Precedence: a task is dispatched only after all its topological
  // predecessors' results were processed by the master.
  for (const TaskTrace& t : trace) {
    for (VertexId v = 0; v < run.dag.vertexCount(); ++v) {
      for (VertexId s : run.dag.dag.successors(v)) {
        if (s == t.vertex) {
          const auto* pred = byVertex.at(v);
          EXPECT_LE(pred->resultProcessed, t.dispatched)
              << "task " << t.vertex << " dispatched before pred " << v;
        }
      }
    }
  }

  // Node exclusivity: on each node, [arrived, computeDone] windows of its
  // tasks must not overlap (a slave executes one block at a time).
  std::map<int, std::vector<const TaskTrace*>> byNode;
  for (const TaskTrace& t : trace) {
    byNode[t.node].push_back(&t);
  }
  for (auto& [node, tasks] : byNode) {
    std::sort(tasks.begin(), tasks.end(),
              [](const TaskTrace* a, const TaskTrace* b) {
                return a->arrived < b->arrived;
              });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      EXPECT_GE(tasks[i]->arrived, tasks[i - 1]->computeDone - 1e-12)
          << "node " << node << " overlapped blocks " << tasks[i - 1]->vertex
          << " and " << tasks[i]->vertex;
    }
  }
}

TEST(SimTrace, DynamicScheduleIsValidSwgg) {
  SmithWatermanGeneralGap p(randomSequence(480, 71), randomSequence(480, 72));
  expectValidSchedule(
      runTraced(p, tracedConfig(4, 3, PolicyKind::kDynamic)));
}

TEST(SimTrace, DynamicScheduleIsValidNussinov) {
  Nussinov p(randomRna(480, 73));
  expectValidSchedule(
      runTraced(p, tracedConfig(3, 4, PolicyKind::kDynamic)));
}

TEST(SimTrace, BcwScheduleIsValid) {
  SmithWatermanGeneralGap p(randomSequence(400, 74), randomSequence(400, 75));
  expectValidSchedule(
      runTraced(p, tracedConfig(5, 2, PolicyKind::kBlockCyclicWavefront)));
}

TEST(SimTrace, TraceOffByDefault) {
  SmithWatermanGeneralGap p(randomSequence(200, 76), randomSequence(200, 77));
  SimConfig cfg = tracedConfig(2, 2, PolicyKind::kDynamic);
  cfg.collectTrace = false;
  const SimResult r = simulate(p, cfg);
  EXPECT_TRUE(r.trace.empty());
}

TEST(SimTrace, MakespanEqualsLastResultProcessed) {
  Nussinov p(randomRna(320, 78));
  const auto run = runTraced(p, tracedConfig(3, 3, PolicyKind::kDynamic));
  double last = 0;
  for (const auto& t : run.result.trace) {
    last = std::max(last, t.resultProcessed);
  }
  EXPECT_DOUBLE_EQ(run.result.makespan, last);
}

TEST(SimTrace, BcwTasksStayOnOwnedColumns) {
  // The static schedule's defining property: block column j runs on node
  // (j mod P), always.
  SmithWatermanGeneralGap p(randomSequence(400, 79), randomSequence(400, 80));
  const auto cfg = tracedConfig(5, 2, PolicyKind::kBlockCyclicWavefront);
  const auto run = runTraced(p, cfg);
  const int nodes = cfg.deployment.computingNodes();
  for (const auto& t : run.result.trace) {
    const BlockCoord c = run.dag.coordOf(t.vertex);
    EXPECT_EQ(t.node, static_cast<int>(c.bj % nodes));
  }
}

}  // namespace
}  // namespace easyhps::sim

// Edge cases of the fault-tolerance bookkeeping pair: the OvertimeQueue
// deadline heap and the RegisterTable epochs it is checked against.  The
// runtime-level recovery behaviour is covered end-to-end in test_runtime
// and test_chaos; these pin down the primitives' corner semantics.
#include <gtest/gtest.h>

#include <chrono>

#include "easyhps/sched/worker_pool.hpp"

namespace easyhps {
namespace {

using Clock = OvertimeQueue::Clock;
using std::chrono::milliseconds;

TEST(OvertimeQueue, ZeroTimeoutExpiresImmediately) {
  OvertimeQueue q;
  q.push(/*task=*/1, /*worker=*/2, /*epoch=*/7, milliseconds(0));
  ASSERT_EQ(q.size(), 1u);
  const auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].task, 1);
  EXPECT_EQ(expired[0].worker, 2);
  EXPECT_EQ(expired[0].epoch, 7);
  EXPECT_EQ(q.size(), 0u);
}

TEST(OvertimeQueue, NegativeTimeoutIsAlreadyExpiredAtPush) {
  OvertimeQueue q;
  q.push(3, 1, 1, milliseconds(-50));
  const auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].task, 3);
}

TEST(OvertimeQueue, PopsOnlyPastDeadlinesInOrder) {
  OvertimeQueue q;
  const Clock::time_point now = Clock::now();
  q.push(1, 1, 1, milliseconds(10000));
  q.push(2, 2, 2, milliseconds(0));
  q.push(3, 3, 3, milliseconds(1));
  const auto expired = q.popExpired(now + milliseconds(100));
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].task, 2);  // earliest deadline first
  EXPECT_EQ(expired[1].task, 3);
  EXPECT_EQ(q.size(), 1u);  // the far deadline stays queued
  const auto deadline = q.nextDeadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_GT(*deadline, now + milliseconds(100));
}

TEST(OvertimeQueue, NextDeadlineEmptyWhenDrained) {
  OvertimeQueue q;
  EXPECT_FALSE(q.nextDeadline().has_value());
  EXPECT_TRUE(q.popExpired().empty());
  q.push(1, 1, 1, milliseconds(0));
  EXPECT_TRUE(q.nextDeadline().has_value());
  q.popExpired();
  EXPECT_FALSE(q.nextDeadline().has_value());
}

TEST(OvertimeQueue, DuplicateTaskEntriesExpireIndependently) {
  // A re-distributed task is pushed again under a new epoch while the old
  // entry may still sit in the heap; both surface and the caller's epoch
  // check tells them apart.
  OvertimeQueue q;
  const Clock::time_point now = Clock::now();
  q.push(5, 1, 1, milliseconds(0));
  q.push(5, 2, 2, milliseconds(1));
  const auto expired = q.popExpired(now + milliseconds(10));
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].epoch, 1);
  EXPECT_EQ(expired[1].epoch, 2);
}

// --- Interplay with the RegisterTable epochs ------------------------------

TEST(OvertimeRegister, StaleEpochPopDoesNotCancelReissuedTask) {
  RegisterTable table;
  OvertimeQueue q;
  // First assignment times out...
  const AssignmentEpoch e1 = table.registerTask(9, /*worker=*/1);
  q.push(9, 1, e1, milliseconds(0));
  auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  ASSERT_TRUE(table.cancel(9, expired[0].epoch));
  // ...and is re-issued under a fresh epoch.
  const AssignmentEpoch e2 = table.registerTask(9, /*worker=*/2);
  EXPECT_NE(e1, e2);
  q.push(9, 2, e2, milliseconds(10000));

  // A stale heap entry of the *old* assignment fires late: its epoch no
  // longer matches, so the FT thread must not cancel the new assignment.
  q.push(9, 1, e1, milliseconds(0));
  expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].epoch, e1);
  EXPECT_FALSE(table.cancel(9, expired[0].epoch));
  EXPECT_TRUE(table.matches(9, e2));
  EXPECT_TRUE(table.isRegistered(9));
}

TEST(OvertimeRegister, CompletionBeforeExpiryWinsTheRace) {
  RegisterTable table;
  OvertimeQueue q;
  const AssignmentEpoch e = table.registerTask(4, /*worker=*/3);
  q.push(4, 3, e, milliseconds(0));

  // The worker finishes just before the FT thread pops the deadline.
  const auto entry = table.complete(4);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->worker, 3);
  EXPECT_EQ(entry->epoch, e);

  const auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  // The registration is gone: cancel fails, so no retry is issued.
  EXPECT_FALSE(table.cancel(4, expired[0].epoch));
  EXPECT_FALSE(table.isRegistered(4));
  EXPECT_EQ(table.size(), 0u);
}

TEST(OvertimeRegister, CompleteIsEpochAgnosticAndIdempotent) {
  RegisterTable table;
  table.registerTask(6, 1);
  const AssignmentEpoch e2 = table.registerTask(6, 2);  // re-issue, new epoch
  // Completion succeeds whichever copy finished first...
  const auto entry = table.complete(6);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->epoch, e2);
  // ...and the late duplicate finds nothing to complete.
  EXPECT_FALSE(table.complete(6).has_value());
  EXPECT_FALSE(table.matches(6, e2));
}

}  // namespace
}  // namespace easyhps

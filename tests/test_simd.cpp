// The SIMD tier's building blocks: the portable vector wrapper (simd.hpp),
// the runtime ISA guard that demotes kSimd dispatch on CPUs without the
// compiled instruction set, and the per-kernel tile autotuner
// (autotune.hpp).  Carries the `tsan` label: the final test hammers kernel
// dispatch and the autotuner memo from several threads at once, which is
// exactly the shape of a multi-slave runtime's first blocks.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "easyhps/dp/autotune.hpp"
#include "easyhps/dp/kernel_common.hpp"
#include "easyhps/dp/lcs.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/simd.hpp"
#include "easyhps/dp/window.hpp"

namespace easyhps {
namespace {

using simd::kVecWidth;
using simd::VecScore;

std::vector<Score> iota(Score start) {
  std::vector<Score> v(kVecWidth);
  for (int i = 0; i < kVecWidth; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<Score>(start + i);
  }
  return v;
}

TEST(SimdWrapper, LoadStoreRoundTrip) {
  const auto in = iota(5);
  std::vector<Score> out(kVecWidth, 0);
  VecScore::load(in.data()).store(out.data());
  EXPECT_EQ(in, out);
}

TEST(SimdWrapper, ArithmeticMinMaxMatchScalar) {
  const auto a = iota(-3);
  std::vector<Score> b(kVecWidth);
  for (int i = 0; i < kVecWidth; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<Score>(i % 2 == 0 ? 7 : -9);
  }
  const VecScore va = VecScore::load(a.data());
  const VecScore vb = VecScore::load(b.data());
  std::vector<Score> sum(kVecWidth);
  std::vector<Score> diff(kVecWidth);
  std::vector<Score> mn(kVecWidth);
  std::vector<Score> mx(kVecWidth);
  (va + vb).store(sum.data());
  (va - vb).store(diff.data());
  VecScore::min(va, vb).store(mn.data());
  VecScore::max(va, vb).store(mx.data());
  for (int i = 0; i < kVecWidth; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(sum[s], a[s] + b[s]);
    EXPECT_EQ(diff[s], a[s] - b[s]);
    EXPECT_EQ(mn[s], std::min(a[s], b[s]));
    EXPECT_EQ(mx[s], std::max(a[s], b[s]));
  }
}

TEST(SimdWrapper, CmpeqBlendSelectLanewise) {
  const auto a = iota(0);
  auto b = iota(0);
  for (int i = 0; i < kVecWidth; i += 2) {
    b[static_cast<std::size_t>(i)] = -1;  // equal only on odd lanes
  }
  const VecScore mask =
      VecScore::cmpeq(VecScore::load(a.data()), VecScore::load(b.data()));
  std::vector<Score> picked(kVecWidth);
  VecScore::blend(mask, VecScore::splat(100), VecScore::splat(200))
      .store(picked.data());
  for (int i = 0; i < kVecWidth; ++i) {
    EXPECT_EQ(picked[static_cast<std::size_t>(i)], i % 2 == 0 ? 200 : 100);
  }
}

TEST(SimdWrapper, ShiftUpInsertLaneTopLaneReduce) {
  const auto a = iota(10);
  const VecScore va = VecScore::load(a.data());
  std::vector<Score> shifted(kVecWidth);
  va.shiftUpInsert(-7).store(shifted.data());
  EXPECT_EQ(shifted[0], -7);
  for (int i = 1; i < kVecWidth; ++i) {
    EXPECT_EQ(shifted[static_cast<std::size_t>(i)],
              a[static_cast<std::size_t>(i - 1)]);
  }
  for (int i = 0; i < kVecWidth; ++i) {
    EXPECT_EQ(va.lane(i), a[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(va.topLane(), a.back());
  EXPECT_EQ(va.reduceMax(), a.back());  // iota: max is the top lane
}

TEST(SimdWrapper, TransposeIsitsOwnInverse) {
  VecScore m[kVecWidth];
  for (int r = 0; r < kVecWidth; ++r) {
    std::vector<Score> row(kVecWidth);
    for (int c = 0; c < kVecWidth; ++c) {
      row[static_cast<std::size_t>(c)] =
          static_cast<Score>(r * kVecWidth + c);
    }
    m[r] = VecScore::load(row.data());
  }
  simd::transpose(m);
  for (int r = 0; r < kVecWidth; ++r) {
    for (int c = 0; c < kVecWidth; ++c) {
      EXPECT_EQ(m[r].lane(c), c * kVecWidth + r);
    }
  }
  simd::transpose(m);
  for (int r = 0; r < kVecWidth; ++r) {
    for (int c = 0; c < kVecWidth; ++c) {
      EXPECT_EQ(m[r].lane(c), r * kVecWidth + c);
    }
  }
}

// The guard the tentpole promises: dispatch never selects an ISA the CPU
// lacks.  On a machine with the compiled ISA the requested tier passes
// through; without it, kSimd demotes to kSpan and nothing else changes.
TEST(SimdDispatchGuard, EffectivePathNeverExceedsCpu) {
  {
    ScopedKernelPath simd(KernelPath::kSimd);
    if (simd::runtimeSupported()) {
      EXPECT_EQ(effectiveKernelPath(), KernelPath::kSimd);
    } else {
      EXPECT_EQ(effectiveKernelPath(), KernelPath::kSpan);
    }
  }
  {
    ScopedKernelPath span(KernelPath::kSpan);
    EXPECT_EQ(effectiveKernelPath(), KernelPath::kSpan);
  }
  {
    ScopedKernelPath ref(KernelPath::kReference);
    EXPECT_EQ(effectiveKernelPath(), KernelPath::kReference);
  }
  // The name table covers every tier (metrics and env parsing rely on it).
  EXPECT_STREQ(kernelPathName(KernelPath::kSimd), "simd");
  EXPECT_STREQ(kernelPathName(KernelPath::kSpan), "span");
  EXPECT_STREQ(kernelPathName(KernelPath::kReference), "reference");
  // And the backend name is one of the known ISAs.
  const std::string backend = simd::backendName();
  EXPECT_TRUE(backend == "avx2" || backend == "sse4.1" || backend == "sse2" ||
              backend == "scalar")
      << backend;
}

TEST(Autotune, MemoizesAndSummarizes) {
  autotune::reset();
  const auto first = autotune::tileFor("lcs", autotune::Storage::kDense,
                                       KernelPath::kSimd);
  EXPECT_GE(first.tileCols, 16);
  EXPECT_GE(first.stripBands, 1);
  EXPECT_LE(first.stripBands, kMaxSimdBands);
  const auto again = autotune::tileFor("lcs", autotune::Storage::kDense,
                                       KernelPath::kSimd);
  EXPECT_EQ(first.tileCols, again.tileCols);
  EXPECT_EQ(first.stripBands, again.stripBands);
  const std::string s = autotune::summary();
  EXPECT_NE(s.find("lcs/dense/simd="), std::string::npos) << s;
  autotune::reset();
  EXPECT_TRUE(autotune::summary().empty());
}

TEST(Autotune, UnknownFamilyGetsDefaults) {
  autotune::reset();
  const auto choice = autotune::tileFor("nussinov", autotune::Storage::kDense,
                                        KernelPath::kSpan);
  EXPECT_EQ(choice.tileCols, kKernelTileCols);
  EXPECT_EQ(choice.stripBands, 1);
  autotune::reset();
}

TEST(Autotune, ScopedForcedTileWinsAndRestores) {
  autotune::reset();
  {
    autotune::ScopedForcedTile forced(autotune::TileChoice{256, 2});
    const auto choice = autotune::tileFor("lcs", autotune::Storage::kSparse,
                                          KernelPath::kSimd);
    EXPECT_EQ(choice.tileCols, 256);
    EXPECT_EQ(choice.stripBands, std::min(2, kMaxSimdBands));
    // Forcing bypasses the sweep entirely: nothing is memoized.
    EXPECT_TRUE(autotune::summary().empty());
  }
  // Out of range values are clamped, not honoured.
  {
    autotune::ScopedForcedTile forced(autotune::TileChoice{1, 99});
    const auto choice = autotune::tileFor("lcs", autotune::Storage::kDense,
                                          KernelPath::kSimd);
    EXPECT_EQ(choice.tileCols, 16);
    EXPECT_EQ(choice.stripBands, kMaxSimdBands);
  }
  autotune::reset();
}

// Concurrent first-touch: many threads dispatch SIMD kernels while the
// autotuner memo is cold, so sweeps, memo reads and kernel runs all
// overlap — the shape of a multi-slave runtime's first blocks.  Run under
// ThreadSanitizer via the tsan label.
TEST(Autotune, ConcurrentDispatchAndSweepIsClean) {
  autotune::reset();
  const LongestCommonSubsequence lcs(randomSequence(64, 91),
                                     randomSequence(200, 92));
  const DenseMatrix<Score> oracle = lcs.solveReference();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        Window w(CellRect{0, 0, lcs.rows(), lcs.cols()}, lcs.boundaryFn());
        lcs.computeBlock(w, CellRect{0, 0, lcs.rows(), lcs.cols()});
        for (std::int64_t r = 0; r < lcs.rows(); ++r) {
          for (std::int64_t c = 0; c < lcs.cols(); ++c) {
            if (w.get(r, c) != oracle.at(r, c)) {
              ++failures[static_cast<std::size_t>(t)];
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0);
  }
  EXPECT_FALSE(autotune::summary().empty());
  autotune::reset();
}

}  // namespace
}  // namespace easyhps

// Tests of easyhps::serve — the persistent multi-job service layer:
// concurrent submission, admission control, cancellation of queued and
// running jobs, drain/shutdown ordering, and the inter-job scheduling
// policies (FIFO / priority / fair-share).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "easyhps/dp/editdist.hpp"
#include "easyhps/dp/nussinov.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/serve/service.hpp"

namespace easyhps::serve {
namespace {

void expectMatchesReference(const DpProblem& p, const Window& solved) {
  const DenseMatrix<Score> ref = p.solveReference();
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    for (std::int64_t c = 0; c < p.cols(); ++c) {
      if (!p.cellActive(r, c)) {
        continue;
      }
      ASSERT_EQ(solved.get(r, c), ref.at(r, c))
          << p.name() << " mismatch at (" << r << "," << c << ")";
    }
  }
}

ServiceConfig smallService(int slaves) {
  ServiceConfig cfg;
  cfg.runtime.slaveCount = slaves;
  cfg.runtime.threadsPerSlave = 2;
  cfg.runtime.processPartitionRows = cfg.runtime.processPartitionCols = 12;
  cfg.runtime.threadPartitionRows = cfg.runtime.threadPartitionCols = 4;
  return cfg;
}

/// Options making a job hold the cluster for ~`delay`: a kTaskDelay fault
/// on vertex 0 stalls the (gating) first block's reply.  The default
/// taskTimeout (5 s) is far larger, so fault tolerance never kicks in.
JobOptions slowOptions(std::string name, std::chrono::milliseconds delay) {
  JobOptions o;
  o.name = std::move(name);
  fault::FaultSpec f;
  f.kind = fault::FaultKind::kTaskDelay;
  f.vertex = 0;
  f.delay = delay;
  o.faults.push_back(f);
  return o;
}

/// Single-block problem: with 12×12 partitions a 10×10 edit distance is
/// one master task, so a delay fault on vertex 0 delays the whole job.
std::shared_ptr<EditDistance> tinyProblem(int seed) {
  return std::make_shared<EditDistance>(randomSequence(10, seed),
                                        randomSequence(10, seed + 1));
}

bool waitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds limit = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// Acceptance: one Service completes concurrently submitted jobs of
// different DP problems without re-booting the cluster, each correct
// against its reference solver and with its own RunStats.
TEST(Serve, CompletesConcurrentJobsOfDifferentProblems) {
  Service service(smallService(3));

  auto ed = std::make_shared<EditDistance>(randomSequence(48, 401),
                                           randomSequence(48, 402));
  auto sw = std::make_shared<SmithWatermanGeneralGap>(randomSequence(36, 403),
                                                      randomSequence(36, 404));
  auto nu = std::make_shared<Nussinov>(randomRna(40, 405));
  auto ed2 = std::make_shared<EditDistance>(randomSequence(25, 406),
                                            randomSequence(25, 407));
  const std::vector<std::shared_ptr<const DpProblem>> problems{ed, sw, nu,
                                                               ed2};

  // Submit from four threads at once: admission must be thread-safe.
  std::vector<std::optional<JobTicket>> tickets(problems.size());
  {
    std::vector<std::thread> submitters;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      submitters.emplace_back([&, i] {
        tickets[i] = service.submit(problems[i]);
      });
    }
    for (auto& t : submitters) {
      t.join();
    }
  }

  std::vector<std::int64_t> completedTasks;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    auto outcome = tickets[i]->wait();
    ASSERT_EQ(outcome->state, JobState::kDone) << outcome->error;
    ASSERT_TRUE(outcome->matrix.has_value());
    expectMatchesReference(*problems[i], *outcome->matrix);
    completedTasks.push_back(outcome->stats.run.completedTasks);
    EXPECT_GE(outcome->stats.dispatchSeq, 0);
    EXPECT_GT(outcome->stats.run.messages, 0u);
    EXPECT_GE(outcome->stats.timeToFirstBlockSeconds, 0.0);
  }
  // Per-job RunStats are distinct, not shared or summed: block counts
  // follow each problem's own shape.
  EXPECT_EQ(completedTasks[0], 16);  // 4×4 grid
  EXPECT_EQ(completedTasks[1], 9);   // 3×3 grid
  EXPECT_EQ(completedTasks[2], 10);  // 4×4 upper triangle
  EXPECT_EQ(completedTasks[3], 9);   // 3×3 grid

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.accepted, 4);
  EXPECT_EQ(m.completed, 4);
  EXPECT_EQ(m.rejected, 0);
  EXPECT_EQ(m.cancelled, 0);
}

TEST(Serve, CancelQueuedJobNeverRuns) {
  Service service(smallService(1));

  JobTicket slow = service.submit(
      tinyProblem(411), slowOptions("slow", std::chrono::milliseconds(300)));
  ASSERT_TRUE(waitUntil([&] { return slow.state() == JobState::kRunning; }));

  JobTicket queued = service.submit(tinyProblem(413));
  EXPECT_EQ(queued.state(), JobState::kQueued);
  EXPECT_TRUE(queued.cancel());

  auto outcome = queued.wait();
  EXPECT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_FALSE(outcome->matrix.has_value());
  EXPECT_EQ(outcome->stats.run.tasks, 0);      // never dispatched
  EXPECT_EQ(outcome->stats.dispatchSeq, -1);   // never picked
  EXPECT_FALSE(queued.cancel());               // already terminal

  EXPECT_EQ(slow.wait()->state, JobState::kDone);
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.cancelled, 1);
  EXPECT_EQ(m.completed, 1);
}

TEST(Serve, CancelRunningJobStopsEarly) {
  Service service(smallService(1));

  // 100 blocks gated by a 400 ms delay on the first: cancelling during
  // the stall must terminate the job long before 100 completions.
  auto big = std::make_shared<EditDistance>(randomSequence(120, 421),
                                            randomSequence(120, 422));
  JobTicket t = service.submit(
      big, slowOptions("cancel-me", std::chrono::milliseconds(400)));
  ASSERT_TRUE(waitUntil([&] { return t.state() == JobState::kRunning; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(t.cancel());

  auto outcome = t.wait();
  EXPECT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_FALSE(outcome->matrix.has_value());
  EXPECT_LT(outcome->stats.run.completedTasks, 100);

  // The cluster survives the cancellation — and the cancelled job's
  // delayed reply (carrying its job id) must not leak into this one.
  auto follow = std::make_shared<EditDistance>(randomSequence(30, 423),
                                               randomSequence(30, 424));
  auto followOutcome = service.submit(follow).wait();
  ASSERT_EQ(followOutcome->state, JobState::kDone) << followOutcome->error;
  expectMatchesReference(*follow, *followOutcome->matrix);
}

TEST(Serve, AdmissionRejectsWhenQueueFull) {
  ServiceConfig cfg = smallService(1);
  cfg.maxQueueDepth = 2;
  Service service(cfg);

  JobTicket slow = service.submit(
      tinyProblem(431), slowOptions("slow", std::chrono::milliseconds(300)));
  ASSERT_TRUE(waitUntil([&] { return slow.state() == JobState::kRunning; }));

  Admission a1 = service.trySubmit(tinyProblem(433));
  Admission a2 = service.trySubmit(tinyProblem(435));
  ASSERT_TRUE(a1.accepted());
  ASSERT_TRUE(a2.accepted());

  Admission a3 = service.trySubmit(tinyProblem(437));
  ASSERT_FALSE(a3.accepted());
  EXPECT_NE(a3.reason.find("full"), std::string::npos) << a3.reason;

  EXPECT_EQ(slow.wait()->state, JobState::kDone);
  EXPECT_EQ(a1.ticket->wait()->state, JobState::kDone);
  EXPECT_EQ(a2.ticket->wait()->state, JobState::kDone);
  EXPECT_EQ(service.metrics().rejected, 1);
}

TEST(Serve, DrainThenShutdown) {
  Service service(smallService(2));

  std::vector<JobTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(service.submit(
        std::make_shared<EditDistance>(randomSequence(30, 441 + 2 * i),
                                       randomSequence(30, 442 + 2 * i))));
  }
  service.drain();

  // Drain returns only after every admitted job reached a terminal state.
  for (auto& t : tickets) {
    EXPECT_EQ(t.state(), JobState::kDone);
  }
  Admission afterDrain = service.trySubmit(tinyProblem(451));
  ASSERT_FALSE(afterDrain.accepted());
  EXPECT_NE(afterDrain.reason.find("drain"), std::string::npos)
      << afterDrain.reason;

  service.shutdown();
  Admission afterStop = service.trySubmit(tinyProblem(453));
  ASSERT_FALSE(afterStop.accepted());
  EXPECT_NE(afterStop.reason.find("stopped"), std::string::npos)
      << afterStop.reason;
  service.shutdown();  // idempotent

  EXPECT_EQ(service.metrics().completed, 5);
}

TEST(Serve, SubmitThrowsOnRejection) {
  Service service(smallService(1));
  service.shutdown();
  EXPECT_THROW(service.submit(tinyProblem(461)), AdmissionError);
}

TEST(Serve, PriorityPolicyRunsHighPriorityFirst) {
  ServiceConfig cfg = smallService(1);
  cfg.policy = JobSchedPolicy::kPriority;
  Service service(cfg);

  // Hold the cluster so A/B/C queue up, then observe dispatch order.
  JobTicket slow = service.submit(
      tinyProblem(471), slowOptions("slow", std::chrono::milliseconds(300)));
  ASSERT_TRUE(waitUntil([&] { return slow.state() == JobState::kRunning; }));

  JobOptions a, b, c;
  a.name = "a";
  a.priority = 0;
  b.name = "b";
  b.priority = 5;
  c.name = "c";
  c.priority = 1;
  JobTicket ta = service.submit(tinyProblem(473), a);
  JobTicket tb = service.submit(tinyProblem(475), b);
  JobTicket tc = service.submit(tinyProblem(477), c);

  const auto sa = ta.wait(), sb = tb.wait(), sc = tc.wait();
  ASSERT_EQ(sa->state, JobState::kDone);
  ASSERT_EQ(sb->state, JobState::kDone);
  ASSERT_EQ(sc->state, JobState::kDone);
  // b (pri 5) before c (pri 1) before a (pri 0), despite submission order.
  EXPECT_LT(sb->stats.dispatchSeq, sc->stats.dispatchSeq);
  EXPECT_LT(sc->stats.dispatchSeq, sa->stats.dispatchSeq);
}

TEST(Serve, FairSharePolicyInterleavesAcrossKeys) {
  ServiceConfig cfg = smallService(1);
  cfg.policy = JobSchedPolicy::kFairShare;
  Service service(cfg);

  JobTicket slow = service.submit(
      tinyProblem(481), slowOptions("slow", std::chrono::milliseconds(300)));
  ASSERT_TRUE(waitUntil([&] { return slow.state() == JobState::kRunning; }));

  // Three small jobs (24² = 576 ops each) on key "small", two large
  // (96² = 9216 ops) on key "big"; equal weights.  Stride scheduling
  // dispatches small, big, small, small, big — FIFO would run all three
  // small jobs first.
  auto smallJob = [&](int seed) {
    JobOptions o;
    o.shareKey = "small";
    return service.submit(
        std::make_shared<EditDistance>(randomSequence(24, seed),
                                       randomSequence(24, seed + 1)),
        o);
  };
  auto bigJob = [&](int seed) {
    JobOptions o;
    o.shareKey = "big";
    return service.submit(
        std::make_shared<EditDistance>(randomSequence(96, seed),
                                       randomSequence(96, seed + 1)),
        o);
  };
  JobTicket s1 = smallJob(483), s2 = smallJob(485), s3 = smallJob(487);
  JobTicket b1 = bigJob(489), b2 = bigJob(491);

  const auto o1 = s1.wait(), o2 = s2.wait(), o3 = s3.wait();
  const auto ob1 = b1.wait(), ob2 = b2.wait();
  for (const auto& o : {o1, o2, o3, ob1, ob2}) {
    ASSERT_EQ(o->state, JobState::kDone);
  }
  // The first big job cuts ahead of the remaining small jobs (its share
  // consumed nothing yet), then its cost pushes "big" behind.
  EXPECT_LT(ob1->stats.dispatchSeq, o2->stats.dispatchSeq);
  EXPECT_GT(ob2->stats.dispatchSeq, o3->stats.dispatchSeq);
}

TEST(Serve, ConcurrentSubmitsStress) {
  Service service(smallService(3));

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 3;
  std::vector<std::shared_ptr<const DpProblem>>
      problems(kThreads * kJobsPerThread);
  std::vector<std::shared_ptr<const JobOutcome>>
      outcomes(problems.size());
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        for (int j = 0; j < kJobsPerThread; ++j) {
          const int i = w * kJobsPerThread + j;
          auto p = std::make_shared<EditDistance>(
              randomSequence(26 + i, 500 + 2 * i),
              randomSequence(26 + i, 501 + 2 * i));
          problems[static_cast<std::size_t>(i)] = p;
          outcomes[static_cast<std::size_t>(i)] =
              service.submit(p).wait();
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
  }
  for (std::size_t i = 0; i < problems.size(); ++i) {
    ASSERT_EQ(outcomes[i]->state, JobState::kDone) << outcomes[i]->error;
    expectMatchesReference(*problems[i], *outcomes[i]->matrix);
  }
  EXPECT_EQ(service.metrics().completed, kThreads * kJobsPerThread);
}

// Unit-level checks of the three policies over fabricated records, without
// a cluster.
TEST(Serve, SchedulerUnitOrdering) {
  auto rec = [](JobId id, std::int64_t seq, int priority,
                const std::string& key, double weight, double ops) {
    auto r = std::make_shared<JobRecord>();
    r->id = id;
    r->seq = seq;
    r->options.name = "j" + std::to_string(id);
    r->options.priority = priority;
    r->options.shareKey = key;
    r->options.weight = weight;
    r->estimatedOps = ops;
    return r;
  };

  {
    auto fifo = makeJobScheduler(JobSchedPolicy::kFifo);
    auto a = rec(1, 1, 0, "", 1, 100);
    auto b = rec(2, 2, 9, "", 1, 100);
    fifo->enqueue(a);
    fifo->enqueue(b);
    EXPECT_EQ(fifo->pick()->id, 1);  // priority ignored
    EXPECT_EQ(fifo->pick()->id, 2);
    EXPECT_EQ(fifo->pick(), nullptr);
  }
  {
    auto prio = makeJobScheduler(JobSchedPolicy::kPriority);
    auto a = rec(1, 1, 1, "", 1, 100);
    auto b = rec(2, 2, 9, "", 1, 100);
    auto c = rec(3, 3, 9, "", 1, 100);
    prio->enqueue(a);
    prio->enqueue(b);
    prio->enqueue(c);
    EXPECT_EQ(prio->pick()->id, 2);  // highest priority, lowest seq
    EXPECT_EQ(prio->pick()->id, 3);
    EXPECT_EQ(prio->pick()->id, 1);
  }
  {
    // Weight 3 earns three dispatches for every one of weight 1 (equal
    // per-job cost).
    auto fair = makeJobScheduler(JobSchedPolicy::kFairShare);
    auto x1 = rec(1, 1, 0, "x", 1, 300);
    auto x2 = rec(2, 2, 0, "x", 1, 300);
    auto y1 = rec(3, 3, 0, "y", 3, 300);
    auto y2 = rec(4, 4, 0, "y", 3, 300);
    auto y3 = rec(5, 5, 0, "y", 3, 300);
    for (const auto& r : {x1, x2, y1, y2, y3}) {
      fair->enqueue(r);
    }
    std::vector<JobId> order;
    while (auto r = fair->pick()) {
      order.push_back(r->id);
    }
    EXPECT_EQ(order, (std::vector<JobId>{1, 3, 4, 5, 2}));
  }
  {
    // Cancelled-while-queued records are dropped, not dispatched.
    auto fifo = makeJobScheduler(JobSchedPolicy::kFifo);
    auto a = rec(1, 1, 0, "", 1, 100);
    auto b = rec(2, 2, 0, "", 1, 100);
    fifo->enqueue(a);
    fifo->enqueue(b);
    a->state.store(JobState::kCancelled);
    EXPECT_EQ(fifo->size(), 1u);
    EXPECT_EQ(fifo->pick()->id, 2);
    EXPECT_EQ(fifo->pick(), nullptr);
  }
}

TEST(Serve, MetricsTableRenders) {
  ServiceMetrics m;
  m.policy = "priority";
  m.accepted = 7;
  m.completed = 5;
  m.rejected = 2;
  m.uptimeSeconds = 10.0;
  const std::string rendered = metricsTable(m).render();
  EXPECT_NE(rendered.find("priority"), std::string::npos);
  EXPECT_NE(rendered.find("jobs_per_s"), std::string::npos);
  EXPECT_DOUBLE_EQ(m.jobsPerSecond(), 0.5);
}

}  // namespace
}  // namespace easyhps::serve

// Tests for the reporting module: tables, CSV, banners, trace CSV and the
// ASCII Gantt renderer.
#include <gtest/gtest.h>

#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/sim/simulator.hpp"
#include "easyhps/trace/gantt.hpp"
#include "easyhps/trace/report.hpp"

namespace easyhps::trace {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Each rendered line has equal width (alignment).
  std::size_t firstLen = out.find('\n');
  EXPECT_GT(firstLen, 0u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), LogicError);
}

TEST(Table, CsvEscapesNothingButJoins) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, JsonEmitsRowObjectsKeyedByHeader) {
  Table t({"policy", "jobs", "wait_s"});
  t.addRow({"fifo", "12", "0.250"});
  t.addRow({"fair-share", "9", "0.125"});
  EXPECT_EQ(t.json(),
            "[\n"
            "  {\"policy\": \"fifo\", \"jobs\": 12, \"wait_s\": 0.250},\n"
            "  {\"policy\": \"fair-share\", \"jobs\": 9, "
            "\"wait_s\": 0.125}\n"
            "]\n");
}

TEST(Table, JsonQuotesNonNumericAndEscapes) {
  Table t({"name"});
  t.addRow({"a\"b\\c"});
  t.addRow({"1e3"});    // scientific notation stays numeric
  t.addRow({"1.2.3"});  // not a number: quoted
  t.addRow({"nan"});    // not valid JSON as a literal: quoted
  const std::string out = t.json();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(out.find("{\"name\": 1e3}"), std::string::npos);
  EXPECT_NE(out.find("\"1.2.3\""), std::string::npos);
  EXPECT_NE(out.find("\"nan\""), std::string::npos);
}

TEST(Table, JsonEmptyTableIsEmptyArray) {
  Table t({"a"});
  EXPECT_EQ(t.json(), "[\n]\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

TEST(Banner, ContainsTitle) {
  EXPECT_NE(banner("Fig 1").find("Fig 1"), std::string::npos);
}

TEST(LinkMatrix, RendersPerLinkKilobytes) {
  // 2-rank matrix: 0→1 moved 1500 bytes, 1→0 moved 300.
  const Table t = linkMatrixTable({0, 1500, 300, 0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("src\\dst kB"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("0.3"), std::string::npos);
}

TEST(LinkMatrix, RejectsMismatchedSize) {
  EXPECT_ANY_THROW(linkMatrixTable({1, 2, 3}, 2));
}

TEST(TraceCsv, OneRowPerTask) {
  SmithWatermanGeneralGap p(randomSequence(300, 1), randomSequence(300, 2));
  sim::SimConfig cfg;
  cfg.deployment = sim::Deployment::forThreads(3, 2);
  cfg.processPartitionRows = cfg.processPartitionCols = 100;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 10;
  cfg.collectTrace = true;
  const sim::SimResult r = sim::simulate(p, cfg);
  const std::string csv = traceCsv(r.trace);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, r.tasks + 1);  // header + rows
  EXPECT_NE(csv.find("vertex,node"), std::string::npos);
}

TEST(AsciiGantt, RendersOneRowPerNode) {
  SmithWatermanGeneralGap p(randomSequence(300, 3), randomSequence(300, 4));
  sim::SimConfig cfg;
  cfg.deployment = sim::Deployment::forThreads(4, 2);
  cfg.processPartitionRows = cfg.processPartitionCols = 100;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 10;
  cfg.collectTrace = true;
  const sim::SimResult r = sim::simulate(p, cfg);
  const std::string gantt =
      asciiGantt(r.trace, r.makespan, cfg.deployment.computingNodes(), 60);
  EXPECT_NE(gantt.find("node 0"), std::string::npos);
  EXPECT_NE(gantt.find("node 2"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // some compute drawn
}

TEST(AsciiGantt, EmptyScheduleHandled) {
  EXPECT_EQ(asciiGantt({}, 0.0, 2), "(empty schedule)\n");
}

}  // namespace
}  // namespace easyhps::trace

// Correctness tests for the DP problems: block kernels against textbook
// references, halo sufficiency via isolated per-block windows (exactly the
// data flow the distributed runtime performs), and two-level partitioning.
#include <gtest/gtest.h>

#include <memory>

#include "easyhps/dp/editdist.hpp"
#include "easyhps/dp/nussinov.hpp"
#include "easyhps/dp/obst.hpp"
#include "easyhps/dp/problem.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/dp/twod2d.hpp"

namespace easyhps {
namespace {

// Solves the problem the way the distributed runtime does: every master
// block is computed in an isolated window containing only the block and its
// declared halo, then injected back into the master window.  Any halo
// under-declaration either throws (boundary of non-triangular problems) or
// yields wrong values caught by the reference comparison.
Window solveViaHaloWindows(const DpProblem& p, std::int64_t pr,
                           std::int64_t pc) {
  const PartitionedDag master = buildMasterDag(p, pr, pc);
  Window full(CellRect{0, 0, p.rows(), p.cols()}, p.boundaryFn());
  for (VertexId v : master.dag.topologicalOrder()) {
    const CellRect rect = master.rectOf(v);
    const auto halos = p.haloFor(rect);
    Window local(boundingBox(rect, halos), p.boundaryFn());
    for (const CellRect& h : halos) {
      local.inject(h, full.extract(h));
    }
    p.computeBlock(local, rect);
    full.inject(rect, local.extract(rect));
  }
  return full;
}

// Same, but each block is further partitioned by the slave DAG and each
// sub-block computed through it (two-level decomposition, still serial).
Window solveViaHaloWindowsTwoLevel(const DpProblem& p, std::int64_t pr,
                                   std::int64_t pc, std::int64_t tr,
                                   std::int64_t tc) {
  const PartitionedDag master = buildMasterDag(p, pr, pc);
  Window full(CellRect{0, 0, p.rows(), p.cols()}, p.boundaryFn());
  for (VertexId v : master.dag.topologicalOrder()) {
    const CellRect rect = master.rectOf(v);
    const auto halos = p.haloFor(rect);
    Window local(boundingBox(rect, halos), p.boundaryFn());
    for (const CellRect& h : halos) {
      local.inject(h, full.extract(h));
    }
    const PartitionedDag slave = buildSlaveDag(p, rect, tr, tc);
    for (VertexId sv : slave.dag.topologicalOrder()) {
      p.computeBlock(local, slaveVertexRect(slave, rect, sv));
    }
    full.inject(rect, local.extract(rect));
  }
  return full;
}

void expectMatchesReference(const DpProblem& p, const Window& solved) {
  const DenseMatrix<Score> ref = p.solveReference();
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    for (std::int64_t c = 0; c < p.cols(); ++c) {
      if (!p.cellActive(r, c)) {
        continue;
      }
      ASSERT_EQ(solved.get(r, c), ref.at(r, c))
          << p.name() << " mismatch at (" << r << "," << c << ")";
    }
  }
}

std::unique_ptr<DpProblem> makeProblem(const std::string& key,
                                       std::int64_t n) {
  if (key == "editdist") {
    return std::make_unique<EditDistance>(randomSequence(n, 1),
                                          randomSequence(n, 2));
  }
  if (key == "swgg") {
    return std::make_unique<SmithWatermanGeneralGap>(randomSequence(n, 3),
                                                     randomSequence(n, 4));
  }
  if (key == "nussinov") {
    return std::make_unique<Nussinov>(randomRna(n, 5));
  }
  if (key == "obst") {
    return std::make_unique<OptimalBst>(n, 6);
  }
  if (key == "2d2d") {
    return std::make_unique<TwoDTwoD>(n, 7);
  }
  throw LogicError("unknown problem key " + key);
}

// --- Window --------------------------------------------------------------

TEST(Window, InBoxReadWrite) {
  Window w(CellRect{2, 3, 4, 4}, [](std::int64_t, std::int64_t) {
    return Score{-9};
  });
  w.set(3, 4, 17);
  EXPECT_EQ(w.get(3, 4), 17);
  EXPECT_EQ(w.get(2, 3), 0);   // zero-initialized
  EXPECT_EQ(w.get(0, 0), -9);  // boundary fallback
}

TEST(Window, SetOutsideBoxThrows) {
  // The per-cell precondition in Window::set is debug-only
  // (EASYHPS_DCHECK): it throws in Debug/sanitizer builds and is compiled
  // out of Release hot loops.
#if EASYHPS_DCHECK_ENABLED
  Window w(CellRect{0, 0, 2, 2}, [](std::int64_t, std::int64_t) {
    return Score{0};
  });
  EXPECT_THROW(w.set(2, 0, 1), LogicError);
#else
  GTEST_SKIP() << "EASYHPS_DCHECK compiled out in this build";
#endif
}

TEST(Window, ExtractInjectRoundTrip) {
  Window w(CellRect{1, 1, 5, 5}, [](std::int64_t, std::int64_t) {
    return Score{0};
  });
  for (std::int64_t r = 1; r < 6; ++r) {
    for (std::int64_t c = 1; c < 6; ++c) {
      w.set(r, c, static_cast<Score>(r * 10 + c));
    }
  }
  const CellRect rect{2, 3, 2, 2};
  auto buf = w.extract(rect);
  Window w2(CellRect{1, 1, 5, 5}, [](std::int64_t, std::int64_t) {
    return Score{0};
  });
  w2.inject(rect, buf);
  EXPECT_EQ(w2.get(2, 3), 23);
  EXPECT_EQ(w2.get(3, 4), 34);
}

TEST(Window, BoundingBoxCoversBlockAndHalos) {
  const CellRect block{10, 10, 5, 5};
  const std::vector<CellRect> halos{{0, 10, 10, 5}, {10, 0, 5, 10}};
  const CellRect box = boundingBox(block, halos);
  EXPECT_EQ(box.row0, 0);
  EXPECT_EQ(box.col0, 0);
  EXPECT_EQ(box.rowEnd(), 15);
  EXPECT_EQ(box.colEnd(), 15);
}

// --- Reference sanity ----------------------------------------------------

TEST(EditDistance, KnownSmallCases) {
  EditDistance p("kitten", "sitting");
  const auto ref = p.solveReference();
  EXPECT_EQ(ref.at(5, 6), 3);  // classic answer
  EditDistance same("abc", "abc");
  EXPECT_EQ(same.solveReference().at(2, 2), 0);
  EditDistance all("aaa", "bbb");
  EXPECT_EQ(all.solveReference().at(2, 2), 3);
}

TEST(Swgg, PerfectMatchScores) {
  SmithWatermanGeneralGap p("ACGT", "ACGT");
  const auto ref = p.solveReference();
  EXPECT_EQ(ref.at(3, 3), 8);  // 4 matches × 2
}

TEST(Swgg, GapPenaltyApplied) {
  // a = ACGT, b = AC|GT with an inserted base: one gap of length 1.
  SmithWatermanGeneralGap p("ACGT", "ACAGT");
  const auto ref = p.solveReference();
  // Best local alignment: ACGT vs AC-A-GT → 4 matches − g(1) = 8 − 2 = 6.
  Score best = 0;
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    for (std::int64_t c = 0; c < p.cols(); ++c) {
      best = std::max(best, ref.at(r, c));
    }
  }
  EXPECT_EQ(best, 6);
}

TEST(Swgg, CustomGapFunctionRespected) {
  // Concave gap g(k) = 3 (flat): long gaps cost the same as short ones.
  SmithWatermanGeneralGap::Params params;
  params.gap = [](std::int64_t) { return Score{3}; };
  SmithWatermanGeneralGap p("AAAATTTT", "AAAACCCCCCTTTT", params);
  Score best = 0;
  const auto ref = p.solveReference();
  for (std::int64_t r = 0; r < p.rows(); ++r) {
    for (std::int64_t c = 0; c < p.cols(); ++c) {
      best = std::max(best, ref.at(r, c));
    }
  }
  // 8 matches × 2 − one flat gap (6 C's) of cost 3 = 13.
  EXPECT_EQ(best, 13);
}

TEST(Nussinov, KnownHairpin) {
  // GGGAAACCC folds into a 3-pair hairpin with minLoop=1... the classic.
  Nussinov p("GGGAAACCC");
  const auto ref = p.solveReference();
  EXPECT_EQ(ref.at(0, 8), 3);
}

TEST(Nussinov, MinLoopBlocksTightPairs) {
  Nussinov loose("GC", 0);
  EXPECT_EQ(loose.solveReference().at(0, 1), 1);
  Nussinov tight("GC", 1);
  EXPECT_EQ(tight.solveReference().at(0, 1), 0);
}

TEST(Nussinov, TracebackConsistent) {
  const std::string rna = randomRna(40, 11);
  Nussinov p(rna);
  Window solved = solveBlocked(p, 8, 8);
  const auto pairs = p.structure(solved);
  EXPECT_EQ(static_cast<Score>(pairs.size()), p.bestScore(solved));
  std::vector<bool> used(rna.size(), false);
  for (const auto& [i, j] : pairs) {
    EXPECT_TRUE(rnaPairs(rna[static_cast<std::size_t>(i)],
                         rna[static_cast<std::size_t>(j)]));
    EXPECT_GT(j - i, 1);
    EXPECT_FALSE(used[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(used[static_cast<std::size_t>(j)]);
    used[static_cast<std::size_t>(i)] = used[static_cast<std::size_t>(j)] =
        true;
  }
  const std::string db = p.dotBracket(pairs);
  EXPECT_EQ(db.size(), rna.size());
}

TEST(Obst, SingleKeyZeroCost) {
  OptimalBst p(std::vector<std::int32_t>{5});
  EXPECT_EQ(p.solveReference().at(0, 0), 0);
}

TEST(Obst, TwoKeysPicksCheaperRoot) {
  // Keys with freqs {1, 9}: root should be the popular key.
  OptimalBst p(std::vector<std::int32_t>{1, 9});
  // D[0][1] = w(0,1) + min(D[0][0] + D[1][1] via k=1, ...) = 10 + min over
  // k∈{1}: D[0][0]+D[1][1]=0 → 10.
  EXPECT_EQ(p.solveReference().at(0, 1), 10);
}

TEST(Obst, WeightPrefixSums) {
  OptimalBst p(std::vector<std::int32_t>{2, 3, 4});
  EXPECT_EQ(p.weight(0, 2), 9);
  EXPECT_EQ(p.weight(1, 2), 7);
  EXPECT_EQ(p.weight(2, 2), 4);
}

TEST(TwoDTwoD, DeterministicForSeed) {
  TwoDTwoD a(8, 42);
  TwoDTwoD b(8, 42);
  EXPECT_EQ(a.solveReference(), b.solveReference());
  TwoDTwoD c(8, 43);
  EXPECT_NE(a.solveReference(), c.solveReference());
}

// --- Blocked solves vs reference, sweeping partition sizes ---------------

struct BlockedCase {
  std::string problem;
  std::int64_t n;
  std::int64_t pr;
  std::int64_t pc;
};

class BlockedSolve : public ::testing::TestWithParam<BlockedCase> {};

TEST_P(BlockedSolve, MatchesReference) {
  const auto& c = GetParam();
  const auto p = makeProblem(c.problem, c.n);
  expectMatchesReference(*p, solveBlocked(*p, c.pr, c.pc));
}

TEST_P(BlockedSolve, HaloWindowsMatchReference) {
  const auto& c = GetParam();
  const auto p = makeProblem(c.problem, c.n);
  expectMatchesReference(*p, solveViaHaloWindows(*p, c.pr, c.pc));
}

std::vector<BlockedCase> blockedCases() {
  std::vector<BlockedCase> cases;
  for (const std::string key :
       {"editdist", "swgg", "nussinov", "obst", "2d2d"}) {
    const std::int64_t n = (key == "2d2d") ? 20 : 33;
    for (auto [pr, pc] : std::vector<std::pair<std::int64_t, std::int64_t>>{
             {1, 1}, {4, 4}, {5, 7}, {16, 16}, {64, 64}}) {
      cases.push_back({key, n, pr, pc});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, BlockedSolve, ::testing::ValuesIn(blockedCases()),
    [](const ::testing::TestParamInfo<BlockedCase>& info) {
      return info.param.problem + "_n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.pr) + "x" +
             std::to_string(info.param.pc);
    });

// --- Two-level decomposition ---------------------------------------------

struct TwoLevelCase {
  std::string problem;
  std::int64_t n;
  std::int64_t pr, pc, tr, tc;
};

class TwoLevelSolve : public ::testing::TestWithParam<TwoLevelCase> {};

TEST_P(TwoLevelSolve, MatchesReference) {
  const auto& c = GetParam();
  const auto p = makeProblem(c.problem, c.n);
  expectMatchesReference(
      *p, solveViaHaloWindowsTwoLevel(*p, c.pr, c.pc, c.tr, c.tc));
}

std::vector<TwoLevelCase> twoLevelCases() {
  std::vector<TwoLevelCase> cases;
  for (const std::string key :
       {"editdist", "swgg", "nussinov", "obst", "2d2d"}) {
    const std::int64_t n = (key == "2d2d") ? 18 : 30;
    cases.push_back({key, n, 10, 10, 3, 3});
    cases.push_back({key, n, 7, 9, 2, 5});
    cases.push_back({key, n, 30, 30, 4, 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, TwoLevelSolve, ::testing::ValuesIn(twoLevelCases()),
    [](const ::testing::TestParamInfo<TwoLevelCase>& info) {
      return info.param.problem + "_p" + std::to_string(info.param.pr) + "x" +
             std::to_string(info.param.pc) + "_t" +
             std::to_string(info.param.tr) + "x" +
             std::to_string(info.param.tc);
    });

// --- blockOps cost model invariants --------------------------------------

TEST(BlockOps, SumsOverPartitionEqualWhole) {
  // The simulator relies on block costs partitioning the total work: the
  // sum of blockOps over any tiling must equal blockOps of the full matrix.
  for (const std::string key :
       {"editdist", "swgg", "nussinov", "obst", "2d2d"}) {
    const auto p = makeProblem(key, 24);
    const CellRect whole{0, 0, p->rows(), p->cols()};
    const double total = p->blockOps(whole);
    for (std::int64_t bs : {3, 5, 8}) {
      const BlockGrid grid(p->rows(), p->cols(), bs, bs);
      double sum = 0;
      for (std::int64_t bi = 0; bi < grid.gridRows(); ++bi) {
        for (std::int64_t bj = 0; bj < grid.gridCols(); ++bj) {
          sum += p->blockOps(grid.blockRect(bi, bj));
        }
      }
      EXPECT_NEAR(sum, total, total * 1e-9)
          << key << " with block size " << bs;
    }
  }
}

TEST(BlockOps, SwggGrowsWithPosition) {
  const auto p = makeProblem("swgg", 100);
  EXPECT_LT(p->blockOps(CellRect{0, 0, 10, 10}),
            p->blockOps(CellRect{80, 80, 10, 10}));
}

TEST(HaloBytes, NussinovHeavierThanEditDistance) {
  // The 2D/1D split term ships whole row/column segments; 2D/0D ships one
  // row + one column.  This asymmetry drives the paper's Fig 16 speedup gap.
  const auto nus = makeProblem("nussinov", 32);
  const auto ed = makeProblem("editdist", 32);
  const CellRect rect{8, 16, 8, 8};
  EXPECT_GT(haloBytes(*nus, rect), haloBytes(*ed, rect));
}

TEST(SlaveDag, TriangularBlockMasksInactiveSubBlocks) {
  Nussinov p(randomRna(24, 9));
  // A diagonal master block: sub-blocks strictly below its diagonal are
  // inactive and must be excluded from the slave DAG.
  const CellRect diagBlock{0, 0, 12, 12};
  const PartitionedDag slave = buildSlaveDag(p, diagBlock, 4, 4);
  EXPECT_EQ(slave.vertexCount(), 6);  // upper triangle of a 3×3 sub-grid
  // An off-diagonal block is fully active.
  const CellRect offBlock{0, 12, 12, 12};
  EXPECT_EQ(buildSlaveDag(p, offBlock, 4, 4).vertexCount(), 9);
}

TEST(SlaveDag, FlippedSourcesAtBottomLeft) {
  Nussinov p(randomRna(16, 10));
  const CellRect off{0, 8, 8, 8};
  const PartitionedDag slave = buildSlaveDag(p, off, 4, 4);
  const auto sources = slave.dag.sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(slave.coordOf(sources[0]).bi, 1);
  EXPECT_EQ(slave.coordOf(sources[0]).bj, 0);
}

}  // namespace
}  // namespace easyhps

// Tests for scheduling policies and worker-pool bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "easyhps/dag/library.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/sched/policy.hpp"
#include "easyhps/sched/worker_pool.hpp"

namespace easyhps {
namespace {

PartitionedDag smallGrid() {
  return makeWavefront2D(BlockGrid(8, 8, 2, 2));  // 4×4 blocks
}

TEST(DynamicPolicy, AnyWorkerTakesAnyTask) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kDynamic, dag, 3);
  p->onReady(5);
  p->onReady(7);
  EXPECT_EQ(p->queuedCount(), 2);
  EXPECT_EQ(p->pick(2), 7);  // LIFO
  EXPECT_EQ(p->pick(0), 5);
  EXPECT_FALSE(p->pick(1).has_value());
  EXPECT_EQ(p->stalledPicks(), 0);  // empty ≠ stalled
}

TEST(BcwPolicy, OwnershipByBlockColumnModWorkers) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kBlockCyclicWavefront, dag, 2);
  // Block (0,0): column 0 → worker 0; block (0,1): column 1 → worker 1.
  const VertexId v00 = dag.vertexAt(0, 0);
  const VertexId v01 = dag.vertexAt(0, 1);
  const VertexId v02 = dag.vertexAt(0, 2);
  p->onReady(v00);
  p->onReady(v01);
  p->onReady(v02);
  EXPECT_EQ(p->pick(0), v00);
  EXPECT_EQ(p->pick(0), v02);  // column 2 mod 2 = worker 0, FIFO order
  EXPECT_EQ(p->pick(1), v01);
}

TEST(BcwPolicy, StallsWhenIdleWorkerOwnsNothing) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kBlockCyclicWavefront, dag, 4);
  p->onReady(dag.vertexAt(0, 0));  // owned by worker 0 only
  EXPECT_FALSE(p->pick(1).has_value());
  EXPECT_FALSE(p->pick(2).has_value());
  EXPECT_EQ(p->stalledPicks(), 2);  // the paper's "fatal situation"
  EXPECT_TRUE(p->pick(0).has_value());
}

TEST(CwPolicy, ContiguousBands) {
  const auto dag = smallGrid();  // 4 block columns
  auto p = makePolicy(PolicyKind::kColumnWavefront, dag, 2);
  // Band = 2 columns: cols {0,1} → worker 0, cols {2,3} → worker 1.
  p->onReady(dag.vertexAt(0, 1));
  p->onReady(dag.vertexAt(0, 2));
  EXPECT_EQ(p->pick(0), dag.vertexAt(0, 1));
  EXPECT_EQ(p->pick(1), dag.vertexAt(0, 2));
}

TEST(Policies, AllTasksEventuallyScheduled) {
  for (auto kind : {PolicyKind::kDynamic, PolicyKind::kBlockCyclicWavefront,
                    PolicyKind::kColumnWavefront}) {
    const auto dag = smallGrid();
    auto p = makePolicy(kind, dag, 3);
    for (VertexId v = 0; v < dag.vertexCount(); ++v) {
      p->onReady(v);
    }
    std::set<VertexId> got;
    for (int rounds = 0; rounds < 100 && p->queuedCount() > 0; ++rounds) {
      for (int w = 0; w < 3; ++w) {
        if (auto t = p->pick(w)) {
          got.insert(*t);
        }
      }
    }
    EXPECT_EQ(static_cast<std::int64_t>(got.size()), dag.vertexCount())
        << policyKindName(kind);
  }
}

TEST(RegisterTable, RegisterCompleteLifecycle) {
  RegisterTable t;
  const auto e1 = t.registerTask(7, 2);
  EXPECT_TRUE(t.isRegistered(7));
  EXPECT_TRUE(t.matches(7, e1));
  auto entry = t.complete(7);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->worker, 2);
  EXPECT_FALSE(t.isRegistered(7));
  EXPECT_FALSE(t.complete(7).has_value());
}

TEST(RegisterTable, CancelOnlyMatchingEpoch) {
  RegisterTable t;
  const auto e1 = t.registerTask(3, 1);
  const auto e2 = t.registerTask(3, 2);  // re-assignment bumps the epoch
  EXPECT_NE(e1, e2);
  EXPECT_FALSE(t.cancel(3, e1));  // stale epoch must not cancel
  EXPECT_TRUE(t.cancel(3, e2));
  EXPECT_FALSE(t.isRegistered(3));
}

TEST(OvertimeQueue, ExpiresInDeadlineOrder) {
  OvertimeQueue q;
  q.push(1, 0, 1, std::chrono::milliseconds(50));
  q.push(2, 0, 2, std::chrono::milliseconds(5));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.popExpired().empty());  // nothing expired yet
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].task, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(OvertimeQueue, NextDeadlineIsEarliest) {
  OvertimeQueue q;
  EXPECT_FALSE(q.nextDeadline().has_value());
  q.push(1, 0, 1, std::chrono::hours(1));
  q.push(2, 0, 2, std::chrono::milliseconds(1));
  ASSERT_TRUE(q.nextDeadline().has_value());
  EXPECT_LT(*q.nextDeadline(),
            OvertimeQueue::Clock::now() + std::chrono::seconds(1));
}

TEST(FaultPlan, ConsumeOnce) {
  fault::FaultPlan plan({{fault::FaultKind::kTaskBlackhole, 5, -1, -1, {}}});
  EXPECT_TRUE(plan.consumeBlackhole(5, 1));
  EXPECT_FALSE(plan.consumeBlackhole(5, 1));  // consumed
  EXPECT_EQ(plan.triggered(), 1);
}

TEST(FaultPlan, SlaveBindingRespected) {
  fault::FaultPlan plan({{fault::FaultKind::kTaskBlackhole, 5, 2, -1, {}}});
  EXPECT_FALSE(plan.consumeBlackhole(5, 1));  // wrong slave
  EXPECT_TRUE(plan.consumeBlackhole(5, 2));
}

TEST(FaultPlan, DelayReturnsConfiguredDuration) {
  fault::FaultPlan plan(
      {{fault::FaultKind::kTaskDelay, 4, -1, -1, std::chrono::milliseconds(80)}});
  EXPECT_EQ(plan.consumeDelay(3, 1).count(), 0);
  EXPECT_EQ(plan.consumeDelay(4, 1).count(), 80);
  EXPECT_EQ(plan.consumeDelay(4, 1).count(), 0);  // consumed
}

TEST(FaultPlan, ThreadCrashMatchesSubVertex) {
  fault::FaultPlan plan({{fault::FaultKind::kThreadCrash, 2, -1, 3, {}}});
  EXPECT_FALSE(plan.consumeThreadCrash(2, 1, 4));  // wrong sub-vertex
  EXPECT_TRUE(plan.consumeThreadCrash(2, 1, 3));
}

}  // namespace
}  // namespace easyhps

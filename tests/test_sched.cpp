// Tests for scheduling policies and worker-pool bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "easyhps/dag/library.hpp"
#include "easyhps/fault/plan.hpp"
#include "easyhps/sched/policy.hpp"
#include "easyhps/sched/worker_pool.hpp"

namespace easyhps {
namespace {

PartitionedDag smallGrid() {
  return makeWavefront2D(BlockGrid(8, 8, 2, 2));  // 4×4 blocks
}

TEST(DynamicPolicy, AnyWorkerTakesAnyTask) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kDynamic, dag, 3);
  p->onReady(5);
  p->onReady(7);
  EXPECT_EQ(p->queuedCount(), 2);
  EXPECT_EQ(p->pick(2), 7);  // LIFO
  EXPECT_EQ(p->pick(0), 5);
  EXPECT_FALSE(p->pick(1).has_value());
  EXPECT_EQ(p->stalledPicks(), 0);  // empty ≠ stalled
}

TEST(BcwPolicy, OwnershipByBlockColumnModWorkers) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kBlockCyclicWavefront, dag, 2);
  // Block (0,0): column 0 → worker 0; block (0,1): column 1 → worker 1.
  const VertexId v00 = dag.vertexAt(0, 0);
  const VertexId v01 = dag.vertexAt(0, 1);
  const VertexId v02 = dag.vertexAt(0, 2);
  p->onReady(v00);
  p->onReady(v01);
  p->onReady(v02);
  EXPECT_EQ(p->pick(0), v00);
  EXPECT_EQ(p->pick(0), v02);  // column 2 mod 2 = worker 0, FIFO order
  EXPECT_EQ(p->pick(1), v01);
}

TEST(BcwPolicy, StallsWhenIdleWorkerOwnsNothing) {
  const auto dag = smallGrid();
  auto p = makePolicy(PolicyKind::kBlockCyclicWavefront, dag, 4);
  p->onReady(dag.vertexAt(0, 0));  // owned by worker 0 only
  EXPECT_FALSE(p->pick(1).has_value());
  EXPECT_FALSE(p->pick(2).has_value());
  EXPECT_EQ(p->stalledPicks(), 2);  // the paper's "fatal situation"
  EXPECT_TRUE(p->pick(0).has_value());
}

TEST(CwPolicy, ContiguousBands) {
  const auto dag = smallGrid();  // 4 block columns
  auto p = makePolicy(PolicyKind::kColumnWavefront, dag, 2);
  // Band = 2 columns: cols {0,1} → worker 0, cols {2,3} → worker 1.
  p->onReady(dag.vertexAt(0, 1));
  p->onReady(dag.vertexAt(0, 2));
  EXPECT_EQ(p->pick(0), dag.vertexAt(0, 1));
  EXPECT_EQ(p->pick(1), dag.vertexAt(0, 2));
}

TEST(Policies, AllTasksEventuallyScheduled) {
  for (auto kind : {PolicyKind::kDynamic, PolicyKind::kBlockCyclicWavefront,
                    PolicyKind::kColumnWavefront}) {
    const auto dag = smallGrid();
    auto p = makePolicy(kind, dag, 3);
    for (VertexId v = 0; v < dag.vertexCount(); ++v) {
      p->onReady(v);
    }
    std::set<VertexId> got;
    for (int rounds = 0; rounds < 100 && p->queuedCount() > 0; ++rounds) {
      for (int w = 0; w < 3; ++w) {
        if (auto t = p->pick(w)) {
          got.insert(*t);
        }
      }
    }
    EXPECT_EQ(static_cast<std::int64_t>(got.size()), dag.vertexCount())
        << policyKindName(kind);
  }
}

TEST(RegisterTable, RegisterCompleteLifecycle) {
  RegisterTable t;
  const auto e1 = t.registerTask(7, 2);
  EXPECT_TRUE(t.isRegistered(7));
  EXPECT_TRUE(t.matches(7, e1));
  auto entry = t.complete(7);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->worker, 2);
  EXPECT_FALSE(t.isRegistered(7));
  EXPECT_FALSE(t.complete(7).has_value());
}

TEST(RegisterTable, CancelOnlyMatchingEpoch) {
  RegisterTable t;
  const auto e1 = t.registerTask(3, 1);
  const auto e2 = t.registerTask(3, 2);  // re-assignment bumps the epoch
  EXPECT_NE(e1, e2);
  EXPECT_FALSE(t.cancel(3, e1));  // stale epoch must not cancel
  EXPECT_TRUE(t.cancel(3, e2));
  EXPECT_FALSE(t.isRegistered(3));
}

TEST(OvertimeQueue, ExpiresInDeadlineOrder) {
  OvertimeQueue q;
  q.push(1, 0, 1, std::chrono::milliseconds(50));
  q.push(2, 0, 2, std::chrono::milliseconds(5));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.popExpired().empty());  // nothing expired yet
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto expired = q.popExpired();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].task, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(OvertimeQueue, NextDeadlineIsEarliest) {
  OvertimeQueue q;
  EXPECT_FALSE(q.nextDeadline().has_value());
  q.push(1, 0, 1, std::chrono::hours(1));
  q.push(2, 0, 2, std::chrono::milliseconds(1));
  ASSERT_TRUE(q.nextDeadline().has_value());
  EXPECT_LT(*q.nextDeadline(),
            OvertimeQueue::Clock::now() + std::chrono::seconds(1));
}

TEST(FaultPlan, ConsumeOnce) {
  fault::FaultPlan plan({{fault::FaultKind::kTaskBlackhole, 5, -1, -1, {}}});
  EXPECT_TRUE(plan.consumeBlackhole(5, 1));
  EXPECT_FALSE(plan.consumeBlackhole(5, 1));  // consumed
  EXPECT_EQ(plan.triggered(), 1);
}

TEST(FaultPlan, SlaveBindingRespected) {
  fault::FaultPlan plan({{fault::FaultKind::kTaskBlackhole, 5, 2, -1, {}}});
  EXPECT_FALSE(plan.consumeBlackhole(5, 1));  // wrong slave
  EXPECT_TRUE(plan.consumeBlackhole(5, 2));
}

TEST(FaultPlan, DelayReturnsConfiguredDuration) {
  fault::FaultPlan plan(
      {{fault::FaultKind::kTaskDelay, 4, -1, -1, std::chrono::milliseconds(80)}});
  EXPECT_EQ(plan.consumeDelay(3, 1).count(), 0);
  EXPECT_EQ(plan.consumeDelay(4, 1).count(), 80);
  EXPECT_EQ(plan.consumeDelay(4, 1).count(), 0);  // consumed
}

TEST(FaultPlan, ThreadCrashMatchesSubVertex) {
  fault::FaultPlan plan({{fault::FaultKind::kThreadCrash, 2, -1, 3, {}}});
  EXPECT_FALSE(plan.consumeThreadCrash(2, 1, 4));  // wrong sub-vertex
  EXPECT_TRUE(plan.consumeThreadCrash(2, 1, 3));
}

TEST(ParsePolicyKind, AllNamesRoundTrip) {
  for (auto kind : {PolicyKind::kDynamic, PolicyKind::kBlockCyclicWavefront,
                    PolicyKind::kColumnWavefront, PolicyKind::kLocality,
                    PolicyKind::kEct, PolicyKind::kEctSteal}) {
    const auto parsed = parsePolicyKind(policyKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << policyKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parsePolicyKind("no-such-policy").has_value());
  EXPECT_FALSE(parsePolicyKind("").has_value());
}

TEST(RankEstimator, ProfilesSeedSpeedUntilObserved) {
  RankEstimator est(2, {RankProfile{4.0}, RankProfile{1.0}});
  EXPECT_DOUBLE_EQ(est.speed(0), 4.0);
  EXPECT_DOUBLE_EQ(est.speed(1), 1.0);
  // Rank 1 observed at 100 work-units/s: its profile said 1.0, so the
  // calibration factor becomes 100×, lifting unseen rank 0 to ~400.
  est.observeTask(1, 100.0, 1.0);
  EXPECT_NEAR(est.speed(1), 100.0, 1e-9);
  EXPECT_NEAR(est.speed(0), 400.0, 1e-6);
  EXPECT_EQ(est.taskObservations(), 1);
}

TEST(RankEstimator, ObservationsConvergeByEwma) {
  RankEstimator est(1);
  est.observeTask(0, 50.0, 1.0);  // first sample seeds the EWMA exactly
  EXPECT_NEAR(est.speed(0), 50.0, 1e-9);
  for (int i = 0; i < 64; ++i) {
    est.observeTask(0, 200.0, 1.0);
  }
  EXPECT_NEAR(est.speed(0), 200.0, 1.0);
  est.observeTask(0, 0.0, 1.0);   // degenerate samples are ignored
  est.observeTask(0, 10.0, 0.0);
  EXPECT_NEAR(est.speed(0), 200.0, 1.0);
}

TEST(RankEstimator, ParseRankSpeeds) {
  std::string err;
  auto profiles = parseRankSpeeds("4,1,2", 3, RankProfile{}, &err);
  ASSERT_EQ(profiles.size(), 3u) << err;
  EXPECT_DOUBLE_EQ(profiles[0].speed, 4.0);
  EXPECT_DOUBLE_EQ(profiles[2].speed, 2.0);
  EXPECT_TRUE(parseRankSpeeds("4,1", 3, RankProfile{}, &err).empty());
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(parseRankSpeeds("4,-1,2", 3, RankProfile{}, &err).empty());
  EXPECT_TRUE(parseRankSpeeds("4,zap,2", 3, RankProfile{}, &err).empty());
}

// --- ECT policy -----------------------------------------------------------

EctOptions ectOptionsFor(std::vector<RankProfile> profiles) {
  EctOptions opt;
  opt.estimator = std::make_shared<RankEstimator>(
      static_cast<int>(profiles.size()), std::move(profiles));
  opt.taskWork = [](VertexId) { return 100.0; };  // uniform work
  return opt;
}

TEST(EctPolicy, FastRankWinsTies) {
  const auto dag = smallGrid();
  // Fast rank deliberately NOT at index 0 — placement must follow speed,
  // not worker order.
  auto p = makeEctPolicy(dag, 2, ectOptionsFor({RankProfile{1.0},
                                                RankProfile{4.0}}));
  p->onReady(dag.vertexAt(0, 0));
  EXPECT_FALSE(p->pick(0).has_value());  // planned on the fast lane
  EXPECT_EQ(p->stalledPicks(), 1);
  EXPECT_EQ(p->pick(1), dag.vertexAt(0, 0));
}

TEST(EctPolicy, BacklogShiftsPlacementToSlowRank) {
  const auto dag = smallGrid();
  auto p = makeEctPolicy(dag, 2, ectOptionsFor({RankProfile{2.0},
                                                RankProfile{1.0}}));
  // Each task costs 100/2 = 50s on rank 0, 100s on rank 1.  The first two
  // go to rank 0 (ECT 50, then 100); the third sees rank 0 at 150 vs
  // rank 1 at 100 and overflows to the slow rank.
  p->onReady(dag.vertexAt(0, 0));
  p->onReady(dag.vertexAt(0, 1));
  p->onReady(dag.vertexAt(1, 0));
  EXPECT_TRUE(p->pick(0).has_value());
  EXPECT_TRUE(p->pick(0).has_value());
  EXPECT_EQ(p->pick(1), dag.vertexAt(1, 0));
}

TEST(EctPolicy, MemoryFullRankSkipped) {
  const auto dag = smallGrid();
  // Rank 0 is 4× faster but its store only holds 64 bytes; blocks are
  // 1000 bytes, so placement must prefer the slower rank that fits.
  auto opt = ectOptionsFor(
      {RankProfile{4.0, 64}, RankProfile{1.0, 1ULL << 30}});
  opt.blockBytes = [](VertexId) { return std::uint64_t{1000}; };
  auto p = makeEctPolicy(dag, 2, opt);
  p->onReady(dag.vertexAt(0, 0));
  EXPECT_FALSE(p->pick(0).has_value());
  EXPECT_EQ(p->pick(1), dag.vertexAt(0, 0));
  EXPECT_EQ(p->placementSpills(), 0);  // it fit somewhere
}

TEST(EctPolicy, SpillCountedWhenNoRankFits) {
  const auto dag = smallGrid();
  auto opt = ectOptionsFor({RankProfile{4.0, 64}, RankProfile{1.0, 64}});
  opt.blockBytes = [](VertexId) { return std::uint64_t{1000}; };
  auto p = makeEctPolicy(dag, 2, opt);
  p->onReady(dag.vertexAt(0, 0));
  EXPECT_EQ(p->placementSpills(), 1);
  // Falls back to min-ECT: the fast rank still gets the task.
  EXPECT_EQ(p->pick(0), dag.vertexAt(0, 0));
}

TEST(EctPolicy, PendingBytesCountAgainstBudget) {
  const auto dag = smallGrid();
  // Budget fits exactly one queued block per rank; the second ready block
  // must land on the other rank even though rank 0 is faster.
  auto opt = ectOptionsFor(
      {RankProfile{4.0, 1500}, RankProfile{1.0, 1500}});
  opt.blockBytes = [](VertexId) { return std::uint64_t{1000}; };
  auto p = makeEctPolicy(dag, 2, opt);
  p->onReady(dag.vertexAt(0, 0));
  p->onReady(dag.vertexAt(0, 1));
  EXPECT_EQ(p->placementSpills(), 0);
  EXPECT_TRUE(p->pick(0).has_value());
  EXPECT_TRUE(p->pick(1).has_value());
}

TEST(EctPolicy, StealRevocationNeverDoubleAssigns) {
  const auto dag = smallGrid();
  // Worker 1 is believed near-dead at plan time, so every task lands on
  // lane 0.  Stealing exists for exactly this case: the belief turns out
  // wrong and the idle rank rebalances the tail.
  auto opt = ectOptionsFor({RankProfile{1.0}, RankProfile{0.05}});
  opt.steal = true;
  auto est = opt.estimator;
  auto p = makeEctPolicy(dag, 2, opt);
  std::vector<VertexId> ready = {dag.vertexAt(0, 0), dag.vertexAt(0, 1),
                                 dag.vertexAt(1, 0), dag.vertexAt(1, 1)};
  for (VertexId v : ready) {
    p->onReady(v);
  }
  EXPECT_EQ(p->queuedCount(), 4);
  // Observed reality: worker 1 is 10× faster than worker 0.
  est->observeTask(0, 100.0, 1.0);
  est->observeTask(1, 100.0, 0.1);
  // Idle worker 1 steals from worker 0's tail; each task is issued once.
  std::multiset<VertexId> got;
  for (int round = 0; round < 8; ++round) {
    for (int w = 0; w < 2; ++w) {
      if (auto t = p->pick(w)) {
        got.insert(*t);
      }
    }
  }
  EXPECT_EQ(got.size(), ready.size());
  for (VertexId v : ready) {
    EXPECT_EQ(got.count(v), 1u) << "task " << v << " double-assigned";
  }
  EXPECT_GT(p->tasksStolen(), 0);
  EXPECT_EQ(p->queuedCount(), 0);
}

TEST(EctPolicy, StealDeclinedWhenVictimFinishesSooner) {
  const auto dag = smallGrid();
  // Victim is 100× faster: its drain time is far below the thief's ECT
  // for the same task, so the steal must be declined.
  auto opt = ectOptionsFor({RankProfile{100.0}, RankProfile{1.0}});
  opt.steal = true;
  auto p = makeEctPolicy(dag, 2, opt);
  p->onReady(dag.vertexAt(0, 0));
  EXPECT_FALSE(p->pick(1).has_value());
  EXPECT_EQ(p->tasksStolen(), 0);
  EXPECT_EQ(p->pick(0), dag.vertexAt(0, 0));
}

TEST(EctPolicy, TimeoutReissueAfterStealStaysSingleAssignment) {
  const auto dag = smallGrid();
  auto opt = ectOptionsFor({RankProfile{1.0}, RankProfile{0.05}});
  opt.steal = true;
  auto est = opt.estimator;
  auto p = makeEctPolicy(dag, 2, opt);
  const VertexId a = dag.vertexAt(0, 0);
  const VertexId b = dag.vertexAt(0, 1);
  p->onReady(a);
  p->onReady(b);  // both planned onto lane 0 (worker 1 believed dead slow)
  est->observeTask(0, 100.0, 1.0);  // reality: worker 1 is 10× faster
  est->observeTask(1, 100.0, 0.1);
  ASSERT_EQ(p->pick(1), b);  // idle worker 1 steals the tail task
  EXPECT_EQ(p->tasksStolen(), 1);
  // The thief dies mid-steal: the master's overtime queue cancels the
  // registration and re-readies the task.  The stale in-flight debit must
  // be released and the task issued exactly once more.
  p->onReady(b);
  EXPECT_EQ(p->queuedCount(), 2);
  std::multiset<VertexId> got;
  for (int round = 0; round < 4; ++round) {
    for (int w = 0; w < 2; ++w) {
      if (auto t = p->pick(w)) {
        got.insert(*t);
      }
    }
  }
  EXPECT_EQ(got.count(a), 1u);
  EXPECT_EQ(got.count(b), 1u);
  EXPECT_EQ(p->queuedCount(), 0);
}

TEST(EctPolicy, LateDuplicatePurgesRequeuedCopy) {
  const auto dag = smallGrid();
  auto p = makeEctPolicy(dag, 2, ectOptionsFor({RankProfile{1.0},
                                                RankProfile{1.0}}));
  const VertexId v = dag.vertexAt(0, 0);
  p->onReady(v);
  ASSERT_EQ(p->pick(0), v);
  p->onReady(v);  // timeout re-plan while the original is still running
  // The original's late result lands: the re-queued copy must vanish.
  p->onTaskCompleted(v, 0, 0.0);
  EXPECT_EQ(p->queuedCount(), 0);
  EXPECT_FALSE(p->pick(0).has_value());
  EXPECT_FALSE(p->pick(1).has_value());
}

TEST(EctPolicy, QuarantinedLaneReclaimed) {
  const auto dag = smallGrid();
  bool rank0Allowed = true;
  auto opt = ectOptionsFor({RankProfile{4.0}, RankProfile{1.0}});
  opt.allowAssign = [&rank0Allowed](int w) {
    return w != 0 || rank0Allowed;
  };
  auto p = makeEctPolicy(dag, 2, opt);
  p->onReady(dag.vertexAt(0, 0));  // planned on fast rank 0
  rank0Allowed = false;            // rank 0 quarantined before issue
  EXPECT_FALSE(p->pick(0).has_value());
  EXPECT_EQ(p->pick(1), dag.vertexAt(0, 0));  // reclaimed, not stranded
}

TEST(EctPolicy, StreamingProgressOrdersOwnLane) {
  const auto dag = smallGrid();
  auto p = makeEctPolicy(dag, 1, ectOptionsFor({RankProfile{1.0}}));
  const VertexId a = dag.vertexAt(0, 0);
  const VertexId b = dag.vertexAt(0, 1);
  p->onReady(a);
  p->onReady(b);
  p->onFragmentProgress(a, 0.25);  // b has no fragments → progress 1.0
  EXPECT_EQ(p->pick(0), b);        // furthest-along halo first
  EXPECT_EQ(p->pick(0), a);
}

}  // namespace
}  // namespace easyhps

// Property-style parameterized tests: invariants that must hold across
// whole families of inputs — pattern structure over many grid shapes,
// partition/geometry algebra, parse-state conservation, policy
// conservation, and randomized message-substrate traffic.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "easyhps/dag/library.hpp"
#include "easyhps/dag/parse_state.hpp"
#include "easyhps/dp/nussinov.hpp"
#include "easyhps/dp/sequence.hpp"
#include "easyhps/dp/swgg.hpp"
#include "easyhps/msg/cluster.hpp"
#include "easyhps/sched/policy.hpp"
#include "easyhps/sim/platform.hpp"
#include "easyhps/util/archive.hpp"
#include "easyhps/util/rng.hpp"

namespace easyhps {
namespace {

// --- Pattern invariants over many grid shapes ------------------------------

struct GridCase {
  std::int64_t rows, cols, br, bc;
};

class PatternSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(PatternSweep, EveryPatternIsWellFormed) {
  const auto& g = GetParam();
  const BlockGrid grid(g.rows, g.cols, g.br, g.bc);
  for (auto kind :
       {PatternKind::kWavefront2D, PatternKind::kFlippedWavefront2D,
        PatternKind::kTriangular2D1D, PatternKind::kFull2D2D,
        PatternKind::kRowDependent2D}) {
    if (kind == PatternKind::kFull2D2D && grid.blockCount() > 1024) {
      continue;  // quadratic data edges, bounded by design
    }
    const PartitionedDag p = makeFromLibrary(kind, grid);
    // 1. Acyclic with a complete topological order.
    const auto order = p.dag.topologicalOrder();
    EXPECT_EQ(static_cast<std::int64_t>(order.size()), p.vertexCount());
    // 2. At least one source; every non-trivial DAG drains completely.
    EXPECT_FALSE(p.dag.sources().empty());
    // 3. Data edges are covered by precedence (halo availability).
    EXPECT_TRUE(p.dag.dataEdgesCoveredByPrecedence()) << patternKindName(kind);
    // 4. coordOf/vertexAt are mutual inverses over active blocks.
    for (VertexId v = 0; v < p.vertexCount(); ++v) {
      const BlockCoord c = p.coordOf(v);
      EXPECT_EQ(p.vertexAt(c.bi, c.bj), v);
    }
    // 5. Parsing visits every vertex exactly once.
    DagParseState state(p.dag);
    std::int64_t visited = 0;
    std::vector<VertexId> frontier = state.initiallyComputable();
    visited += static_cast<std::int64_t>(frontier.size());
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      for (VertexId n : state.finish(v)) {
        frontier.push_back(n);
        ++visited;
      }
    }
    EXPECT_TRUE(state.allDone());
    EXPECT_EQ(visited, p.vertexCount());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ManyShapes, PatternSweep,
    ::testing::Values(GridCase{1, 1, 1, 1}, GridCase{1, 17, 1, 4},
                      GridCase{17, 1, 4, 1}, GridCase{8, 8, 8, 8},
                      GridCase{9, 9, 2, 2}, GridCase{16, 16, 3, 5},
                      GridCase{25, 13, 4, 4}, GridCase{13, 25, 4, 4},
                      GridCase{64, 64, 16, 16}, GridCase{100, 100, 7, 7}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      const auto& g = info.param;
      return std::to_string(g.rows) + "x" + std::to_string(g.cols) + "_b" +
             std::to_string(g.br) + "x" + std::to_string(g.bc);
    });

// --- Halo/topology consistency across problems and partitions -------------

TEST(HaloProperty, HalosAreInMatrixAndDisjointFromBlock) {
  SmithWatermanGeneralGap swgg(randomSequence(50, 1), randomSequence(47, 2));
  Nussinov nus(randomRna(50, 3));
  const DpProblem* problems[] = {&swgg, &nus};
  for (const DpProblem* p : problems) {
    for (std::int64_t bs : {7, 13, 25}) {
      const PartitionedDag dag = buildMasterDag(*p, bs, bs);
      for (VertexId v = 0; v < dag.vertexCount(); ++v) {
        const CellRect rect = dag.rectOf(v);
        for (const CellRect& h : p->haloFor(rect)) {
          EXPECT_GE(h.row0, 0);
          EXPECT_GE(h.col0, 0);
          EXPECT_LE(h.rowEnd(), p->rows());
          EXPECT_LE(h.colEnd(), p->cols());
          const bool disjoint = h.rowEnd() <= rect.row0 ||
                                rect.rowEnd() <= h.row0 ||
                                h.colEnd() <= rect.col0 ||
                                rect.colEnd() <= h.col0;
          EXPECT_TRUE(disjoint)
              << p->name() << " halo overlaps its own block";
        }
      }
    }
  }
}

// Halo rects must be covered by data-predecessor blocks ∪ boundary: every
// halo cell of every block belongs to some *data predecessor* block (so the
// runtime's "halo is finished when task is ready" invariant holds).
TEST(HaloProperty, HaloCellsBelongToDataPredecessors) {
  Nussinov p(randomRna(36, 5));
  const PartitionedDag dag = buildMasterDag(p, 9, 9);
  for (VertexId v = 0; v < dag.vertexCount(); ++v) {
    const CellRect rect = dag.rectOf(v);
    std::set<VertexId> dataPreds(dag.dag.dataPredecessors(v).begin(),
                                 dag.dag.dataPredecessors(v).end());
    for (const CellRect& h : p.haloFor(rect)) {
      for (std::int64_t r = h.row0; r < h.rowEnd(); ++r) {
        for (std::int64_t c = h.col0; c < h.colEnd(); ++c) {
          if (!p.cellActive(r, c)) {
            continue;  // inactive cells read as boundary zeros
          }
          const BlockCoord b = dag.grid.blockOfCell(r, c);
          const VertexId owner = dag.vertexAt(b.bi, b.bj);
          ASSERT_GE(owner, 0);
          EXPECT_TRUE(dataPreds.count(owner))
              << "halo cell (" << r << "," << c << ") of block " << v
              << " lives in non-predecessor block " << owner;
        }
      }
    }
  }
}

// --- Policy conservation ----------------------------------------------------

TEST(PolicyProperty, NoTaskLostOrDuplicatedUnderRandomTraffic) {
  Rng rng(42);
  for (auto kind : {PolicyKind::kDynamic, PolicyKind::kBlockCyclicWavefront,
                    PolicyKind::kColumnWavefront}) {
    const PartitionedDag dag = makeWavefront2D(BlockGrid(20, 20, 2, 2));
    const int workers = 5;
    auto policy = makePolicy(kind, dag, workers);
    std::multiset<VertexId> queued;
    std::multiset<VertexId> picked;
    VertexId next = 0;
    for (int step = 0; step < 2000; ++step) {
      if (rng.nextDouble() < 0.5 && next < dag.vertexCount()) {
        policy->onReady(next);
        queued.insert(next);
        ++next;
      } else {
        const int w = static_cast<int>(rng.nextBelow(workers));
        if (auto t = policy->pick(w)) {
          picked.insert(*t);
        }
      }
    }
    // Drain.
    for (int w = 0; w < workers; ++w) {
      while (auto t = policy->pick(w)) {
        picked.insert(*t);
      }
    }
    EXPECT_EQ(queued, picked) << policyKindName(kind);
    EXPECT_EQ(policy->queuedCount(), 0);
  }
}

// --- Archive fuzz -----------------------------------------------------------

TEST(ArchiveProperty, RandomRoundTrips) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    ByteWriter w;
    std::vector<std::int64_t> ints;
    std::vector<std::string> strs;
    const int items = static_cast<int>(rng.nextBelow(20));
    for (int i = 0; i < items; ++i) {
      const auto x = static_cast<std::int64_t>(rng.nextU64());
      ints.push_back(x);
      w.put<std::int64_t>(x);
      std::string s;
      const auto len = rng.nextBelow(64);
      for (std::uint64_t k = 0; k < len; ++k) {
        s.push_back(static_cast<char>('a' + rng.nextBelow(26)));
      }
      strs.push_back(s);
      w.putString(s);
    }
    auto bytes = std::move(w).take();
    ByteReader r(bytes);
    for (int i = 0; i < items; ++i) {
      EXPECT_EQ(r.get<std::int64_t>(), ints[static_cast<std::size_t>(i)]);
      EXPECT_EQ(r.getString(), strs[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// --- Message substrate under randomized all-to-all traffic ------------------

TEST(MsgProperty, RandomAllToAllConservesMessages) {
  constexpr int kRanks = 5;
  constexpr int kPerRank = 300;
  auto report = msg::Cluster::run(kRanks, [](msg::Comm& comm) {
    Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    // Everyone sends kPerRank random-size messages to random peers with
    // the payload checksummed, then receives until global counts match.
    std::int64_t sentSum = 0;
    for (int i = 0; i < kPerRank; ++i) {
      const int dest = static_cast<int>(rng.nextBelow(kRanks));
      const auto len = rng.nextBelow(256);
      ByteWriter w;
      std::int64_t sum = 0;
      w.put<std::uint64_t>(len);
      for (std::uint64_t k = 0; k < len; ++k) {
        const auto b = static_cast<std::int8_t>(rng.nextBelow(100));
        w.put<std::int8_t>(b);
        sum += b;
      }
      w.put<std::int64_t>(sum);
      comm.send(dest, 3, std::move(w).take());
      sentSum += sum;
      (void)sentSum;
    }
    comm.barrier();  // all traffic is in flight or queued now
    int received = 0;
    while (auto m = comm.tryRecv(msg::kAnySource, 3)) {
      ByteReader r(m->payload);
      const auto len = r.get<std::uint64_t>();
      std::int64_t sum = 0;
      for (std::uint64_t k = 0; k < len; ++k) {
        sum += r.get<std::int8_t>();
      }
      EXPECT_EQ(r.get<std::int64_t>(), sum);  // checksum intact
      ++received;
    }
    // Each rank receives a random share; the cluster-wide total is checked
    // below through the traffic report.
    EXPECT_GE(received, 0);
  });
  // kRanks × kPerRank payload messages + barrier traffic.
  EXPECT_GE(report.messages, static_cast<std::uint64_t>(kRanks * kPerRank));
}

// --- Deployment arithmetic over the whole paper range -----------------------

TEST(DeploymentProperty, PaperSweepsAreConsistent) {
  for (int nodes = 2; nodes <= 5; ++nodes) {
    for (int ct = 1; ct <= 11; ++ct) {
      const auto d = sim::Deployment::forThreads(nodes, ct);
      EXPECT_EQ(d.computingThreads(), ct * (nodes - 1));
      const auto tpn = d.threadsPerNode();
      EXPECT_EQ(static_cast<int>(tpn.size()), nodes - 1);
      EXPECT_EQ(std::accumulate(tpn.begin(), tpn.end(), 0),
                d.computingThreads());
      for (int t : tpn) {
        EXPECT_EQ(t, ct);
      }
      // The paper's formula: Y = N + (N-1) + ct(N-1).
      EXPECT_EQ(d.totalCores, nodes + (nodes - 1) + ct * (nodes - 1));
    }
  }
}

TEST(DeploymentProperty, UnevenSplitsDifferByAtMostOne) {
  for (int nodes = 2; nodes <= 8; ++nodes) {
    for (int cores = 2 * nodes; cores <= 2 * nodes + 40; ++cores) {
      sim::Deployment d{nodes, cores};
      if (d.computingThreads() < 1) {
        continue;
      }
      const auto tpn = d.threadsPerNode();
      const auto [lo, hi] = std::minmax_element(tpn.begin(), tpn.end());
      EXPECT_LE(*hi - *lo, 1);
      EXPECT_EQ(std::accumulate(tpn.begin(), tpn.end(), 0),
                d.computingThreads());
    }
  }
}

}  // namespace
}  // namespace easyhps

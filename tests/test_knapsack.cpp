// Knapsack: references, jump-dependency halos, traceback, runtime e2e.
#include <gtest/gtest.h>

#include "easyhps/dp/knapsack.hpp"
#include "easyhps/runtime/runtime.hpp"

namespace easyhps {
namespace {

TEST(Knapsack, TextbookInstance) {
  // Items (w, v): (1,1) (3,4) (4,5) (5,7), capacity 7 → best 9 (items 1+3).
  Knapsack p({{1, 1}, {3, 4}, {4, 5}, {5, 7}}, 7);
  EXPECT_EQ(p.solveReference().at(3, 6), 9);
}

TEST(Knapsack, NothingFits) {
  Knapsack p({{10, 100}, {12, 200}}, 5);
  EXPECT_EQ(p.solveReference().at(1, 4), 0);
}

TEST(Knapsack, EverythingFits) {
  Knapsack p({{1, 3}, {1, 4}, {1, 5}}, 10);
  EXPECT_EQ(p.solveReference().at(2, 9), 12);
}

TEST(Knapsack, BlockedMatchesReferenceAcrossPartitions) {
  Knapsack p(30, 45, 71);
  const auto ref = p.solveReference();
  for (std::int64_t bs : {1, 5, 9, 16, 64}) {
    const Window solved = solveBlocked(p, bs, bs);
    for (std::int64_t r = 0; r < p.rows(); ++r) {
      for (std::int64_t c = 0; c < p.cols(); ++c) {
        ASSERT_EQ(solved.get(r, c), ref.at(r, c))
            << "bs=" << bs << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(Knapsack, TracebackReconstructsOptimum) {
  Knapsack p(25, 40, 72);
  const Window solved = solveBlocked(p, 8, 8);
  const auto chosen = p.chosenItems(solved);
  std::int64_t weight = 0;
  Score value = 0;
  for (std::int64_t idx : chosen) {
    weight += p.items()[static_cast<std::size_t>(idx)].weight;
    value += p.items()[static_cast<std::size_t>(idx)].value;
  }
  EXPECT_LE(weight, 40);
  EXPECT_EQ(value, p.bestValue(solved));
}

TEST(Knapsack, JumpHaloReachesFullRowPrefix) {
  Knapsack p(20, 30, 73);
  const auto halos = p.haloFor(CellRect{10, 10, 5, 5});
  ASSERT_EQ(halos.size(), 2u);
  EXPECT_EQ(halos[0], (CellRect{9, 0, 1, 15}));   // full prefix row above
  EXPECT_EQ(halos[1], (CellRect{10, 0, 5, 10}));  // left strip
}

TEST(Knapsack, RuntimeEndToEnd) {
  Knapsack p(30, 48, 74);
  RuntimeConfig cfg;
  cfg.slaveCount = 3;
  cfg.threadsPerSlave = 2;
  cfg.processPartitionRows = cfg.processPartitionCols = 11;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 4;
  const RunResult r = Runtime(cfg).run(p);
  const auto ref = p.solveReference();
  for (std::int64_t row = 0; row < p.rows(); ++row) {
    for (std::int64_t c = 0; c < p.cols(); ++c) {
      ASSERT_EQ(r.matrix.get(row, c), ref.at(row, c));
    }
  }
}

TEST(Knapsack, RuntimeWithFaultInjection) {
  Knapsack p(24, 36, 75);
  RuntimeConfig cfg;
  cfg.slaveCount = 2;
  cfg.threadsPerSlave = 2;
  cfg.processPartitionRows = cfg.processPartitionCols = 12;
  cfg.threadPartitionRows = cfg.threadPartitionCols = 4;
  cfg.taskTimeout = std::chrono::milliseconds(100);
  cfg.faults.push_back({fault::FaultKind::kTaskBlackhole, 1, -1, -1, {}});
  const RunResult r = Runtime(cfg).run(p);
  EXPECT_GE(r.stats.retries, 1);
  EXPECT_EQ(r.matrix.get(p.rows() - 1, p.cols() - 1),
            p.solveReference().at(p.rows() - 1, p.cols() - 1));
}

}  // namespace
}  // namespace easyhps

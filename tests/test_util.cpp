// Unit tests for src/easyhps/util: error checks, RNG determinism,
// concurrent containers, stats accumulators and the byte archive.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "easyhps/util/archive.hpp"
#include "easyhps/util/clock.hpp"
#include "easyhps/util/concurrent.hpp"
#include "easyhps/util/error.hpp"
#include "easyhps/util/rng.hpp"
#include "easyhps/util/stats.hpp"

namespace easyhps {
namespace {

TEST(Error, ExpectsThrowsLogicError) {
  EXPECT_THROW(EASYHPS_EXPECTS(1 == 2), LogicError);
  EXPECT_NO_THROW(EASYHPS_EXPECTS(1 == 1));
}

TEST(Error, CheckCarriesMessage) {
  try {
    EASYHPS_CHECK(false, "my context");
    FAIL() << "should have thrown";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("my context"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.nextU64(), b.nextU64());
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(7);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1.nextU64() == s2.nextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.nextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(BlockingStack, LifoOrder) {
  BlockingStack<int> s;
  s.push(1);
  s.push(2);
  s.push(3);
  EXPECT_EQ(s.pop(), 3);
  EXPECT_EQ(s.pop(), 2);
  EXPECT_EQ(s.pop(), 1);
}

TEST(BlockingStack, CloseWakesBlockedPop) {
  BlockingStack<int> s;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    auto v = s.pop();
    EXPECT_FALSE(v.has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.close();
  t.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingStack, PushAfterCloseThrows) {
  BlockingStack<int> s;
  s.close();
  EXPECT_THROW(s.push(1), LogicError);
}

TEST(BlockingStack, DrainTakesEverything) {
  BlockingStack<int> s;
  for (int i = 0; i < 5; ++i) {
    s.push(i);
  }
  auto all = s.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(s.empty());
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto v = q.popFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
}

TEST(BlockingQueue, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  std::set<int> received;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    received.insert(*v);
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(received.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole;
  OnlineStats a;
  OnlineStats b;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.nextDouble() * 10;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.count(), whole.count());
}

TEST(OnlineStats, ImbalanceIsMaxOverMean) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 1.5);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(Histogram, ClampsOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(Archive, RoundTripScalars) {
  ByteWriter w;
  w.put<std::int32_t>(-7);
  w.put<std::uint64_t>(123456789ULL);
  w.put<double>(3.25);
  auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_EQ(r.get<std::uint64_t>(), 123456789ULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Archive, RoundTripStringAndVector) {
  ByteWriter w;
  w.putString("hello easyhps");
  w.putVector<std::int32_t>({1, 2, 3});
  w.putVector<std::int32_t>({});
  auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_EQ(r.getString(), "hello easyhps");
  EXPECT_EQ(r.getVector<std::int32_t>(), (std::vector<std::int32_t>{1, 2, 3}));
  EXPECT_TRUE(r.getVector<std::int32_t>().empty());
}

TEST(Archive, TruncatedPayloadThrows) {
  ByteWriter w;
  w.put<std::int32_t>(1);
  auto bytes = std::move(w).take();
  ByteReader r(bytes);
  (void)r.get<std::int32_t>();
  EXPECT_THROW(r.get<std::int64_t>(), CommError);
}

TEST(Archive, VectorLengthLieThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(1000);  // claims 1000 elements, provides none
  auto bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW(r.getVector<std::int64_t>(), CommError);
}

TEST(Clock, StopwatchMonotone) {
  Stopwatch sw;
  const double a = sw.elapsedSeconds();
  const double b = sw.elapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Clock, SimTimeConversions) {
  EXPECT_DOUBLE_EQ(simToSeconds(kSimSecond), 1.0);
  EXPECT_DOUBLE_EQ(simToSeconds(500 * kSimMillisecond), 0.5);
}

}  // namespace
}  // namespace easyhps
